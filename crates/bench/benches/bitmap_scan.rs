//! Criterion micro-benchmarks for the block-bitmap implementations
//! (E10: the §IV-A-2 layered-vs-flat design choice).

use block_bitmap::{ser, AtomicBitmap, DirtyMap, FlatBitmap, LayeredBitmap};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use des::SimRng;

/// 40 GB disk at 4 KiB blocks.
const NBITS: usize = 9_765_625;

fn clustered_indices(dirty: usize, rng: &mut SimRng) -> Vec<usize> {
    let clusters = (dirty / 512).max(1);
    let per = dirty / clusters;
    let mut out = Vec::with_capacity(dirty);
    for _ in 0..clusters {
        let start = rng.below((NBITS - per) as u64) as usize;
        out.extend(start..start + per);
    }
    out
}

fn bench_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap_set");
    g.bench_function("flat", |b| {
        let mut bm = FlatBitmap::new(NBITS);
        let mut i = 0usize;
        b.iter(|| {
            bm.set(black_box(i % NBITS));
            i += 4097;
        });
    });
    g.bench_function("layered", |b| {
        let mut bm = LayeredBitmap::new(NBITS);
        let mut i = 0usize;
        b.iter(|| {
            bm.set(black_box(i % NBITS));
            i += 4097;
        });
    });
    g.bench_function("atomic", |b| {
        let bm = AtomicBitmap::new(NBITS);
        let mut i = 0usize;
        b.iter(|| {
            bm.set(black_box(i % NBITS));
            i += 4097;
        });
    });
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap_scan_clustered");
    for &dirty in &[610usize, 6_680, 360_000] {
        let mut rng = SimRng::new(1);
        let idxs = clustered_indices(dirty, &mut rng);
        let mut flat = FlatBitmap::new(NBITS);
        let mut layered = LayeredBitmap::new(NBITS);
        for &i in &idxs {
            flat.set(i);
            layered.set(i);
        }
        g.bench_with_input(BenchmarkId::new("flat", dirty), &flat, |b, bm| {
            b.iter(|| black_box(bm.iter_set().count()))
        });
        g.bench_with_input(BenchmarkId::new("layered", dirty), &layered, |b, bm| {
            b.iter(|| black_box(bm.iter_set().count()))
        });
    }
    g.finish();
}

fn bench_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap_iteration_boundary");
    g.bench_function("atomic_snapshot_and_clear", |b| {
        let bm = AtomicBitmap::new(NBITS);
        b.iter(|| {
            bm.set(12_345);
            black_box(bm.snapshot_and_clear())
        });
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap_wire");
    let mut rng = SimRng::new(2);
    let mut sparse = FlatBitmap::new(NBITS);
    for i in clustered_indices(6_680, &mut rng) {
        sparse.set(i);
    }
    g.bench_function("encode_sparse_6680", |b| {
        b.iter(|| black_box(ser::encode(&sparse)))
    });
    let enc = ser::encode(&sparse);
    g.bench_function("decode_sparse_6680", |b| {
        b.iter(|| black_box(ser::decode(&enc).expect("valid")))
    });
    g.finish();
}

criterion_group!(benches, bench_set, bench_scan, bench_drain, bench_wire);
criterion_main!(benches);
