//! Criterion micro-benchmarks for the migration wire codec: the bulk
//! word paths and single-buffer framing of the zero-copy data plane.

use block_bitmap::{ser, DirtyMap, FlatBitmap};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use des::SimRng;
use simnet::codec;
use simnet::proto::MigMessage;

/// 40 GB disk at 4 KiB blocks.
const NBITS: usize = 9_765_625;

fn clustered_bitmap(dirty: usize, seed: u64) -> FlatBitmap {
    let mut rng = SimRng::new(seed);
    let mut bm = FlatBitmap::new(NBITS);
    let clusters = (dirty / 512).max(1);
    let per = dirty / clusters;
    for _ in 0..clusters {
        let start = rng.below((NBITS - per) as u64) as usize;
        for i in start..start + per {
            bm.set(i);
        }
    }
    bm
}

fn bench_bitmap_frame(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_bitmap_frame");
    let bm = clustered_bitmap(360_000, 7);
    g.bench_function("encode_framed_40g", |b| {
        b.iter(|| {
            let msg = MigMessage::Bitmap {
                encoded: ser::encode_raw(black_box(&bm)).into(),
            };
            black_box(codec::encode_framed(&msg))
        })
    });
    let msg = MigMessage::Bitmap {
        encoded: ser::encode_raw(&bm).into(),
    };
    let framed = codec::encode_framed(&msg);
    g.bench_function("decode_40g", |b| {
        b.iter(|| black_box(codec::decode(&framed[4..]).expect("valid frame")))
    });
    g.finish();
}

fn bench_block_batches(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_diskblocks");
    for &n in &[1_000usize, 100_000] {
        let blocks: Vec<u64> = (0..n as u64).map(|i| i * 7).collect();
        let msg = MigMessage::DiskBlocks {
            payload_len: n as u64 * 4096,
            blocks,
            payload: None,
        };
        g.bench_with_input(BenchmarkId::new("encode_framed", n), &msg, |b, m| {
            b.iter(|| black_box(codec::encode_framed(m)))
        });
        let framed = codec::encode_framed(&msg);
        g.bench_with_input(BenchmarkId::new("decode", n), &framed, |b, f| {
            b.iter(|| black_box(codec::decode(&f[4..]).expect("valid frame")))
        });
    }
    g.finish();
}

fn bench_frame_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_stream");
    let msgs: Vec<MigMessage> = (0..64u64)
        .map(|i| MigMessage::DiskBlocks {
            blocks: (i * 64..i * 64 + 64).collect(),
            payload_len: 64 * 4096,
            payload: None,
        })
        .collect();
    g.bench_function("write_read_64_frames", |b| {
        b.iter(|| {
            let mut wire = Vec::new();
            for m in &msgs {
                codec::write_frame(&mut wire, m).expect("write");
            }
            let mut cursor = std::io::Cursor::new(&wire);
            let mut n = 0usize;
            while let Some(m) = codec::read_frame_or_eof(&mut cursor).expect("read") {
                black_box(m);
                n += 1;
            }
            assert_eq!(n, msgs.len());
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bitmap_frame,
    bench_block_batches,
    bench_frame_roundtrip
);
criterion_main!(benches);
