//! End-to-end engine benchmarks: how fast the simulated TPM/IM engines
//! execute (wall time per simulated migration), one per Table I workload,
//! plus the event-driven post-copy phase in isolation.

use block_bitmap::{DirtyMap, FlatBitmap};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use des::{SimDuration, SimRng, SimTime};
use migrate::sim::{dwell, run_im, run_postcopy, run_tpm, DirtyTracker, PostCopyConfig};
use migrate::{BitmapKind, MigrationConfig};
use simnet::proto::TransferLedger;
use vdisk::MetaDisk;
use workloads::probe::ThroughputProbe;
use workloads::WorkloadKind;

fn bench_tpm(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_tpm_small");
    g.sample_size(10);
    for kind in WorkloadKind::TABLE1 {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let out = run_tpm(MigrationConfig::small(), kind);
                    assert!(out.report.consistent);
                    black_box(out.report.total_time_secs)
                })
            },
        );
    }
    g.finish();
}

fn bench_im_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_im_roundtrip");
    g.sample_size(10);
    g.bench_function("web_tpm_dwell_im", |b| {
        b.iter(|| {
            let cfg = MigrationConfig::small();
            let mut out = run_tpm(cfg.clone(), WorkloadKind::Web);
            dwell(&mut out, &cfg, SimDuration::from_secs(30));
            let back = run_im(cfg, out);
            assert!(back.report.consistent);
            black_box(back.report.total_time_secs)
        })
    });
    g.finish();
}

fn bench_postcopy(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_postcopy");
    for &dirty in &[64usize, 1024, 16_384] {
        g.bench_with_input(BenchmarkId::from_parameter(dirty), &dirty, |b, &dirty| {
            b.iter(|| {
                let blocks = 65_536;
                let mut src = MetaDisk::new(blocks);
                let mut dst = MetaDisk::new(blocks);
                let mut bm = FlatBitmap::new(blocks);
                for i in 0..dirty {
                    let blk = i * (blocks / dirty);
                    src.write(blk);
                    bm.set(blk);
                }
                let cfg = PostCopyConfig {
                    block_size: 4096,
                    push_rate: 50e6,
                    workload_share: 2e6,
                    latency: SimDuration::from_micros(100),
                    push_batch: 32,
                    slice: SimDuration::from_millis(20),
                    horizon: SimDuration::from_secs(60),
                    push_enabled: true,
                };
                let mut new_bm = DirtyTracker::new(BitmapKind::Flat, blocks);
                let mut workload = WorkloadKind::Idle.build(blocks as u64);
                let mut rng = SimRng::new(7);
                let mut ledger = TransferLedger::new();
                let mut probe = ThroughputProbe::new();
                let out = run_postcopy(
                    cfg,
                    SimTime::ZERO,
                    &src,
                    &mut dst,
                    bm.clone(),
                    bm,
                    &mut new_bm,
                    workload.as_mut(),
                    &mut rng,
                    &mut ledger,
                    &mut probe,
                    &telemetry::Recorder::off(),
                );
                assert_eq!(out.residual_blocks, 0);
                black_box(out.stats.pushed)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tpm, bench_im_roundtrip, bench_postcopy);
criterion_main!(benches);
