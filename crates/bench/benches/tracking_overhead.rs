//! Criterion measurement behind Table III: the cost the write-intercepting
//! layer (`blkback` analogue) adds to every guest write.

use std::sync::Arc;

use block_bitmap::AtomicBitmap;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vdisk::{stamp_bytes, DomainId, IoRequest, TrackedDisk, VirtualDisk};

const BLOCKS: usize = 16_384;

fn tracked_disk(trackers: usize) -> TrackedDisk {
    let disk = TrackedDisk::new(Arc::new(VirtualDisk::dense(4096, BLOCKS)));
    for _ in 0..trackers {
        disk.attach_tracker(Arc::new(AtomicBitmap::new(BLOCKS)), Some(DomainId(1)));
    }
    disk
}

fn bench_interception(c: &mut Criterion) {
    let mut g = c.benchmark_group("interception_path");
    let disk = tracked_disk(1);
    disk.disable_tracking();
    let mut i = 0usize;
    g.bench_function("record_write_disabled", |b| {
        b.iter(|| {
            disk.record_write(black_box(i % BLOCKS), DomainId(1));
            i += 1;
        })
    });
    for trackers in [1usize, 2, 3] {
        // The paper keeps up to three bitmaps live (pre-copy map,
        // transferred map, IM map).
        let disk = tracked_disk(trackers);
        disk.enable_tracking();
        let mut i = 0usize;
        g.bench_function(format!("record_write_enabled_x{trackers}"), |b| {
            b.iter(|| {
                disk.record_write(black_box(i % BLOCKS), DomainId(1));
                i += 1;
            })
        });
    }
    g.finish();
}

fn bench_full_write_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_write_path");
    g.throughput(criterion::Throughput::Bytes(4096));
    let data = stamp_bytes(0, 1, 4096);
    for (name, tracking) in [("untracked", false), ("tracked", true)] {
        let disk = tracked_disk(1);
        if tracking {
            disk.enable_tracking();
        }
        let mut i = 0usize;
        g.bench_function(format!("write_4k_{name}"), |b| {
            b.iter(|| {
                disk.submit(IoRequest::write(i % BLOCKS, DomainId(1)), Some(&data));
                i += 1;
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_interception, bench_full_write_path);
criterion_main!(benches);
