//! Performance baseline harness: wall-clock p50/p99 per scenario,
//! emitted as CI-comparable JSON (`BENCH_baseline.json`).
//!
//! Three scenario families cover the migration data plane end to end:
//!
//! * **bitmap** — word-batched `FlatBitmap` scans, unions and shard
//!   extraction at the paper's 40 GB / 4 KiB scale (9,765,625 bits);
//! * **codec** — wire encode/decode of bitmap and block-batch frames,
//!   including a `*_naive` reference that re-creates the pre-overhaul
//!   per-word copy path so the bulk-path speedup stays measurable;
//! * **sim** — end-to-end three-phase migrations at paper scale, with
//!   one and four transport streams.
//!
//! ```text
//! perf_baseline [--out FILE] [--quick] [--verify-speedup]
//! perf_baseline --compare BENCH_baseline.json [--threshold PCT] [--quick]
//! ```
//!
//! `--compare` reruns every scenario and fails (exit 1) when a fresh p50
//! regresses past `baseline_p50 * (1 + PCT/100)`. The default threshold
//! is deliberately loose (75%): wall-clock on shared CI machines is
//! noisy, and the gate is meant to catch algorithmic regressions (a
//! copy-per-word slipping back in), not scheduler jitter.

use std::hint::black_box;

use block_bitmap::{ser, DirtyMap, FlatBitmap};
use des::SimRng;
use migrate::sim::run_tpm;
use migrate::MigrationConfig;
use serde::{Deserialize, Serialize};
use simnet::codec;
use simnet::proto::MigMessage;
use workloads::WorkloadKind;

/// 40 GB disk at 4 KiB blocks — the paper's testbed geometry.
const NBITS: usize = 9_765_625;

/// Minimum acceptable bulk-vs-naive speedup for the bitmap-frame encode
/// path (`--verify-speedup`).
const REQUIRED_SPEEDUP: f64 = 3.0;

#[derive(Serialize, Deserialize)]
struct ScenarioStat {
    name: String,
    iters: usize,
    p50_ns: u64,
    p99_ns: u64,
}

#[derive(Serialize, Deserialize)]
struct Baseline {
    schema: String,
    nbits: usize,
    scenarios: Vec<ScenarioStat>,
    /// p50(naive bitmap-frame encode) / p50(bulk bitmap-frame encode).
    codec_bitmap_encode_speedup_vs_naive: f64,
}

/// Time `f` over `iters` iterations (after `warmup` untimed ones) and
/// report order statistics of the per-iteration wall clock.
fn measure<F: FnMut()>(name: &str, warmup: usize, iters: usize, mut f: F) -> ScenarioStat {
    for _ in 0..warmup {
        f();
    }
    let mut ns: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = std::time::Instant::now();
        f();
        ns.push(t.elapsed().as_nanos() as u64);
    }
    ns.sort_unstable();
    let p50 = ns[iters / 2];
    let p99 = ns[((iters * 99) / 100).min(iters - 1)];
    eprintln!("{name:<44} p50 {p50:>12} ns   p99 {p99:>12} ns   ({iters} iters)");
    ScenarioStat {
        name: name.to_string(),
        iters,
        p50_ns: p50,
        p99_ns: p99,
    }
}

/// Clustered dirty pattern at full map scale, like a real pre-copy
/// iteration's write set (the paper's workloads dirty runs of blocks,
/// not uniform noise).
fn clustered_bitmap(dirty: usize, seed: u64) -> FlatBitmap {
    let mut rng = SimRng::new(seed);
    let mut bm = FlatBitmap::new(NBITS);
    let clusters = (dirty / 512).max(1);
    let per = dirty / clusters;
    for _ in 0..clusters {
        let start = rng.below((NBITS - per) as u64) as usize;
        for i in start..start + per {
            bm.set(i);
        }
    }
    bm
}

/// The pre-overhaul bitmap-frame path, kept as a timing reference: one
/// 8-byte extend per word into unreserved buffers, then body and frame
/// assembled by separate concatenating copies.
fn naive_bitmap_frame(bm: &FlatBitmap) -> Vec<u8> {
    let mut encoded = Vec::new();
    encoded.push(0u8);
    encoded.extend_from_slice(&(bm.len() as u64).to_le_bytes());
    for w in bm.words() {
        encoded.extend_from_slice(&w.to_le_bytes());
    }
    let mut body = Vec::new();
    body.push(4u8);
    body.extend_from_slice(&(encoded.len() as u64).to_le_bytes());
    body.extend_from_slice(&encoded);
    let mut frame = Vec::new();
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

fn bulk_bitmap_frame(bm: &FlatBitmap) -> Vec<u8> {
    let msg = MigMessage::Bitmap {
        encoded: ser::encode_raw(bm).into(),
    };
    codec::encode_framed(&msg)
}

fn sim_scenario(streams: usize) -> MigrationConfig {
    let mut cfg = MigrationConfig::paper_testbed();
    cfg.streams = streams;
    cfg.seed = 2008;
    cfg
}

fn run_all(quick: bool) -> Baseline {
    // `--quick` trades percentile stability for turnaround; the emitted
    // JSON still has the same shape so compare mode works either way.
    let scale = |iters: usize| if quick { (iters / 10).max(5) } else { iters };
    let mut scenarios = Vec::new();

    // --- bitmap family ------------------------------------------------
    let a = clustered_bitmap(360_000, 11);
    let b = clustered_bitmap(360_000, 13);
    scenarios.push(measure("bitmap_count_ones_40g", 3, scale(2000), || {
        black_box(a.count_ones());
    }));
    scenarios.push(measure("bitmap_next_set_scan_40g", 3, scale(400), || {
        let mut n = 0usize;
        let mut from = 0usize;
        while let Some(i) = a.next_set_from(from) {
            n += 1;
            from = i + 1;
        }
        black_box(n);
    }));
    // Union into an already-unioned scratch: identical word traffic on
    // every iteration without re-cloning the 1.2 MB map each time.
    let mut scratch = a.clone();
    scenarios.push(measure("bitmap_union_40g", 3, scale(1000), || {
        scratch.union_with(&b);
        black_box(scratch.count_ones());
    }));
    scenarios.push(measure(
        "bitmap_shard_restrict_x4_40g",
        3,
        scale(400),
        || {
            for r in FlatBitmap::shard_bounds(NBITS, 4) {
                black_box(a.restrict_to(r));
            }
        },
    ));

    // --- codec family -------------------------------------------------
    let naive = measure("codec_bitmap_frame_encode_naive_40g", 3, scale(300), || {
        black_box(naive_bitmap_frame(&a));
    });
    let bulk = measure("codec_bitmap_frame_encode_40g", 3, scale(300), || {
        black_box(bulk_bitmap_frame(&a));
    });
    let speedup = naive.p50_ns as f64 / bulk.p50_ns.max(1) as f64;
    eprintln!("codec bitmap-frame encode speedup vs naive: {speedup:.2}x");
    let framed = bulk_bitmap_frame(&a);
    scenarios.push(naive);
    scenarios.push(bulk);
    scenarios.push(measure(
        "codec_bitmap_frame_decode_40g",
        3,
        scale(300),
        || {
            black_box(codec::decode(&framed[4..]).expect("valid frame"));
        },
    ));
    let blocks: Vec<u64> = (0..100_000u64).map(|i| i * 7).collect();
    let disk_msg = MigMessage::DiskBlocks {
        payload_len: blocks.len() as u64 * 4096,
        blocks,
        payload: None,
    };
    let disk_framed = codec::encode_framed(&disk_msg);
    scenarios.push(measure(
        "codec_diskblocks_frame_encode_100k",
        3,
        scale(500),
        || {
            black_box(codec::encode_framed(&disk_msg));
        },
    ));
    scenarios.push(measure(
        "codec_diskblocks_frame_decode_100k",
        3,
        scale(500),
        || {
            black_box(codec::decode(&disk_framed[4..]).expect("valid frame"));
        },
    ));

    // --- end-to-end sim family ----------------------------------------
    let e2e = [
        ("sim_tpm_web_streams1", WorkloadKind::Web, 1),
        ("sim_tpm_web_streams4", WorkloadKind::Web, 4),
        ("sim_tpm_idle_streams1", WorkloadKind::Idle, 1),
        ("sim_tpm_diabolical_streams1", WorkloadKind::Diabolical, 1),
    ];
    for (name, kind, streams) in e2e {
        let iters = if quick { 3 } else { 9 };
        scenarios.push(measure(name, 1, iters, || {
            let out = run_tpm(sim_scenario(streams), kind);
            assert!(out.report.consistent, "{name}: migration inconsistent");
            black_box(out.report.downtime_ms);
        }));
    }

    Baseline {
        schema: "bench-baseline-v1".to_string(),
        nbits: NBITS,
        scenarios,
        codec_bitmap_encode_speedup_vs_naive: (speedup * 100.0).round() / 100.0,
    }
}

fn compare(fresh: &Baseline, base: &Baseline, threshold_pct: f64) -> bool {
    let mut ok = true;
    for f in &fresh.scenarios {
        let Some(b) = base.scenarios.iter().find(|b| b.name == f.name) else {
            eprintln!("{:<44} NEW (not in baseline)", f.name);
            continue;
        };
        let limit = b.p50_ns as f64 * (1.0 + threshold_pct / 100.0);
        let delta = (f.p50_ns as f64 / b.p50_ns.max(1) as f64 - 1.0) * 100.0;
        let verdict = if (f.p50_ns as f64) > limit {
            ok = false;
            "REGRESSION"
        } else {
            "ok"
        };
        eprintln!(
            "{:<44} p50 {:>12} ns vs baseline {:>12} ns  ({delta:+6.1}%)  {verdict}",
            f.name, f.p50_ns, b.p50_ns
        );
    }
    ok
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut threshold = 75.0f64;
    let mut quick = false;
    let mut verify_speedup = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(args.next().expect("--out requires a file")),
            "--compare" => compare_path = Some(args.next().expect("--compare requires a file")),
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold requires a percentage")
            }
            "--quick" => quick = true,
            "--verify-speedup" => verify_speedup = true,
            "--help" | "-h" => {
                println!(
                    "usage: perf_baseline [--out FILE] [--quick] [--verify-speedup]\n\
                     \x20      perf_baseline --compare FILE [--threshold PCT] [--quick]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }

    let fresh = run_all(quick);
    if verify_speedup && fresh.codec_bitmap_encode_speedup_vs_naive < REQUIRED_SPEEDUP {
        eprintln!(
            "FAIL: bulk bitmap-frame encode is only {:.2}x the naive path (need >= {REQUIRED_SPEEDUP}x)",
            fresh.codec_bitmap_encode_speedup_vs_naive
        );
        std::process::exit(1);
    }

    if let Some(path) = compare_path {
        let data = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
        let base: Baseline =
            serde_json::from_str(&data).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
        eprintln!("--- comparing against {path} (threshold {threshold}%) ---");
        if !compare(&fresh, &base, threshold) {
            eprintln!("FAIL: at least one scenario regressed past the threshold");
            std::process::exit(1);
        }
        eprintln!("all scenarios within threshold");
        return;
    }

    let json = serde_json::to_string_pretty(&fresh).expect("baseline serializes");
    match out {
        Some(path) => {
            std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("baseline written -> {path}");
        }
        None => println!("{json}"),
    }
}
