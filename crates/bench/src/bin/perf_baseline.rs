//! Performance baseline harness: wall-clock p50/p99 per scenario,
//! emitted as CI-comparable JSON (`BENCH_baseline.json`).
//!
//! Three scenario families cover the migration data plane end to end:
//!
//! * **bitmap** — word-batched `FlatBitmap` scans, unions and shard
//!   extraction at the paper's 40 GB / 4 KiB scale (9,765,625 bits);
//! * **codec** — wire encode/decode of bitmap and block-batch frames,
//!   including a `*_naive` reference that re-creates the pre-overhaul
//!   per-word copy path so the bulk-path speedup stays measurable;
//! * **sim** — end-to-end three-phase migrations at paper scale, with
//!   one and four transport streams;
//! * **scenario** — the WAN-profile cluster run (two islands over a
//!   capped, lossy uplink with a mid-run degrade), timing the scenario
//!   engine's interpretation overhead end to end.
//!
//! ```text
//! perf_baseline [--out FILE] [--quick] [--verify-speedup]
//! perf_baseline --compare BENCH_baseline.json [--threshold PCT] [--quick]
//! ```
//!
//! `--compare` reruns every scenario and fails (exit 1) when a fresh p50
//! regresses past `baseline_p50 * (1 + PCT/100)`. The default threshold
//! is deliberately loose (75%): wall-clock on shared CI machines is
//! noisy, and the gate is meant to catch algorithmic regressions (a
//! copy-per-word slipping back in), not scheduler jitter.

use std::hint::black_box;

use block_bitmap::{ser, DirtyMap, FlatBitmap};
use des::{SimDuration, SimRng, SimTime};
use migrate::sim::{run_template_clone_fanin, run_template_clone_tpm, run_tpm};
use migrate::MigrationConfig;
use orchestrator::{MigrationRequest, Policy, VmId};
use scenario::{ChaosEvent, HostCaps, Island, LinkSpec, ScenarioSpec, TimedEvent};
use serde::{Deserialize, Serialize};
use simnet::codec;
use simnet::codec::lz;
use simnet::proto::MigMessage;
use telemetry::Recorder;
use vdisk::content::hash_block;
use workloads::WorkloadKind;

/// 40 GB disk at 4 KiB blocks — the paper's testbed geometry.
const NBITS: usize = 9_765_625;

/// Minimum acceptable bulk-vs-naive speedup for the bitmap-frame encode
/// path (`--verify-speedup`).
const REQUIRED_SPEEDUP: f64 = 3.0;

/// `--verify-speedup` gate for the LZ round-trip on run-heavy data: the
/// corpus must shrink by at least this factor, or compressing residual
/// sends is not pulling its weight.
const LZ_REQUIRED_RATIO: f64 = 2.0;

/// `--verify-speedup` budget for the LZ round-trip's wall clock, in
/// multiples of memcpy-ing the same bytes. A healthy single-pass codec
/// lands near 50x (measured; both sides of the ratio come from the same
/// process seconds apart); an accidental quadratic match scan or
/// per-byte push lands in the thousands, which is what this trips on.
const LZ_MEMCPY_BUDGET: f64 = 400.0;

/// Minimum bytes-on-wire reduction `sim_tpm_template_dedup` must deliver
/// against the identical dedup-off run (ISSUE acceptance: >= 60 %).
const REQUIRED_DEDUP_REDUCTION_PCT: f64 = 60.0;

/// Minimum fraction of owed full blocks `multisource_template_fanin`
/// must serve from non-source peers (E14 acceptance: >= 70 %; the model
/// predicts ~92 % at 8 % divergence with four golden-image holders).
const REQUIRED_PEER_FRACTION: f64 = 0.70;

#[derive(Serialize, Deserialize)]
struct ScenarioStat {
    name: String,
    iters: usize,
    p50_ns: u64,
    p99_ns: u64,
}

#[derive(Serialize, Deserialize)]
struct Baseline {
    schema: String,
    nbits: usize,
    scenarios: Vec<ScenarioStat>,
    /// p50(naive bitmap-frame encode) / p50(bulk bitmap-frame encode).
    codec_bitmap_encode_speedup_vs_naive: f64,
    /// p50(LZ round-trip) / p50(memcpy of the same bytes). `Option`
    /// because pre-PR-7 baselines lack the key (missing parses as None).
    lz_roundtrip_vs_memcpy: Option<f64>,
    /// raw bytes / compressed bytes over the run-heavy corpus.
    lz_compression_ratio: Option<f64>,
    /// Bytes-on-wire cut the template-clone dedup run achieved against
    /// the identical dedup-off run, percent. `Option` because pre-PR-7
    /// baselines lack the key.
    template_dedup_wire_reduction_pct: Option<f64>,
    /// Fraction of owed full blocks the fan-in scenario served from
    /// non-source peers, percent. `Option` because pre-PR-9 baselines
    /// lack the key.
    multisource_peer_fraction_pct: Option<f64>,
    /// Virtual-time makespan of the WAN-profile scenario run, seconds.
    /// Deterministic (same seed => same figure), so recorded exactly.
    /// `Option` because pre-PR-10 baselines lack the key.
    wan_scenario_makespan_secs: Option<f64>,
    /// Total bytes the WAN-profile scenario shipped across all its
    /// migrations. `Option` because pre-PR-10 baselines lack the key.
    wan_scenario_total_bytes: Option<u64>,
}

/// Time `f` over `iters` iterations (after `warmup` untimed ones) and
/// report order statistics of the per-iteration wall clock.
fn measure<F: FnMut()>(name: &str, warmup: usize, iters: usize, mut f: F) -> ScenarioStat {
    for _ in 0..warmup {
        f();
    }
    let mut ns: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = std::time::Instant::now();
        f();
        ns.push(t.elapsed().as_nanos() as u64);
    }
    ns.sort_unstable();
    let p50 = ns[iters / 2];
    let p99 = ns[((iters * 99) / 100).min(iters - 1)];
    eprintln!("{name:<44} p50 {p50:>12} ns   p99 {p99:>12} ns   ({iters} iters)");
    ScenarioStat {
        name: name.to_string(),
        iters,
        p50_ns: p50,
        p99_ns: p99,
    }
}

/// Clustered dirty pattern at full map scale, like a real pre-copy
/// iteration's write set (the paper's workloads dirty runs of blocks,
/// not uniform noise).
fn clustered_bitmap(dirty: usize, seed: u64) -> FlatBitmap {
    let mut rng = SimRng::new(seed);
    let mut bm = FlatBitmap::new(NBITS);
    let clusters = (dirty / 512).max(1);
    let per = dirty / clusters;
    for _ in 0..clusters {
        let start = rng.below((NBITS - per) as u64) as usize;
        for i in start..start + per {
            bm.set(i);
        }
    }
    bm
}

/// The pre-overhaul bitmap-frame path, kept as a timing reference: one
/// 8-byte extend per word into unreserved buffers, then body and frame
/// assembled by separate concatenating copies.
fn naive_bitmap_frame(bm: &FlatBitmap) -> Vec<u8> {
    let mut encoded = Vec::new();
    encoded.push(0u8);
    encoded.extend_from_slice(&(bm.len() as u64).to_le_bytes());
    for w in bm.words() {
        encoded.extend_from_slice(&w.to_le_bytes());
    }
    let mut body = Vec::new();
    body.push(4u8);
    body.extend_from_slice(&(encoded.len() as u64).to_le_bytes());
    body.extend_from_slice(&encoded);
    let mut frame = Vec::new();
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

fn bulk_bitmap_frame(bm: &FlatBitmap) -> Vec<u8> {
    let msg = MigMessage::Bitmap {
        encoded: ser::encode_raw(bm).into(),
    };
    codec::encode_framed(&msg)
}

fn sim_scenario(streams: usize) -> MigrationConfig {
    let mut cfg = MigrationConfig::paper_testbed();
    cfg.streams = streams;
    cfg.seed = 2008;
    // The legacy scenarios pin the content-aware and multi-source paths
    // off: the feature-off plane is bit-identical to the classic one, so
    // their numbers stay comparable against baselines recorded before
    // either feature existed.
    cfg.dedup = false;
    cfg.compress = false;
    cfg.multisource = false;
    cfg
}

/// The paper-scale template-clone scenario: a destination provisioned
/// from the same golden image, 8 % diverged since (every 12th block
/// rewritten on the source).
fn template_dedup_outcome(dedup: bool) -> migrate::sim::TpmOutcome {
    let mut cfg = MigrationConfig::paper_testbed();
    cfg.seed = 2008;
    cfg.dedup = dedup;
    cfg.compress = dedup;
    let mut diverged = FlatBitmap::new(cfg.disk_blocks);
    for b in (0..cfg.disk_blocks).step_by(12) {
        diverged.set(b);
    }
    run_template_clone_tpm(cfg, WorkloadKind::Idle, diverged)
}

/// The paper-scale E14 fan-in scenario: an 8 %-diverged template clone
/// boot-storms onto a blank destination while four fleet peers still
/// hold the golden image; the fetch planner routes every still-golden
/// full block to a peer under equal NIC budgets.
fn template_fanin_outcome() -> migrate::sim::TpmOutcome {
    let mut cfg = MigrationConfig::paper_testbed();
    cfg.seed = 2008;
    let mut diverged = FlatBitmap::new(cfg.disk_blocks);
    for b in (0..cfg.disk_blocks).step_by(12) {
        diverged.set(b);
    }
    run_template_clone_fanin(cfg, WorkloadKind::Idle, diverged, 4)
}

/// The PR-10 WAN-profile scenario: two LAN islands joined by a 20 MiB/s,
/// 40 ms, 5‰-drop uplink, one heterogeneous slow host, a full wave of
/// migrations at t=0, and a mid-run degrade/restore on one WAN pair.
/// Mirrors `scenarios/wan.scn` so the checked-in file and the recorded
/// perf figure describe the same run.
fn wan_scenario_spec() -> ScenarioSpec {
    let mib = 1024.0 * 1024.0;
    let mut s = ScenarioSpec::new(4, 8);
    s.disk_blocks = Some(8_192);
    s.seed = Some(2008);
    s.islands.push(Island {
        name: "CORE".to_string(),
        hosts: vec![0, 1],
    });
    s.islands.push(Island {
        name: "EDGE".to_string(),
        hosts: vec![2, 3],
    });
    s.links.push(LinkSpec {
        from: vec![0, 1],
        to: vec![2, 3],
        symmetric: true,
        bandwidth: Some(20.0 * mib),
        latency: Some(SimDuration::from_millis(40)),
        drop_permille: Some(5),
    });
    s.caps.push((
        3,
        HostCaps {
            nic: Some(60.0 * mib),
            disk: Some(90.0 * mib),
        },
    ));
    for vm in 0..s.vms {
        s.requests.push(MigrationRequest {
            vm: VmId(vm),
            dest: None,
            at: SimTime::ZERO,
        });
    }
    s.events.push(TimedEvent {
        at: SimTime::ZERO + SimDuration::from_secs(20),
        event: ChaosEvent::LinkDegrade {
            a: 0,
            b: 2,
            bandwidth: 5.0 * mib,
            drop_permille: Some(50),
        },
    });
    s.events.push(TimedEvent {
        at: SimTime::ZERO + SimDuration::from_secs(60),
        event: ChaosEvent::LinkRestore { a: 0, b: 2 },
    });
    s
}

/// Run-heavy compressible payload: runs of 16–200 repeats of one byte,
/// the shape RLE and LZ back-references both exploit.
fn compressible_payload(bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = SimRng::new(seed);
    let mut out = Vec::with_capacity(bytes);
    while out.len() < bytes {
        let run = 16 + rng.below_usize(185);
        let byte = rng.below(256) as u8;
        let n = run.min(bytes - out.len());
        out.extend(std::iter::repeat_n(byte, n));
    }
    out
}

fn run_all(quick: bool) -> Baseline {
    // `--quick` trades percentile stability for turnaround; the emitted
    // JSON still has the same shape so compare mode works either way.
    let scale = |iters: usize| if quick { (iters / 10).max(5) } else { iters };
    let mut scenarios = Vec::new();

    // --- bitmap family ------------------------------------------------
    let a = clustered_bitmap(360_000, 11);
    let b = clustered_bitmap(360_000, 13);
    scenarios.push(measure("bitmap_count_ones_40g", 3, scale(2000), || {
        black_box(a.count_ones());
    }));
    scenarios.push(measure("bitmap_next_set_scan_40g", 3, scale(400), || {
        let mut n = 0usize;
        let mut from = 0usize;
        while let Some(i) = a.next_set_from(from) {
            n += 1;
            from = i + 1;
        }
        black_box(n);
    }));
    // Union into an already-unioned scratch: identical word traffic on
    // every iteration without re-cloning the 1.2 MB map each time.
    let mut scratch = a.clone();
    scenarios.push(measure("bitmap_union_40g", 3, scale(1000), || {
        scratch.union_with(&b);
        black_box(scratch.count_ones());
    }));
    scenarios.push(measure(
        "bitmap_shard_restrict_x4_40g",
        3,
        scale(400),
        || {
            for r in FlatBitmap::shard_bounds(NBITS, 4) {
                black_box(a.restrict_to(r));
            }
        },
    ));

    // --- codec family -------------------------------------------------
    let naive = measure("codec_bitmap_frame_encode_naive_40g", 3, scale(300), || {
        black_box(naive_bitmap_frame(&a));
    });
    let bulk = measure("codec_bitmap_frame_encode_40g", 3, scale(300), || {
        black_box(bulk_bitmap_frame(&a));
    });
    let speedup = naive.p50_ns as f64 / bulk.p50_ns.max(1) as f64;
    eprintln!("codec bitmap-frame encode speedup vs naive: {speedup:.2}x");
    let framed = bulk_bitmap_frame(&a);
    scenarios.push(naive);
    scenarios.push(bulk);
    scenarios.push(measure(
        "codec_bitmap_frame_decode_40g",
        3,
        scale(300),
        || {
            black_box(codec::decode(&framed[4..]).expect("valid frame"));
        },
    ));
    let blocks: Vec<u64> = (0..100_000u64).map(|i| i * 7).collect();
    let disk_msg = MigMessage::DiskBlocks {
        payload_len: blocks.len() as u64 * 4096,
        blocks,
        payload: None,
    };
    let disk_framed = codec::encode_framed(&disk_msg);
    scenarios.push(measure(
        "codec_diskblocks_frame_encode_100k",
        3,
        scale(500),
        || {
            black_box(codec::encode_framed(&disk_msg));
        },
    ));
    scenarios.push(measure(
        "codec_diskblocks_frame_decode_100k",
        3,
        scale(500),
        || {
            black_box(codec::decode(&disk_framed[4..]).expect("valid frame"));
        },
    ));

    // --- content-aware family -----------------------------------------
    // Fingerprint throughput: 2,560 paper-sized blocks (10 MiB) of
    // word-varied data per iteration.
    let mut rng = SimRng::new(17);
    let mut hash_payload = vec![0u8; 2_560 * 4096];
    for chunk in hash_payload.chunks_exact_mut(8) {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    scenarios.push(measure("hash_block_40g", 3, scale(300), || {
        let mut acc = 0u64;
        for block in hash_payload.chunks_exact(4096) {
            acc ^= hash_block(block);
        }
        black_box(acc);
    }));

    // LZ round-trip over 256 run-heavy blocks (1 MiB), against a memcpy
    // of the same bytes as the budget unit.
    let compressible = compressible_payload(256 * 4096, 19);
    let lz = measure("codec_lz_roundtrip", 3, scale(300), || {
        for block in compressible.chunks_exact(4096) {
            let frame = lz::compress_block(block);
            let out = lz::decompress_block(&frame, 4096).expect("own frame round-trips");
            black_box(out.0.len());
        }
    });
    let mut copy_dst = vec![0u8; compressible.len()];
    let memcpy = measure("codec_lz_memcpy_ref", 3, scale(300), || {
        copy_dst.copy_from_slice(&compressible);
        black_box(copy_dst[copy_dst.len() - 1]);
    });
    let lz_ratio = lz.p50_ns as f64 / memcpy.p50_ns.max(1) as f64;
    let compressed: usize = compressible
        .chunks_exact(4096)
        .map(|b| lz::compress_block(b).len())
        .sum();
    let lz_compression = compressible.len() as f64 / compressed.max(1) as f64;
    eprintln!(
        "LZ round-trip: {lz_compression:.2}x compression, \
         {lz_ratio:.2}x a memcpy of the same bytes"
    );
    scenarios.push(lz);
    scenarios.push(memcpy);

    // Template-clone dedup at paper scale, on vs off; the derived figure
    // is the bytes-on-wire cut dedup delivered.
    let clone_iters = if quick { 3 } else { 9 };
    let mut wire_on = None;
    scenarios.push(measure("sim_tpm_template_dedup", 1, clone_iters, || {
        let out = template_dedup_outcome(true);
        assert!(out.report.consistent, "template-clone dedup inconsistent");
        wire_on = Some(out.report.wire);
        black_box(out.report.downtime_ms);
    }));
    let mut wire_off = None;
    scenarios.push(measure(
        "sim_tpm_template_dedup_off",
        1,
        clone_iters,
        || {
            let out = template_dedup_outcome(false);
            assert!(out.report.consistent, "template-clone classic inconsistent");
            wire_off = Some(out.report.wire);
            black_box(out.report.downtime_ms);
        },
    ));
    let (wire_on, wire_off) = (
        wire_on.expect("dedup run measured"),
        wire_off.expect("classic run measured"),
    );
    let dedup_reduction =
        (1.0 - wire_on.bytes_sent as f64 / wire_off.bytes_sent.max(1) as f64) * 100.0;
    eprintln!(
        "template-clone dedup: {} -> {} wire bytes ({dedup_reduction:.1}% cut, {} refs)",
        wire_off.bytes_sent, wire_on.bytes_sent, wire_on.blocks_deduped
    );
    assert!(
        dedup_reduction >= REQUIRED_DEDUP_REDUCTION_PCT,
        "template-clone dedup cut only {dedup_reduction:.1}% of wire bytes \
         (acceptance floor {REQUIRED_DEDUP_REDUCTION_PCT}%)"
    );

    // Multi-source fan-in at paper scale (E14): the derived figure is the
    // fraction of owed full blocks the plan served from non-source peers.
    let mut fanin = None;
    scenarios.push(measure(
        "multisource_template_fanin",
        1,
        clone_iters,
        || {
            let out = template_fanin_outcome();
            assert!(out.report.consistent, "template fan-in inconsistent");
            fanin = Some(out.report.multisource.clone());
            black_box(out.report.downtime_ms);
        },
    ));
    let fanin = fanin.expect("fan-in run measured");
    let peer_fraction = fanin.peer_fraction();
    eprintln!(
        "template fan-in: {} fulls from {} peers, {} from source \
         ({:.1}% off-source)",
        fanin.planned_peer,
        fanin.peer_bytes.len(),
        fanin.planned_source,
        peer_fraction * 100.0
    );
    assert!(
        peer_fraction >= REQUIRED_PEER_FRACTION,
        "fan-in served only {:.1}% of owed fulls from peers \
         (acceptance floor {:.0}%)",
        peer_fraction * 100.0,
        REQUIRED_PEER_FRACTION * 100.0
    );

    // --- scenario family ----------------------------------------------
    // The WAN-profile cluster run (PR-10): the wall-clock stat gates
    // the scenario engine's own overhead (topology compile + per-step
    // dynamics interpretation), while the recorded makespan and bytes
    // are virtual-time figures that must be identical run to run.
    let wan_iters = if quick { 3 } else { 9 };
    let mut wan_report = None;
    scenarios.push(measure("scenario_wan_profile", 1, wan_iters, || {
        let s = wan_scenario_spec();
        let run = scenario::run_with_policy(&s, Policy::ImAware, Recorder::off())
            .expect("valid WAN bench spec");
        assert!(
            run.report.all_consistent(),
            "WAN scenario migration inconsistent"
        );
        wan_report = Some(run.report);
    }));
    let wan_report = wan_report.expect("WAN scenario measured");
    let wan_makespan = wan_report.makespan_secs();
    let wan_bytes = wan_report.total_bytes();
    eprintln!(
        "WAN scenario: {}/{} migrations, {wan_makespan:.1} s virtual makespan, {} MiB on the wire",
        wan_report.completed(),
        wan_report.records.len(),
        wan_bytes / 1_048_576
    );
    assert_eq!(
        wan_report.completed(),
        wan_report.records.len(),
        "WAN scenario left migrations incomplete"
    );

    // --- end-to-end sim family ----------------------------------------
    let e2e = [
        ("sim_tpm_web_streams1", WorkloadKind::Web, 1),
        ("sim_tpm_web_streams4", WorkloadKind::Web, 4),
        ("sim_tpm_idle_streams1", WorkloadKind::Idle, 1),
        ("sim_tpm_diabolical_streams1", WorkloadKind::Diabolical, 1),
    ];
    for (name, kind, streams) in e2e {
        let iters = if quick { 3 } else { 9 };
        scenarios.push(measure(name, 1, iters, || {
            let out = run_tpm(sim_scenario(streams), kind);
            assert!(out.report.consistent, "{name}: migration inconsistent");
            black_box(out.report.downtime_ms);
        }));
    }

    Baseline {
        schema: "bench-baseline-v1".to_string(),
        nbits: NBITS,
        scenarios,
        codec_bitmap_encode_speedup_vs_naive: (speedup * 100.0).round() / 100.0,
        lz_roundtrip_vs_memcpy: Some((lz_ratio * 100.0).round() / 100.0),
        lz_compression_ratio: Some((lz_compression * 100.0).round() / 100.0),
        template_dedup_wire_reduction_pct: Some((dedup_reduction * 10.0).round() / 10.0),
        multisource_peer_fraction_pct: Some((peer_fraction * 1000.0).round() / 10.0),
        wan_scenario_makespan_secs: Some((wan_makespan * 10.0).round() / 10.0),
        wan_scenario_total_bytes: Some(wan_bytes),
    }
}

fn compare(fresh: &Baseline, base: &Baseline, threshold_pct: f64) -> bool {
    let mut ok = true;
    // A scenario recorded in the baseline but absent from this run means
    // coverage was lost (renamed or deleted), not that perf is fine —
    // fail with the scenario's name instead of silently skipping it.
    for b in &base.scenarios {
        if !fresh.scenarios.iter().any(|f| f.name == b.name) {
            eprintln!(
                "{:<44} MISSING from this run (present in baseline) — \
                 re-record the baseline if the scenario was renamed",
                b.name
            );
            ok = false;
        }
    }
    for f in &fresh.scenarios {
        let Some(b) = base.scenarios.iter().find(|b| b.name == f.name) else {
            // The other direction is expected: this PR's new scenarios
            // have no baseline yet. Report, don't fail.
            eprintln!("{:<44} NEW (not in baseline; skipped)", f.name);
            continue;
        };
        let limit = b.p50_ns as f64 * (1.0 + threshold_pct / 100.0);
        let delta = (f.p50_ns as f64 / b.p50_ns.max(1) as f64 - 1.0) * 100.0;
        let verdict = if (f.p50_ns as f64) > limit {
            ok = false;
            "REGRESSION"
        } else {
            "ok"
        };
        eprintln!(
            "{:<44} p50 {:>12} ns vs baseline {:>12} ns  ({delta:+6.1}%)  {verdict}",
            f.name, f.p50_ns, b.p50_ns
        );
    }
    ok
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut threshold = 75.0f64;
    let mut quick = false;
    let mut verify_speedup = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(args.next().expect("--out requires a file")),
            "--compare" => compare_path = Some(args.next().expect("--compare requires a file")),
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold requires a percentage")
            }
            "--quick" => quick = true,
            "--verify-speedup" => verify_speedup = true,
            "--help" | "-h" => {
                println!(
                    "usage: perf_baseline [--out FILE] [--quick] [--verify-speedup]\n\
                     \x20      perf_baseline --compare FILE [--threshold PCT] [--quick]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }

    let fresh = run_all(quick);
    if verify_speedup && fresh.codec_bitmap_encode_speedup_vs_naive < REQUIRED_SPEEDUP {
        eprintln!(
            "FAIL: bulk bitmap-frame encode is only {:.2}x the naive path (need >= {REQUIRED_SPEEDUP}x)",
            fresh.codec_bitmap_encode_speedup_vs_naive
        );
        std::process::exit(1);
    }
    let lz_compression = fresh.lz_compression_ratio.unwrap_or(0.0);
    if verify_speedup && lz_compression < LZ_REQUIRED_RATIO {
        eprintln!(
            "FAIL: LZ shrinks the run-heavy corpus only {lz_compression:.2}x \
             (need >= {LZ_REQUIRED_RATIO}x)"
        );
        std::process::exit(1);
    }
    let lz_ratio = fresh.lz_roundtrip_vs_memcpy.unwrap_or(0.0);
    if verify_speedup && lz_ratio > LZ_MEMCPY_BUDGET {
        eprintln!(
            "FAIL: LZ round-trip costs {lz_ratio:.2}x a memcpy of the same bytes \
             (budget {LZ_MEMCPY_BUDGET}x)"
        );
        std::process::exit(1);
    }

    if let Some(path) = compare_path {
        let data = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
        let base: Baseline =
            serde_json::from_str(&data).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
        eprintln!("--- comparing against {path} (threshold {threshold}%) ---");
        if !compare(&fresh, &base, threshold) {
            eprintln!("FAIL: at least one scenario regressed past the threshold");
            std::process::exit(1);
        }
        eprintln!("all scenarios within threshold");
        return;
    }

    let json = serde_json::to_string_pretty(&fresh).expect("baseline serializes");
    match out {
        Some(path) => {
            std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("baseline written -> {path}");
        }
        None => println!("{json}"),
    }
}
