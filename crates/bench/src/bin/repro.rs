//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [EXPERIMENT ...] [--scale paper|ci] [--out DIR]
//! repro all --scale paper
//! ```
//!
//! Prints each experiment's human-readable rendering and writes the
//! machine-readable JSON to `DIR/<experiment>.json` (default `results/`).

use bench_suite::{experiments, ExpResult, Scale};

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Paper;
    let mut out_dir = String::from("results");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (expected paper|ci)");
                    std::process::exit(2);
                });
            }
            "--out" => {
                out_dir = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [EXPERIMENT ...] [--scale paper|ci] [--out DIR]\n\
                     experiments: {} | all",
                    experiments::ALL.join(" | ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let mut failed = false;
    for id in &ids {
        let t0 = std::time::Instant::now();
        match experiments::run(id, scale) {
            Some(ExpResult {
                id,
                title,
                human,
                json,
            }) => {
                println!("==============================================================");
                println!("{title}");
                println!("==============================================================");
                println!("{human}");
                println!("[{id} completed in {:.1?}]", t0.elapsed());
                println!();
                let path = format!("{out_dir}/{id}.json");
                std::fs::write(&path, serde_json::to_string_pretty(&json).expect("json"))
                    .expect("write results");
            }
            None => {
                eprintln!(
                    "unknown experiment '{id}'; known: {}",
                    experiments::ALL.join(", ")
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
