//! §II — comparison against the related-work baselines.
//!
//! Quantifies the claims the paper makes qualitatively: freeze-and-copy's
//! catastrophic downtime, on-demand fetching's residual dependency and p²
//! availability, and the delta queue's redundant traffic and destination
//! I/O blocking.

use block_bitmap::{DirtyMap, FlatBitmap};
use des::SimDuration;
use migrate::baselines::{
    dependent_availability, run_collective, run_delta_queue, run_freeze_and_copy, run_on_demand,
};
use migrate::sim::run_tpm;
use serde_json::json;
use workloads::WorkloadKind;

use crate::render::Table;
use crate::{ExpResult, Scale};

/// Run the baseline comparison (web workload — the paper's headline case).
pub fn run(scale: Scale) -> ExpResult {
    let kind = WorkloadKind::Web;
    let cfg = scale.config();
    let horizon = SimDuration::from_secs(600);

    let tpm = run_tpm(cfg.clone(), kind).report;
    let fc = run_freeze_and_copy(cfg.clone(), kind);
    let od = run_on_demand(cfg.clone(), kind, horizon);
    // The Collective: ~5% of the disk has diverged from the base image.
    let mut cow = FlatBitmap::new(cfg.disk_blocks);
    for b in (0..cfg.disk_blocks).step_by(20) {
        cow.set(b);
    }
    let col = run_collective(cfg.clone(), kind, &cow);
    let dq = run_delta_queue(cfg, kind);

    let p = 0.99;
    let avail = |machines| dependent_availability(p, machines) * 100.0;

    let mut t = Table::new(&[
        "scheme",
        "downtime",
        "total (s)",
        "data (MB)",
        "dst I/O blocked (s)",
        "residual blocks",
        "availability @p=0.99",
    ]);
    let rows = [
        ("TPM (this paper)", &tpm, avail(1)),
        ("freeze-and-copy (ISR)", &fc, avail(1)),
        ("collective (CoW diff)", &col, avail(1)),
        ("on-demand fetching", &od, avail(2)),
        ("delta-queue (Bradford)", &dq, avail(1)),
    ];
    for (name, r, a) in &rows {
        t.row(&[
            name.to_string(),
            if r.downtime_ms >= 10_000.0 {
                format!("{:.0} s", r.downtime_ms / 1000.0)
            } else {
                format!("{:.0} ms", r.downtime_ms)
            },
            format!("{:.0}", r.total_time_secs),
            format!("{:.0}", r.migrated_mb()),
            format!("{:.1}", r.io_blocked_secs),
            format!("{}", r.residual_blocks),
            format!("{a:.2}%"),
        ]);
    }

    let human = format!(
        "§II baseline comparison — {} (web workload; on-demand horizon {}s)\n\n{}\n\
         Redundant deltas forwarded by the delta-queue scheme: {} \
         (each is a full block the bitmap scheme never resends).\n\
         On-demand never converges: the source cannot be retired and system \
         availability drops to p².\n",
        scale.label(),
        horizon.as_secs_f64(),
        t.render(),
        dq.redundant_deltas,
    );

    let json = json!({
        "scale": scale.label(),
        "tpm": super::compact(&tpm),
        "freeze_and_copy": super::compact(&fc),
        "collective": super::compact(&col),
        "on_demand": super::compact(&od),
        "delta_queue": super::compact(&dq),
        "availability_p": p,
    });
    ExpResult {
        id: "baselines",
        title: "§II — TPM vs freeze-and-copy, Collective, on-demand, delta-queue",
        human,
        json,
    }
}
