//! §IV-A-2 — layered vs flat bitmap: memory footprint and scan cost.
//!
//! "For a 32GB disk, a 4KB-block bitmap costs only 1MB memory… If the
//! bitmap is large, the overhead [of scanning] is severe. I/O operation
//! often show high locality, so bit 1's are often clustered together, and
//! the overall bitmap remains sparse. A layered bitmap can be used to
//! decrease the overhead."

use std::time::Instant;

use block_bitmap::{DirtyMap, FlatBitmap, LayeredBitmap};
use des::SimRng;
use serde_json::json;

use crate::render::Table;
use crate::{ExpResult, Scale};

struct Case {
    label: &'static str,
    dirty: usize,
    clustered: bool,
}

fn populate(bm: &mut dyn DirtyMap, case: &Case, rng: &mut SimRng) {
    let n = bm.len();
    if case.clustered {
        // Locality: dirty blocks clustered in a handful of extents.
        let clusters = (case.dirty / 512).max(1);
        let per = case.dirty / clusters;
        for _ in 0..clusters {
            let start = rng.below((n - per) as u64) as usize;
            for i in 0..per {
                bm.set(start + i);
            }
        }
    } else {
        for _ in 0..case.dirty {
            bm.set(rng.below(n as u64) as usize);
        }
    }
}

fn scan_time(iter: impl Fn() -> usize, reps: u32) -> f64 {
    let t0 = Instant::now();
    let mut acc = 0usize;
    for _ in 0..reps {
        acc += iter();
    }
    let dt = t0.elapsed().as_secs_f64() / reps as f64;
    assert!(acc < usize::MAX); // keep the optimizer honest
    dt
}

/// Run the bitmap ablation.
pub fn run(scale: Scale) -> ExpResult {
    let nbits = scale.config().disk_blocks;
    let mut rng = SimRng::new(7);
    let cases = [
        Case {
            label: "web end-of-precopy (6.7k clustered)",
            dirty: 6_680,
            clustered: true,
        },
        Case {
            label: "video end-of-precopy (610 clustered)",
            dirty: 610,
            clustered: true,
        },
        Case {
            label: "diabolical (360k clustered)",
            dirty: 360_000,
            clustered: true,
        },
        Case {
            label: "uniform scatter (10k)",
            dirty: 10_000,
            clustered: false,
        },
    ];

    let mut t = Table::new(&[
        "dirty pattern",
        "flat mem (KB)",
        "layered mem (KB)",
        "flat scan (µs)",
        "layered scan (µs)",
        "speedup",
    ]);
    let mut rows = Vec::new();
    for case in &cases {
        let mut flat = FlatBitmap::new(nbits);
        let mut layered = LayeredBitmap::new(nbits);
        let mut r1 = rng.fork(1);
        let mut r2 = r1.clone();
        populate(&mut flat, case, &mut r1);
        populate(&mut layered, case, &mut r2);
        assert_eq!(flat.count_ones(), layered.count_ones());

        let t_flat = scan_time(|| flat.iter_set().count(), 20) * 1e6;
        let t_lay = scan_time(|| layered.iter_set().count(), 20) * 1e6;
        let m_flat = flat.memory_bytes() as f64 / 1024.0;
        let m_lay = layered.memory_bytes() as f64 / 1024.0;
        t.row(&[
            case.label.into(),
            format!("{m_flat:.0}"),
            format!("{m_lay:.0}"),
            format!("{t_flat:.0}"),
            format!("{t_lay:.0}"),
            format!("{:.1}x", t_flat / t_lay.max(1e-9)),
        ]);
        rows.push(json!({
            "case": case.label,
            "dirty": case.dirty,
            "flat_mem_kb": m_flat,
            "layered_mem_kb": m_lay,
            "flat_scan_us": t_flat,
            "layered_scan_us": t_lay,
        }));
    }

    // The paper's memory claim at 32 GiB.
    let blocks_32g = 32usize * 1024 * 1024 * 1024 / 4096;
    let flat_32g_mb = FlatBitmap::new(blocks_32g).memory_bytes() as f64 / 1048576.0;

    let human = format!(
        "§IV-A-2 bitmap ablation — {} ({} blocks)\n\n{}\nPaper's memory figure: a flat \
         4 KiB-block bitmap for a 32 GB disk costs {:.2} MB (paper says \"only 1MB\"); \
         the layered bitmap allocates leaves only for dirty extents.\n",
        scale.label(),
        nbits,
        t.render(),
        flat_32g_mb,
    );

    let json = json!({
        "scale": scale.label(),
        "nbits": nbits,
        "rows": rows,
        "flat_32gib_mb": flat_32g_mb,
    });
    ExpResult {
        id: "bitmap",
        title: "§IV-A-2 — layered vs flat block-bitmap",
        human,
        json,
    }
}
