//! E15 — rolling maintenance under workload cycles: cycle-aware vs.
//! cycle-blind scheduling.
//!
//! Eight hosts are serviced one at a time (cordon → evacuate → dwell →
//! rejoin) while all 32 VMs run Baruchi-style activity cycles: 20 s of
//! full-rate activity, then 40 s thinned to an eighth. A cycle-blind
//! scheduler (IM-aware, the PR-9 best) evacuates the moment a host
//! cordons, so most migrations run against high-phase dirty rates and
//! repeat pre-copy passes; the cycle-aware policy defers each VM into
//! its low-activity window (bounded by the starvation patience), so
//! the same evacuations ship fewer re-dirtied blocks. The gap in total
//! MiB is the experiment's headline; the makespan column shows what
//! the deferral costs in wall-clock terms.

use des::{SimDuration, SimTime};
use orchestrator::Policy;
use scenario::{ChaosEvent, CycleSpec, ScenarioSpec, TimedEvent};
use serde_json::json;
use telemetry::Recorder;

use crate::render::Table;
use crate::{ExpResult, Scale};

/// Fleet geometry per scale: (hosts, vms, disk blocks per VM).
pub fn geometry(scale: Scale) -> (usize, usize, usize) {
    match scale {
        Scale::Paper => (8, 32, 16_384), // 64 MiB per VM disk
        Scale::Ci => (8, 32, 8_192),     // 32 MiB per VM disk
    }
}

/// The E15 rolling-maintenance spec: every VM cycles 20 s high / 40 s
/// low (low phase thinned to 1/8 of its ops at 1/8 demand), and a
/// maintenance wave walks all hosts with a 15 s dwell each.
pub fn spec(scale: Scale, seed: u64) -> ScenarioSpec {
    let (hosts, vms, blocks) = geometry(scale);
    let mut s = ScenarioSpec::new(hosts, vms);
    s.disk_blocks = Some(blocks);
    s.seed = Some(seed);
    // A modest maintenance network: 25 MiB/s per-host migration NICs
    // keep each evacuation in flight long enough that the dirty rate
    // while it runs — high phase vs low phase — shows in the bytes.
    for h in 0..hosts {
        s.caps.push((
            h,
            scenario::HostCaps {
                nic: Some(25.0 * 1024.0 * 1024.0),
                disk: None,
            },
        ));
    }
    for vm in 0..vms {
        s.cycles.push((
            vm,
            CycleSpec {
                high: SimDuration::from_secs(20),
                low: SimDuration::from_secs(40),
                scale: 0.125,
                keep: (1, 8),
            },
        ));
    }
    s.events.push(TimedEvent {
        at: SimTime::ZERO,
        event: ChaosEvent::Maintenance {
            hosts: (0..hosts).collect(),
            dwell: SimDuration::from_secs(15),
        },
    });
    s
}

/// Run the E15 comparison.
pub fn run(scale: Scale) -> ExpResult {
    let (hosts, vms, blocks) = geometry(scale);
    let mut t = Table::new(&[
        "policy",
        "completed",
        "incremental",
        "total (MiB)",
        "makespan (s)",
        "sum downtime (ms)",
    ]);
    let mut rows = Vec::new();
    for policy in [Policy::ImAware, Policy::CycleAware] {
        let s = spec(scale, 2008);
        let run =
            scenario::run_with_policy(&s, policy, Recorder::off()).expect("valid chaos bench spec");
        let report = run.report;
        let label = match policy {
            Policy::CycleAware => "cycle-aware",
            _ => "cycle-blind (im-aware)",
        };
        t.row(&[
            label.into(),
            format!("{}/{}", report.completed(), report.records.len()),
            format!("{}", report.incremental()),
            format!("{:.0}", report.total_bytes() as f64 / 1048576.0),
            format!("{:.1}", report.makespan_secs()),
            format!("{:.1}", report.aggregate_downtime_ms()),
        ]);
        rows.push(json!({
            "policy": label,
            "completed": report.completed(),
            "migrations": report.records.len(),
            "incremental": report.incremental(),
            "total_bytes": report.total_bytes(),
            "makespan_secs": report.makespan_secs(),
            "aggregate_downtime_ms": report.aggregate_downtime_ms(),
            "all_consistent": report.all_consistent(),
        }));
    }

    let human = format!(
        "Rolling maintenance under workload cycles — {hosts} hosts, {vms} VMs x {} MiB \
         disk, one host serviced at a time (15 s dwell)\nEvery VM cycles 20 s \
         high-activity / 40 s low (low phase thinned to 1/8). Cycle-aware \
         scheduling defers each evacuation into its VM's low window, shipping \
         fewer re-dirtied blocks than the cycle-blind IM-aware baseline.\n\n{}",
        blocks * 4096 / 1048576,
        t.render()
    );
    let json = json!({ "scale": scale.label(), "hosts": hosts, "vms": vms, "rows": rows });
    ExpResult {
        id: "chaos",
        title: "E15: Rolling maintenance — cycle-aware vs cycle-blind scheduling",
        human,
        json,
    }
}
