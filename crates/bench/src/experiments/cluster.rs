//! Fleet-scale policy comparison — the paper's §V incremental win under
//! a cluster scheduler.
//!
//! One seed, one two-wave scenario (every VM evacuated, then — after a
//! dwell — migrated back), run once per scheduling policy. A FIFO or
//! SRDF scheduler places return migrations naively, so wave 2 repeats a
//! full disk pre-copy; the IM-aware policy sends each VM back to the
//! host still holding its stale replica, so wave 2 ships only the
//! block-bitmap diff. The gap between the two wave-2 byte counts is the
//! paper's Table II result at fleet scale.

use des::SimDuration;
use orchestrator::{ClusterConfig, Orchestrator, Policy, Scenario};
use serde_json::json;
use telemetry::Recorder;

use crate::render::Table;
use crate::{ExpResult, Scale};

/// Fleet geometry per scale: (hosts, vms, disk blocks per VM).
pub fn geometry(scale: Scale) -> (usize, usize, usize) {
    match scale {
        Scale::Paper => (4, 8, 131_072), // 512 MiB per VM disk
        Scale::Ci => (3, 6, 32_768),     // 128 MiB per VM disk
    }
}

/// Run the two-wave scenario under one policy.
pub fn run_policy(scale: Scale, policy: Policy) -> orchestrator::ClusterReport {
    let (hosts, vms, blocks) = geometry(scale);
    let mut cfg = ClusterConfig::new(hosts, vms);
    cfg.disk_blocks = blocks;
    cfg.seed = 2008;
    let scenario = Scenario::two_wave(&cfg, SimDuration::from_secs(30));
    let mut orch = Orchestrator::new(cfg, policy, Recorder::off()).expect("valid bench config");
    orch.run(&scenario)
}

/// Run the cluster policy comparison.
pub fn run(scale: Scale) -> ExpResult {
    let (hosts, vms, blocks) = geometry(scale);
    let mut t = Table::new(&[
        "policy",
        "completed",
        "incremental",
        "total (MiB)",
        "wave-2 (MiB)",
        "makespan (s)",
        "sum downtime (ms)",
    ]);
    let mut rows = Vec::new();
    for policy in Policy::ALL {
        let report = run_policy(scale, policy);
        let wave2 = report.bytes_from_request(vms);
        t.row(&[
            policy.name().into(),
            format!("{}/{}", report.completed(), report.records.len()),
            format!("{}", report.incremental()),
            format!("{:.0}", report.total_bytes() as f64 / 1048576.0),
            format!("{:.0}", wave2 as f64 / 1048576.0),
            format!("{:.1}", report.makespan_secs()),
            format!("{:.1}", report.aggregate_downtime_ms()),
        ]);
        rows.push(json!({
            "policy": policy.name(),
            "completed": report.completed(),
            "migrations": report.records.len(),
            "incremental": report.incremental(),
            "total_bytes": report.total_bytes(),
            "wave2_bytes": wave2,
            "makespan_secs": report.makespan_secs(),
            "aggregate_downtime_ms": report.aggregate_downtime_ms(),
            "max_concurrent": report.max_concurrent,
            "all_consistent": report.all_consistent(),
        }));
    }

    let human = format!(
        "Fleet-scale policy comparison — {hosts} hosts, {vms} VMs x {} MiB disk, \
         two-wave evacuate-and-return\nWave 2 is the return trip: an IM-aware \
         scheduler lands each VM on the host holding its stale replica, so only \
         the bitmap diff crosses the wire (§V, Table II, at cluster scale).\n\n{}",
        blocks * 4096 / 1048576,
        t.render()
    );
    let json = json!({ "scale": scale.label(), "hosts": hosts, "vms": vms, "rows": rows });
    ExpResult {
        id: "cluster",
        title: "Fleet-scale IM-aware scheduling — policy comparison",
        human,
        json,
    }
}
