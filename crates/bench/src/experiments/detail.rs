//! §VI-C in-text per-iteration detail.
//!
//! The paper narrates: web — 3 iterations, 6680 blocks retransferred, 62
//! left for post-copy (349 ms, 1 pull); video — 2 iterations, 610 blocks
//! retransferred in iteration 2, 5 left (380 ms, all pushed); diabolical
//! — 4 iterations, ~1464 MB retransferred, 947 s pre-copy.

use migrate::sim::run_tpm;
use serde_json::json;
use workloads::WorkloadKind;

use crate::render::Table;
use crate::{ExpResult, Scale};

/// Run the per-iteration detail experiment.
pub fn run(scale: Scale) -> ExpResult {
    let mut t = Table::new(&[
        "workload",
        "disk iters",
        "retransferred",
        "retransferred MB",
        "left at freeze",
        "post-copy (ms)",
        "pushed",
        "pulled",
        "paper",
    ]);
    let paper_notes = [
        "3 iters, 6680 blocks, 62 left, 349ms, 1 pull",
        "2 iters, 610 blocks, 5 left, 380ms, 0 pulls",
        "4 iters, ~1464MB, 947s pre-copy",
    ];
    let mut reports = Vec::new();
    for (i, kind) in WorkloadKind::TABLE1.iter().enumerate() {
        let out = run_tpm(scale.config(), *kind);
        let r = out.report;
        let retrans = r.retransferred_blocks();
        t.row(&[
            kind.label().into(),
            format!("{}", r.disk_iterations.len()),
            format!("{retrans}"),
            format!("{:.0}", retrans as f64 * 4096.0 / 1048576.0),
            format!("{}", r.postcopy.remaining_at_resume),
            format!("{:.0}", r.postcopy.duration_secs * 1000.0),
            format!("{}", r.postcopy.pushed),
            format!("{}", r.postcopy.pulled),
            paper_notes[i].into(),
        ]);
        reports.push((kind.label(), super::compact(&r)));
    }
    let human = format!(
        "§VI-C in-text detail reproduction — {}\n\n{}",
        scale.label(),
        t.render()
    );
    let json = json!({
        "scale": scale.label(),
        "rows": reports.iter().map(|(k, r)| json!({"workload": k, "report": r})).collect::<Vec<_>>(),
    });
    ExpResult {
        id: "detail",
        title: "§VI-C — per-iteration migration detail",
        human,
        json,
    }
}
