//! Figure 5 — SPECweb_Banking throughput while migrating.
//!
//! The paper plots client-observed throughput in 10-second buckets over a
//! ~1700 s window containing the migration, and observes "no noticeable
//! drop". We run the same timeline: warmup, TPM migration, cooldown.

use des::SimDuration;
use migrate::sim::{dwell, TpmEngine};
use serde_json::json;
use workloads::WorkloadKind;

use crate::render::ascii_chart;
use crate::{ExpResult, Scale};

/// Run Figure 5.
pub fn run(scale: Scale) -> ExpResult {
    let cfg = scale.config();
    let warmup = SimDuration::from_secs(if scale == Scale::Paper { 200 } else { 20 });
    let cooldown = SimDuration::from_secs(if scale == Scale::Paper { 700 } else { 30 });

    let mut engine = TpmEngine::new(cfg.clone(), WorkloadKind::Web);
    engine.warmup(warmup);
    let mig_start = engine.now().as_secs_f64();
    let mut out = engine.run();
    let mig_end = out.end_time.as_secs_f64();
    dwell(&mut out, &cfg, cooldown);

    let buckets = out.probe.bucketed(10.0);
    let series: Vec<(f64, f64)> = buckets
        .iter()
        .map(|s| (s.t_secs, s.throughput / (1024.0 * 1024.0)))
        .collect();

    let baseline = out.probe.mean_between(0.0, mig_start) / (1024.0 * 1024.0);
    let during = out.probe.mean_between(mig_start, mig_end) / (1024.0 * 1024.0);
    let drop_pct = (1.0 - during / baseline.max(1e-9)) * 100.0;

    let human = format!(
        "Figure 5 reproduction — {}\nSPECweb_Banking throughput (MB/s), 10 s buckets; \
         migration runs t={:.0}s..{:.0}s\n\n{}\nBaseline {:.1} MB/s, during migration \
         {:.1} MB/s — drop {:.2} % (paper: \"no noticeable drop can be observed\"). \
         Disruption time: {:.1} s.\n",
        scale.label(),
        mig_start,
        mig_end,
        ascii_chart(&series, 80, 12, "MB/s"),
        baseline,
        during,
        drop_pct,
        out.report.disruption_secs,
    );

    let json = json!({
        "scale": scale.label(),
        "migration_window_secs": [mig_start, mig_end],
        "baseline_mbs": baseline,
        "during_mbs": during,
        "drop_pct": drop_pct,
        "disruption_secs": out.report.disruption_secs,
        "series_10s": series,
        "report": super::compact(&out.report),
    });
    ExpResult {
        id: "fig5",
        title: "Figure 5 — SPECweb_Banking throughput during migration",
        human,
        json,
    }
}
