//! Figure 6 — Bonnie++ throughput while migrating.
//!
//! The paper plots per-phase Bonnie++ throughput (putc, write(2), rewrite,
//! getc) over a 3500 s window and shows pronounced degradation while the
//! migration's disk reads compete with the benchmark. We reproduce the
//! timeline and additionally tabulate the per-phase normal vs
//! during-migration rates the figure encodes.

use des::SimDuration;
use migrate::sim::{dwell, TpmEngine};
use serde_json::json;
use simnet::capacity::seek_aware_share;
use workloads::{DiabolicalWorkload, WorkloadKind};

use crate::render::{ascii_chart, Table};
use crate::{ExpResult, Scale};

use workloads::BonniePhase;

/// Run Figure 6.
pub fn run(scale: Scale) -> ExpResult {
    let cfg = scale.config();
    let warmup = SimDuration::from_secs(if scale == Scale::Paper { 250 } else { 20 });
    let cooldown = SimDuration::from_secs(if scale == Scale::Paper { 600 } else { 30 });

    let mut engine = TpmEngine::new(cfg.clone(), WorkloadKind::Diabolical);
    engine.warmup(warmup);
    let mig_start = engine.now().as_secs_f64();
    let mut out = engine.run();
    let mig_end = out.end_time.as_secs_f64();
    dwell(&mut out, &cfg, cooldown);

    let buckets = out.probe.bucketed(10.0);
    let series: Vec<(f64, f64)> = buckets
        .iter()
        .map(|s| (s.t_secs, s.throughput / 1024.0)) // KB/s like the paper
        .collect();

    let baseline = out.probe.mean_between(0.0, mig_start) / 1024.0;
    let during = out.probe.mean_between(mig_start, mig_end) / 1024.0;
    let drop_pct = (1.0 - during / baseline.max(1e-9)) * 100.0;

    // Per-phase normal vs during-migration rates (the figure's series).
    let phases = [
        BonniePhase::Putc,
        BonniePhase::WriteBlock,
        BonniePhase::Rewrite,
        BonniePhase::Getc,
    ];
    let mut t = Table::new(&["phase", "normal (KB/s)", "during migration (KB/s)", "drop"]);
    let mut phase_rows = Vec::new();
    for p in phases {
        let nominal = DiabolicalWorkload::nominal_visible(p);
        let io_factor = if p == BonniePhase::Rewrite { 2.0 } else { 1.0 };
        let (w_share, _) = seek_aware_share(
            cfg.disk_capacity,
            cfg.seek_penalty,
            nominal * io_factor,
            cfg.disk_stream_demand(),
        );
        let during_phase = (w_share / io_factor).min(nominal);
        t.row(&[
            p.label().into(),
            format!("{:.0}", nominal / 1024.0),
            format!("{:.0}", during_phase / 1024.0),
            format!("{:.0}%", (1.0 - during_phase / nominal) * 100.0),
        ]);
        phase_rows.push(json!({
            "phase": p.label(),
            "normal_kbs": nominal / 1024.0,
            "during_kbs": during_phase / 1024.0,
        }));
    }

    let human = format!(
        "Figure 6 reproduction — {}\nBonnie++ client throughput (KB/s), 10 s buckets; \
         migration runs t={:.0}s..{:.0}s\n\n{}\nPhase envelope (the figure's per-phase \
         series):\n{}\nMean throughput: normal {:.0} KB/s, during migration {:.0} KB/s \
         (drop {:.0} %). The paper's figure shows the same qualitative collapse while \
         the migration reads the disk at a high rate.\n",
        scale.label(),
        mig_start,
        mig_end,
        ascii_chart(&series, 80, 12, "KB/s"),
        t.render(),
        baseline,
        during,
        drop_pct,
    );

    let json = json!({
        "scale": scale.label(),
        "migration_window_secs": [mig_start, mig_end],
        "baseline_kbs": baseline,
        "during_kbs": during,
        "drop_pct": drop_pct,
        "series_10s": series,
        "phases": phase_rows,
        "report": super::compact(&out.report),
    });
    ExpResult {
        id: "fig6",
        title: "Figure 6 — Impact on Bonnie++ throughput",
        human,
        json,
    }
}
