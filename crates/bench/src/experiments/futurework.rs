//! §VII — the paper's future-work proposals, implemented and measured.
//!
//! * Guest-assisted sparse migration (skip free blocks),
//! * template-based migration (ship only writes-since-install),
//! * multi-site IM with storage version maintenance.

use block_bitmap::{DirtyMap, FlatBitmap};
use des::SimDuration;
use migrate::sim::{
    reserve_workload_blocks, run_sparse_migration, run_template_migration, run_tpm, MultiSiteVm,
};
use serde_json::json;
use workloads::WorkloadKind;

use crate::render::Table;
use crate::{ExpResult, Scale};

/// Run the future-work experiment.
pub fn run(scale: Scale) -> ExpResult {
    let cfg = scale.config();

    // --- baseline: full TPM ---
    let full = run_tpm(cfg.clone(), WorkloadKind::Web).report;

    // --- sparse: guest declares 60% of the disk free ---
    let mut free = migrate::sim::synthetic_free_map(&cfg, 0.4, 17);
    reserve_workload_blocks(&mut free, WorkloadKind::Web, &cfg, 900);
    let free_count = free.count_ones();
    let sparse = run_sparse_migration(cfg.clone(), WorkloadKind::Web, free).report;

    // --- template: 8% of blocks written since OS installation ---
    let mut since_install = FlatBitmap::new(cfg.disk_blocks);
    for b in (0..cfg.disk_blocks).step_by(12) {
        since_install.set(b);
    }
    let template = run_template_migration(cfg.clone(), WorkloadKind::Web, since_install).report;

    // --- multi-site: office -> home -> office -> lab -> office ---
    let mut vm = MultiSiteVm::new(cfg.clone(), WorkloadKind::Web, &["office", "home", "lab"]);
    let hop1 = vm.migrate_to("home");
    vm.run_for(SimDuration::from_secs(600));
    let hop2 = vm.migrate_to("office");
    vm.run_for(SimDuration::from_secs(600));
    let hop3 = vm.migrate_to("lab"); // never visited: full
    vm.run_for(SimDuration::from_secs(600));
    let hop4 = vm.migrate_to("home"); // visited: incremental

    let mut t = Table::new(&["scheme", "total (s)", "disk data (MB)", "consistent"]);
    for (name, r) in [
        ("full TPM (baseline)", &full),
        ("sparse (guest-assisted)", &sparse),
        ("template (same OS image)", &template),
    ] {
        t.row(&[
            name.into(),
            format!("{:.1}", r.total_time_secs),
            format!("{:.0}", r.ledger.disk_total() as f64 / 1048576.0),
            format!("{}", r.consistent),
        ]);
    }
    let mut hops = Table::new(&["hop", "first pass (blocks)", "total (s)", "data (MB)"]);
    for (name, r) in [
        ("office->home (first visit)", &hop1),
        ("home->office (revisit)", &hop2),
        ("office->lab (first visit)", &hop3),
        ("lab->home (revisit)", &hop4),
    ] {
        hops.row(&[
            name.into(),
            format!("{}", r.disk_iterations[0].units_sent),
            format!("{:.1}", r.total_time_secs),
            format!("{:.0}", r.migrated_mb()),
        ]);
    }

    let human = format!(
        "§VII future-work extensions — {}\n\nGuest declares {} of {} blocks free; \
         template image covers ~92% of blocks.\n\n{}\nMulti-site version maintenance \
         (every revisited site gets an incremental hop):\n{}",
        scale.label(),
        free_count,
        cfg.disk_blocks,
        t.render(),
        hops.render()
    );

    let json = json!({
        "scale": scale.label(),
        "full": super::compact(&full),
        "sparse": super::compact(&sparse),
        "template": super::compact(&template),
        "multisite_hops": [
            super::compact(&hop1), super::compact(&hop2),
            super::compact(&hop3), super::compact(&hop4),
        ],
        "free_blocks": free_count,
    });
    ExpResult {
        id: "futurework",
        title: "§VII — future-work extensions (sparse, template, multi-site IM)",
        human,
        json,
    }
}
