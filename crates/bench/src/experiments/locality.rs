//! §IV-A-2 — storage write locality (rewrite ratios).
//!
//! "When we make a Linux kernel, about 11% of the write operations
//! rewrite those blocks written before. The percentage is 25.2% in
//! SPECweb Banking Server, and 35.6% while Bonnie++ is running."

use des::{SimDuration, SimRng};
use serde_json::json;
use workloads::locality::analyze;
use workloads::WorkloadKind;

use crate::render::Table;
use crate::{ExpResult, Scale};

/// Paper's measured rewrite ratios.
pub const PAPER: [(&str, f64); 3] = [
    ("Kernel build", 0.11),
    ("SPECweb Banking", 0.252),
    ("Bonnie++", 0.356),
];

/// Generate a representative op stream and measure its locality.
///
/// Open-loop workloads run for `secs` *at paper scale*; on smaller disks
/// the window shrinks proportionally so the stream covers the same
/// fraction of its (scaled) working regions. The diabolical workload runs
/// exactly one Bonnie++ cycle — one benchmark execution, as the paper
/// measured.
fn measure(
    kind: WorkloadKind,
    blocks: u64,
    secs: u64,
    seed: u64,
) -> workloads::locality::LocalityReport {
    let mut rng = SimRng::new(seed);
    let mut ops = Vec::new();
    let dt = SimDuration::from_millis(500);
    if kind == WorkloadKind::Diabolical {
        // Concrete type: watch the phase cycle wrap back to Putc.
        let mut w = workloads::DiabolicalWorkload::paper_default(blocks);
        use workloads::{BonniePhase, Workload};
        let mut left_putc = false;
        loop {
            if w.phase() != BonniePhase::Putc {
                left_putc = true;
            } else if left_putc {
                break;
            }
            let demand = w.disk_demand();
            ops.extend(w.ops_for(dt, demand, &mut rng));
        }
    } else {
        let mut w = kind.build(blocks);
        let scaled = (secs as f64 * (blocks as f64 / 9_765_625.0)).max(5.0);
        let mut elapsed = 0.0;
        while elapsed < scaled {
            let demand = w.disk_demand();
            ops.extend(w.ops_for(dt, demand, &mut rng));
            elapsed += dt.as_secs_f64();
        }
    }
    analyze(ops.into_iter().map(|t| t.kind), 4096)
}

/// Run the locality experiment.
pub fn run(scale: Scale) -> ExpResult {
    let blocks = scale.config().disk_blocks as u64;
    let rows = [
        (
            "Kernel build",
            measure(WorkloadKind::KernelBuild, blocks, 300, 1),
            PAPER[0].1,
        ),
        (
            "SPECweb Banking",
            measure(WorkloadKind::Web, blocks, 800, 2),
            PAPER[1].1,
        ),
        (
            "Bonnie++",
            measure(WorkloadKind::Diabolical, blocks, 120, 3),
            PAPER[2].1,
        ),
    ];

    let mut t = Table::new(&[
        "workload",
        "writes",
        "unique blocks",
        "rewrite ratio",
        "paper",
        "delta-queue bytes (MB)",
        "bitmap bytes (MB)",
    ]);
    for (name, rep, paper) in &rows {
        t.row(&[
            name.to_string(),
            format!("{}", rep.writes),
            format!("{}", rep.unique_blocks),
            format!("{:.1}%", rep.rewrite_ratio * 100.0),
            format!("{:.1}%", paper * 100.0),
            format!("{:.1}", rep.delta_bytes as f64 / 1048576.0),
            format!("{:.1}", rep.bitmap_scheme_bytes as f64 / 1048576.0),
        ]);
    }
    let human = format!(
        "§IV-A-2 reproduction — {}\nRewrite ratio = fraction of writes whose block was \
         written before.\nEvery rewrite is a redundant delta for forward-and-replay \
         sync, but a free re-set bit for the block-bitmap.\n\n{}",
        scale.label(),
        t.render()
    );

    let json = json!({
        "scale": scale.label(),
        "rows": rows.iter().map(|(n, rep, paper)| json!({
            "workload": n,
            "measured": rep,
            "paper_ratio": paper,
        })).collect::<Vec<_>>(),
    });
    ExpResult {
        id: "locality",
        title: "§IV-A-2 — storage write locality (rewrite ratios)",
        human,
        json,
    }
}
