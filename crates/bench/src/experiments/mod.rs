//! One module per regenerated paper artifact.
//!
//! Every module exposes `run(scale) -> ExpResult`; shared paper constants
//! are public so integration tests can assert against them.

pub mod baselines;
pub mod bitmap;
pub mod chaos;
pub mod cluster;
pub mod detail;
pub mod fig5;
pub mod fig6;
pub mod futurework;
pub mod locality;
pub mod ordering;
pub mod ratelimit;
pub mod table1;
pub mod table2;
pub mod table3;

use crate::{ExpResult, Scale};

/// All experiment ids, in presentation order.
pub const ALL: [&str; 14] = [
    "table1",
    "table2",
    "table3",
    "fig5",
    "fig6",
    "ratelimit",
    "locality",
    "detail",
    "baselines",
    "bitmap",
    "ordering",
    "futurework",
    "cluster",
    "chaos",
];

/// Run one experiment by id.
pub fn run(id: &str, scale: Scale) -> Option<ExpResult> {
    Some(match id {
        "table1" => table1::run(scale),
        "table2" => table2::run(scale),
        "table3" => table3::run(scale),
        "fig5" => fig5::run(scale),
        "fig6" => fig6::run(scale),
        "ratelimit" => ratelimit::run(scale),
        "locality" => locality::run(scale),
        "detail" => detail::run(scale),
        "baselines" => baselines::run(scale),
        "bitmap" => bitmap::run(scale),
        "ordering" => ordering::run(scale),
        "futurework" => futurework::run(scale),
        "cluster" => cluster::run(scale),
        "chaos" => chaos::run(scale),
        _ => return None,
    })
}

/// Strip the (large) timeline out of a report for compact JSON.
pub(crate) fn compact(report: &migrate::MigrationReport) -> migrate::MigrationReport {
    let mut r = report.clone();
    r.timeline.clear();
    r
}
