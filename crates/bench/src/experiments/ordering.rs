//! §IV-B — disk-before-memory pre-copy ordering ablation.
//!
//! "Disk storage data are pre-copied before memory copying because memory
//! dirty rate is much higher than disk storage and the disk storage
//! pre-copy lasts very long. A large amount of dirty memory can be
//! produced during the disk storage pre-copy. Simultaneous or premature
//! memory pre-copy is useless."
//!
//! We quantify the waste: if memory were pre-copied *first*, every page
//! the guest dirties during the long disk pre-copy would need
//! retransmission. The ablation measures the unique pages dirtied over
//! each workload's actual disk pre-copy duration and compares the memory
//! bytes each ordering moves.

use block_bitmap::DirtyMap;
use des::{SimDuration, SimRng};
use migrate::sim::run_tpm;
use serde_json::json;
use simnet::proto::Category;
use vmstate::GuestMemory;
use workloads::WorkloadKind;

use crate::render::Table;
use crate::{ExpResult, Scale};

/// Run the ordering ablation.
pub fn run(scale: Scale) -> ExpResult {
    let cfg = scale.config();
    let mut t = Table::new(&[
        "workload",
        "disk pre-copy (s)",
        "mem bytes, disk-first (MB)",
        "mem bytes, memory-first (MB)",
        "waste",
    ]);
    let mut rows = Vec::new();
    for kind in WorkloadKind::TABLE1 {
        let out = run_tpm(cfg.clone(), kind);
        let r = &out.report;
        let disk_secs: f64 = r.disk_iterations.iter().map(|i| i.duration_secs).sum();
        let ours = r.ledger.get(Category::Memory) as f64 / 1048576.0;

        // Memory-first: the full image crosses up front, then every page
        // dirtied during the disk pre-copy must cross again (and the
        // final convergence iterations repeat as in our order).
        let mut mem = GuestMemory::new(4096, cfg.mem_pages);
        let wss = kind.build(cfg.disk_blocks as u64).wss_model(cfg.mem_pages);
        let mut rng = SimRng::new(cfg.seed ^ 0x5eed);
        wss.dirty_for(&mut mem, SimDuration::from_secs_f64(disk_secs), &mut rng);
        let redirtied = mem.drain_dirty().count_ones() as f64;
        let memory_first = ours + redirtied * 4096.0 / 1048576.0;

        t.row(&[
            kind.label().into(),
            format!("{disk_secs:.0}"),
            format!("{ours:.0}"),
            format!("{memory_first:.0}"),
            format!("+{:.0}%", (memory_first / ours - 1.0) * 100.0),
        ]);
        rows.push(json!({
            "workload": kind.label(),
            "disk_precopy_secs": disk_secs,
            "mem_mb_disk_first": ours,
            "mem_mb_memory_first": memory_first,
            "redirtied_pages": redirtied,
        }));
    }

    let human = format!(
        "§IV-B ordering ablation — {}\nMemory bytes on the wire under the paper's \
         disk-before-memory order vs a memory-first order (full image up front, then \
         retransmission of every page dirtied during the long disk pre-copy).\n\n{}",
        scale.label(),
        t.render()
    );
    let json = json!({ "scale": scale.label(), "rows": rows });
    ExpResult {
        id: "ordering",
        title: "§IV-B — disk-before-memory pre-copy ordering ablation",
        human,
        json,
    }
}
