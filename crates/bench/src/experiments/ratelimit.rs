//! §VI-C-3 — rate-limited migration trade-off.
//!
//! "If we limit the migration transfer rate, the impact can be reduced
//! about 50%. … But the migration time rose significantly. The pre-copy
//! phase is about 37% longer than the unlimited one."

use migrate::sim::run_tpm;
use migrate::{MigrationConfig, MigrationReport};
use serde_json::json;
use workloads::WorkloadKind;

use crate::render::Table;
use crate::{ExpResult, Scale};

/// The migration bandwidth cap used for the limited run (bytes/s).
pub const LIMIT: f64 = 37.0 * 1024.0 * 1024.0;

fn precopy_secs(r: &MigrationReport) -> f64 {
    r.disk_iterations.iter().map(|i| i.duration_secs).sum()
}

fn mean_during_migration(r: &MigrationReport) -> f64 {
    // Migration starts at t=0 in these runs; average the whole timeline
    // up to the end of disk pre-copy (the contended window).
    let end = precopy_secs(r);
    let vals: Vec<f64> = r
        .timeline
        .iter()
        .filter(|s| s.t_secs < end)
        .map(|s| s.throughput)
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Run the rate-limiting experiment.
pub fn run(scale: Scale) -> ExpResult {
    let unlimited = run_tpm(scale.config(), WorkloadKind::Diabolical).report;
    let limited_cfg = MigrationConfig {
        rate_limit: Some(LIMIT),
        ..scale.config()
    };
    let limited = run_tpm(limited_cfg, WorkloadKind::Diabolical).report;

    // Bonnie++'s standalone mean across phases (its demand is met).
    let baseline = {
        let w = WorkloadKind::Diabolical.build(scale.config().disk_blocks as u64);
        // Average client throughput over the phase cycle ≈ mean of the
        // nominal rates weighted by phase duration; approximate with the
        // observed pre-migration value from a short warmup run instead.
        drop(w);
        let mut engine = migrate::sim::TpmEngine::new(scale.config(), WorkloadKind::Diabolical);
        engine.warmup(des::SimDuration::from_secs(120));
        // Take the mean of the warmup timeline from a throwaway probe run.
        let out = engine.run();
        out.probe.mean_between(0.0, 120.0)
    };

    let t_u = mean_during_migration(&unlimited);
    let t_l = mean_during_migration(&limited);
    let impact_u = baseline - t_u;
    let impact_l = baseline - t_l;
    let impact_reduction = (1.0 - impact_l / impact_u.max(1e-9)) * 100.0;
    let precopy_u = precopy_secs(&unlimited);
    let precopy_l = precopy_secs(&limited);
    let stretch = (precopy_l / precopy_u - 1.0) * 100.0;

    let mut t = Table::new(&["", "unlimited", "rate-limited (37 MB/s)"]);
    t.row(&[
        "pre-copy time (s)".into(),
        format!("{precopy_u:.0}"),
        format!("{precopy_l:.0}"),
    ]);
    t.row(&[
        "Bonnie++ during migration (KB/s)".into(),
        format!("{:.0}", t_u / 1024.0),
        format!("{:.0}", t_l / 1024.0),
    ]);
    t.row(&[
        "throughput impact (KB/s)".into(),
        format!("{:.0}", impact_u / 1024.0),
        format!("{:.0}", impact_l / 1024.0),
    ]);

    let human = format!(
        "§VI-C-3 reproduction — {}\nBonnie++ baseline (no migration): {:.0} KB/s\n\n{}\n\
         Impact reduced by {:.0} % (paper: \"about 50%\"); pre-copy {:.0} % longer \
         (paper: \"about 37% longer\").\n",
        scale.label(),
        baseline / 1024.0,
        t.render(),
        impact_reduction,
        stretch,
    );

    let json = json!({
        "scale": scale.label(),
        "limit_bytes_per_sec": LIMIT,
        "baseline_kbs": baseline / 1024.0,
        "unlimited": { "precopy_secs": precopy_u, "during_kbs": t_u / 1024.0 },
        "limited": { "precopy_secs": precopy_l, "during_kbs": t_l / 1024.0 },
        "impact_reduction_pct": impact_reduction,
        "precopy_stretch_pct": stretch,
    });
    ExpResult {
        id: "ratelimit",
        title: "§VI-C-3 — rate-limited migration: impact vs time trade-off",
        human,
        json,
    }
}
