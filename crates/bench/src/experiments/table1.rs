//! Table I — TPM results for the three workloads.

use migrate::sim::run_tpm;
use serde_json::json;
use workloads::WorkloadKind;

use crate::render::Table;
use crate::{ExpResult, Scale};

/// The paper's Table I values: (total s, downtime ms, data MB).
pub const PAPER: [(&str, f64, f64, f64); 3] = [
    ("Dynamic web server", 796.0, 60.0, 39097.0),
    ("Low latency server", 798.0, 62.0, 39072.0),
    ("Diabolical server", 957.0, 110.0, 40934.0),
];

/// Run Table I.
pub fn run(scale: Scale) -> ExpResult {
    let mut rows = Vec::new();
    for kind in WorkloadKind::TABLE1 {
        let out = run_tpm(scale.config(), kind);
        rows.push((kind, out.report));
    }

    let mut t = Table::new(&[
        "",
        "Dynamic web server",
        "Low latency server",
        "Diabolical server",
    ]);
    let fmt3 = |f: &dyn Fn(&migrate::MigrationReport) -> String| -> Vec<String> {
        rows.iter().map(|(_, r)| f(r)).collect()
    };
    let totals = fmt3(&|r| format!("{:.0}", r.total_time_secs));
    let downs = fmt3(&|r| format!("{:.0}", r.downtime_ms));
    let datas = fmt3(&|r| format!("{:.0}", r.migrated_mb()));
    t.row(&[
        "Total migration time (s)".into(),
        totals[0].clone(),
        totals[1].clone(),
        totals[2].clone(),
    ]);
    t.row(&[
        "Downtime (ms)".into(),
        downs[0].clone(),
        downs[1].clone(),
        downs[2].clone(),
    ]);
    t.row(&[
        "Amount of migrated data (MB)".into(),
        datas[0].clone(),
        datas[1].clone(),
        datas[2].clone(),
    ]);
    let mut human = format!("Table I reproduction — {}\n\n{}", scale.label(), t.render());
    if scale == Scale::Paper {
        human.push_str("\nPaper's Table I for comparison:\n");
        let mut p = Table::new(&["", "web", "video", "diabolical"]);
        p.row(&[
            "Total migration time (s)".into(),
            "796".into(),
            "798".into(),
            "957".into(),
        ]);
        p.row(&[
            "Downtime (ms)".into(),
            "60".into(),
            "62".into(),
            "110".into(),
        ]);
        p.row(&[
            "Amount of migrated data (MB)".into(),
            "39097".into(),
            "39072".into(),
            "40934".into(),
        ]);
        human.push_str(&p.render());
    }
    human.push_str("\nAll runs verified consistent: ");
    human.push_str(&format!("{}\n", rows.iter().all(|(_, r)| r.consistent)));

    let json = json!({
        "scale": scale.label(),
        "rows": rows.iter().map(|(k, r)| json!({
            "workload": k.label(),
            "report": super::compact(r),
        })).collect::<Vec<_>>(),
        "paper": PAPER.iter().map(|(w, t, d, m)| json!({
            "workload": w, "total_s": t, "downtime_ms": d, "data_mb": m
        })).collect::<Vec<_>>(),
    });
    ExpResult {
        id: "table1",
        title: "Table I — TPM results for different workloads",
        human,
        json,
    }
}
