//! Table II — Incremental Migration vs primary TPM.
//!
//! The paper migrates the VM out, lets it run at the destination, then
//! migrates it back with IM. Table II reports the *disk* migration time
//! and the amount of disk data moved (its IM times — 1.0 s / 0.6 s / 17 s
//! — are below the 512 MB memory transfer time, so they can only be the
//! storage phase). We report the same disk-phase figures, plus the
//! whole-system totals for completeness.

use des::SimDuration;
use migrate::sim::{dwell, run_im, run_tpm};
use migrate::MigrationReport;
use serde_json::json;
use workloads::WorkloadKind;

use crate::render::Table;
use crate::{ExpResult, Scale};

/// Maintenance-window length between the two migrations. The paper does
/// not state it; ~25 min reproduces its dirtied-data volumes (52.5 MB web,
/// 5.5 MB video, 911 MB diabolical).
pub const DWELL: SimDuration = SimDuration::from_secs(1500);

/// The paper's Table II: (workload, tpm_s, tpm_mb, im_s, im_mb).
pub const PAPER: [(&str, f64, f64, f64, f64); 3] = [
    ("Dynamic web server", 796.1, 39097.0, 1.0, 52.5),
    ("Low latency server", 798.0, 39072.0, 0.6, 5.5),
    ("Diabolical server", 957.0, 40934.0, 17.0, 911.4),
];

fn disk_phase_secs(r: &MigrationReport) -> f64 {
    r.disk_iterations
        .iter()
        .map(|i| i.duration_secs)
        .sum::<f64>()
        + r.postcopy.duration_secs
}

fn disk_mb(r: &MigrationReport) -> f64 {
    use simnet::proto::Category;
    (r.ledger.disk_total() + r.ledger.get(Category::Bitmap)) as f64 / (1024.0 * 1024.0)
}

/// Run Table II.
pub fn run(scale: Scale) -> ExpResult {
    let mut rows = Vec::new();
    for kind in WorkloadKind::TABLE1 {
        let cfg = scale.config();
        let mut primary = run_tpm(cfg.clone(), kind);
        let primary_report = primary.report.clone();
        dwell(&mut primary, &cfg, DWELL);
        if kind == WorkloadKind::Diabolical {
            // Bonnie++ is a finite benchmark: it completes during the
            // maintenance window, so the guest is quiescent when migrated
            // back (the paper's 17 s / 911 MB IM at full pipeline rate is
            // only possible without a live I/O storm).
            primary.workload = WorkloadKind::Idle.build(cfg.disk_blocks as u64);
            primary.kind = WorkloadKind::Idle;
        }
        let back = run_im(cfg, primary);
        rows.push((kind, primary_report, back.report));
    }

    let mut t = Table::new(&[
        "",
        "TPM disk time (s)",
        "TPM disk data (MB)",
        "IM disk time (s)",
        "IM disk data (MB)",
        "IM consistent",
    ]);
    for (k, tpm, im) in &rows {
        t.row(&[
            k.label().into(),
            format!("{:.1}", disk_phase_secs(tpm)),
            format!("{:.0}", disk_mb(tpm)),
            format!("{:.1}", disk_phase_secs(im) - im.postcopy.duration_secs),
            format!("{:.1}", disk_mb(im)),
            format!("{}", im.consistent),
        ]);
    }
    let mut human = format!(
        "Table II reproduction — {} (dwell between migrations: {}s)\n\n{}",
        scale.label(),
        DWELL.as_secs_f64(),
        t.render()
    );
    human.push_str(
        "\nPaper's Table II: TPM 796.1s/39097MB, 798.0s/39072MB, 957s/40934MB;\n              IM  1.0s/52.5MB,   0.6s/5.5MB,    17s/911.4MB\n",
    );
    human.push_str("(IM rows exclude the fixed post-copy handshake, as the paper's do.)\n");

    let json = json!({
        "scale": scale.label(),
        "dwell_secs": DWELL.as_secs_f64(),
        "paper": PAPER.iter().map(|(w, ts, ms, is_, im)| serde_json::json!({
            "workload": w, "tpm_s": ts, "tpm_mb": ms, "im_s": is_, "im_mb": im,
        })).collect::<Vec<_>>(),
        "rows": rows.iter().map(|(k, tpm, im)| json!({
            "workload": k.label(),
            "tpm": super::compact(tpm),
            "im": super::compact(im),
            "tpm_disk_secs": disk_phase_secs(tpm),
            "tpm_disk_mb": disk_mb(tpm),
            "im_disk_secs": disk_phase_secs(im),
            "im_disk_mb": disk_mb(im),
        })).collect::<Vec<_>>(),
    });
    ExpResult {
        id: "table2",
        title: "Table II — IM results compared with TPM",
        human,
        json,
    }
}
