//! Table III — I/O performance overhead of write tracking.
//!
//! The paper runs Bonnie++ inside a VM with every write intercepted and
//! recorded in the block-bitmap, and finds the throughput cost is under
//! 1 %. We measure the interception cost directly — the wall-clock
//! difference per write between tracking on and off through
//! [`vdisk::TrackedDisk`] (real bytes, real atomic bitmap updates) — and
//! relate it to the per-block device service time implied by the paper's
//! own "Normal" Bonnie++ rates (a 4 KiB block at 96 122 KB/s occupies the
//! disk for ~42 µs; the interception adds tens of *nanoseconds*).

use std::sync::Arc;
use std::time::Instant;

use block_bitmap::AtomicBitmap;
use des::SimRng;
use serde_json::json;
use vdisk::{stamp_bytes, DomainId, IoRequest, TrackedDisk, VirtualDisk};

use crate::render::Table;
use crate::{ExpResult, Scale};

/// Paper's Table III "Normal" row, KB/s: putc, write(2), rewrite.
pub const PAPER_NORMAL: [(&str, f64); 3] = [
    ("putc", 47_740.0),
    ("write(2)", 96_122.0),
    ("rewrite", 26_125.0),
];

/// Paper's Table III "With writes tracked" row, KB/s.
pub const PAPER_TRACKED: [(&str, f64); 3] = [
    ("putc", 47_604.0),
    ("write(2)", 95_569.0),
    ("rewrite", 25_887.0),
];

/// One timed pass of `n` block writes (sequential with periodic rewrites,
/// like Bonnie++'s output phases). Returns seconds elapsed.
fn timed_writes(disk: &TrackedDisk, n: usize, blocks: usize, block_size: usize) -> f64 {
    let mut rng = SimRng::new(42);
    let data = stamp_bytes(0, 1, block_size);
    let t0 = Instant::now();
    for i in 0..n {
        // 2/3 sequential stream, 1/3 rewrite of a recent block.
        let b = if i % 3 == 2 {
            (i.saturating_sub(rng.below(64) as usize)) % blocks
        } else {
            i % blocks
        };
        disk.submit(IoRequest::write(b, DomainId(1)), Some(&data));
    }
    t0.elapsed().as_secs_f64()
}

/// Measure the absolute interception cost per write, in seconds.
///
/// The full byte-write path is dominated by the 4 KiB copy, whose
/// run-to-run jitter swamps the interception delta, so we time the
/// interception path itself — [`TrackedDisk::record_write`] with tracking
/// enabled (tracker dispatch + atomic fetch-or) versus disabled (early
/// return) — which is exactly the code the paper's modified `blkback`
/// adds to every write. A full-path ratio is still computed as a sanity
/// bound by the caller via `timed_writes`.
pub fn measure_interception_cost(reps: usize) -> f64 {
    let blocks = 16_384usize;
    let n = 2_000_000u64;
    let disk = TrackedDisk::new(Arc::new(VirtualDisk::dense(4096, blocks)));
    let bm = Arc::new(AtomicBitmap::new(blocks));
    disk.attach_tracker(Arc::clone(&bm), Some(DomainId(1)));

    let timed = |enabled: bool| -> f64 {
        if enabled {
            disk.enable_tracking();
        } else {
            disk.disable_tracking();
        }
        let t0 = Instant::now();
        for i in 0..n {
            disk.record_write(i as usize % blocks, DomainId(1));
        }
        t0.elapsed().as_secs_f64() / n as f64
    };
    timed(true); // warm-up

    let mut deltas = Vec::with_capacity(reps);
    for _ in 0..reps {
        let off = timed(false);
        let on = timed(true);
        deltas.push((on - off).max(0.0));
    }
    deltas.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    deltas[deltas.len() / 2]
}

/// Run Table III.
pub fn run(scale: Scale) -> ExpResult {
    let cost = measure_interception_cost(7);
    let cost_ns = cost * 1e9;

    // Full-path sanity figure: byte-real tracked writes through the
    // in-memory prototype (no mechanical device in the path, so this is
    // an upper bound on the rate at which interception could ever be
    // exercised).
    let full_path_kbs = {
        let disk = TrackedDisk::new(Arc::new(VirtualDisk::dense(4096, 16_384)));
        let bm = Arc::new(AtomicBitmap::new(16_384));
        disk.attach_tracker(Arc::clone(&bm), Some(DomainId(1)));
        disk.enable_tracking();
        timed_writes(&disk, 20_000, 16_384, 4096); // warm-up
        let secs = timed_writes(&disk, 100_000, 16_384, 4096);
        100_000.0 * 4096.0 / secs / 1024.0
    };

    let mut t = Table::new(&["", "putc", "write(2)", "rewrite"]);
    let mut rows = Vec::new();
    let mut worst_pct: f64 = 0.0;
    let mut normal_cells = vec!["Normal (KB/s)".to_string()];
    let mut tracked_cells = vec!["With writes tracked (KB/s)".to_string()];
    let mut pct_cells = vec!["Overhead".to_string()];
    for &(name, normal_kbs) in &PAPER_NORMAL {
        // Device service time per 4 KiB block at the phase's normal rate.
        let service = 4096.0 / (normal_kbs * 1024.0);
        let pct = cost / service * 100.0;
        worst_pct = worst_pct.max(pct);
        let tracked = normal_kbs / (1.0 + cost / service);
        normal_cells.push(format!("{normal_kbs:.0}"));
        tracked_cells.push(format!("{tracked:.0}"));
        pct_cells.push(format!("{pct:.3}%"));
        rows.push(json!({
            "phase": name,
            "normal_kbs": normal_kbs,
            "tracked_kbs": tracked,
            "overhead_pct": pct,
        }));
    }
    t.row(&normal_cells);
    t.row(&tracked_cells);
    t.row(&pct_cells);
    t.row(&[
        "Paper: with writes tracked".into(),
        "47604".into(),
        "95569".into(),
        "25887".into(),
    ]);

    let human = format!(
        "Table III reproduction — {}\n\nMeasured interception cost: {:.0} ns per \
         tracked 4 KiB write (median of 7 reps × 2M interceptions; tracker \
         dispatch plus atomic bitmap fetch-or).\nAgainst the per-block device service time implied by \
         the paper's Normal rates:\n\n{}\nPaper's claim: \"the performance overhead is \
         less than 1 percent\" — {} (worst phase {:.3} %).\n",
        scale.label(),
        cost_ns,
        t.render(),
        if worst_pct < 1.0 { "HOLDS" } else { "VIOLATED" },
        worst_pct,
    );
    let human = format!(
        "{human}(In-memory prototype full-path tracked write throughput: \
         {:.0} KB/s — the interception is nowhere near the bottleneck even \
         without a mechanical disk in the path.)\n",
        full_path_kbs
    );

    let json = json!({
        "scale": scale.label(),
        "interception_cost_ns": cost_ns,
        "full_path_tracked_kbs": full_path_kbs,
        "rows": rows,
        "paper_tracked_kbs": PAPER_TRACKED.iter().map(|&(n, v)| json!({"phase": n, "kbs": v})).collect::<Vec<_>>(),
        "holds_under_1pct": worst_pct < 1.0,
        "worst_overhead_pct": worst_pct,
    });
    ExpResult {
        id: "table3",
        title: "Table III — I/O performance overhead of block-bitmap write tracking",
        human,
        json,
    }
}
