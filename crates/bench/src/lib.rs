//! Benchmark harness regenerating every table and figure of the paper.
//!
//! The `repro` binary drives one experiment per paper artifact:
//!
//! | id | paper artifact |
//! |----|----------------|
//! | `table1`    | Table I — TPM results for the three workloads |
//! | `table2`    | Table II — IM vs primary TPM |
//! | `table3`    | Table III — write-tracking I/O overhead |
//! | `fig5`      | Figure 5 — SPECweb throughput during migration |
//! | `fig6`      | Figure 6 — Bonnie++ throughput during migration |
//! | `ratelimit` | §VI-C-3 — rate-limited migration trade-off |
//! | `locality`  | §IV-A-2 — write-locality (rewrite ratio) measurement |
//! | `detail`    | §VI-C in-text per-iteration statistics |
//! | `baselines` | §II — freeze-and-copy / Collective / on-demand / delta-queue |
//! | `bitmap`    | §IV-A-2 — layered vs flat bitmap memory & scan cost |
//! | `ordering`  | §IV-B — disk-before-memory pre-copy ordering ablation |
//! | `futurework`| §VII — sparse / template / multi-site IM extensions |
//! | `cluster`   | fleet-scale IM-aware scheduling — policy comparison |
//!
//! Each experiment prints a human-readable table with the paper's values
//! alongside and writes machine-readable JSON under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod render;
pub mod scale;

pub use scale::Scale;

/// One experiment's output.
pub struct ExpResult {
    /// Experiment identifier (also the JSON file stem).
    pub id: &'static str,
    /// Paper artifact being regenerated.
    pub title: &'static str,
    /// Human-readable rendering.
    pub human: String,
    /// Machine-readable payload.
    pub json: serde_json::Value,
}
