//! Plain-text rendering: aligned tables and ASCII timeline charts.

/// A simple aligned-column table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - c.chars().count();
                // Right-align numbers-ish cells, left-align the first col.
                if i == 0 {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Render a `(t, value)` series as a fixed-height ASCII chart, the
/// terminal stand-in for the paper's throughput figures.
pub fn ascii_chart(series: &[(f64, f64)], width: usize, height: usize, y_label: &str) -> String {
    if series.is_empty() {
        return String::from("(empty series)\n");
    }
    let t0 = series.first().expect("non-empty").0;
    let t1 = series.last().expect("non-empty").0.max(t0 + 1e-9);
    let vmax = series
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    // Bucket by x pixel, averaging.
    let mut acc = vec![(0.0f64, 0usize); width];
    for &(t, v) in series {
        let x = (((t - t0) / (t1 - t0)) * (width as f64 - 1.0)).round() as usize;
        let x = x.min(width - 1);
        acc[x].0 += v;
        acc[x].1 += 1;
    }
    let cols: Vec<Option<f64>> = acc
        .iter()
        .map(|&(s, n)| if n > 0 { Some(s / n as f64) } else { None })
        .collect();
    let mut grid = vec![vec![' '; width]; height];
    let mut last = None;
    for (x, col) in cols.iter().enumerate() {
        let v = col.or(last);
        last = v;
        if let Some(v) = v {
            let y = ((v / vmax) * (height as f64 - 1.0)).round() as usize;
            let y = y.min(height - 1);
            grid[height - 1 - y][x] = '*';
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y_label}  (max = {vmax:.1})\n"));
    for row in grid {
        out.push('|');
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        " t = {:.0}s {:>width$}\n",
        t0,
        format!("{t1:.0}s"),
        width = width.saturating_sub(8)
    ));
    out
}

/// Format bytes as MB with the paper's convention (MiB).
pub fn mb(bytes: u64) -> String {
    format!("{:.0}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["metric", "web", "video"]);
        t.row(&["total (s)".into(), "796".into(), "798".into()]);
        t.row(&["downtime (ms)".into(), "60".into(), "62".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("metric"));
        assert!(lines[2].contains("796"));
        // All lines equal width or less.
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn chart_renders_with_peak() {
        let series: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, (i % 10) as f64)).collect();
        let c = ascii_chart(&series, 40, 8, "throughput");
        assert!(c.contains("max = 9.0"));
        assert!(c.lines().count() >= 10);
        assert!(c.contains('*'));
    }

    #[test]
    fn chart_handles_empty() {
        assert_eq!(ascii_chart(&[], 10, 4, "x"), "(empty series)\n");
    }

    #[test]
    fn mb_formats() {
        assert_eq!(mb(40 * 1024 * 1024), "40");
    }
}
