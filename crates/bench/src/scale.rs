//! Experiment scale selection.

use migrate::MigrationConfig;

/// How big to run the simulated experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full testbed: 40 GB disk, 512 MB guest. Runs in well
    /// under a second of wall time per migration.
    Paper,
    /// Reduced scale for CI smoke runs (1 GiB disk, 64 MiB guest).
    Ci,
}

impl Scale {
    /// Parse from a CLI flag value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "paper" => Some(Scale::Paper),
            "ci" | "small" => Some(Scale::Ci),
            _ => None,
        }
    }

    /// The migration configuration at this scale.
    pub fn config(self) -> MigrationConfig {
        match self {
            Scale::Paper => MigrationConfig::paper_testbed(),
            Scale::Ci => MigrationConfig {
                disk_blocks: 262_144, // 1 GiB
                mem_pages: 16_384,    // 64 MiB
                ..MigrationConfig::paper_testbed()
            },
        }
    }

    /// Label used in report headers.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper scale (40 GB disk, 512 MB guest)",
            Scale::Ci => "CI scale (1 GiB disk, 64 MiB guest)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_config() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("ci"), Some(Scale::Ci));
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::Paper.config().disk_blocks, 9_765_625);
        assert_eq!(Scale::Ci.config().disk_blocks, 262_144);
        Scale::Ci.config().validate();
    }
}
