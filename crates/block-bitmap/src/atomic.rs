//! Lock-free bitmap for the concurrent write-interception path.
//!
//! In the paper the modified `blkback` driver records every guest write into
//! the block-bitmap while the migration process (`blkd`) periodically copies
//! and resets it at iteration boundaries. Guest I/O and the migration loop
//! run concurrently, so the interception-side bitmap must be thread safe
//! without serializing guest writes — exactly what per-word atomic
//! fetch-or/swap provides.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{tail_mask, words_for, DirtyMap, FlatBitmap, BITS_PER_WORD};

/// A concurrently-writable bitmap backed by `AtomicU64` words.
///
/// Writers call [`AtomicBitmap::set`] from any number of threads; the
/// migration loop calls [`AtomicBitmap::snapshot_and_clear`] to atomically
/// drain the accumulated dirty set for one pre-copy iteration. A write that
/// races with the drain lands either in the drained snapshot or in the next
/// iteration's map — never lost, which is the correctness property the
/// migration algorithm needs (a block may be transferred twice, but a dirty
/// block is never skipped).
pub struct AtomicBitmap {
    nbits: usize,
    words: Vec<AtomicU64>,
}

impl std::fmt::Debug for AtomicBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicBitmap")
            .field("nbits", &self.nbits)
            .field("count_ones", &self.count_ones())
            .finish()
    }
}

impl AtomicBitmap {
    /// Create an all-clean atomic bitmap over `nbits` blocks.
    pub fn new(nbits: usize) -> Self {
        let mut words = Vec::with_capacity(words_for(nbits));
        words.resize_with(words_for(nbits), || AtomicU64::new(0));
        Self { nbits, words }
    }

    /// Number of tracked blocks.
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// `true` when the map tracks zero blocks.
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Mark block `idx` dirty. Returns the previous value of the bit.
    ///
    /// # Panics
    /// Panics if `idx >= self.len()`.
    pub fn set(&self, idx: usize) -> bool {
        self.check(idx);
        let mask = 1u64 << (idx % BITS_PER_WORD);
        let prev = self.words[idx / BITS_PER_WORD].fetch_or(mask, Ordering::AcqRel);
        prev & mask != 0
    }

    /// Mark block `idx` clean. Returns the previous value of the bit.
    ///
    /// # Panics
    /// Panics if `idx >= self.len()`.
    pub fn clear(&self, idx: usize) -> bool {
        self.check(idx);
        let mask = 1u64 << (idx % BITS_PER_WORD);
        let prev = self.words[idx / BITS_PER_WORD].fetch_and(!mask, Ordering::AcqRel);
        prev & mask != 0
    }

    /// Read the bit for block `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= self.len()`.
    pub fn get(&self, idx: usize) -> bool {
        self.check(idx);
        let mask = 1u64 << (idx % BITS_PER_WORD);
        self.words[idx / BITS_PER_WORD].load(Ordering::Acquire) & mask != 0
    }

    /// Number of dirty blocks at this instant (racy under concurrent
    /// writers, exact when quiescent).
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }

    /// Atomically drain the bitmap: every word is swapped with zero and the
    /// pre-swap contents are returned as a [`FlatBitmap`] snapshot.
    ///
    /// This is the paper's iteration boundary: "At the beginning of each
    /// iteration, after the block-bitmap is copied to blkd, it is reset for
    /// recording dirty blocks in the next iteration."
    pub fn snapshot_and_clear(&self) -> FlatBitmap {
        let words: Vec<u64> = self
            .words
            .iter()
            .map(|w| w.swap(0, Ordering::AcqRel))
            .collect();
        FlatBitmap::from_words(self.nbits, words)
    }

    /// Non-destructive copy of the current contents.
    pub fn snapshot(&self) -> FlatBitmap {
        let words: Vec<u64> = self
            .words
            .iter()
            .map(|w| w.load(Ordering::Acquire))
            .collect();
        FlatBitmap::from_words(self.nbits, words)
    }

    /// Overwrite the contents from a dense bitmap (used when seeding the
    /// destination's transferred-bitmap at the start of post-copy).
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn load_from(&self, src: &FlatBitmap) {
        assert_eq!(self.nbits, src.len(), "bitmap sizes must match");
        for (w, s) in self.words.iter().zip(src.words()) {
            w.store(*s, Ordering::Release);
        }
    }

    /// Clear every bit.
    pub fn clear_all(&self) {
        for w in &self.words {
            w.store(0, Ordering::Release);
        }
    }

    /// Set every bit.
    pub fn set_all(&self) {
        let n = self.words.len();
        for (i, w) in self.words.iter().enumerate() {
            let val = if i + 1 == n {
                tail_mask(self.nbits)
            } else {
                u64::MAX
            };
            w.store(val, Ordering::Release);
        }
    }

    #[inline]
    fn check(&self, idx: usize) {
        assert!(
            idx < self.nbits,
            "bit index {idx} out of range for bitmap of {} bits",
            self.nbits
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_get_clear() {
        let bm = AtomicBitmap::new(130);
        assert!(!bm.set(129));
        assert!(bm.set(129));
        assert!(bm.get(129));
        assert!(!bm.get(0));
        assert!(bm.clear(129));
        assert!(!bm.clear(129));
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn snapshot_and_clear_drains() {
        let bm = AtomicBitmap::new(200);
        for i in [0usize, 63, 64, 199] {
            bm.set(i);
        }
        let snap = bm.snapshot_and_clear();
        assert_eq!(snap.to_indices(), vec![0, 63, 64, 199]);
        assert_eq!(bm.count_ones(), 0);
        // Second drain is empty.
        assert!(bm.snapshot_and_clear().none_set());
    }

    #[test]
    fn snapshot_is_nondestructive() {
        let bm = AtomicBitmap::new(100);
        bm.set(42);
        let snap = bm.snapshot();
        assert!(snap.get(42));
        assert!(bm.get(42));
    }

    #[test]
    fn load_from_and_set_all() {
        let bm = AtomicBitmap::new(70);
        bm.set_all();
        assert_eq!(bm.count_ones(), 70);
        let mut flat = FlatBitmap::new(70);
        flat.set(7);
        bm.load_from(&flat);
        assert_eq!(bm.snapshot().to_indices(), vec![7]);
        bm.clear_all();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        // 8 threads each set a disjoint slice; a drainer loops concurrently.
        // Union of all drained snapshots must equal the full set.
        let bm = Arc::new(AtomicBitmap::new(8 * 4096));
        let mut joins = Vec::new();
        for t in 0..8 {
            let bm = Arc::clone(&bm);
            joins.push(std::thread::spawn(move || {
                for i in 0..4096 {
                    bm.set(t * 4096 + i);
                }
            }));
        }
        let drainer = {
            let bm = Arc::clone(&bm);
            std::thread::spawn(move || {
                let mut acc = FlatBitmap::new(8 * 4096);
                for _ in 0..100 {
                    acc.union_with(&bm.snapshot_and_clear());
                }
                acc
            })
        };
        for j in joins {
            j.join().unwrap();
        }
        let mut acc = drainer.join().unwrap();
        acc.union_with(&bm.snapshot_and_clear());
        assert_eq!(acc.count_ones(), 8 * 4096);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        AtomicBitmap::new(8).set(8);
    }
}
