//! Dense word-packed bitmap.

use serde::{Deserialize, Serialize};

use crate::{tail_mask, words_for, DirtyMap, BITS_PER_WORD};

/// A dense bitmap with one bit per block, packed into `u64` words.
///
/// This is the canonical representation used on the wire and by the
/// migration engine's per-iteration snapshots. Iteration over set bits uses
/// word-level trailing-zero scans, so scanning a mostly-clean map touches
/// one word per 64 blocks.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatBitmap {
    nbits: usize,
    words: Vec<u64>,
}

impl std::fmt::Debug for FlatBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatBitmap")
            .field("nbits", &self.nbits)
            .field("count_ones", &self.count_ones())
            .finish()
    }
}

impl FlatBitmap {
    /// Create an all-clean bitmap tracking `nbits` blocks.
    pub fn new(nbits: usize) -> Self {
        Self {
            nbits,
            words: vec![0; words_for(nbits)],
        }
    }

    /// Create an all-dirty bitmap tracking `nbits` blocks.
    pub fn all_set(nbits: usize) -> Self {
        let mut bm = Self {
            nbits,
            words: vec![u64::MAX; words_for(nbits)],
        };
        if let Some(last) = bm.words.last_mut() {
            *last &= tail_mask(nbits);
        }
        bm
    }

    /// Construct from raw words. Bits beyond `nbits` in the last word are
    /// masked off.
    ///
    /// # Panics
    /// Panics when `words.len() != words_for(nbits)`.
    pub fn from_words(nbits: usize, mut words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            words_for(nbits),
            "word count must match bit count"
        );
        if let Some(last) = words.last_mut() {
            *last &= tail_mask(nbits);
        }
        Self { nbits, words }
    }

    /// The backing words, little-bit-endian within each word.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterate the indices of set bits in ascending order.
    pub fn iter_set(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            nbits: self.nbits,
        }
    }

    /// Bitwise OR `other` into `self`.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn union_with(&mut self, other: &FlatBitmap) {
        assert_eq!(self.nbits, other.nbits, "bitmap sizes must match");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Remove from `self` every bit set in `other` (`self &= !other`).
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn subtract(&mut self, other: &FlatBitmap) {
        assert_eq!(self.nbits, other.nbits, "bitmap sizes must match");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Bitwise AND with `other`.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn intersect_with(&mut self, other: &FlatBitmap) {
        assert_eq!(self.nbits, other.nbits, "bitmap sizes must match");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Index of the first set bit at or after `from`, if any.
    pub fn next_set_from(&self, from: usize) -> Option<usize> {
        if from >= self.nbits {
            return None;
        }
        let mut wi = from / BITS_PER_WORD;
        let mut cur = self.words[wi] & (u64::MAX << (from % BITS_PER_WORD));
        loop {
            if cur != 0 {
                let idx = wi * BITS_PER_WORD + cur.trailing_zeros() as usize;
                return (idx < self.nbits).then_some(idx);
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            cur = self.words[wi];
        }
    }

    /// `true` when no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    #[inline]
    fn check(&self, idx: usize) {
        assert!(
            idx < self.nbits,
            "bit index {idx} out of range for bitmap of {} bits",
            self.nbits
        );
    }
}

impl DirtyMap for FlatBitmap {
    fn len(&self) -> usize {
        self.nbits
    }

    fn set(&mut self, idx: usize) -> bool {
        self.check(idx);
        let (w, b) = (idx / BITS_PER_WORD, idx % BITS_PER_WORD);
        let prev = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        prev
    }

    fn clear(&mut self, idx: usize) -> bool {
        self.check(idx);
        let (w, b) = (idx / BITS_PER_WORD, idx % BITS_PER_WORD);
        let prev = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        prev
    }

    fn get(&self, idx: usize) -> bool {
        self.check(idx);
        self.words[idx / BITS_PER_WORD] & (1 << (idx % BITS_PER_WORD)) != 0
    }

    fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn clear_all(&mut self) {
        self.words.fill(0);
    }

    fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask(self.nbits);
        }
    }

    fn to_indices(&self) -> Vec<usize> {
        self.iter_set().collect()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.capacity() * 8
    }
}

/// Iterator over set-bit indices of a [`FlatBitmap`].
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    nbits: usize,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                let idx = self.word_idx * BITS_PER_WORD + bit;
                return (idx < self.nbits).then_some(idx);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clean() {
        let bm = FlatBitmap::new(100);
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 0);
        assert!(bm.none_set());
        assert!((0..100).all(|i| !bm.get(i)));
    }

    #[test]
    fn all_set_masks_tail() {
        let bm = FlatBitmap::all_set(70);
        assert_eq!(bm.count_ones(), 70);
        assert!(bm.get(69));
        // Last word must not have ghost bits.
        assert_eq!(bm.words()[1], (1u64 << 6) - 1);
    }

    #[test]
    fn set_clear_roundtrip() {
        let mut bm = FlatBitmap::new(130);
        assert!(!bm.set(0));
        assert!(bm.set(0));
        assert!(!bm.set(64));
        assert!(!bm.set(129));
        assert_eq!(bm.count_ones(), 3);
        assert!(bm.clear(64));
        assert!(!bm.clear(64));
        assert_eq!(bm.count_ones(), 2);
        assert_eq!(bm.to_indices(), vec![0, 129]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        FlatBitmap::new(10).set(10);
    }

    #[test]
    fn iter_set_matches_gets() {
        let mut bm = FlatBitmap::new(300);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 255, 299] {
            bm.set(i);
        }
        let got: Vec<_> = bm.iter_set().collect();
        assert_eq!(got, vec![0, 1, 63, 64, 65, 127, 128, 255, 299]);
    }

    #[test]
    fn iter_set_empty_and_full() {
        assert_eq!(FlatBitmap::new(0).iter_set().count(), 0);
        assert_eq!(FlatBitmap::new(67).iter_set().count(), 0);
        assert_eq!(FlatBitmap::all_set(67).iter_set().count(), 67);
    }

    #[test]
    fn union_subtract_intersect() {
        let mut a = FlatBitmap::new(128);
        let mut b = FlatBitmap::new(128);
        for i in [1usize, 5, 70] {
            a.set(i);
        }
        for i in [5usize, 70, 100] {
            b.set(i);
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_indices(), vec![1, 5, 70, 100]);

        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.to_indices(), vec![1]);

        a.intersect_with(&b);
        assert_eq!(a.to_indices(), vec![5, 70]);
    }

    #[test]
    fn next_set_from_walks_forward() {
        let mut bm = FlatBitmap::new(200);
        bm.set(3);
        bm.set(64);
        bm.set(199);
        assert_eq!(bm.next_set_from(0), Some(3));
        assert_eq!(bm.next_set_from(3), Some(3));
        assert_eq!(bm.next_set_from(4), Some(64));
        assert_eq!(bm.next_set_from(65), Some(199));
        assert_eq!(bm.next_set_from(200), None);
        assert_eq!(FlatBitmap::new(0).next_set_from(0), None);
    }

    #[test]
    fn set_all_then_clear_all() {
        let mut bm = FlatBitmap::new(129);
        bm.set_all();
        assert_eq!(bm.count_ones(), 129);
        bm.clear_all();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn from_words_masks_tail() {
        let bm = FlatBitmap::from_words(65, vec![u64::MAX, u64::MAX]);
        assert_eq!(bm.count_ones(), 65);
    }

    #[test]
    fn memory_bytes_scales_with_size() {
        let small = FlatBitmap::new(64);
        let big = FlatBitmap::new(1 << 20);
        assert!(big.memory_bytes() > small.memory_bytes());
        // 1 Mi bits = 128 KiB of words (plus struct header).
        assert!(big.memory_bytes() >= (1 << 20) / 8);
    }
}
