//! Dense word-packed bitmap.

use std::ops::Range;

use serde::{Deserialize, Serialize};

use crate::{tail_mask, words_for, DirtyMap, BITS_PER_WORD};

/// Words processed per batched step in the bulk set operations. Eight
/// `u64`s is one cache line: wide enough for the compiler to vectorize
/// the loop body, small enough that the scalar tail stays trivial.
const LANES: usize = 8;

/// Apply `f` word-wise across two equal-length slices in [`LANES`]-wide
/// batches. The fixed-size inner loop over `chunks_exact` compiles to
/// straight-line SIMD on every target the workspace builds for; the
/// remainder (at most `LANES - 1` words) runs scalar.
#[inline]
fn zip_words_in_place(dst: &mut [u64], src: &[u64], f: impl Fn(u64, u64) -> u64 + Copy) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in (&mut d).zip(&mut s) {
        for i in 0..LANES {
            dc[i] = f(dc[i], sc[i]);
        }
    }
    for (w, o) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *w = f(*w, *o);
    }
}

/// A dense bitmap with one bit per block, packed into `u64` words.
///
/// This is the canonical representation used on the wire and by the
/// migration engine's per-iteration snapshots. Iteration over set bits uses
/// word-level trailing-zero scans, so scanning a mostly-clean map touches
/// one word per 64 blocks.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatBitmap {
    nbits: usize,
    words: Vec<u64>,
}

impl std::fmt::Debug for FlatBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatBitmap")
            .field("nbits", &self.nbits)
            .field("count_ones", &self.count_ones())
            .finish()
    }
}

impl FlatBitmap {
    /// Create an all-clean bitmap tracking `nbits` blocks.
    pub fn new(nbits: usize) -> Self {
        Self {
            nbits,
            words: vec![0; words_for(nbits)],
        }
    }

    /// Create an all-dirty bitmap tracking `nbits` blocks.
    pub fn all_set(nbits: usize) -> Self {
        let mut bm = Self {
            nbits,
            words: vec![u64::MAX; words_for(nbits)],
        };
        bm.mask_tail();
        bm
    }

    /// Construct from raw words. Bits beyond `nbits` in the last word are
    /// masked off.
    ///
    /// # Panics
    /// Panics when `words.len() != words_for(nbits)`.
    pub fn from_words(nbits: usize, words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            words_for(nbits),
            "word count must match bit count"
        );
        let mut bm = Self { nbits, words };
        bm.mask_tail();
        bm
    }

    /// Zero any ghost bits beyond `nbits` in the final word. Every
    /// constructor or bulk fill that could raise bits past the end funnels
    /// through this one helper, so the "no ghost bits" invariant has a
    /// single owner.
    #[inline]
    fn mask_tail(&mut self) {
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask(self.nbits);
        }
    }

    /// The backing words, little-bit-endian within each word.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterate the indices of set bits in ascending order.
    pub fn iter_set(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            nbits: self.nbits,
        }
    }

    /// Bitwise OR `other` into `self`, in word-chunked batches.
    ///
    /// # Panics
    /// Panics when `other` tracks a different number of bits.
    pub fn union_with(&mut self, other: &FlatBitmap) {
        assert_eq!(self.nbits, other.nbits, "bitmap sizes must match");
        zip_words_in_place(&mut self.words, &other.words, |w, o| w | o);
    }

    /// Remove from `self` every bit set in `other` (`self &= !other`), in
    /// word-chunked batches.
    ///
    /// # Panics
    /// Panics when `other` tracks a different number of bits.
    pub fn subtract(&mut self, other: &FlatBitmap) {
        assert_eq!(self.nbits, other.nbits, "bitmap sizes must match");
        zip_words_in_place(&mut self.words, &other.words, |w, o| w & !o);
    }

    /// Bitwise AND with `other`, in word-chunked batches.
    ///
    /// # Panics
    /// Panics when `other` tracks a different number of bits.
    pub fn intersect_with(&mut self, other: &FlatBitmap) {
        assert_eq!(self.nbits, other.nbits, "bitmap sizes must match");
        zip_words_in_place(&mut self.words, &other.words, |w, o| w & o);
    }

    /// Index of the first set bit at or after `from`, if any.
    ///
    /// After the (possibly partial) first word, the scan walks the word
    /// array in [`LANES`]-wide batches: a whole batch whose OR is zero is
    /// skipped with no per-word branch, so sweeping the long clean gaps of
    /// a 40 GB/4 KiB map costs one vectorized reduction per cache line.
    pub fn next_set_from(&self, from: usize) -> Option<usize> {
        if from >= self.nbits {
            return None;
        }
        let wi = from / BITS_PER_WORD;
        let first = self.words[wi] & (u64::MAX << (from % BITS_PER_WORD));
        if first != 0 {
            let idx = wi * BITS_PER_WORD + first.trailing_zeros() as usize;
            return (idx < self.nbits).then_some(idx);
        }
        let rest = &self.words[wi + 1..];
        let mut base = wi + 1;
        let mut chunks = rest.chunks_exact(LANES);
        for chunk in &mut chunks {
            if chunk.iter().fold(0u64, |a, &w| a | w) != 0 {
                for (i, &w) in chunk.iter().enumerate() {
                    if w != 0 {
                        let idx = (base + i) * BITS_PER_WORD + w.trailing_zeros() as usize;
                        return (idx < self.nbits).then_some(idx);
                    }
                }
            }
            base += LANES;
        }
        for (i, &w) in chunks.remainder().iter().enumerate() {
            if w != 0 {
                let idx = (base + i) * BITS_PER_WORD + w.trailing_zeros() as usize;
                return (idx < self.nbits).then_some(idx);
            }
        }
        None
    }

    /// Split `[0, nbits)` into `k` contiguous, word-aligned, non-overlapping
    /// ranges that together cover the whole bit space. Words are spread as
    /// evenly as possible (the first `words % k` shards get one extra), so
    /// per-stream bitmaps never share a word — each shard can be filled,
    /// scanned and merged without touching its neighbours. When `k` exceeds
    /// the word count the surplus shards come back empty.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn shard_bounds(nbits: usize, k: usize) -> Vec<Range<usize>> {
        assert!(k > 0, "need at least one shard");
        let words = words_for(nbits);
        let base = words / k;
        let extra = words % k;
        let mut out = Vec::with_capacity(k);
        let mut word = 0usize;
        for i in 0..k {
            let take = base + usize::from(i < extra);
            let start = (word * BITS_PER_WORD).min(nbits);
            word += take;
            let end = (word * BITS_PER_WORD).min(nbits);
            out.push(start..end);
        }
        out
    }

    /// Copy of `self` restricted to `range`: same length, but every bit
    /// outside `range` cleared. With ranges from [`FlatBitmap::shard_bounds`]
    /// this yields the per-stream bitmaps of a sharded migration — disjoint,
    /// and OR-ing all shards back together reproduces `self` exactly.
    ///
    /// # Panics
    /// Panics when `range` extends past the bitmap.
    pub fn restrict_to(&self, range: Range<usize>) -> FlatBitmap {
        assert!(range.end <= self.nbits, "range must lie within the bitmap");
        let mut out = FlatBitmap::new(self.nbits);
        if range.start >= range.end {
            return out;
        }
        let first_w = range.start / BITS_PER_WORD;
        let last_w = (range.end - 1) / BITS_PER_WORD;
        out.words[first_w..=last_w].copy_from_slice(&self.words[first_w..=last_w]);
        // Trim the partial boundary words.
        out.words[first_w] &= u64::MAX << (range.start % BITS_PER_WORD);
        let end_rem = range.end % BITS_PER_WORD;
        if end_rem != 0 {
            out.words[last_w] &= (1u64 << end_rem) - 1;
        }
        out
    }

    /// `true` when no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    #[inline]
    fn check(&self, idx: usize) {
        assert!(
            idx < self.nbits,
            "bit index {idx} out of range for bitmap of {} bits",
            self.nbits
        );
    }
}

impl DirtyMap for FlatBitmap {
    fn len(&self) -> usize {
        self.nbits
    }

    fn set(&mut self, idx: usize) -> bool {
        self.check(idx);
        let (w, b) = (idx / BITS_PER_WORD, idx % BITS_PER_WORD);
        let prev = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        prev
    }

    fn clear(&mut self, idx: usize) -> bool {
        self.check(idx);
        let (w, b) = (idx / BITS_PER_WORD, idx % BITS_PER_WORD);
        let prev = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        prev
    }

    fn get(&self, idx: usize) -> bool {
        self.check(idx);
        self.words[idx / BITS_PER_WORD] & (1 << (idx % BITS_PER_WORD)) != 0
    }

    fn count_ones(&self) -> usize {
        // Word-chunked with per-lane accumulators: the independent popcount
        // sums vectorize, where a single serial accumulator would chain.
        let mut lanes = [0usize; LANES];
        let mut chunks = self.words.chunks_exact(LANES);
        for chunk in &mut chunks {
            for i in 0..LANES {
                lanes[i] += chunk[i].count_ones() as usize;
            }
        }
        let tail: usize = chunks
            .remainder()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        lanes.iter().sum::<usize>() + tail
    }

    fn clear_all(&mut self) {
        self.words.fill(0);
    }

    fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.mask_tail();
    }

    fn to_indices(&self) -> Vec<usize> {
        self.iter_set().collect()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.capacity() * 8
    }
}

/// Iterator over set-bit indices of a [`FlatBitmap`].
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    nbits: usize,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                let idx = self.word_idx * BITS_PER_WORD + bit;
                return (idx < self.nbits).then_some(idx);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clean() {
        let bm = FlatBitmap::new(100);
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 0);
        assert!(bm.none_set());
        assert!((0..100).all(|i| !bm.get(i)));
    }

    #[test]
    fn all_set_masks_tail() {
        let bm = FlatBitmap::all_set(70);
        assert_eq!(bm.count_ones(), 70);
        assert!(bm.get(69));
        // Last word must not have ghost bits.
        assert_eq!(bm.words()[1], (1u64 << 6) - 1);
    }

    #[test]
    fn set_clear_roundtrip() {
        let mut bm = FlatBitmap::new(130);
        assert!(!bm.set(0));
        assert!(bm.set(0));
        assert!(!bm.set(64));
        assert!(!bm.set(129));
        assert_eq!(bm.count_ones(), 3);
        assert!(bm.clear(64));
        assert!(!bm.clear(64));
        assert_eq!(bm.count_ones(), 2);
        assert_eq!(bm.to_indices(), vec![0, 129]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        FlatBitmap::new(10).set(10);
    }

    #[test]
    fn iter_set_matches_gets() {
        let mut bm = FlatBitmap::new(300);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 255, 299] {
            bm.set(i);
        }
        let got: Vec<_> = bm.iter_set().collect();
        assert_eq!(got, vec![0, 1, 63, 64, 65, 127, 128, 255, 299]);
    }

    #[test]
    fn iter_set_empty_and_full() {
        assert_eq!(FlatBitmap::new(0).iter_set().count(), 0);
        assert_eq!(FlatBitmap::new(67).iter_set().count(), 0);
        assert_eq!(FlatBitmap::all_set(67).iter_set().count(), 67);
    }

    #[test]
    fn union_subtract_intersect() {
        let mut a = FlatBitmap::new(128);
        let mut b = FlatBitmap::new(128);
        for i in [1usize, 5, 70] {
            a.set(i);
        }
        for i in [5usize, 70, 100] {
            b.set(i);
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_indices(), vec![1, 5, 70, 100]);

        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.to_indices(), vec![1]);

        a.intersect_with(&b);
        assert_eq!(a.to_indices(), vec![5, 70]);
    }

    #[test]
    fn next_set_from_walks_forward() {
        let mut bm = FlatBitmap::new(200);
        bm.set(3);
        bm.set(64);
        bm.set(199);
        assert_eq!(bm.next_set_from(0), Some(3));
        assert_eq!(bm.next_set_from(3), Some(3));
        assert_eq!(bm.next_set_from(4), Some(64));
        assert_eq!(bm.next_set_from(65), Some(199));
        assert_eq!(bm.next_set_from(200), None);
        assert_eq!(FlatBitmap::new(0).next_set_from(0), None);
    }

    #[test]
    fn set_all_then_clear_all() {
        let mut bm = FlatBitmap::new(129);
        bm.set_all();
        assert_eq!(bm.count_ones(), 129);
        bm.clear_all();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn from_words_masks_tail() {
        let bm = FlatBitmap::from_words(65, vec![u64::MAX, u64::MAX]);
        assert_eq!(bm.count_ones(), 65);
    }

    #[test]
    fn shard_bounds_partition_word_aligned() {
        for (nbits, k) in [
            (1000usize, 4usize),
            (64, 1),
            (65, 3),
            (9_765_625, 7),
            (10, 4),
        ] {
            let bounds = FlatBitmap::shard_bounds(nbits, k);
            assert_eq!(bounds.len(), k);
            assert_eq!(bounds[0].start, 0);
            assert_eq!(bounds[k - 1].end, nbits);
            for w in bounds.windows(2) {
                assert_eq!(w[0].end, w[1].start, "shards must tile");
            }
            for r in &bounds {
                // Non-empty shards start on a word boundary; empty shards
                // collapse to `nbits..nbits` at the tail.
                if r.start < r.end {
                    assert_eq!(r.start % 64, 0, "shard start must be word aligned");
                }
            }
        }
    }

    #[test]
    fn shards_are_disjoint_and_union_to_original() {
        let mut bm = FlatBitmap::new(1000);
        for i in [0usize, 63, 64, 100, 500, 640, 999] {
            bm.set(i);
        }
        let shards: Vec<_> = FlatBitmap::shard_bounds(1000, 4)
            .into_iter()
            .map(|r| bm.restrict_to(r))
            .collect();
        let total: usize = shards.iter().map(|s| s.count_ones()).sum();
        assert_eq!(total, bm.count_ones(), "no bit may land in two shards");
        let mut merged = FlatBitmap::new(1000);
        for s in &shards {
            merged.union_with(s);
        }
        assert_eq!(merged, bm);
    }

    #[test]
    fn restrict_to_trims_unaligned_edges() {
        let bm = FlatBitmap::all_set(200);
        let r = bm.restrict_to(10..70);
        assert_eq!(r.count_ones(), 60);
        assert_eq!(r.next_set_from(0), Some(10));
        assert_eq!(r.next_set_from(70), None);
        assert!(bm.restrict_to(50..50).none_set());
    }

    #[test]
    fn next_set_from_crosses_long_clean_gaps() {
        // The batched scan must step over multiple whole LANES-chunks.
        let mut bm = FlatBitmap::new(64 * 64);
        bm.set(1);
        bm.set(64 * 63 + 7);
        assert_eq!(bm.next_set_from(2), Some(64 * 63 + 7));
        bm.clear(64 * 63 + 7);
        assert_eq!(bm.next_set_from(2), None);
    }

    #[test]
    fn memory_bytes_scales_with_size() {
        let small = FlatBitmap::new(64);
        let big = FlatBitmap::new(1 << 20);
        assert!(big.memory_bytes() > small.memory_bytes());
        // 1 Mi bits = 128 KiB of words (plus struct header).
        assert!(big.memory_bytes() >= (1 << 20) / 8);
    }
}
