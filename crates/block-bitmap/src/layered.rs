//! The paper's two-layer bitmap (§IV-A-2).
//!
//! > "a bitmap is divided into several parts and organized as two layers.
//! > The upper layer records whether these parts are dirty. If the bitmap
//! > must be checked through, the top layer is checked first, and then only
//! > the parts marked dirty need to be checked further. When using
//! > layered-bitmap, the lower parts are allocated only when there is a
//! > write access to this part, which can reduce bitmap size and save
//! > memory space."

use serde::{Deserialize, Serialize};

use crate::{DirtyMap, FlatBitmap};

/// Default number of blocks covered by one leaf part: 32 Ki blocks
/// (= 128 MiB of disk at 4 KiB blocks, a 4 KiB leaf bitmap).
pub const DEFAULT_PART_BITS: usize = 32 * 1024;

/// Two-layer lazily-allocated bitmap exploiting write locality.
#[derive(Clone, Serialize, Deserialize)]
pub struct LayeredBitmap {
    nbits: usize,
    part_bits: usize,
    /// Top layer: one bit per part, set when the part has any dirty bit.
    top: FlatBitmap,
    /// Leaf bitmaps, allocated on first write into the part.
    parts: Vec<Option<Box<FlatBitmap>>>,
}

impl std::fmt::Debug for LayeredBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayeredBitmap")
            .field("nbits", &self.nbits)
            .field("part_bits", &self.part_bits)
            .field("allocated_parts", &self.allocated_parts())
            .field("count_ones", &self.count_ones())
            .finish()
    }
}

impl LayeredBitmap {
    /// Create an all-clean layered bitmap over `nbits` blocks with the
    /// default part size.
    pub fn new(nbits: usize) -> Self {
        Self::with_part_bits(nbits, DEFAULT_PART_BITS)
    }

    /// Create an all-clean layered bitmap with `part_bits` blocks per leaf.
    ///
    /// # Panics
    /// Panics when `part_bits == 0`.
    pub fn with_part_bits(nbits: usize, part_bits: usize) -> Self {
        assert!(part_bits > 0, "part size must be non-zero");
        let nparts = nbits.div_ceil(part_bits);
        Self {
            nbits,
            part_bits,
            top: FlatBitmap::new(nparts),
            parts: vec![None; nparts],
        }
    }

    /// Blocks covered by each leaf part.
    pub fn part_bits(&self) -> usize {
        self.part_bits
    }

    /// Number of leaf parts currently allocated.
    pub fn allocated_parts(&self) -> usize {
        self.parts.iter().filter(|p| p.is_some()).count()
    }

    /// Total number of parts (allocated or not).
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Size in bits of part `p` (the final part may be short).
    fn part_len(&self, p: usize) -> usize {
        let start = p * self.part_bits;
        (self.nbits - start).min(self.part_bits)
    }

    /// Flatten into a dense [`FlatBitmap`] with identical contents.
    pub fn to_flat(&self) -> FlatBitmap {
        let mut out = FlatBitmap::new(self.nbits);
        for idx in self.iter_set() {
            out.set(idx);
        }
        out
    }

    /// Build a layered bitmap from a dense one, allocating only the parts
    /// that contain dirty bits.
    pub fn from_flat(flat: &FlatBitmap, part_bits: usize) -> Self {
        let mut out = Self::with_part_bits(flat.len(), part_bits);
        for idx in flat.iter_set() {
            out.set(idx);
        }
        out
    }

    /// Iterate set bit indices in ascending order, skipping clean parts
    /// entirely (the scan-cost advantage the paper describes).
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.top.iter_set().flat_map(move |p| {
            let base = p * self.part_bits;
            self.parts[p]
                .as_deref()
                .into_iter()
                .flat_map(move |leaf| leaf.iter_set().map(move |b| base + b))
        })
    }

    #[inline]
    fn check(&self, idx: usize) {
        assert!(
            idx < self.nbits,
            "bit index {idx} out of range for bitmap of {} bits",
            self.nbits
        );
    }
}

impl DirtyMap for LayeredBitmap {
    fn len(&self) -> usize {
        self.nbits
    }

    fn set(&mut self, idx: usize) -> bool {
        self.check(idx);
        let p = idx / self.part_bits;
        let off = idx % self.part_bits;
        let part_len = self.part_len(p);
        let leaf = self.parts[p].get_or_insert_with(|| Box::new(FlatBitmap::new(part_len)));
        let prev = leaf.set(off);
        self.top.set(p);
        prev
    }

    fn clear(&mut self, idx: usize) -> bool {
        self.check(idx);
        let p = idx / self.part_bits;
        let off = idx % self.part_bits;
        let Some(leaf) = self.parts[p].as_deref_mut() else {
            return false;
        };
        let prev = leaf.clear(off);
        if leaf.none_set() {
            // Keep the invariant: top bit set <=> leaf has a dirty bit.
            // Free the leaf too; locality means it may never be touched
            // again.
            self.parts[p] = None;
            self.top.clear(p);
        }
        prev
    }

    fn get(&self, idx: usize) -> bool {
        self.check(idx);
        let p = idx / self.part_bits;
        self.parts[p]
            .as_deref()
            .is_some_and(|leaf| leaf.get(idx % self.part_bits))
    }

    fn count_ones(&self) -> usize {
        self.parts
            .iter()
            .flatten()
            .map(|leaf| leaf.count_ones())
            .sum()
    }

    fn clear_all(&mut self) {
        self.top.clear_all();
        self.parts.iter_mut().for_each(|p| *p = None);
    }

    fn set_all(&mut self) {
        self.top.set_all();
        for p in 0..self.parts.len() {
            let len = self.part_len(p);
            self.parts[p] = Some(Box::new(FlatBitmap::all_set(len)));
        }
    }

    fn to_indices(&self) -> Vec<usize> {
        self.iter_set().collect()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.top.memory_bytes()
            + self.parts.capacity() * std::mem::size_of::<Option<Box<FlatBitmap>>>()
            + self
                .parts
                .iter()
                .flatten()
                .map(|leaf| leaf.memory_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_unallocated() {
        let bm = LayeredBitmap::with_part_bits(1000, 64);
        assert_eq!(bm.len(), 1000);
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.allocated_parts(), 0);
        assert_eq!(bm.num_parts(), 16);
    }

    #[test]
    fn set_allocates_only_touched_part() {
        let mut bm = LayeredBitmap::with_part_bits(1000, 64);
        bm.set(5);
        bm.set(6);
        bm.set(999);
        assert_eq!(bm.allocated_parts(), 2);
        assert!(bm.get(5) && bm.get(6) && bm.get(999));
        assert!(!bm.get(7) && !bm.get(64));
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    fn clear_frees_empty_part() {
        let mut bm = LayeredBitmap::with_part_bits(256, 64);
        bm.set(10);
        bm.set(11);
        assert_eq!(bm.allocated_parts(), 1);
        assert!(bm.clear(10));
        assert_eq!(bm.allocated_parts(), 1);
        assert!(bm.clear(11));
        assert_eq!(bm.allocated_parts(), 0);
        assert!(!bm.clear(11)); // idempotent on clean bit
    }

    #[test]
    fn clear_on_unallocated_part_is_noop() {
        let mut bm = LayeredBitmap::with_part_bits(256, 64);
        assert!(!bm.clear(100));
        assert_eq!(bm.allocated_parts(), 0);
    }

    #[test]
    fn iter_set_sorted_and_complete() {
        let mut bm = LayeredBitmap::with_part_bits(512, 64);
        for i in [511usize, 0, 64, 65, 200] {
            bm.set(i);
        }
        assert_eq!(bm.to_indices(), vec![0, 64, 65, 200, 511]);
    }

    #[test]
    fn short_tail_part() {
        // 100 bits with 64-bit parts: second part is 36 bits.
        let mut bm = LayeredBitmap::with_part_bits(100, 64);
        bm.set(99);
        assert!(bm.get(99));
        bm.set_all();
        assert_eq!(bm.count_ones(), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        LayeredBitmap::with_part_bits(100, 64).get(100);
    }

    #[test]
    fn flat_roundtrip() {
        let mut bm = LayeredBitmap::with_part_bits(777, 50);
        for i in (0..777).step_by(31) {
            bm.set(i);
        }
        let flat = bm.to_flat();
        assert_eq!(flat.to_indices(), bm.to_indices());
        let back = LayeredBitmap::from_flat(&flat, 50);
        assert_eq!(back.to_indices(), bm.to_indices());
    }

    #[test]
    fn memory_smaller_than_flat_when_sparse() {
        // 8 Mi blocks (32 GiB disk at 4 KiB): flat = 1 MiB. A layered map
        // with a handful of localized writes must be far smaller.
        let nbits = 8 * 1024 * 1024;
        let flat = FlatBitmap::new(nbits);
        let mut layered = LayeredBitmap::new(nbits);
        for i in 0..100 {
            layered.set(1_000_000 + i);
        }
        assert!(layered.memory_bytes() < flat.memory_bytes() / 10);
    }

    #[test]
    fn set_all_allocates_everything() {
        let mut bm = LayeredBitmap::with_part_bits(300, 100);
        bm.set_all();
        assert_eq!(bm.allocated_parts(), 3);
        assert_eq!(bm.count_ones(), 300);
        bm.clear_all();
        assert_eq!(bm.allocated_parts(), 0);
        assert_eq!(bm.count_ones(), 0);
    }
}
