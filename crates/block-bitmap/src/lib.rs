//! Block bitmaps for dirty-block tracking during live VM migration.
//!
//! This crate implements the data structure at the heart of the CLUSTER 2008
//! paper *"Live and Incremental Whole-System Migration of Virtual Machines
//! Using Block-Bitmap"*: a bitmap with one bit per fixed-size disk block
//! (typically 4 KiB), used to record which blocks a guest has written while
//! its disk is being copied to another host.
//!
//! Three implementations are provided, each suited to a different point in
//! the migration pipeline:
//!
//! * [`FlatBitmap`] — a dense `Vec<u64>`-backed bitmap. Simple, cache
//!   friendly, and the canonical semantics against which the others are
//!   tested. One bit per block: a 32 GiB disk at 4 KiB granularity costs
//!   1 MiB of memory (the figure the paper quotes).
//! * [`LayeredBitmap`] — the paper's two-layer bitmap (§IV-A-2). The bit
//!   space is divided into fixed-size *parts*; a small top-level bitmap
//!   records which parts contain any dirty bit, and the per-part leaf
//!   bitmaps are allocated lazily on first write. Because disk writes are
//!   highly local, most parts are never allocated, which shrinks both the
//!   memory footprint and the per-iteration scan cost.
//! * [`AtomicBitmap`] — a lock-free bitmap built on `AtomicU64`, used on the
//!   write-interception path (the `blkback` analogue) where guest I/O
//!   threads record dirty blocks concurrently with the migration thread
//!   scanning and resetting the map. `snapshot_and_clear` atomically drains
//!   the map word-by-word, which is exactly the "copy the bitmap to blkd,
//!   then reset it for the next iteration" step of the paper's pre-copy
//!   loop.
//!
//! Supporting pieces:
//!
//! * [`BlockMapper`] — converts byte/sector extents into block index ranges
//!   (the paper's `blkback` "splits the requested area into 4K blocks and
//!   sets corresponding bits").
//! * [`ser`] — compact wire encodings for shipping a bitmap in the
//!   freeze-and-copy phase, where its size contributes to downtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atomic;
mod flat;
mod layered;
mod mapper;
pub mod ser;

pub use atomic::AtomicBitmap;
pub use flat::FlatBitmap;
pub use layered::LayeredBitmap;
pub use mapper::{BlockMapper, BlockRange};

/// Number of bits per storage word. All implementations pack bits into
/// `u64` words.
pub const BITS_PER_WORD: usize = 64;

/// Common read/write interface over a dirty-block map.
///
/// Both [`FlatBitmap`] and [`LayeredBitmap`] implement this trait so that
/// migration engines can be generic over the tracking structure, and so the
/// test-suite can assert the two stay semantically identical.
pub trait DirtyMap {
    /// Total number of tracked blocks (bits).
    fn len(&self) -> usize;

    /// `true` when the map tracks zero blocks.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mark block `idx` dirty. Returns the previous value of the bit.
    ///
    /// # Panics
    /// Panics if `idx >= self.len()`.
    fn set(&mut self, idx: usize) -> bool;

    /// Mark block `idx` clean. Returns the previous value of the bit.
    ///
    /// # Panics
    /// Panics if `idx >= self.len()`.
    fn clear(&mut self, idx: usize) -> bool;

    /// Read the bit for block `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= self.len()`.
    fn get(&self, idx: usize) -> bool;

    /// Number of dirty blocks.
    fn count_ones(&self) -> usize;

    /// Mark every block clean.
    fn clear_all(&mut self);

    /// Mark every block dirty (used by IM when no bitmap survives from a
    /// previous migration: "an all-set block-bitmap is generated").
    fn set_all(&mut self);

    /// Collect the indices of all dirty blocks in ascending order.
    fn to_indices(&self) -> Vec<usize>;

    /// Approximate resident memory of the structure in bytes, used for the
    /// layered-vs-flat memory experiment (E10).
    fn memory_bytes(&self) -> usize;
}

/// Ceiling division of `bits` by the word width.
#[inline]
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(BITS_PER_WORD)
}

/// Mask selecting the valid bits of the final word of a `bits`-sized map.
#[inline]
pub(crate) fn tail_mask(bits: usize) -> u64 {
    let rem = bits % BITS_PER_WORD;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_rounds_up() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn tail_mask_covers_partial_words() {
        assert_eq!(tail_mask(64), u64::MAX);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(3), 0b111);
        assert_eq!(tail_mask(65), 1);
    }

    #[test]
    fn paper_memory_figure_32gib_disk() {
        // The paper: "For a 32GB disk, a 4KB-block bitmap costs only 1MB
        // memory, but a 512B-sector bitmap will use up to 8MB."
        let blocks_4k = 32 * 1024 * 1024 * 1024usize / 4096;
        let sectors = 32 * 1024 * 1024 * 1024usize / 512;
        assert_eq!(words_for(blocks_4k) * 8, 1024 * 1024); // 1 MiB
        assert_eq!(words_for(sectors) * 8, 8 * 1024 * 1024); // 8 MiB
    }
}
