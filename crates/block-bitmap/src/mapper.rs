//! Byte/sector extent to block index mapping.
//!
//! The paper fixes bit granularity at the 4 KiB block level rather than the
//! 512 B sector level (§IV-A-2) and has `blkback` "split the requested area
//! into 4K blocks and set corresponding bits". [`BlockMapper`] performs that
//! splitting for arbitrary byte extents and sector extents.

use serde::{Deserialize, Serialize};

/// Half-open range of block indices `[start, end)` touched by an extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockRange {
    /// First block index covered.
    pub start: usize,
    /// One past the last block index covered.
    pub end: usize,
}

impl BlockRange {
    /// Number of blocks in the range.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the range covers no blocks.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Iterate the block indices in the range.
    pub fn iter(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// Maps byte and sector extents onto block indices for a device with a
/// fixed block size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockMapper {
    block_size: u64,
    sector_size: u64,
    num_blocks: usize,
}

impl BlockMapper {
    /// Standard sector size assumed throughout the paper (512 B).
    pub const SECTOR_SIZE: u64 = 512;

    /// Standard block size used by the paper (4 KiB).
    pub const BLOCK_SIZE_4K: u64 = 4096;

    /// Create a mapper for a device of `num_blocks` blocks of `block_size`
    /// bytes with 512-byte sectors.
    ///
    /// # Panics
    /// Panics unless `block_size` is a positive multiple of the sector
    /// size.
    pub fn new(block_size: u64, num_blocks: usize) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        assert_eq!(
            block_size % Self::SECTOR_SIZE,
            0,
            "block size must be a multiple of the sector size"
        );
        Self {
            block_size,
            sector_size: Self::SECTOR_SIZE,
            num_blocks,
        }
    }

    /// Mapper for the paper's canonical 4 KiB-block layout over a device of
    /// `capacity_bytes` (rounded up to whole blocks).
    pub fn paper_default(capacity_bytes: u64) -> Self {
        let blocks = capacity_bytes.div_ceil(Self::BLOCK_SIZE_4K) as usize;
        Self::new(Self::BLOCK_SIZE_4K, blocks)
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Device capacity in blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.block_size * self.num_blocks as u64
    }

    /// Sectors per block.
    pub fn sectors_per_block(&self) -> u64 {
        self.block_size / self.sector_size
    }

    /// Block containing byte `offset`.
    ///
    /// # Panics
    /// Panics when the offset lies past the end of the device.
    pub fn block_of_byte(&self, offset: u64) -> usize {
        let b = (offset / self.block_size) as usize;
        assert!(b < self.num_blocks, "byte offset {offset} out of range");
        b
    }

    /// Blocks touched by the byte extent `[offset, offset + len)`.
    /// A zero-length extent touches no blocks.
    ///
    /// # Panics
    /// Panics when the extent extends past the end of the device.
    pub fn byte_extent(&self, offset: u64, len: u64) -> BlockRange {
        if len == 0 {
            let start = (offset / self.block_size) as usize;
            return BlockRange { start, end: start };
        }
        let start = (offset / self.block_size) as usize;
        let end = ((offset + len - 1) / self.block_size) as usize + 1;
        assert!(
            end <= self.num_blocks,
            "byte extent [{offset}, {}) out of range",
            offset + len
        );
        BlockRange { start, end }
    }

    /// Blocks touched by the sector extent `[sector, sector + count)`.
    ///
    /// # Panics
    /// Panics when the extent extends past the end of the device.
    pub fn sector_extent(&self, sector: u64, count: u64) -> BlockRange {
        self.byte_extent(sector * self.sector_size, count * self.sector_size)
    }

    /// Byte offset of the start of block `block`.
    ///
    /// # Panics
    /// Panics when `block` is out of range.
    pub fn byte_of_block(&self, block: usize) -> u64 {
        assert!(block < self.num_blocks, "block {block} out of range");
        block as u64 * self.block_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_geometry() {
        // 40 GB VBD as in the paper's testbed.
        let m = BlockMapper::paper_default(40 * 1024 * 1024 * 1024);
        assert_eq!(m.block_size(), 4096);
        assert_eq!(m.num_blocks(), 10 * 1024 * 1024);
        assert_eq!(m.sectors_per_block(), 8);
    }

    #[test]
    fn byte_extent_within_one_block() {
        let m = BlockMapper::new(4096, 100);
        let r = m.byte_extent(100, 200);
        assert_eq!((r.start, r.end), (0, 1));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn byte_extent_spanning_blocks() {
        let m = BlockMapper::new(4096, 100);
        // Crosses the 4096 boundary: blocks 0 and 1.
        let r = m.byte_extent(4000, 200);
        assert_eq!((r.start, r.end), (0, 2));
        // Exactly block-aligned 3 blocks.
        let r = m.byte_extent(4096, 3 * 4096);
        assert_eq!((r.start, r.end), (1, 4));
    }

    #[test]
    fn byte_extent_zero_length_is_empty() {
        let m = BlockMapper::new(4096, 100);
        let r = m.byte_extent(5000, 0);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn extent_to_end_of_device_ok() {
        let m = BlockMapper::new(4096, 10);
        let r = m.byte_extent(9 * 4096, 4096);
        assert_eq!((r.start, r.end), (9, 10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn extent_past_end_panics() {
        let m = BlockMapper::new(4096, 10);
        m.byte_extent(9 * 4096, 4097);
    }

    #[test]
    fn sector_extent_splits_into_blocks() {
        let m = BlockMapper::new(4096, 100);
        // Sectors 7..9 straddle the block 0/1 boundary (8 sectors/block).
        let r = m.sector_extent(7, 2);
        assert_eq!((r.start, r.end), (0, 2));
        // One full block worth of sectors.
        let r = m.sector_extent(8, 8);
        assert_eq!((r.start, r.end), (1, 2));
    }

    #[test]
    fn block_byte_roundtrip() {
        let m = BlockMapper::new(4096, 100);
        for b in [0usize, 1, 50, 99] {
            assert_eq!(m.block_of_byte(m.byte_of_block(b)), b);
        }
    }

    #[test]
    fn range_iter() {
        let r = BlockRange { start: 3, end: 6 };
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![3, 4, 5]);
    }
}
