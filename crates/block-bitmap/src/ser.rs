//! Wire encodings for shipping a block-bitmap between hosts.
//!
//! The bitmap is transferred in the freeze-and-copy phase while the VM is
//! suspended, so every byte of encoding contributes directly to downtime.
//! The paper notes the map is small (1 MiB per 32 GiB disk, "and smaller if
//! layered-bitmap is used"); these encodings realize that: a dense raw
//! encoding for heavily dirty maps, a sparse index encoding for scattered
//! near-empty maps, and a run-length encoding for the common case — a
//! near-empty map whose dirty bits *cluster* (the write locality the whole
//! paper builds on). [`encode`] picks whichever is smallest.

use crate::{DirtyMap, FlatBitmap};

/// Encoding discriminants, stored as the first byte of the wire form.
const TAG_RAW: u8 = 0;
const TAG_SPARSE: u8 = 1;
const TAG_RLE: u8 = 2;

/// Header size: tag byte + u64 bit-count.
const HEADER: usize = 1 + 8;

/// Errors produced when decoding a wire-format bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than the fixed header.
    Truncated,
    /// Unknown encoding tag byte.
    BadTag(u8),
    /// Payload length inconsistent with the header.
    LengthMismatch {
        /// Bytes expected from the header.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// A sparse index lies outside the declared bit count.
    IndexOutOfRange(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "bitmap wire data truncated"),
            Self::BadTag(t) => write!(f, "unknown bitmap encoding tag {t}"),
            Self::LengthMismatch { expected, actual } => {
                write!(f, "bitmap payload length {actual}, expected {expected}")
            }
            Self::IndexOutOfRange(i) => write!(f, "sparse bitmap index {i} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Words converted per batch in [`encode_raw`]: one stack buffer's worth
/// of word→byte conversion per `extend_from_slice`, instead of a
/// capacity check per word.
const BULK_WORDS: usize = 32;

/// Encode as raw little-endian words: `tag, nbits_le64, words…`.
pub fn encode_raw(bm: &FlatBitmap) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + bm.words().len() * 8);
    out.push(TAG_RAW);
    out.extend_from_slice(&(bm.len() as u64).to_le_bytes());
    let mut chunk = [0u8; BULK_WORDS * 8];
    for words in bm.words().chunks(BULK_WORDS) {
        for (slot, w) in chunk.chunks_exact_mut(8).zip(words) {
            slot.copy_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&chunk[..words.len() * 8]);
    }
    out
}

/// Encode as a sorted list of set-bit indices: `tag, nbits_le64, idx_le64…`.
pub fn encode_sparse(bm: &FlatBitmap) -> Vec<u8> {
    let ones = bm.count_ones();
    let mut out = Vec::with_capacity(HEADER + ones * 8);
    out.push(TAG_SPARSE);
    out.extend_from_slice(&(bm.len() as u64).to_le_bytes());
    for idx in bm.iter_set() {
        out.extend_from_slice(&(idx as u64).to_le_bytes());
    }
    out
}

/// Encode as run-length pairs of set-bit runs: `tag, nbits_le64,
/// (start_le64, len_le64)…`. Disk writes cluster (the locality the paper
/// builds on), so the dirty map is usually a handful of long runs — far
/// cheaper than one index per bit.
pub fn encode_rle(bm: &FlatBitmap) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + 64);
    out.push(TAG_RLE);
    out.extend_from_slice(&(bm.len() as u64).to_le_bytes());
    for (start, len) in runs(bm) {
        out.extend_from_slice(&(start as u64).to_le_bytes());
        out.extend_from_slice(&(len as u64).to_le_bytes());
    }
    out
}

/// Iterate the maximal runs of set bits as `(start, len)` pairs.
fn runs(bm: &FlatBitmap) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut cursor = 0usize;
    while let Some(start) = bm.next_set_from(cursor) {
        let mut end = start + 1;
        while end < bm.len() && bm.get(end) {
            end += 1;
        }
        out.push((start, end - start));
        cursor = end;
    }
    out
}

/// Encode with whichever of [`encode_raw`] / [`encode_sparse`] /
/// [`encode_rle`] is smallest.
///
/// Sparse wins when fewer than 1/64 of the blocks are dirty and
/// scattered; RLE wins when the dirty bits cluster into runs (the normal
/// case, per the paper's locality argument); raw wins when the map is
/// dense.
pub fn encode(bm: &FlatBitmap) -> Vec<u8> {
    let sparse_len = HEADER + bm.count_ones() * 8;
    let raw_len = HEADER + bm.words().len() * 8;
    let rle_len = HEADER + runs(bm).len() * 16;
    let min = sparse_len.min(raw_len).min(rle_len);
    if min == rle_len {
        encode_rle(bm)
    } else if min == sparse_len {
        encode_sparse(bm)
    } else {
        encode_raw(bm)
    }
}

/// Size in bytes [`encode`] would produce.
pub fn encoded_len(bm: &FlatBitmap) -> usize {
    let sparse_len = HEADER + bm.count_ones() * 8;
    let raw_len = HEADER + bm.words().len() * 8;
    let rle_len = HEADER + runs(bm).len() * 16;
    sparse_len.min(raw_len).min(rle_len)
}

/// Decode a wire-format bitmap produced by any of the encoders.
pub fn decode(data: &[u8]) -> Result<FlatBitmap, DecodeError> {
    if data.len() < HEADER {
        return Err(DecodeError::Truncated);
    }
    let tag = data[0];
    let nbits = u64::from_le_bytes(data[1..9].try_into().expect("slice is 8 bytes")) as usize;
    let payload = &data[HEADER..];
    match tag {
        TAG_RAW => {
            let expected = crate::words_for(nbits) * 8;
            if payload.len() != expected {
                return Err(DecodeError::LengthMismatch {
                    expected,
                    actual: payload.len(),
                });
            }
            let words = payload
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
                .collect();
            Ok(FlatBitmap::from_words(nbits, words))
        }
        TAG_RLE => {
            if !payload.len().is_multiple_of(16) {
                return Err(DecodeError::LengthMismatch {
                    expected: payload.len() / 16 * 16,
                    actual: payload.len(),
                });
            }
            let mut bm = FlatBitmap::new(nbits);
            for pair in payload.chunks_exact(16) {
                let start = u64::from_le_bytes(pair[..8].try_into().expect("8 bytes"));
                let len = u64::from_le_bytes(pair[8..].try_into().expect("8 bytes"));
                let end = start
                    .checked_add(len)
                    .ok_or(DecodeError::IndexOutOfRange(start))?;
                if end > nbits as u64 {
                    return Err(DecodeError::IndexOutOfRange(end));
                }
                for i in start..end {
                    bm.set(i as usize);
                }
            }
            Ok(bm)
        }
        TAG_SPARSE => {
            if !payload.len().is_multiple_of(8) {
                return Err(DecodeError::LengthMismatch {
                    expected: payload.len() / 8 * 8,
                    actual: payload.len(),
                });
            }
            let mut bm = FlatBitmap::new(nbits);
            for c in payload.chunks_exact(8) {
                let idx = u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"));
                if idx as usize >= nbits {
                    return Err(DecodeError::IndexOutOfRange(idx));
                }
                bm.set(idx as usize);
            }
            Ok(bm)
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(nbits: usize, idxs: &[usize]) -> FlatBitmap {
        let mut bm = FlatBitmap::new(nbits);
        for &i in idxs {
            bm.set(i);
        }
        bm
    }

    #[test]
    fn raw_roundtrip() {
        let bm = sample(1000, &[0, 63, 64, 999]);
        let enc = encode_raw(&bm);
        assert_eq!(decode(&enc).unwrap(), bm);
    }

    #[test]
    fn sparse_roundtrip() {
        let bm = sample(100_000, &[5, 99_999]);
        let enc = encode_sparse(&bm);
        assert_eq!(decode(&enc).unwrap(), bm);
    }

    #[test]
    fn auto_picks_smaller() {
        // Nearly empty and scattered: sparse must win (3 isolated bits =
        // 3 RLE runs of 16 bytes vs 3 sparse indices of 8 bytes).
        let sparse_bm = sample(1 << 20, &[1, 5_000, 900_000]);
        let enc = encode(&sparse_bm);
        assert_eq!(enc[0], TAG_SPARSE);
        assert_eq!(enc.len(), encoded_len(&sparse_bm));
        assert_eq!(decode(&enc).unwrap(), sparse_bm);

        // Half dirty: raw must win.
        let mut dense_bm = FlatBitmap::new(1 << 16);
        for i in (0..(1 << 16)).step_by(2) {
            dense_bm.set(i);
        }
        let enc = encode(&dense_bm);
        assert_eq!(enc[0], TAG_RAW);
        assert_eq!(enc.len(), encoded_len(&dense_bm));
    }

    #[test]
    fn empty_bitmap_roundtrip() {
        let bm = FlatBitmap::new(0);
        assert_eq!(decode(&encode(&bm)).unwrap(), bm);
        let bm = FlatBitmap::new(10);
        assert_eq!(decode(&encode(&bm)).unwrap(), bm);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[9; 8]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[9; 9]), Err(DecodeError::BadTag(9)));
        let mut enc = encode_raw(&sample(64, &[1]));
        enc[0] = 7;
        assert_eq!(decode(&enc), Err(DecodeError::BadTag(7)));
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        let mut enc = encode_raw(&sample(64, &[1]));
        enc.pop();
        assert!(matches!(
            decode(&enc),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn decode_rejects_out_of_range_sparse_index() {
        let bm = sample(64, &[63]);
        let mut enc = encode_sparse(&bm);
        // Overwrite the index with 64 (out of range for 64 bits).
        let n = enc.len();
        enc[n - 8..].copy_from_slice(&64u64.to_le_bytes());
        assert_eq!(decode(&enc), Err(DecodeError::IndexOutOfRange(64)));
    }

    #[test]
    fn rle_roundtrip_and_wins_on_clusters() {
        // Three dense runs across a 10 Mi-block space: RLE needs 3 pairs.
        let mut bm = FlatBitmap::new(10 * 1024 * 1024);
        for base in [1000usize, 500_000, 9_000_000] {
            for i in 0..2_000 {
                bm.set(base + i);
            }
        }
        let rle = encode_rle(&bm);
        assert_eq!(decode(&rle).unwrap(), bm);
        // 6000 dirty bits: sparse = 48 KB, RLE = 48 bytes + header.
        assert!(rle.len() < 100);
        let auto = encode(&bm);
        assert_eq!(auto[0], TAG_RLE, "auto-encoding must pick RLE");
        assert_eq!(auto.len(), encoded_len(&bm));
        assert_eq!(decode(&auto).unwrap(), bm);
    }

    #[test]
    fn rle_rejects_out_of_range_runs() {
        let bm = sample(64, &[60, 61, 62, 63]);
        let mut enc = encode_rle(&bm);
        // Corrupt the run length to overflow the bit space.
        let n = enc.len();
        enc[n - 8..].copy_from_slice(&100u64.to_le_bytes());
        assert!(matches!(decode(&enc), Err(DecodeError::IndexOutOfRange(_))));
    }

    #[test]
    fn paper_sized_bitmap_encodes_compactly() {
        // End of pre-copy for the web workload: 62 dirty blocks out of a
        // 40 GB disk (10 Mi blocks). The paper transfers the bitmap during
        // downtime; sparse encoding keeps that well under a kilobyte.
        let bm = sample(
            10 * 1024 * 1024,
            &(0..62).map(|i| i * 1000).collect::<Vec<_>>(),
        );
        assert!(encoded_len(&bm) < 1024);
        // Raw form would be 1.25 MiB.
        assert!(encode_raw(&bm).len() > 1024 * 1024);
    }
}
