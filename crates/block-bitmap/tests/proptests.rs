//! Property-based tests: layered ≡ flat semantics, wire round-trips, and
//! set-operation algebra.

use block_bitmap::{ser, AtomicBitmap, BlockMapper, DirtyMap, FlatBitmap, LayeredBitmap};
use proptest::prelude::*;

/// An arbitrary sequence of set/clear operations over a fixed bit space.
#[derive(Debug, Clone)]
enum Op {
    Set(usize),
    Clear(usize),
}

fn ops(nbits: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![(0..nbits).prop_map(Op::Set), (0..nbits).prop_map(Op::Clear),],
        0..200,
    )
}

proptest! {
    /// Layered and flat bitmaps stay bit-identical under any op sequence.
    #[test]
    fn layered_equals_flat(ops in ops(1000), part_bits in 1usize..200) {
        let mut flat = FlatBitmap::new(1000);
        let mut layered = LayeredBitmap::with_part_bits(1000, part_bits);
        for op in &ops {
            match *op {
                Op::Set(i) => {
                    prop_assert_eq!(flat.set(i), layered.set(i));
                }
                Op::Clear(i) => {
                    prop_assert_eq!(flat.clear(i), layered.clear(i));
                }
            }
        }
        prop_assert_eq!(flat.count_ones(), layered.count_ones());
        prop_assert_eq!(flat.to_indices(), layered.to_indices());
        for i in 0..1000 {
            prop_assert_eq!(flat.get(i), layered.get(i));
        }
    }

    /// Layered top-layer invariant: a part is marked dirty in the top layer
    /// iff it contains at least one dirty bit; clean parts are unallocated.
    #[test]
    fn layered_top_invariant(ops in ops(512)) {
        let mut layered = LayeredBitmap::with_part_bits(512, 64);
        for op in &ops {
            match *op {
                Op::Set(i) => { layered.set(i); }
                Op::Clear(i) => { layered.clear(i); }
            }
        }
        let dirty: std::collections::HashSet<usize> =
            layered.to_indices().iter().map(|i| i / 64).collect();
        // allocated_parts == number of parts with >= 1 dirty bit
        prop_assert_eq!(layered.allocated_parts(), dirty.len());
    }

    /// Wire encoding round-trips for every encoder.
    #[test]
    fn wire_roundtrip(idxs in prop::collection::btree_set(0usize..5000, 0..100)) {
        let mut bm = FlatBitmap::new(5000);
        for &i in &idxs {
            bm.set(i);
        }
        prop_assert_eq!(&ser::decode(&ser::encode_raw(&bm)).unwrap(), &bm);
        prop_assert_eq!(&ser::decode(&ser::encode_sparse(&bm)).unwrap(), &bm);
        let auto = ser::encode(&bm);
        prop_assert_eq!(auto.len(), ser::encoded_len(&bm));
        prop_assert_eq!(&ser::decode(&auto).unwrap(), &bm);
    }

    /// Set algebra: (A ∪ B) ⊇ A, (A − B) ∩ B = ∅, |A ∪ B| + |A ∩ B| = |A| + |B|.
    #[test]
    fn set_algebra(
        a_idx in prop::collection::btree_set(0usize..600, 0..80),
        b_idx in prop::collection::btree_set(0usize..600, 0..80),
    ) {
        let mut a = FlatBitmap::new(600);
        let mut b = FlatBitmap::new(600);
        for &i in &a_idx { a.set(i); }
        for &i in &b_idx { b.set(i); }

        let mut union = a.clone();
        union.union_with(&b);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        let mut diff = a.clone();
        diff.subtract(&b);

        for &i in &a_idx {
            prop_assert!(union.get(i));
        }
        let mut check = diff.clone();
        check.intersect_with(&b);
        prop_assert!(check.none_set());
        prop_assert_eq!(
            union.count_ones() + inter.count_ones(),
            a.count_ones() + b.count_ones()
        );
        // diff ∪ inter == a
        let mut rebuilt = diff;
        rebuilt.union_with(&inter);
        prop_assert_eq!(rebuilt, a);
    }

    /// Extent splitting covers exactly the bytes of the request: every byte
    /// of the extent lies in a returned block and the first/last blocks
    /// actually overlap the extent.
    #[test]
    fn mapper_extent_cover(offset in 0u64..1_000_000, len in 0u64..100_000) {
        let m = BlockMapper::new(4096, 1024);
        prop_assume!(offset + len <= m.capacity_bytes());
        let r = m.byte_extent(offset, len);
        if len == 0 {
            prop_assert!(r.is_empty());
        } else {
            prop_assert_eq!(r.start, (offset / 4096) as usize);
            prop_assert_eq!(r.end, ((offset + len - 1) / 4096) as usize + 1);
            // Every block in range overlaps [offset, offset+len).
            for b in r.iter() {
                let bs = b as u64 * 4096;
                prop_assert!(bs < offset + len && bs + 4096 > offset);
            }
        }
    }

    /// `next_set_from` agrees with a linear scan.
    #[test]
    fn next_set_from_agrees(idxs in prop::collection::btree_set(0usize..300, 0..40), from in 0usize..310) {
        let mut bm = FlatBitmap::new(300);
        for &i in &idxs { bm.set(i); }
        let expect = idxs.iter().copied().find(|&i| i >= from);
        prop_assert_eq!(bm.next_set_from(from), expect);
    }

    /// All three bitmap implementations agree on any op sequence. The bit
    /// space (195 = 3×64+3) straddles word boundaries and leaves tail
    /// bits in the final partial word, where masking bugs live.
    #[test]
    fn flat_layered_atomic_agree(ops in ops(195)) {
        let mut flat = FlatBitmap::new(195);
        let mut layered = LayeredBitmap::with_part_bits(195, 64);
        let atomic = AtomicBitmap::new(195);
        for op in &ops {
            match *op {
                Op::Set(i) => {
                    let f = flat.set(i);
                    prop_assert_eq!(f, layered.set(i));
                    prop_assert_eq!(f, atomic.set(i));
                }
                Op::Clear(i) => {
                    let f = flat.clear(i);
                    prop_assert_eq!(f, layered.clear(i));
                    prop_assert_eq!(f, atomic.clear(i));
                }
            }
        }
        prop_assert_eq!(flat.count_ones(), layered.count_ones());
        prop_assert_eq!(flat.count_ones(), atomic.count_ones());
        for i in 0..195 {
            prop_assert_eq!(flat.get(i), layered.get(i));
            prop_assert_eq!(flat.get(i), atomic.get(i));
        }
        // The atomic snapshot is the flat bitmap, exactly.
        prop_assert_eq!(&atomic.snapshot(), &flat);
        prop_assert_eq!(&layered.to_flat(), &flat);
    }

    /// Sharding partitions: restrict_to over shard_bounds yields disjoint
    /// bitmaps whose union is the original, for any shard count.
    #[test]
    fn shards_partition_any_bitmap(
        idxs in prop::collection::btree_set(0usize..1000, 0..120),
        k in 1usize..9,
    ) {
        let mut bm = FlatBitmap::new(1000);
        for &i in &idxs { bm.set(i); }
        let shards: Vec<FlatBitmap> = FlatBitmap::shard_bounds(1000, k)
            .into_iter()
            .map(|r| bm.restrict_to(r))
            .collect();
        // Disjoint: per-shard counts sum to the total.
        let total: usize = shards.iter().map(DirtyMap::count_ones).sum();
        prop_assert_eq!(total, bm.count_ones());
        // Union rebuilds the original.
        let mut rebuilt = FlatBitmap::new(1000);
        for s in &shards {
            rebuilt.union_with(s);
        }
        prop_assert_eq!(rebuilt, bm);
    }
}
