//! Cluster-wide block directory: which hosts hold which blocks of
//! which VM image, and at what generation.
//!
//! The directory is the journal-consumer side of the replica story.
//! `vdisk::ReplicaTable` records what a *site* kept behind after a
//! migration; the directory folds those generation vectors (plus any
//! live publishes) into one queryable map. Freshness is always judged
//! against a caller-supplied live [`MetaDisk`]: a holder entry is never
//! "stale" in the abstract, only relative to the generation the live
//! image has reached.

use std::collections::BTreeMap;

use block_bitmap::{DirtyMap, FlatBitmap};
use vdisk::{hash_u64, MetaDisk, ReplicaTable};

/// One holder's view of a VM image: the per-block generation vector it
/// was holding when it last published.
#[derive(Debug, Clone)]
struct HolderView {
    generations: Vec<u32>,
}

/// A maximal run of blocks over which the fresh-holder set is constant.
///
/// This is the `(vm, block-range, generation) → holder set` shape from
/// the design: consumers that journal or size plans want ranges, not a
/// per-block map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageRange {
    /// First block of the run (inclusive).
    pub start: usize,
    /// One past the last block of the run (exclusive).
    pub end: usize,
    /// Hosts holding every block in the run at the live generation,
    /// ascending host id. Empty means only the source can serve it.
    pub holders: Vec<u64>,
}

/// Content-addressed, generation-aware map from `(vm, host)` to the
/// holder's block generations.
///
/// Keyed on `BTreeMap` so every iteration order — holder lists,
/// coverage runs, plan assignment — is deterministic across runs.
#[derive(Debug, Clone, Default)]
pub struct BlockDirectory {
    holders: BTreeMap<(u64, u64), HolderView>,
}

impl BlockDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Journal-style update: `host` now holds `vm`'s image at the
    /// generations recorded in `disk`. Replaces any previous view for
    /// the same `(vm, host)` pair.
    pub fn publish(&mut self, vm: u64, host: u64, disk: &MetaDisk) {
        let generations = (0..disk.num_blocks()).map(|b| disk.generation(b)).collect();
        self.holders.insert((vm, host), HolderView { generations });
    }

    /// Fold every replica the table knows about for `vm` into the
    /// directory. Sites already present are refreshed in place.
    pub fn merge_replicas(&mut self, vm: u64, table: &ReplicaTable) {
        for site in table.sites_with_replica(vm) {
            if let Some(replica) = table.get(vm, site) {
                self.publish(vm, site, &replica.disk);
            }
        }
    }

    /// Journal-style update: `host` no longer holds `vm`'s image
    /// (evicted, repurposed, or its copy was consumed by a migration).
    pub fn retire(&mut self, vm: u64, host: u64) {
        self.holders.remove(&(vm, host));
    }

    /// Drop every view published by `host` — the host died or left the
    /// cluster. This is what source-death failover calls before
    /// re-planning.
    pub fn retire_host(&mut self, host: u64) {
        self.holders.retain(|&(_, h), _| h != host);
    }

    /// Hosts with any view of `vm`, ascending.
    pub fn holders(&self, vm: u64) -> Vec<u64> {
        self.holders
            .range((vm, 0)..=(vm, u64::MAX))
            .map(|(&(_, host), _)| host)
            .collect()
    }

    /// Number of `(vm, host)` views in the directory.
    pub fn len(&self) -> usize {
        self.holders.len()
    }

    /// True when no holder views are recorded.
    pub fn is_empty(&self) -> bool {
        self.holders.is_empty()
    }

    /// The sim-wide content fingerprint of a block at `generation`.
    ///
    /// The simulation convention (established by the PR-7 dedup path)
    /// is that equal generation values imply equal content globally, so
    /// a block's fingerprint is a pure function of its generation.
    pub fn fingerprint(generation: u32) -> u64 {
        hash_u64(generation as u64)
    }

    /// Bitmap of blocks `host` holds at exactly the live generation.
    ///
    /// Returns `None` when the host has no view of `vm` or its view's
    /// geometry disagrees with `live` (a mismatched holder can never be
    /// trusted to serve, so it contributes no fresh blocks).
    pub fn fresh_bitmap(&self, vm: u64, host: u64, live: &MetaDisk) -> Option<FlatBitmap> {
        let view = self.holders.get(&(vm, host))?;
        if view.generations.len() != live.num_blocks() {
            return None;
        }
        let mut fresh = FlatBitmap::new(live.num_blocks());
        for (block, &gen) in view.generations.iter().enumerate() {
            if gen == live.generation(block) {
                fresh.set(block);
            }
        }
        Some(fresh)
    }

    /// Hosts that hold `block` of `vm` at the live generation,
    /// ascending. Geometry-mismatched views never match.
    pub fn holders_of_block(&self, vm: u64, block: usize, live: &MetaDisk) -> Vec<u64> {
        if block >= live.num_blocks() {
            return Vec::new();
        }
        let want = live.generation(block);
        self.holders
            .range((vm, 0)..=(vm, u64::MAX))
            .filter(|(_, view)| {
                view.generations.len() == live.num_blocks()
                    && view.generations.get(block).copied() == Some(want)
            })
            .map(|(&(_, host), _)| host)
            .collect()
    }

    /// Partition-driven failover planning: among `allowed` sites (the
    /// holders still reachable from the destination after a partition or
    /// host loss), pick the one that can serve the most blocks of `owed`
    /// at the live generation. Returns the chosen site and the bitmap of
    /// owed blocks it can serve; `None` when no allowed site serves any
    /// owed block. Ties break to the lowest site id, so the plan is a
    /// pure function of the directory state.
    pub fn best_holder(
        &self,
        vm: u64,
        live: &MetaDisk,
        owed: &FlatBitmap,
        allowed: &[u64],
    ) -> Option<(u64, FlatBitmap)> {
        let mut best: Option<(u64, FlatBitmap, usize)> = None;
        for &site in allowed {
            let Some(fresh) = self.fresh_bitmap(vm, site, live) else {
                continue;
            };
            let mut servable = fresh;
            servable.intersect_with(owed);
            let count = servable.count_ones();
            if count == 0 {
                continue;
            }
            let better = match &best {
                None => true,
                Some((s, _, c)) => count > *c || (count == *c && site < *s),
            };
            if better {
                best = Some((site, servable, count));
            }
        }
        best.map(|(site, servable, _)| (site, servable))
    }

    /// Run-length coverage of `vm`'s image: maximal block ranges over
    /// which the fresh-holder set is constant. The concatenation of the
    /// returned ranges is exactly `0..live.num_blocks()`.
    pub fn coverage(&self, vm: u64, live: &MetaDisk) -> Vec<CoverageRange> {
        let n = live.num_blocks();
        if n == 0 {
            return Vec::new();
        }
        let mut runs: Vec<CoverageRange> = Vec::new();
        for block in 0..n {
            let holders = self.holders_of_block(vm, block, live);
            match runs.last_mut() {
                Some(run) if run.holders == holders && run.end == block => run.end = block + 1,
                _ => runs.push(CoverageRange {
                    start: block,
                    end: block + 1,
                    holders,
                }),
            }
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk_with_writes(n: usize, writes: &[usize]) -> MetaDisk {
        let mut d = MetaDisk::new(n);
        for &b in writes {
            d.write(b);
        }
        d
    }

    #[test]
    fn publish_then_fresh_bitmap_tracks_generation_match() {
        let mut live = MetaDisk::new(8);
        live.write(2);
        live.write(5);

        let mut dir = BlockDirectory::new();
        // Peer snapshotted the image *before* the writes to 2 and 5.
        dir.publish(7, 100, &MetaDisk::new(8));

        let fresh = dir.fresh_bitmap(7, 100, &live).expect("view exists");
        assert_eq!(fresh.count_ones(), 6);
        assert!(!fresh.get(2));
        assert!(!fresh.get(5));
        assert!(fresh.get(0));
    }

    #[test]
    fn exact_copy_is_fully_fresh() {
        let live = disk_with_writes(16, &[1, 3, 9]);
        let mut dir = BlockDirectory::new();
        dir.publish(1, 42, &live.clone());
        let fresh = dir.fresh_bitmap(1, 42, &live).expect("view exists");
        assert_eq!(fresh.count_ones(), 16);
    }

    #[test]
    fn geometry_mismatch_yields_none() {
        let live = MetaDisk::new(8);
        let mut dir = BlockDirectory::new();
        dir.publish(1, 5, &MetaDisk::new(9));
        assert!(dir.fresh_bitmap(1, 5, &live).is_none());
        assert!(dir.holders_of_block(1, 0, &live).is_empty());
    }

    #[test]
    fn merge_replicas_imports_all_sites() {
        let live = disk_with_writes(4, &[0]);
        let mut table = ReplicaTable::new();
        table.record(9, 3, live.clone());
        table.record(9, 1, MetaDisk::new(4));
        table.record(8, 2, MetaDisk::new(4)); // other vm: untouched

        let mut dir = BlockDirectory::new();
        dir.merge_replicas(9, &table);
        assert_eq!(dir.holders(9), vec![1, 3]);
        assert!(dir.holders(8).is_empty());

        // Site 3 kept an exact copy; site 1 predates the write to 0.
        assert_eq!(
            dir.fresh_bitmap(9, 3, &live).expect("site 3").count_ones(),
            4
        );
        assert_eq!(
            dir.fresh_bitmap(9, 1, &live).expect("site 1").count_ones(),
            3
        );
    }

    #[test]
    fn retire_and_retire_host() {
        let disk = MetaDisk::new(2);
        let mut dir = BlockDirectory::new();
        dir.publish(1, 10, &disk);
        dir.publish(1, 11, &disk);
        dir.publish(2, 10, &disk);
        assert_eq!(dir.len(), 3);

        dir.retire(1, 10);
        assert_eq!(dir.holders(1), vec![11]);

        dir.retire_host(10);
        assert_eq!(dir.holders(2), Vec::<u64>::new());
        assert_eq!(dir.len(), 1);
    }

    #[test]
    fn holders_of_block_is_ascending_and_generation_exact() {
        let live = disk_with_writes(4, &[2]);
        let mut dir = BlockDirectory::new();
        dir.publish(5, 30, &live.clone());
        dir.publish(5, 20, &live.clone());
        dir.publish(5, 25, &MetaDisk::new(4)); // stale at block 2

        assert_eq!(dir.holders_of_block(5, 2, &live), vec![20, 30]);
        assert_eq!(dir.holders_of_block(5, 0, &live), vec![20, 25, 30]);
        assert!(dir.holders_of_block(5, 99, &live).is_empty());
    }

    #[test]
    fn coverage_runs_partition_the_image() {
        let live = disk_with_writes(6, &[2, 3]);
        let mut dir = BlockDirectory::new();
        dir.publish(1, 50, &MetaDisk::new(6)); // fresh except 2,3

        let runs = dir.coverage(1, &live);
        assert_eq!(
            runs,
            vec![
                CoverageRange {
                    start: 0,
                    end: 2,
                    holders: vec![50]
                },
                CoverageRange {
                    start: 2,
                    end: 4,
                    holders: vec![]
                },
                CoverageRange {
                    start: 4,
                    end: 6,
                    holders: vec![50]
                },
            ]
        );
        // Ranges tile the whole image.
        assert_eq!(runs.first().map(|r| r.start), Some(0));
        assert_eq!(runs.last().map(|r| r.end), Some(6));
    }

    #[test]
    fn best_holder_prefers_widest_owed_coverage() {
        let live = disk_with_writes(8, &[6]);
        let mut dir = BlockDirectory::new();
        // Site 10: fresh everywhere except block 6. Site 20: an exact
        // copy. Site 30: geometry mismatch, never trusted.
        dir.publish(1, 10, &MetaDisk::new(8));
        dir.publish(1, 20, &live.clone());
        dir.publish(1, 30, &MetaDisk::new(9));

        let mut owed = FlatBitmap::new(8);
        owed.set(5);
        owed.set(6);

        // All sites reachable: site 20 serves both owed blocks.
        let (site, servable) = dir
            .best_holder(1, &live, &owed, &[10, 20, 30])
            .expect("a holder serves");
        assert_eq!(site, 20);
        assert_eq!(servable.count_ones(), 2);

        // Partition cuts site 20 off: site 10 still serves block 5.
        let (site, servable) = dir
            .best_holder(1, &live, &owed, &[10, 30])
            .expect("fallback holder");
        assert_eq!(site, 10);
        assert_eq!(servable.count_ones(), 1);
        assert!(servable.get(5) && !servable.get(6));

        // Nobody reachable serves anything owed.
        assert!(dir.best_holder(1, &live, &owed, &[30]).is_none());
        assert!(dir.best_holder(1, &live, &owed, &[]).is_none());
    }

    #[test]
    fn best_holder_ties_break_to_lowest_site() {
        let live = disk_with_writes(4, &[]);
        let mut dir = BlockDirectory::new();
        dir.publish(2, 7, &live.clone());
        dir.publish(2, 3, &live.clone());
        let owed = FlatBitmap::all_set(4);
        let (site, servable) = dir
            .best_holder(2, &live, &owed, &[7, 3])
            .expect("both serve");
        assert_eq!(site, 3, "equal coverage resolves to the lowest site");
        assert_eq!(servable.count_ones(), 4);
    }

    #[test]
    fn fingerprint_is_generation_pure() {
        assert_eq!(
            BlockDirectory::fingerprint(3),
            BlockDirectory::fingerprint(3)
        );
        assert_ne!(
            BlockDirectory::fingerprint(3),
            BlockDirectory::fingerprint(4)
        );
        assert_eq!(BlockDirectory::fingerprint(3), hash_u64(3));
    }
}
