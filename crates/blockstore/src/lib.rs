//! Multi-source block store: a content-addressed, generation-aware
//! "who holds which block" data plane for live migration.
//!
//! The paper's block-bitmap tells a migration *which* blocks are owed;
//! this crate answers *where each owed block can come from*. Three
//! layers compose:
//!
//! 1. [`BlockDirectory`] — merges `vdisk::ReplicaTable` generation
//!    vectors and `ContentIndex`-style fingerprints into a per-cluster
//!    map from `(vm, block-range, generation)` to the holder set.
//!    Journal-style updates ([`BlockDirectory::publish`] /
//!    [`BlockDirectory::retire`]) keep it fresh as migrations complete.
//! 2. [`FetchPlanner`] — given the owed bitmap, partitions blocks into
//!    *source-only*, *any-peer*, and *ref-only* classes and assigns
//!    any-peer blocks to concrete holders under per-host NIC budgets
//!    (`simnet::capacity::max_min_share`), so K-peer fan-in never
//!    starves resident workloads.
//! 3. [`session`] — the peer-fetch wire protocol on the existing
//!    `simnet` transport: `BlockRequest` / `BlockData` / `BlockMiss`
//!    frames with windowed pipelining, content re-verification at the
//!    destination, and shipped/got reconciliation so a holder dying
//!    mid-fetch leaves a re-plannable remainder instead of a wedged
//!    migration.
//!
//! All non-test code in this crate lives inside the lintkit `transport`
//! (no-panic), `deterministic`, and `result-dropped` zones: no
//! panicking escape hatches, `BTreeMap` ordering only, no wall-clock
//! reads, and no silently discarded `Result`s.

#![forbid(unsafe_code)]

pub mod directory;
pub mod planner;
pub mod session;

pub use directory::{BlockDirectory, CoverageRange};
pub use planner::{FetchPlan, FetchPlanner};
pub use session::{fetch_blocks, serve_blocks, BlockSource, BlockWant, FetchOutcome};
