//! Fetch planning: partition a migration's owed bitmap across the
//! holder set under per-host NIC budgets.
//!
//! The planner never moves a byte itself — it decides, once per
//! (re-)plan, which class every owed block falls into:
//!
//! * **ref-only** — the destination already holds identical content
//!   (by fingerprint); materialize locally, send nothing.
//! * **any-peer** — a fresh replica holder can serve it; assigned to a
//!   concrete peer, balanced by each peer's max-min bandwidth share.
//! * **source-only** — only the migration source has it.
//!
//! Peer shares come from [`simnet::capacity::max_min_share`] over the
//! destination's ingest capacity and each holder's advertised NIC
//! budget, so fan-in from K peers is bounded by what the destination
//! can absorb and no single holder is pressed beyond what it offered.

use std::collections::BTreeMap;

use block_bitmap::{DirtyMap, FlatBitmap};
use simnet::capacity::max_min_share;
use vdisk::{ContentIndex, MetaDisk};

use crate::directory::BlockDirectory;
use crate::session::BlockWant;

/// The outcome of one planning pass over an owed bitmap.
#[derive(Debug, Clone)]
pub struct FetchPlan {
    /// Owed blocks only the source can serve.
    pub source_only: FlatBitmap,
    /// Owed blocks assigned to a peer holder (union of `per_peer`).
    pub any_peer: FlatBitmap,
    /// Owed blocks whose content the destination already holds.
    pub ref_only: FlatBitmap,
    /// Concrete per-peer assignment of the `any_peer` class.
    pub per_peer: BTreeMap<u64, FlatBitmap>,
    /// Max-min bandwidth share granted to each budgeted peer.
    pub shares: BTreeMap<u64, f64>,
}

impl FetchPlan {
    /// Total owed blocks the plan covers.
    pub fn owed_total(&self) -> usize {
        self.source_only.count_ones() + self.any_peer.count_ones() + self.ref_only.count_ones()
    }

    /// Fraction of owed *full* blocks (those that must actually move)
    /// that arrive from non-source peers. This is the E14 headline
    /// number; ref-only blocks move no bytes so they are excluded.
    pub fn peer_fraction(&self) -> f64 {
        let peers = self.any_peer.count_ones();
        let fulls = peers + self.source_only.count_ones();
        if fulls == 0 {
            0.0
        } else {
            peers as f64 / fulls as f64
        }
    }

    /// The want-list for one peer's fetch session, using the sim
    /// content convention (fingerprint is a pure function of the live
    /// generation, [`BlockDirectory::fingerprint`]). Live migrations
    /// build their want-lists from the freeze-time content manifest
    /// instead.
    pub fn wants_for(&self, peer: u64, live: &MetaDisk) -> Vec<BlockWant> {
        let Some(bm) = self.per_peer.get(&peer) else {
            return Vec::new();
        };
        bm.iter_set()
            .filter(|&b| b < live.num_blocks())
            .map(|b| {
                let generation = live.generation(b);
                BlockWant {
                    block: b as u64,
                    fingerprint: BlockDirectory::fingerprint(generation),
                    generation: generation as u64,
                }
            })
            .collect()
    }
}

/// Stateless planning entry point; see [`FetchPlanner::plan`].
#[derive(Debug, Default)]
pub struct FetchPlanner;

impl FetchPlanner {
    /// Partition `owed` for one migration of `vm`.
    ///
    /// * `dst_resident` — fingerprints already materialized at the
    ///   destination (template image, prior clone); `None` disables the
    ///   ref-only class.
    /// * `peer_budgets` — NIC bandwidth each candidate holder offers
    ///   this migration (same unit as `dest_ingest`); hosts absent from
    ///   the map are never assigned, budget `0.0` means "hold but do
    ///   not serve".
    /// * `dest_ingest` — the destination's ingest capacity; peer shares
    ///   are max-min fair within it. `0.0` forces everything that must
    ///   move onto the source path.
    ///
    /// Assignment is deterministic: blocks are visited in ascending
    /// index order and each goes to the eligible peer with the least
    /// load per unit of share (ties to the lowest host id).
    pub fn plan(
        dir: &BlockDirectory,
        vm: u64,
        live: &MetaDisk,
        owed: &FlatBitmap,
        dst_resident: Option<&ContentIndex>,
        peer_budgets: &BTreeMap<u64, f64>,
        dest_ingest: f64,
    ) -> FetchPlan {
        let n = live.num_blocks();
        let mut plan = FetchPlan {
            source_only: FlatBitmap::new(n),
            any_peer: FlatBitmap::new(n),
            ref_only: FlatBitmap::new(n),
            per_peer: BTreeMap::new(),
            shares: BTreeMap::new(),
        };

        // Max-min shares over the budgeted holders, in ascending host
        // order (BTreeMap iteration) so the allocation is reproducible.
        let hosts: Vec<u64> = peer_budgets.keys().copied().collect();
        let demands: Vec<f64> = peer_budgets.values().copied().collect();
        let alloc = max_min_share(dest_ingest, &demands);
        for (host, share) in hosts.iter().copied().zip(alloc) {
            plan.shares.insert(host, share);
        }

        // Fresh bitmaps per serving-eligible peer, computed once.
        let mut fresh: BTreeMap<u64, FlatBitmap> = BTreeMap::new();
        for (&host, &share) in &plan.shares {
            if share > 0.0 {
                if let Some(bm) = dir.fresh_bitmap(vm, host, live) {
                    fresh.insert(host, bm);
                }
            }
        }

        let mut assigned: BTreeMap<u64, usize> = BTreeMap::new();
        for block in owed.iter_set() {
            if block >= n {
                continue;
            }
            let fp = BlockDirectory::fingerprint(live.generation(block));
            if dst_resident.is_some_and(|idx| idx.contains(fp)) {
                plan.ref_only.set(block);
                continue;
            }

            // Least load per unit of share, scanning ascending host id;
            // strict inequality keeps the lowest id on ties. Comparing
            // cross-products avoids dividing by tiny shares.
            let mut best: Option<(u64, f64, usize)> = None;
            for (&host, bm) in &fresh {
                if !bm.get(block) {
                    continue;
                }
                let share = plan.shares.get(&host).copied().unwrap_or(0.0);
                let load = assigned.get(&host).copied().unwrap_or(0);
                let better = match best {
                    None => true,
                    Some((_, best_share, best_load)) => {
                        (load as f64) * best_share < (best_load as f64) * share
                    }
                };
                if better {
                    best = Some((host, share, load));
                }
            }
            match best {
                Some((host, _, _)) => {
                    plan.any_peer.set(block);
                    plan.per_peer
                        .entry(host)
                        .or_insert_with(|| FlatBitmap::new(n))
                        .set(block);
                    *assigned.entry(host).or_insert(0) += 1;
                }
                None => {
                    plan.source_only.set(block);
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdisk::hash_u64;

    fn owed_all(n: usize) -> FlatBitmap {
        FlatBitmap::all_set(n)
    }

    fn budgets(pairs: &[(u64, f64)]) -> BTreeMap<u64, f64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn no_peers_means_all_source_only() {
        let live = MetaDisk::new(32);
        let dir = BlockDirectory::new();
        let plan = FetchPlanner::plan(
            &dir,
            1,
            &live,
            &owed_all(32),
            None,
            &BTreeMap::new(),
            1000.0,
        );
        assert_eq!(plan.source_only.count_ones(), 32);
        assert_eq!(plan.any_peer.count_ones(), 0);
        assert_eq!(plan.owed_total(), 32);
        assert_eq!(plan.peer_fraction(), 0.0);
    }

    #[test]
    fn zero_ingest_forces_source_path() {
        let live = MetaDisk::new(8);
        let mut dir = BlockDirectory::new();
        dir.publish(1, 10, &live.clone());
        let plan = FetchPlanner::plan(
            &dir,
            1,
            &live,
            &owed_all(8),
            None,
            &budgets(&[(10, 500.0)]),
            0.0,
        );
        assert_eq!(plan.source_only.count_ones(), 8);
        assert!(plan.per_peer.is_empty());
    }

    #[test]
    fn fresh_peers_absorb_fulls_balanced() {
        let live = MetaDisk::new(100);
        let mut dir = BlockDirectory::new();
        for host in [10, 11, 12, 13] {
            dir.publish(1, host, &live.clone());
        }
        let plan = FetchPlanner::plan(
            &dir,
            1,
            &live,
            &owed_all(100),
            None,
            &budgets(&[(10, 250.0), (11, 250.0), (12, 250.0), (13, 250.0)]),
            1000.0,
        );
        assert_eq!(plan.source_only.count_ones(), 0);
        assert_eq!(plan.any_peer.count_ones(), 100);
        assert_eq!(plan.peer_fraction(), 1.0);
        // Equal shares: assignment balanced to exactly 25 each.
        for host in [10, 11, 12, 13] {
            assert_eq!(plan.per_peer.get(&host).map(|b| b.count_ones()), Some(25));
        }
    }

    #[test]
    fn stale_blocks_fall_back_to_source() {
        let mut live = MetaDisk::new(10);
        let mut dir = BlockDirectory::new();
        dir.publish(1, 10, &live.clone());
        // Writes after the peer's snapshot make blocks 0..3 stale there.
        for b in 0..3 {
            live.write(b);
        }
        let plan = FetchPlanner::plan(
            &dir,
            1,
            &live,
            &owed_all(10),
            None,
            &budgets(&[(10, 100.0)]),
            100.0,
        );
        assert_eq!(plan.source_only.count_ones(), 3);
        assert_eq!(plan.any_peer.count_ones(), 7);
        for b in 0..3 {
            assert!(plan.source_only.get(b));
        }
    }

    #[test]
    fn resident_content_becomes_ref_only() {
        let live = MetaDisk::new(6);
        let mut dir = BlockDirectory::new();
        dir.publish(1, 10, &live.clone());
        // Destination already holds content for generation 0 (all blocks).
        let resident = ContentIndex::from_fps(vec![hash_u64(0)]);
        let plan = FetchPlanner::plan(
            &dir,
            1,
            &live,
            &owed_all(6),
            Some(&resident),
            &budgets(&[(10, 100.0)]),
            100.0,
        );
        assert_eq!(plan.ref_only.count_ones(), 6);
        assert_eq!(plan.any_peer.count_ones(), 0);
        assert_eq!(plan.source_only.count_ones(), 0);
        // ref-only blocks move no bytes, so peer_fraction has no fulls.
        assert_eq!(plan.peer_fraction(), 0.0);
    }

    #[test]
    fn shares_track_budget_ratios() {
        let live = MetaDisk::new(90);
        let mut dir = BlockDirectory::new();
        dir.publish(1, 10, &live.clone());
        dir.publish(1, 11, &live.clone());
        // Host 11 offers twice the budget; ingest is the binding cap.
        let plan = FetchPlanner::plan(
            &dir,
            1,
            &live,
            &owed_all(90),
            None,
            &budgets(&[(10, 100.0), (11, 200.0)]),
            300.0,
        );
        let s10 = plan.shares.get(&10).copied().unwrap_or(0.0);
        let s11 = plan.shares.get(&11).copied().unwrap_or(0.0);
        assert!((s10 - 100.0).abs() < 1e-9, "s10={s10}");
        assert!((s11 - 200.0).abs() < 1e-9, "s11={s11}");
        // Assignment follows the 1:2 share ratio.
        let a10 = plan.per_peer.get(&10).map(|b| b.count_ones()).unwrap_or(0);
        let a11 = plan.per_peer.get(&11).map(|b| b.count_ones()).unwrap_or(0);
        assert_eq!(a10 + a11, 90);
        assert_eq!(a10, 30, "a10={a10} a11={a11}");
    }

    #[test]
    fn zero_budget_peer_never_serves() {
        let live = MetaDisk::new(12);
        let mut dir = BlockDirectory::new();
        dir.publish(1, 10, &live.clone());
        dir.publish(1, 11, &live.clone());
        let plan = FetchPlanner::plan(
            &dir,
            1,
            &live,
            &owed_all(12),
            None,
            &budgets(&[(10, 0.0), (11, 100.0)]),
            100.0,
        );
        assert!(plan.per_peer.get(&10).is_none());
        assert_eq!(plan.per_peer.get(&11).map(|b| b.count_ones()), Some(12));
    }

    #[test]
    fn wants_for_uses_sim_fingerprint_convention() {
        let mut live = MetaDisk::new(4);
        live.write(1);
        let mut dir = BlockDirectory::new();
        dir.publish(1, 10, &live.clone());
        let plan = FetchPlanner::plan(
            &dir,
            1,
            &live,
            &owed_all(4),
            None,
            &budgets(&[(10, 100.0)]),
            100.0,
        );
        let wants = plan.wants_for(10, &live);
        assert_eq!(wants.len(), 4);
        let w1 = wants.iter().find(|w| w.block == 1).expect("block 1 owed");
        assert_eq!(w1.generation, live.generation(1) as u64);
        assert_eq!(w1.fingerprint, hash_u64(live.generation(1) as u64));
        assert!(plan.wants_for(99, &live).is_empty());
    }

    #[test]
    fn plan_is_deterministic() {
        let mut live = MetaDisk::new(64);
        for b in (0..64).step_by(5) {
            live.write(b);
        }
        let mut dir = BlockDirectory::new();
        dir.publish(1, 10, &live.clone());
        dir.publish(1, 11, &MetaDisk::new(64));
        let b = budgets(&[(10, 100.0), (11, 80.0)]);
        let p1 = FetchPlanner::plan(&dir, 1, &live, &owed_all(64), None, &b, 150.0);
        let p2 = FetchPlanner::plan(&dir, 1, &live, &owed_all(64), None, &b, 150.0);
        assert_eq!(p1.source_only.words(), p2.source_only.words());
        assert_eq!(p1.any_peer.words(), p2.any_peer.words());
        for host in [10u64, 11] {
            assert_eq!(
                p1.per_peer.get(&host).map(|x| x.words().to_vec()),
                p2.per_peer.get(&host).map(|x| x.words().to_vec())
            );
        }
    }
}
