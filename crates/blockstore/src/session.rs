//! Per-peer fetch sessions on the simnet transport.
//!
//! A session pairs one destination with one holder: the destination
//! pipelines `BlockRequest` frames (windowed, so a slow peer never
//! holds unbounded state), the holder answers each with `BlockData` or
//! `BlockMiss`, and the destination re-verifies every payload against
//! the requested fingerprint before applying it. Session teardown uses
//! the same `MigrationComplete` / `CompleteAck` handshake as the main
//! migration channel.
//!
//! Like the live engine's resume path, both ends reconcile shipped/got
//! explicitly: [`fetch_blocks`] returns exactly which wants were
//! served, which the peer declined, and whether the link died, so the
//! caller can re-plan the remainder (`wants − got`) against another
//! holder instead of failing the migration.

use std::collections::BTreeMap;

use block_bitmap::{DirtyMap, FlatBitmap};
use bytes::Bytes;
use simnet::proto::MigMessage;
use simnet::transport::{Transport, TransportError};
use vdisk::{hash_block, hash_u64};

/// Requests kept in flight per session. Bounds peer-side queueing and
/// the reconciliation window lost when a link dies mid-fetch.
pub const FETCH_WINDOW: usize = 32;

/// One owed block the destination wants from this peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockWant {
    /// Block index in the destination image.
    pub block: u64,
    /// Expected content fingerprint; payloads failing re-verification
    /// are counted as misses, never applied.
    pub fingerprint: u64,
    /// Generation the fingerprint was recorded at.
    pub generation: u64,
}

/// What a holder serves from. Implementations prove freshness before
/// shipping: serve only when the held content still matches the
/// requested fingerprint/generation, otherwise answer `None` and the
/// session turns it into a [`MigMessage::BlockMiss`].
pub trait BlockSource {
    /// Return the block's payload if it can be served fresh.
    fn fetch(&self, block: u64, fingerprint: u64, generation: u64) -> Option<Bytes>;
}

/// Shipped/got reconciliation state returned by [`fetch_blocks`].
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// Blocks verified and applied.
    pub got: FlatBitmap,
    /// Blocks the peer answered with [`MigMessage::BlockMiss`] or a
    /// payload that failed fingerprint re-verification.
    pub missed: FlatBitmap,
    /// Payload bytes applied (post-verification).
    pub bytes: u64,
    /// True when the link died before every want was answered. Wants
    /// neither in `got` nor `missed` were in flight or unsent; re-plan
    /// them against another holder.
    pub failed: bool,
}

impl FetchOutcome {
    /// Wants the session did not resolve: the re-plan remainder.
    pub fn unresolved(&self, wants: &[BlockWant], nbits: usize) -> FlatBitmap {
        let mut rest = FlatBitmap::new(nbits);
        for w in wants {
            let b = w.block as usize;
            if b < nbits && !self.got.get(b) && !self.missed.get(b) {
                rest.set(b);
            }
        }
        rest
    }
}

/// Holder-side serve loop: answer fetch requests until the destination
/// closes the session with `MigrationComplete` (acked) or the link
/// dies. Returns the payload bytes served.
pub fn serve_blocks<T: Transport>(t: &T, src: &dyn BlockSource) -> Result<u64, TransportError> {
    let mut served = 0u64;
    loop {
        match t.recv() {
            Ok(MigMessage::BlockRequest {
                block,
                fingerprint,
                generation,
            }) => match src.fetch(block, fingerprint, generation) {
                Some(payload) => {
                    served += payload.len() as u64;
                    t.send(MigMessage::BlockData {
                        block,
                        generation,
                        payload_len: payload.len() as u64,
                        payload: Some(payload),
                    })?;
                }
                None => t.send(MigMessage::BlockMiss { block })?,
            },
            Ok(MigMessage::MigrationComplete) => {
                // Best-effort ack: the destination may already be gone,
                // and a dead link at goodbye is not a serve failure.
                if t.send(MigMessage::CompleteAck).is_err() {
                    return Ok(served);
                }
                return Ok(served);
            }
            // Unrelated traffic on a shared link: not ours to handle.
            Ok(_) => {}
            Err(e) if e.is_fatal() => return Err(e),
            // Timeout/Empty from a pollable transport: keep serving.
            Err(_) => {}
        }
    }
}

/// Destination-side fetch loop: pipeline `wants` through the session
/// with at most [`FETCH_WINDOW`] requests outstanding, verify each
/// payload, and hand verified content to `apply`.
///
/// `nbits` sizes the outcome bitmaps (the destination image's block
/// count); wants outside it are ignored. `apply` receives
/// `(block, payload)` where `payload` is `None` for metadata-only
/// transfers (sim mode) — those are verified against the generation
/// fingerprint convention (`hash_u64(generation)`) instead of the
/// payload hash.
pub fn fetch_blocks<T: Transport>(
    t: &T,
    wants: &[BlockWant],
    nbits: usize,
    apply: &mut dyn FnMut(u64, Option<&Bytes>),
) -> FetchOutcome {
    let mut out = FetchOutcome {
        got: FlatBitmap::new(nbits),
        missed: FlatBitmap::new(nbits),
        bytes: 0,
        failed: false,
    };
    let mut inflight: BTreeMap<u64, BlockWant> = BTreeMap::new();
    let mut next = 0usize;

    'session: while next < wants.len() || !inflight.is_empty() {
        // Refill the window.
        while next < wants.len() && inflight.len() < FETCH_WINDOW {
            let w = wants[next];
            next += 1;
            if (w.block as usize) >= nbits {
                continue;
            }
            if t.send(MigMessage::BlockRequest {
                block: w.block,
                fingerprint: w.fingerprint,
                generation: w.generation,
            })
            .is_err()
            {
                out.failed = true;
                break 'session;
            }
            inflight.insert(w.block, w);
        }
        if inflight.is_empty() {
            continue;
        }
        match t.recv() {
            Ok(MigMessage::BlockData {
                block,
                generation,
                payload_len,
                payload,
            }) => {
                let Some(want) = inflight.remove(&block) else {
                    continue; // unsolicited; drop
                };
                let verified = match &payload {
                    Some(data) => hash_block(data) == want.fingerprint,
                    // Metadata-only: the sim convention fingerprints a
                    // block purely by its generation.
                    None => {
                        generation == want.generation && hash_u64(generation) == want.fingerprint
                    }
                };
                if verified {
                    out.bytes += match &payload {
                        Some(data) => data.len() as u64,
                        None => payload_len,
                    };
                    apply(block, payload.as_ref());
                    out.got.set(block as usize);
                } else {
                    out.missed.set(block as usize);
                }
            }
            Ok(MigMessage::BlockMiss { block }) => {
                if inflight.remove(&block).is_some() {
                    out.missed.set(block as usize);
                }
            }
            Ok(_) => {}
            Err(e) if e.is_fatal() => {
                out.failed = true;
                break 'session;
            }
            Err(_) => {}
        }
    }

    if !out.failed {
        // Graceful goodbye; a peer that dies during the handshake has
        // still served everything we asked for.
        if t.send(MigMessage::MigrationComplete).is_ok() {
            loop {
                match t.recv() {
                    Ok(MigMessage::CompleteAck) => break,
                    Ok(_) => {}
                    Err(e) if e.is_fatal() => break,
                    Err(_) => {}
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::fault::{faulty_named_pair, FaultPlan};
    use simnet::transport::duplex;
    use std::thread;

    /// A peer holding every block at `gen`, payload = block index bytes.
    struct TestHolder {
        gen: u64,
        payload_len: usize,
        refuse: Vec<u64>,
    }

    impl TestHolder {
        fn payload(&self, block: u64) -> Bytes {
            let mut v = vec![0u8; self.payload_len];
            v[..8].copy_from_slice(&block.to_le_bytes());
            Bytes::copy_from_slice(&v)
        }
    }

    impl BlockSource for TestHolder {
        fn fetch(&self, block: u64, fingerprint: u64, generation: u64) -> Option<Bytes> {
            if generation != self.gen || self.refuse.contains(&block) {
                return None;
            }
            let payload = self.payload(block);
            // Serve only on proof: the held content must still match
            // what the destination expects.
            (hash_block(&payload) == fingerprint).then_some(payload)
        }
    }

    fn wants_for(holder: &TestHolder, blocks: &[u64]) -> Vec<BlockWant> {
        blocks
            .iter()
            .map(|&b| BlockWant {
                block: b,
                fingerprint: hash_block(&holder.payload(b)),
                generation: holder.gen,
            })
            .collect()
    }

    #[test]
    fn round_trip_serves_and_verifies() {
        let (a, b) = duplex();
        let holder = TestHolder {
            gen: 3,
            payload_len: 64,
            refuse: vec![5],
        };
        let wants = wants_for(&holder, &[0, 1, 5, 7, 40]);

        let server = thread::spawn(move || {
            let holder = TestHolder {
                gen: 3,
                payload_len: 64,
                refuse: vec![5],
            };
            serve_blocks(&b, &holder)
        });

        let mut applied = Vec::new();
        let out = fetch_blocks(&a, &wants, 64, &mut |blk, payload| {
            applied.push((blk, payload.map(|p| p.len())));
        });
        let served = server.join().expect("server thread").expect("serve ok");

        assert!(!out.failed);
        assert_eq!(out.got.count_ones(), 4);
        assert_eq!(out.missed.count_ones(), 1);
        assert!(out.missed.get(5));
        assert_eq!(out.bytes, 4 * 64);
        assert_eq!(served, 4 * 64);
        assert_eq!(applied.len(), 4);
        assert!(applied.iter().all(|&(_, len)| len == Some(64)));
        assert!(out.unresolved(&wants, 64).none_set());
    }

    #[test]
    fn stale_generation_is_missed_not_applied() {
        let (a, b) = duplex();
        let holder = TestHolder {
            gen: 2,
            payload_len: 32,
            refuse: vec![],
        };
        // Destination wants generation 9 — the holder moved on.
        let mut wants = wants_for(&holder, &[1, 2]);
        for w in &mut wants {
            w.generation = 9;
        }

        let server = thread::spawn(move || {
            let holder = TestHolder {
                gen: 2,
                payload_len: 32,
                refuse: vec![],
            };
            serve_blocks(&b, &holder)
        });

        let out = fetch_blocks(&a, &wants, 8, &mut |_, _| panic!("must not apply"));
        server.join().expect("server thread").expect("serve ok");
        assert_eq!(out.got.count_ones(), 0);
        assert_eq!(out.missed.count_ones(), 2);
        assert!(!out.failed);
    }

    #[test]
    fn corrupt_payload_fails_verification() {
        // A holder that serves bytes not matching the fingerprint.
        struct LyingHolder;
        impl BlockSource for LyingHolder {
            fn fetch(&self, _b: u64, _fp: u64, _g: u64) -> Option<Bytes> {
                Some(Bytes::copy_from_slice(b"not what you asked for!!"))
            }
        }
        let (a, b) = duplex();
        let server = thread::spawn(move || serve_blocks(&b, &LyingHolder));
        let wants = vec![BlockWant {
            block: 3,
            fingerprint: 0xDEAD_BEEF,
            generation: 1,
        }];
        let out = fetch_blocks(&a, &wants, 8, &mut |_, _| panic!("must not apply"));
        server.join().expect("server thread").expect("serve ok");
        assert!(out.missed.get(3));
        assert!(!out.got.get(3));
    }

    #[test]
    fn metadata_only_blockdata_verifies_by_generation() {
        // Sim-mode peer: answers with payload=None and the generation.
        let (a, b) = duplex();
        let server = thread::spawn(move || loop {
            match b.recv() {
                Ok(MigMessage::BlockRequest {
                    block, generation, ..
                }) => {
                    b.send(MigMessage::BlockData {
                        block,
                        generation,
                        payload_len: 4096,
                        payload: None,
                    })
                    .expect("send");
                }
                Ok(MigMessage::MigrationComplete) => {
                    b.send(MigMessage::CompleteAck).expect("ack");
                    break;
                }
                Ok(_) => {}
                Err(e) if e.is_fatal() => break,
                Err(_) => {}
            }
        });
        let wants = vec![BlockWant {
            block: 2,
            fingerprint: hash_u64(7),
            generation: 7,
        }];
        let mut applied = 0;
        let out = fetch_blocks(&a, &wants, 8, &mut |_, payload| {
            assert!(payload.is_none());
            applied += 1;
        });
        server.join().expect("server thread");
        assert_eq!(applied, 1);
        assert!(out.got.get(2));
        assert_eq!(out.bytes, 4096);
    }

    #[test]
    fn killed_session_leaves_replannable_remainder() {
        // Named-session permanent kill after 40 destination sends: the
        // fetch fails partway and the outcome reconciles exactly.
        let (a, b) = duplex();
        let plan = FaultPlan::none().kill_session("peer-7", 40);
        let (a, b) = faulty_named_pair(a, b, &plan, "peer-7", 0);

        let holder = TestHolder {
            gen: 1,
            payload_len: 16,
            refuse: vec![],
        };
        let blocks: Vec<u64> = (0..200).collect();
        let wants = wants_for(&holder, &blocks);

        let server = thread::spawn(move || {
            let holder = TestHolder {
                gen: 1,
                payload_len: 16,
                refuse: vec![],
            };
            let _ = serve_blocks(&b, &holder);
        });

        let out = fetch_blocks(&a, &wants, 256, &mut |_, _| {});
        server.join().expect("server thread");

        assert!(out.failed, "link was killed mid-session");
        let got = out.got.count_ones();
        assert!(got < 200, "not everything can have landed");
        let rest = out.unresolved(&wants, 256);
        assert_eq!(got + out.missed.count_ones() + rest.count_ones(), 200);
        assert!(rest.count_ones() > 0);
        // No overlap between resolved and remainder.
        let mut overlap = rest.clone();
        overlap.intersect_with(&out.got);
        assert!(overlap.none_set());
    }
}
