//! Argument parsing (std-only, no external parser).

use orchestrator::Policy;
use workloads::WorkloadKind;

/// Top-level usage text.
pub const USAGE: &str = "\
usage:
  vmmigrate simulate   --workload KIND [--scale paper|ci] [--rate-limit MBPS]
                       [--bitmap flat|layered] [--streams N] [--seed N] [--json]
                       [--no-dedup] [--no-compress] [--sources N]
                       [--no-multisource] [--trace-out FILE] [--metrics-out FILE]
  vmmigrate roundtrip  --workload KIND [--scale paper|ci] [--dwell SECS] [--json]
  vmmigrate live       [--blocks N] [--workload KIND] [--rate-limit MBPS]
                       [--streams N] [--seed N] [--tcp] [--faults N]
                       [--max-reconnects N] [--no-dedup] [--no-compress]
                       [--sources N] [--no-multisource]
                       [--trace-out FILE] [--metrics-out FILE]
  vmmigrate baselines  --workload KIND [--scale paper|ci] [--json]
  vmmigrate orchestrate [--hosts N] [--vms N]
                       [--policy fifo|srdf|im-aware|cycle-aware]
                       [--blocks N] [--seed N] [--faults N] [--dwell SECS]
                       [--no-dedup] [--no-multisource] [--scenario FILE]
                       [--json] [--trace-out FILE] [--metrics-out FILE]
  vmmigrate trace record  --workload KIND --secs N --out FILE
  vmmigrate trace analyze FILE

KIND: web | video | diabolical | kernel-build | idle

orchestrate runs a deterministic virtual-time cluster: every VM is
evacuated at t=0, dwells, then migrates again, with concurrent streams
contending for per-host NIC/disk capacity under the chosen scheduling
policy (im-aware returns VMs to hosts holding stale replicas, so the
second wave ships only bitmap diffs).

--trace-out writes the telemetry event journal (JSONL) and prints a phase
summary; --metrics-out writes a JSON metrics snapshot. Either flag enables
the recorder; without them telemetry stays disabled (a single relaxed
atomic load per call site).

Content-aware transfer is on by default: blocks the destination provably
already holds cross as 16-byte references (dedup), and residual full
blocks are compressed on the wire. --no-dedup / --no-compress restore the
classic data plane exactly (bit-identical reports); --dedup / --compress
re-enable after a --no-* earlier on the command line.

orchestrate --scenario FILE runs a declarative .scn chaos scenario
instead of the built-in two-wave run: the file declares the fleet
(hosts, vms, seed, policy), islands, WAN links, per-host capacities,
workload cycles, and a virtual-time schedule of partitions, heals,
host crashes, link degrades, and rolling maintenance waves (see
scenarios/*.scn). The spec's fleet geometry wins over --hosts/--vms;
its policy and seed (if set) win over --policy and --seed.

Multi-source transfer is on by default. simulate --sources N runs the
template-clone fan-in scenario: N peer hosts hold the golden image the
migrating VM was cloned from, and the block directory plans owed full
blocks across them under per-host NIC budgets. live --sources N registers
N shared-storage replica holders as failover peers: if the source dies
with its reconnect budget exhausted, the destination completes the image
from the survivors. --no-multisource (all subcommands) restores the
single-source engine exactly (bit-identical reports).";

/// Parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Cmd {
    /// One simulated TPM migration.
    Simulate(SimArgs),
    /// TPM out, dwell, IM back.
    Roundtrip(SimArgs),
    /// Live threaded migration.
    Live(LiveArgs),
    /// Compare TPM with the three baselines.
    Baselines(SimArgs),
    /// Deterministic cluster run under a scheduling policy.
    Orchestrate(OrchArgs),
    /// Record a workload trace to a JSON file.
    TraceRecord {
        /// Workload to record.
        workload: WorkloadKind,
        /// Virtual seconds to record.
        secs: u64,
        /// Output path.
        out: String,
    },
    /// Analyze a recorded trace's write locality.
    TraceAnalyze {
        /// Input path.
        path: String,
    },
}

/// Options shared by the simulated subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct SimArgs {
    pub workload: WorkloadKind,
    pub paper_scale: bool,
    pub rate_limit_mbps: Option<f64>,
    pub layered: bool,
    /// Parallel disk data-plane streams (word-aligned bitmap shards).
    pub streams: usize,
    /// Content-addressed dedup (on by default; `--no-dedup` disables).
    pub dedup: bool,
    /// Wire compression for residual full blocks (`--no-compress` disables).
    pub compress: bool,
    /// Multi-source block fetch (`--no-multisource` disables).
    pub multisource: bool,
    /// Template-clone fan-in: this many peer hosts hold the golden image
    /// (0 = classic two-host migration).
    pub sources: usize,
    pub seed: u64,
    pub dwell_secs: u64,
    pub json: bool,
    /// Write the telemetry event journal (JSONL) here.
    pub trace_out: Option<String>,
    /// Write a JSON metrics snapshot here.
    pub metrics_out: Option<String>,
}

impl Default for SimArgs {
    fn default() -> Self {
        Self {
            workload: WorkloadKind::Web,
            paper_scale: true,
            rate_limit_mbps: None,
            layered: false,
            streams: 1,
            dedup: true,
            compress: true,
            multisource: true,
            sources: 0,
            seed: 2008,
            dwell_secs: 1500,
            json: false,
            trace_out: None,
            metrics_out: None,
        }
    }
}

/// Options for the live subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveArgs {
    pub workload: WorkloadKind,
    pub blocks: usize,
    pub rate_limit_mbps: Option<f64>,
    /// Parallel disk data-plane streams (word-aligned bitmap shards).
    pub streams: usize,
    /// Content-addressed dedup (on by default; `--no-dedup` disables).
    pub dedup: bool,
    /// Wire compression for residual full blocks (`--no-compress` disables).
    pub compress: bool,
    /// Multi-source failover (`--no-multisource` disables).
    pub multisource: bool,
    /// Register this many shared-storage replica holders as failover
    /// peers (0 = classic two-host migration).
    pub sources: usize,
    pub seed: u64,
    /// Run over real loopback TCP sockets instead of in-process channels.
    pub tcp: bool,
    /// Inject this many seeded connection resets mid-migration; the
    /// engine must reconnect and resume from the block-bitmap.
    pub faults: u32,
    /// Reconnect attempts permitted after the initial connection.
    pub max_reconnects: u32,
    /// Write the telemetry event journal (JSONL) here.
    pub trace_out: Option<String>,
    /// Write a JSON metrics snapshot here.
    pub metrics_out: Option<String>,
}

impl Default for LiveArgs {
    fn default() -> Self {
        Self {
            workload: WorkloadKind::Web,
            blocks: 65_536,
            rate_limit_mbps: None,
            streams: 1,
            dedup: true,
            compress: true,
            multisource: true,
            sources: 0,
            seed: 2008,
            tcp: false,
            faults: 0,
            max_reconnects: 3,
            trace_out: None,
            metrics_out: None,
        }
    }
}

/// Options for the orchestrate subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct OrchArgs {
    pub hosts: usize,
    pub vms: usize,
    pub policy: Policy,
    pub blocks: usize,
    /// Content-addressed dedup in the cluster data plane (`--no-dedup`
    /// disables; byte accounting only, pacing is unchanged).
    pub dedup: bool,
    /// Multi-source peer-served accounting (`--no-multisource` disables;
    /// byte- and clock-identical either way).
    pub multisource: bool,
    pub seed: u64,
    /// Seeded connection resets injected per migration stream.
    pub faults: u32,
    /// Dwell between the evacuation wave and the return wave.
    pub dwell_secs: u64,
    pub json: bool,
    /// Run a declarative `.scn` chaos scenario from this file instead
    /// of the built-in two-wave run.
    pub scenario: Option<String>,
    /// Write the telemetry event journal (JSONL) here.
    pub trace_out: Option<String>,
    /// Write a JSON metrics snapshot here.
    pub metrics_out: Option<String>,
}

impl Default for OrchArgs {
    fn default() -> Self {
        Self {
            hosts: 4,
            vms: 8,
            policy: Policy::ImAware,
            blocks: 65_536,
            dedup: true,
            multisource: true,
            seed: 2008,
            faults: 0,
            dwell_secs: 30,
            json: false,
            scenario: None,
            trace_out: None,
            metrics_out: None,
        }
    }
}

fn parse_orch(rest: &[String]) -> Result<OrchArgs, String> {
    let mut a = OrchArgs::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--hosts" => {
                a.hosts = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "hosts must be an integer".to_string())?;
                if a.hosts < 2 {
                    return Err("orchestrate needs at least 2 hosts".into());
                }
            }
            "--vms" => {
                a.vms = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "vms must be an integer".to_string())?;
                if a.vms == 0 {
                    return Err("orchestrate needs at least 1 VM".into());
                }
            }
            "--policy" => {
                let s = need(&mut it, flag)?;
                a.policy = Policy::parse(s)
                    .ok_or_else(|| format!("unknown policy '{s}' (fifo|srdf|im-aware)"))?;
            }
            "--blocks" => {
                a.blocks = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "blocks must be an integer".to_string())?;
                if a.blocks < 8_192 {
                    return Err("orchestrate needs at least 8192 blocks per VM".into());
                }
            }
            "--seed" => {
                a.seed = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "seed must be an integer".to_string())?
            }
            "--faults" => {
                a.faults = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "faults must be an integer".to_string())?
            }
            "--dwell" => {
                a.dwell_secs = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "dwell must be an integer (seconds)".to_string())?
            }
            "--dedup" => a.dedup = true,
            "--no-dedup" => a.dedup = false,
            "--multisource" => a.multisource = true,
            "--no-multisource" => a.multisource = false,
            "--json" => a.json = true,
            "--scenario" => a.scenario = Some(need(&mut it, flag)?.clone()),
            "--trace-out" => a.trace_out = Some(need(&mut it, flag)?.clone()),
            "--metrics-out" => a.metrics_out = Some(need(&mut it, flag)?.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(a)
}

fn parse_workload(s: &str) -> Result<WorkloadKind, String> {
    match s {
        "web" => Ok(WorkloadKind::Web),
        "video" => Ok(WorkloadKind::Video),
        "diabolical" => Ok(WorkloadKind::Diabolical),
        "kernel-build" | "kernel" => Ok(WorkloadKind::KernelBuild),
        "idle" => Ok(WorkloadKind::Idle),
        other => Err(format!("unknown workload '{other}'")),
    }
}

fn need<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} requires a value"))
}

fn parse_sim(rest: &[String]) -> Result<SimArgs, String> {
    let mut a = SimArgs::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workload" => a.workload = parse_workload(need(&mut it, flag)?)?,
            "--scale" => {
                a.paper_scale = match need(&mut it, flag)?.as_str() {
                    "paper" => true,
                    "ci" | "small" => false,
                    other => return Err(format!("unknown scale '{other}'")),
                }
            }
            "--rate-limit" => {
                let v: f64 = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "rate limit must be a number (MB/s)".to_string())?;
                if v <= 0.0 {
                    return Err("rate limit must be positive".into());
                }
                a.rate_limit_mbps = Some(v);
            }
            "--bitmap" => {
                a.layered = match need(&mut it, flag)?.as_str() {
                    "flat" => false,
                    "layered" => true,
                    other => return Err(format!("unknown bitmap kind '{other}'")),
                }
            }
            "--streams" => {
                a.streams = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "streams must be an integer".to_string())?;
                if a.streams == 0 {
                    return Err("streams must be at least 1".into());
                }
            }
            "--seed" => {
                a.seed = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "seed must be an integer".to_string())?
            }
            "--dwell" => {
                a.dwell_secs = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "dwell must be an integer (seconds)".to_string())?
            }
            "--dedup" => a.dedup = true,
            "--no-dedup" => a.dedup = false,
            "--compress" => a.compress = true,
            "--no-compress" => a.compress = false,
            "--multisource" => a.multisource = true,
            "--no-multisource" => a.multisource = false,
            "--sources" => {
                a.sources = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "sources must be an integer".to_string())?
            }
            "--json" => a.json = true,
            "--trace-out" => a.trace_out = Some(need(&mut it, flag)?.clone()),
            "--metrics-out" => a.metrics_out = Some(need(&mut it, flag)?.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(a)
}

fn parse_live(rest: &[String]) -> Result<LiveArgs, String> {
    let mut a = LiveArgs::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workload" => a.workload = parse_workload(need(&mut it, flag)?)?,
            "--blocks" => {
                a.blocks = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "blocks must be an integer".to_string())?;
                if a.blocks < 16_384 {
                    return Err("live mode needs at least 16384 blocks".into());
                }
            }
            "--rate-limit" => {
                let v: f64 = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "rate limit must be a number (MB/s)".to_string())?;
                a.rate_limit_mbps = Some(v);
            }
            "--streams" => {
                a.streams = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "streams must be an integer".to_string())?;
                if a.streams == 0 {
                    return Err("streams must be at least 1".into());
                }
            }
            "--seed" => {
                a.seed = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "seed must be an integer".to_string())?
            }
            "--dedup" => a.dedup = true,
            "--no-dedup" => a.dedup = false,
            "--compress" => a.compress = true,
            "--no-compress" => a.compress = false,
            "--multisource" => a.multisource = true,
            "--no-multisource" => a.multisource = false,
            "--sources" => {
                a.sources = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "sources must be an integer".to_string())?
            }
            "--tcp" => a.tcp = true,
            "--faults" => {
                a.faults = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "faults must be an integer".to_string())?
            }
            "--max-reconnects" => {
                a.max_reconnects = need(&mut it, flag)?
                    .parse()
                    .map_err(|_| "max-reconnects must be an integer".to_string())?
            }
            "--trace-out" => a.trace_out = Some(need(&mut it, flag)?.clone()),
            "--metrics-out" => a.metrics_out = Some(need(&mut it, flag)?.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if a.faults > a.max_reconnects {
        return Err(format!(
            "{} faults cannot be survived with only {} reconnects",
            a.faults, a.max_reconnects
        ));
    }
    if a.tcp && a.sources > 0 {
        return Err(
            "--sources registers in-process replica holders; not available with --tcp".into(),
        );
    }
    Ok(a)
}

/// Parse a full argument vector.
pub fn parse(argv: &[String]) -> Result<Cmd, String> {
    let Some((sub, rest)) = argv.split_first() else {
        return Err("missing subcommand".into());
    };
    match sub.as_str() {
        "simulate" => Ok(Cmd::Simulate(parse_sim(rest)?)),
        "roundtrip" => Ok(Cmd::Roundtrip(parse_sim(rest)?)),
        "live" => Ok(Cmd::Live(parse_live(rest)?)),
        "baselines" => Ok(Cmd::Baselines(parse_sim(rest)?)),
        "orchestrate" => Ok(Cmd::Orchestrate(parse_orch(rest)?)),
        "trace" => {
            let Some((verb, rest)) = rest.split_first() else {
                return Err("trace requires 'record' or 'analyze'".into());
            };
            match verb.as_str() {
                "record" => {
                    let mut workload = None;
                    let mut secs = None;
                    let mut out = None;
                    let mut it = rest.iter();
                    while let Some(flag) = it.next() {
                        match flag.as_str() {
                            "--workload" => workload = Some(parse_workload(need(&mut it, flag)?)?),
                            "--secs" => {
                                secs = Some(
                                    need(&mut it, flag)?
                                        .parse()
                                        .map_err(|_| "secs must be an integer".to_string())?,
                                )
                            }
                            "--out" => out = Some(need(&mut it, flag)?.clone()),
                            other => return Err(format!("unknown flag '{other}'")),
                        }
                    }
                    Ok(Cmd::TraceRecord {
                        workload: workload.ok_or("trace record requires --workload")?,
                        secs: secs.ok_or("trace record requires --secs")?,
                        out: out.ok_or("trace record requires --out")?,
                    })
                }
                "analyze" => {
                    let path = rest.first().ok_or("trace analyze requires a file path")?;
                    Ok(Cmd::TraceAnalyze { path: path.clone() })
                }
                other => Err(format!("unknown trace verb '{other}'")),
            }
        }
        "--help" | "-h" | "help" => Err(String::new()),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_simulate_with_flags() {
        let cmd = parse(&v(&[
            "simulate",
            "--workload",
            "diabolical",
            "--scale",
            "ci",
            "--rate-limit",
            "37",
            "--bitmap",
            "layered",
            "--seed",
            "9",
            "--json",
        ]))
        .expect("valid");
        let Cmd::Simulate(a) = cmd else {
            panic!("wrong cmd")
        };
        assert_eq!(a.workload, WorkloadKind::Diabolical);
        assert!(!a.paper_scale);
        assert_eq!(a.rate_limit_mbps, Some(37.0));
        assert!(a.layered);
        assert_eq!(a.seed, 9);
        assert!(a.json);
    }

    #[test]
    fn parses_streams_flag() {
        let Cmd::Simulate(a) = parse(&v(&["simulate", "--streams", "4"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert_eq!(a.streams, 4);
        let Cmd::Live(a) = parse(&v(&["live", "--streams", "8"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert_eq!(a.streams, 8);
        // Default is the classic single stream.
        let Cmd::Simulate(d) = parse(&v(&["simulate"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert_eq!(d.streams, 1);
    }

    #[test]
    fn defaults_apply() {
        let Cmd::Roundtrip(a) = parse(&v(&["roundtrip"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert_eq!(a.workload, WorkloadKind::Web);
        assert!(a.paper_scale);
        assert_eq!(a.dwell_secs, 1500);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&v(&[])).is_err());
        assert!(parse(&v(&["bogus"])).is_err());
        assert!(parse(&v(&["simulate", "--workload", "nope"])).is_err());
        assert!(parse(&v(&["simulate", "--rate-limit", "-3"])).is_err());
        assert!(parse(&v(&["simulate", "--rate-limit"])).is_err());
        assert!(parse(&v(&["simulate", "--streams", "0"])).is_err());
        assert!(parse(&v(&["live", "--streams", "zero"])).is_err());
        assert!(parse(&v(&["live", "--blocks", "10"])).is_err());
        assert!(parse(&v(&["live", "--faults", "5", "--max-reconnects", "2"])).is_err());
        assert!(parse(&v(&["trace"])).is_err());
        assert!(parse(&v(&["trace", "record", "--secs", "5"])).is_err());
    }

    #[test]
    fn parses_live_fault_flags() {
        let Cmd::Live(a) = parse(&v(&[
            "live",
            "--faults",
            "2",
            "--max-reconnects",
            "4",
            "--tcp",
        ]))
        .expect("valid") else {
            panic!("wrong cmd")
        };
        assert_eq!(a.faults, 2);
        assert_eq!(a.max_reconnects, 4);
        assert!(a.tcp);
        assert_eq!(a.trace_out, None);
        assert_eq!(a.metrics_out, None);
    }

    #[test]
    fn parses_content_aware_flags() {
        // Defaults: both on, everywhere.
        let Cmd::Simulate(d) = parse(&v(&["simulate"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert!(d.dedup && d.compress);
        let Cmd::Live(d) = parse(&v(&["live"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert!(d.dedup && d.compress);
        let Cmd::Orchestrate(d) = parse(&v(&["orchestrate"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert!(d.dedup);
        // Escape hatches.
        let Cmd::Simulate(a) =
            parse(&v(&["simulate", "--no-dedup", "--no-compress"])).expect("valid")
        else {
            panic!("wrong cmd")
        };
        assert!(!a.dedup && !a.compress);
        let Cmd::Live(a) = parse(&v(&["live", "--no-compress"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert!(a.dedup && !a.compress);
        let Cmd::Orchestrate(a) = parse(&v(&["orchestrate", "--no-dedup"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert!(!a.dedup);
        // Last flag wins, so scripts can append overrides.
        let Cmd::Simulate(a) = parse(&v(&["simulate", "--no-dedup", "--dedup"])).expect("valid")
        else {
            panic!("wrong cmd")
        };
        assert!(a.dedup);
        // orchestrate has no compression model.
        assert!(parse(&v(&["orchestrate", "--no-compress"])).is_err());
    }

    #[test]
    fn parses_multisource_flags() {
        // Defaults: multisource on, no peer sources.
        let Cmd::Simulate(d) = parse(&v(&["simulate"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert!(d.multisource);
        assert_eq!(d.sources, 0);
        let Cmd::Live(d) = parse(&v(&["live"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert!(d.multisource);
        assert_eq!(d.sources, 0);
        let Cmd::Orchestrate(d) = parse(&v(&["orchestrate"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert!(d.multisource);
        // Fan-in scenario plus escape hatch.
        let Cmd::Simulate(a) = parse(&v(&["simulate", "--sources", "4"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert_eq!(a.sources, 4);
        assert!(a.multisource);
        let Cmd::Live(a) =
            parse(&v(&["live", "--sources", "2", "--no-multisource"])).expect("valid")
        else {
            panic!("wrong cmd")
        };
        assert_eq!(a.sources, 2);
        assert!(!a.multisource);
        let Cmd::Orchestrate(a) = parse(&v(&["orchestrate", "--no-multisource"])).expect("valid")
        else {
            panic!("wrong cmd")
        };
        assert!(!a.multisource);
        // Last flag wins.
        let Cmd::Simulate(a) =
            parse(&v(&["simulate", "--no-multisource", "--multisource"])).expect("valid")
        else {
            panic!("wrong cmd")
        };
        assert!(a.multisource);
        // orchestrate models fan-in through the replica table, not a flag.
        assert!(parse(&v(&["orchestrate", "--sources", "2"])).is_err());
        // TCP live runs have no in-process replica holders.
        assert!(parse(&v(&["live", "--tcp", "--sources", "2"])).is_err());
        assert!(parse(&v(&["simulate", "--sources", "many"])).is_err());
    }

    #[test]
    fn parses_telemetry_flags() {
        let Cmd::Live(a) = parse(&v(&[
            "live",
            "--trace-out",
            "/tmp/j.jsonl",
            "--metrics-out",
            "/tmp/m.json",
        ]))
        .expect("valid") else {
            panic!("wrong cmd")
        };
        assert_eq!(a.trace_out.as_deref(), Some("/tmp/j.jsonl"));
        assert_eq!(a.metrics_out.as_deref(), Some("/tmp/m.json"));
        let Cmd::Simulate(a) = parse(&v(&["simulate", "--trace-out", "j.jsonl"])).expect("valid")
        else {
            panic!("wrong cmd")
        };
        assert_eq!(a.trace_out.as_deref(), Some("j.jsonl"));
        assert_eq!(a.metrics_out, None);
        assert!(parse(&v(&["live", "--trace-out"])).is_err());
        assert!(parse(&v(&["simulate", "--metrics-out"])).is_err());
    }

    #[test]
    fn parses_orchestrate() {
        let Cmd::Orchestrate(a) = parse(&v(&[
            "orchestrate",
            "--hosts",
            "4",
            "--vms",
            "8",
            "--policy",
            "im-aware",
            "--seed",
            "2008",
            "--faults",
            "1",
            "--dwell",
            "45",
            "--json",
        ]))
        .expect("valid") else {
            panic!("wrong cmd")
        };
        assert_eq!(a.hosts, 4);
        assert_eq!(a.vms, 8);
        assert_eq!(a.policy, Policy::ImAware);
        assert_eq!(a.seed, 2008);
        assert_eq!(a.faults, 1);
        assert_eq!(a.dwell_secs, 45);
        assert!(a.json);
        // Defaults.
        let Cmd::Orchestrate(d) = parse(&v(&["orchestrate"])).expect("valid") else {
            panic!("wrong cmd")
        };
        assert_eq!(d.policy, Policy::ImAware);
        assert_eq!(d.blocks, 65_536);
        assert_eq!(d.scenario, None);
        // Scenario file and the cycle-aware policy.
        let Cmd::Orchestrate(a) = parse(&v(&[
            "orchestrate",
            "--scenario",
            "scenarios/partition.scn",
            "--policy",
            "cycle-aware",
        ]))
        .expect("valid") else {
            panic!("wrong cmd")
        };
        assert_eq!(a.scenario.as_deref(), Some("scenarios/partition.scn"));
        assert_eq!(a.policy, Policy::CycleAware);
        assert!(parse(&v(&["orchestrate", "--scenario"])).is_err());
        // Rejections.
        assert!(parse(&v(&["orchestrate", "--hosts", "1"])).is_err());
        assert!(parse(&v(&["orchestrate", "--policy", "lifo"])).is_err());
        assert!(parse(&v(&["orchestrate", "--blocks", "64"])).is_err());
    }

    #[test]
    fn parses_trace_commands() {
        let cmd = parse(&v(&[
            "trace",
            "record",
            "--workload",
            "web",
            "--secs",
            "60",
            "--out",
            "/tmp/t.json",
        ]))
        .expect("valid");
        assert_eq!(
            cmd,
            Cmd::TraceRecord {
                workload: WorkloadKind::Web,
                secs: 60,
                out: "/tmp/t.json".into()
            }
        );
        let cmd = parse(&v(&["trace", "analyze", "/tmp/t.json"])).expect("valid");
        assert_eq!(
            cmd,
            Cmd::TraceAnalyze {
                path: "/tmp/t.json".into()
            }
        );
    }
}
