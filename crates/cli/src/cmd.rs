//! Command execution.

use std::sync::Arc;

use block_bitmap::{DirtyMap, FlatBitmap};
use des::{SimDuration, SimRng};
use migrate::baselines::{run_delta_queue, run_freeze_and_copy, run_on_demand};
use migrate::live::{
    run_live_migration_faulty, run_live_migration_replicated, run_live_migration_tcp_faulty,
    LiveConfig,
};
use migrate::sim::{
    dwell, run_im, run_template_clone_fanin, run_template_clone_fanin_traced, run_tpm,
    run_tpm_traced,
};
use migrate::{BitmapKind, MigrationConfig, MigrationReport, RetryPolicy};
use simnet::fault::FaultPlan;
use telemetry::Recorder;
use workloads::locality::analyze;

use orchestrator::{ClusterConfig, Orchestrator, Scenario};

use crate::args::{Cmd, LiveArgs, OrchArgs, SimArgs};

const MB: f64 = 1024.0 * 1024.0;

/// An enabled recorder when either telemetry flag asks for one.
fn recorder_for(trace_out: &Option<String>, metrics_out: &Option<String>) -> Option<Arc<Recorder>> {
    if trace_out.is_some() || metrics_out.is_some() {
        Some(Recorder::enabled())
    } else {
        None
    }
}

/// Write the journal / metrics snapshot a run recorded and print the
/// phase summary reconstructed from the journal.
fn export_telemetry(
    rec: &Recorder,
    trace_out: &Option<String>,
    metrics_out: &Option<String>,
) -> Result<(), String> {
    if let Some(path) = trace_out {
        let records = rec.records();
        std::fs::write(path, telemetry::to_jsonl(&records))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("telemetry journal: {} records -> {path}", records.len());
        print!("{}", telemetry::phase_summary(&records));
        if rec.dropped() > 0 {
            println!("warning: journal full, {} events dropped", rec.dropped());
        }
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, telemetry::metrics_json(rec.metrics()))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("metrics snapshot -> {path}");
    }
    Ok(())
}

fn config_for(a: &SimArgs) -> MigrationConfig {
    let mut cfg = if a.paper_scale {
        MigrationConfig::paper_testbed()
    } else {
        MigrationConfig {
            disk_blocks: 262_144,
            mem_pages: 16_384,
            ..MigrationConfig::paper_testbed()
        }
    };
    cfg.rate_limit = a.rate_limit_mbps.map(|m| m * MB);
    cfg.bitmap = if a.layered {
        BitmapKind::Layered
    } else {
        BitmapKind::Flat
    };
    cfg.seed = a.seed;
    cfg.streams = a.streams;
    cfg.dedup = a.dedup;
    cfg.compress = a.compress;
    cfg.multisource = a.multisource;
    cfg
}

/// The E14 divergence pattern: ~8% of the image written since the clone
/// booted from the golden template (every 12th block).
fn fanin_divergence(disk_blocks: usize) -> FlatBitmap {
    let mut diverged = FlatBitmap::new(disk_blocks);
    for b in (0..disk_blocks).step_by(12) {
        diverged.set(b);
    }
    diverged
}

fn emit(report: &MigrationReport, json: bool) {
    if json {
        let mut compact = report.clone();
        compact.timeline.clear();
        println!(
            "{}",
            serde_json::to_string_pretty(&compact).expect("report serializes")
        );
    } else {
        println!("{}", report.render());
    }
}

/// Execute a parsed command.
pub fn run(cmd: Cmd) -> Result<(), String> {
    match cmd {
        Cmd::Simulate(a) => {
            let rec = recorder_for(&a.trace_out, &a.metrics_out);
            let cfg = config_for(&a);
            let out = if a.sources > 0 {
                // Template-clone boot storm (E14): peers hold the golden
                // image, the fetch plan draws still-golden blocks from them.
                let diverged = fanin_divergence(cfg.disk_blocks);
                match &rec {
                    Some(r) => run_template_clone_fanin_traced(
                        cfg,
                        a.workload,
                        diverged,
                        a.sources,
                        Arc::clone(r),
                    ),
                    None => run_template_clone_fanin(cfg, a.workload, diverged, a.sources),
                }
            } else {
                match &rec {
                    Some(r) => run_tpm_traced(cfg, a.workload, Arc::clone(r)),
                    None => run_tpm(cfg, a.workload),
                }
            };
            emit(&out.report, a.json);
            if let Some(r) = &rec {
                export_telemetry(r, &a.trace_out, &a.metrics_out)?;
            }
            if !out.report.consistent {
                return Err("migration verified INCONSISTENT".into());
            }
            Ok(())
        }
        Cmd::Roundtrip(a) => {
            let cfg = config_for(&a);
            let mut out = run_tpm(cfg.clone(), a.workload);
            emit(&out.report, a.json);
            dwell(&mut out, &cfg, SimDuration::from_secs(a.dwell_secs));
            let back = run_im(cfg, out);
            emit(&back.report, a.json);
            if !back.report.consistent {
                return Err("IM verified INCONSISTENT".into());
            }
            Ok(())
        }
        Cmd::Live(a) => run_live(a),
        Cmd::Orchestrate(a) => run_orchestrate(a),
        Cmd::Baselines(a) => {
            let cfg = config_for(&a);
            let reports = [
                run_tpm(cfg.clone(), a.workload).report,
                run_freeze_and_copy(cfg.clone(), a.workload),
                run_on_demand(cfg.clone(), a.workload, SimDuration::from_secs(600)),
                run_delta_queue(cfg, a.workload),
            ];
            for r in &reports {
                emit(r, a.json);
            }
            Ok(())
        }
        Cmd::TraceRecord {
            workload,
            secs,
            out,
        } => {
            let mut w = workload.build(MigrationConfig::paper_testbed().disk_blocks as u64);
            let mut rng = SimRng::new(2008);
            let trace = workloads::record(
                w.as_mut(),
                SimDuration::from_secs(secs),
                SimDuration::from_millis(500),
                &mut rng,
            );
            std::fs::write(&out, trace.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
            println!(
                "recorded {} ops ({} writes) over {secs}s to {out}",
                trace.len(),
                trace.write_count()
            );
            Ok(())
        }
        Cmd::TraceAnalyze { path } => {
            let data =
                std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
            let trace =
                workloads::OpTrace::from_json(&data).map_err(|e| format!("parsing {path}: {e}"))?;
            let rep = analyze(trace.ops.iter().map(|o| o.kind), 4096);
            println!(
                "{path}: {} ops, {} writes, {} unique blocks, rewrite ratio {:.1}%",
                trace.len(),
                rep.writes,
                rep.unique_blocks,
                rep.rewrite_ratio * 100.0
            );
            println!(
                "  delta-queue sync would ship {:.1} MB; bitmap sync ships {:.1} MB",
                rep.delta_bytes as f64 / MB,
                rep.bitmap_scheme_bytes as f64 / MB
            );
            Ok(())
        }
    }
}

fn run_orchestrate(a: OrchArgs) -> Result<(), String> {
    let rec = recorder_for(&a.trace_out, &a.metrics_out);
    let recorder = rec.clone().unwrap_or_else(Recorder::off);
    let report = if let Some(path) = &a.scenario {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let mut spec = scenario::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        // The spec wins where it speaks; CLI flags fill the gaps, so a
        // seed matrix can sweep one .scn file with --seed.
        if spec.seed.is_none() {
            spec.seed = Some(a.seed);
        }
        let policy = spec.policy.unwrap_or(a.policy);
        let run = scenario::run_with_policy(&spec, policy, recorder)
            .map_err(|e| format!("{path}: {e}"))?;
        run.report
    } else {
        let mut cfg = ClusterConfig::new(a.hosts, a.vms);
        cfg.disk_blocks = a.blocks;
        cfg.seed = a.seed;
        cfg.fault_resets = a.faults;
        cfg.dedup = a.dedup;
        cfg.multisource = a.multisource;
        let scenario = Scenario::two_wave(&cfg, SimDuration::from_secs(a.dwell_secs));
        let mut orch = Orchestrator::new(cfg, a.policy, recorder).map_err(|e| e.to_string())?;
        orch.run(&scenario)
    };
    if a.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    } else {
        print!("{}", report.render());
    }
    if let Some(r) = &rec {
        // The cluster journal holds per-migration spans, not the
        // single-migration phase events `export_telemetry` summarizes.
        if let Some(path) = &a.trace_out {
            let records = r.records();
            std::fs::write(path, telemetry::to_jsonl(&records))
                .map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "telemetry journal: {} records across {} migrations -> {path}",
                records.len(),
                telemetry::migration_ids(&records).len()
            );
            if r.dropped() > 0 {
                println!("warning: journal full, {} events dropped", r.dropped());
            }
        }
        if let Some(path) = &a.metrics_out {
            std::fs::write(path, telemetry::metrics_json(r.metrics()))
                .map_err(|e| format!("writing {path}: {e}"))?;
            println!("metrics snapshot -> {path}");
        }
    }
    if !report.all_consistent() {
        return Err("a migrated image verified INCONSISTENT".into());
    }
    if report.completed() < report.records.len() {
        return Err(format!(
            "{} of {} migrations failed",
            report.records.len() - report.completed(),
            report.records.len()
        ));
    }
    Ok(())
}

fn run_live(a: LiveArgs) -> Result<(), String> {
    let rec = recorder_for(&a.trace_out, &a.metrics_out);
    let cfg = LiveConfig {
        num_blocks: a.blocks,
        workload: a.workload,
        rate_limit: a.rate_limit_mbps.map(|m| m * MB),
        streams: a.streams,
        dedup: a.dedup,
        compress: a.compress,
        multisource: a.multisource,
        seed: a.seed,
        retry: RetryPolicy {
            max_reconnects: a.max_reconnects,
            ..RetryPolicy::default()
        },
        telemetry: rec.clone().unwrap_or_else(Recorder::off),
        ..LiveConfig::test_default()
    };
    // Each injected fault resets one connection attempt somewhere in its
    // first few hundred messages (seed-deterministic), so the engine must
    // reconnect and resume from the block-bitmap.
    let plan = if a.faults > 0 {
        FaultPlan::seeded_resets(a.seed, a.faults, 10, 200)
    } else {
        FaultPlan::none()
    };
    let out = if a.tcp {
        run_live_migration_tcp_faulty(&cfg, plan)
    } else if a.sources > 0 {
        run_live_migration_replicated(&cfg, plan, a.sources)
    } else {
        run_live_migration_faulty(&cfg, plan)
    }
    .map_err(|e| format!("migration failed: {e}"))?;
    println!(
        "live migration{}: disk iters {:?}, mem iters {:?}, frozen dirty {}+{}p, downtime {:?} of {:?}",
        if a.tcp { " (TCP)" } else { "" },
        out.iterations,
        out.mem_iterations,
        out.frozen_dirty,
        out.frozen_mem_dirty,
        out.downtime,
        out.total
    );
    if out.reconnects > 0 {
        println!(
            "fault recovery: {} reconnects, resumed with {:?} owed blocks per retry",
            out.reconnects, out.resume_owed
        );
    }
    if out.failovers > 0 {
        let fetched: u64 = out.peer_bytes.iter().map(|p| p.blocks).sum();
        println!(
            "source failover: image completed from {} peer holder(s), {} blocks fetched",
            out.peer_bytes.len(),
            fetched
        );
    }
    println!(
        "post-copy: {} pushed, {} pulled, {} dropped; src sent {:.1} MB",
        out.pushed,
        out.pulled,
        out.dropped,
        out.src_ledger.total() as f64 / MB
    );
    if out.wire.blocks_deduped > 0 || out.wire.blocks_compressed > 0 {
        println!(
            "content-aware: {:.1} MB raw -> {:.1} MB sent ({:.1}% off the wire; {} deduped, {} compressed)",
            out.wire.bytes_raw as f64 / MB,
            out.wire.bytes_sent as f64 / MB,
            out.wire.reduction_pct(),
            out.wire.blocks_deduped,
            out.wire.blocks_compressed,
        );
    }
    if let Some(r) = &rec {
        export_telemetry(r, &a.trace_out, &a.metrics_out)?;
    }
    let bad = out.inconsistent_blocks();
    let bad_pages = out.inconsistent_pages();
    if out.read_violations > 0 || !bad.is_empty() || !bad_pages.is_empty() {
        return Err(format!(
            "VERIFICATION FAILED: {} read violations, {} bad blocks, {} bad pages",
            out.read_violations,
            bad.len(),
            bad_pages.len()
        ));
    }
    println!(
        "verification: all {} blocks and {} RAM pages byte-identical to guest ground truth",
        a.blocks,
        out.dst_ram.num_pages()
    );
    Ok(())
}
