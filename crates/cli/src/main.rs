//! `vmmigrate` — command-line driver for block-bitmap whole-system VM
//! migration.
//!
//! ```text
//! vmmigrate simulate   --workload web [--scale paper|ci] [--rate-limit MB/s]
//!                      [--bitmap flat|layered] [--seed N] [--json]
//! vmmigrate roundtrip  --workload web [--dwell SECS] [--json]
//! vmmigrate live       [--blocks N] [--workload web] [--rate-limit MB/s]
//! vmmigrate baselines  --workload web [--json]
//! vmmigrate orchestrate [--hosts N] [--vms N] [--policy fifo|srdf|im-aware]
//! vmmigrate trace      record --workload web --secs N --out FILE
//! vmmigrate trace      analyze FILE
//! ```

#![forbid(unsafe_code)]

mod args;
mod cmd;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => {
            if let Err(e) = cmd::run(cmd) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(msg) => {
            eprintln!("{msg}\n");
            eprintln!("{}", args::USAGE);
            std::process::exit(2);
        }
    }
}
