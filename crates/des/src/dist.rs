//! Samplers used by the workload generators.
//!
//! Disk-write locality is the load-bearing statistical property in the
//! paper: the block-bitmap wins over delta queues *because* workloads
//! rewrite the same blocks (11 % for a kernel build, 25.2 % for SPECweb
//! Banking, 35.6 % for Bonnie++). These samplers let the generators dial in
//! those rewrite ratios.

use crate::SimRng;

/// Zipf distribution over ranks `0..n` with exponent `s`, sampled by
/// rejection-inversion (Hörmann & Derflinger), O(1) per sample with no
/// per-rank tables — usable for the 10-million-block rank spaces of a
/// 40 GB disk.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants of Hörmann & Derflinger's rejection-inversion
    // scheme (the algorithm behind Apache Commons' Zipf sampler).
    h_integral_x1: f64,
    h_integral_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Create a Zipf sampler over `n` ranks with exponent `s > 0` (`s == 1`
    /// is handled via the logarithmic antiderivative).
    ///
    /// # Panics
    /// Panics when `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "rank space must be non-empty");
        assert!(s > 0.0, "exponent must be positive");
        let h_integral = |x: f64| -> f64 {
            if (s - 1.0).abs() < 1e-9 {
                x.ln()
            } else {
                (x.powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        let h = |x: f64| -> f64 { x.powf(-s) };
        let h_integral_inverse = |x: f64| -> f64 {
            if (s - 1.0).abs() < 1e-9 {
                x.exp()
            } else {
                (1.0 + x * (1.0 - s)).powf(1.0 / (1.0 - s))
            }
        };
        Self {
            n,
            s,
            h_integral_x1: h_integral(1.5) - 1.0,
            h_integral_n: h_integral(n as f64 + 0.5),
            threshold: 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0)),
        }
    }

    fn h_integral(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - self.s) - 1.0) / (1.0 - self.s)
        }
    }

    fn h_integral_inverse(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Sample a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        loop {
            let u = self.h_integral_n + rng.f64() * (self.h_integral_x1 - self.h_integral_n);
            let x = self.h_integral_inverse(u);
            let k = (x + 0.5) as i64;
            let k = k.clamp(1, self.n as i64) as f64;
            if k - x <= self.threshold || u >= self.h_integral(k + 0.5) - k.powf(-self.s) {
                return k as u64 - 1;
            }
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u64 {
        self.n
    }
}

/// A two-tier locality model: with probability `hot_prob` a draw lands
/// uniformly in a *hot region* of `hot_size` values, otherwise uniformly in
/// the whole space.
///
/// This is the model used to calibrate the paper's rewrite ratios: a small
/// hot set re-hit often produces exactly the "write operations rewriting
/// blocks written before" behaviour §IV-A-2 measures.
#[derive(Debug, Clone)]
pub struct HotCold {
    total: u64,
    hot_start: u64,
    hot_size: u64,
    hot_prob: f64,
}

impl HotCold {
    /// Create a hot/cold sampler over `[0, total)` where the hot region is
    /// `[hot_start, hot_start + hot_size)`.
    ///
    /// # Panics
    /// Panics when the hot region is empty or exceeds the space, or when
    /// `hot_prob` is outside `[0, 1]`.
    pub fn new(total: u64, hot_start: u64, hot_size: u64, hot_prob: f64) -> Self {
        assert!(total > 0, "space must be non-empty");
        assert!(hot_size > 0, "hot region must be non-empty");
        assert!(
            hot_start + hot_size <= total,
            "hot region [{hot_start}, {}) exceeds space of {total}",
            hot_start + hot_size
        );
        assert!(
            (0.0..=1.0).contains(&hot_prob),
            "hot probability must be in [0,1]"
        );
        Self {
            total,
            hot_start,
            hot_size,
            hot_prob,
        }
    }

    /// Draw a value.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if rng.chance(self.hot_prob) {
            self.hot_start + rng.below(self.hot_size)
        } else {
            rng.below(self.total)
        }
    }

    /// Size of the underlying space.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Sequential cursor with wrap-around, for streaming workloads (video
/// reads, Bonnie++ sequential phases).
#[derive(Debug, Clone)]
pub struct SequentialCursor {
    start: u64,
    len: u64,
    pos: u64,
    /// Number of complete passes over the region so far.
    pub wraps: u64,
}

impl SequentialCursor {
    /// Cursor over `[start, start + len)`, beginning at `start`.
    ///
    /// # Panics
    /// Panics when `len == 0`.
    pub fn new(start: u64, len: u64) -> Self {
        assert!(len > 0, "region must be non-empty");
        Self {
            start,
            len,
            pos: 0,
            wraps: 0,
        }
    }

    /// Next value, advancing the cursor (wrapping at the region end).
    pub fn next_value(&mut self) -> u64 {
        let v = self.start + self.pos;
        self.pos += 1;
        if self.pos == self.len {
            self.pos = 0;
            self.wraps += 1;
        }
        v
    }

    /// Reset to the region start.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_ranks_in_range_and_skewed() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SimRng::new(5);
        let mut counts = vec![0u32; 1000];
        for _ in 0..50_000 {
            let r = z.sample(&mut rng) as usize;
            assert!(r < 1000);
            counts[r] += 1;
        }
        // Rank 0 must dominate rank 100 heavily under s=1.
        assert!(
            counts[0] > counts[100] * 5,
            "{} vs {}",
            counts[0],
            counts[100]
        );
        // Head mass: top-10 ranks should hold a large share.
        let head: u32 = counts[..10].iter().sum();
        assert!(head as f64 > 0.25 * 50_000.0, "head mass {head}");
    }

    #[test]
    fn zipf_large_rank_space() {
        // 10 Mi ranks (40 GB disk in blocks) — must stay O(1).
        let z = Zipf::new(10 * 1024 * 1024, 0.9);
        let mut rng = SimRng::new(6);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10 * 1024 * 1024);
        }
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 1.2);
        let mut rng = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "rank space must be non-empty")]
    fn zipf_zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn hot_cold_respects_regions() {
        let hc = HotCold::new(10_000, 100, 50, 0.9);
        let mut rng = SimRng::new(8);
        let mut hot_hits = 0;
        for _ in 0..10_000 {
            let v = hc.sample(&mut rng);
            assert!(v < 10_000);
            if (100..150).contains(&v) {
                hot_hits += 1;
            }
        }
        // ~90% land hot (plus a sliver of cold draws hitting the region).
        assert!(hot_hits > 8_500, "hot hits {hot_hits}");
    }

    #[test]
    fn hot_cold_zero_prob_is_uniform() {
        let hc = HotCold::new(100, 0, 10, 0.0);
        let mut rng = SimRng::new(9);
        let in_hot = (0..10_000).filter(|_| hc.sample(&mut rng) < 10).count();
        assert!((700..1_300).contains(&in_hot), "in_hot {in_hot}");
    }

    #[test]
    #[should_panic(expected = "exceeds space")]
    fn hot_region_overflow_panics() {
        HotCold::new(100, 95, 10, 0.5);
    }

    #[test]
    fn sequential_cursor_wraps() {
        let mut c = SequentialCursor::new(10, 3);
        let vals: Vec<u64> = (0..7).map(|_| c.next_value()).collect();
        assert_eq!(vals, vec![10, 11, 12, 10, 11, 12, 10]);
        assert_eq!(c.wraps, 2);
        c.rewind();
        assert_eq!(c.next_value(), 10);
    }
}
