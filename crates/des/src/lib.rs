//! Deterministic discrete-event simulation kernel.
//!
//! The paper's evaluation runs on two physical Xen hosts and a Gigabit LAN;
//! reproducing its 800-second migrations requires *virtual time*. This
//! crate provides the simulation substrate every simulated experiment is
//! built on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual clock
//!   arithmetic.
//! * [`Simulator`] — a classic event-calendar simulator: schedule closures
//!   at absolute or relative virtual times, execute in timestamp order with
//!   deterministic FIFO tie-breaking.
//! * [`SimRng`] — a seeded xoshiro256** PRNG so that every run of an
//!   experiment is bit-reproducible, independent of external crate version
//!   bumps.
//! * [`dist`] — the samplers workloads need: exponential inter-arrivals,
//!   Zipf-distributed block popularity, and a hot/cold locality mixture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
mod rng;
mod sim;
mod time;

pub use rng::SimRng;
pub use sim::{EventId, Simulator};
pub use time::{SimDuration, SimTime};
