//! Deterministic PRNG: xoshiro256** seeded via SplitMix64.
//!
//! Implemented in-crate (rather than via the `rand` façade) so that
//! experiment results are bit-stable across dependency upgrades — the
//! reproduction harness commits expected table shapes that must not drift
//! with a `rand` minor bump.

/// A small, fast, deterministic PRNG (xoshiro256**, Blackman & Vigna).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Any seed (including 0) gives
    /// a well-mixed state because the state is expanded with SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Derive an independent child stream, for giving each simulation
    /// component its own generator.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Debiased multiply-shift.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed sample with the given rate parameter
    /// (mean = `1/rate`), for Poisson inter-arrival times.
    ///
    /// # Panics
    /// Panics when `rate <= 0`.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        // Inverse CDF; 1-f64() is in (0,1], avoiding ln(0).
        -(1.0 - self.f64()).ln() / rate
    }

    /// Choose a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.below_usize(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_diverge() {
        let mut root = SimRng::new(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn below_unbiased_over_small_bound() {
        let mut rng = SimRng::new(9);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} far from 10000");
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let x = rng.range(100, 110);
            assert!((100..110).contains(&x));
        }
    }

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = SimRng::new(13);
        let rate = 4.0;
        let mean: f64 = (0..20_000).map(|_| rng.exp(rate)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean} far from 0.25");
    }

    #[test]
    fn chance_probability() {
        let mut rng = SimRng::new(17);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SimRng::new(0).below(0);
    }

    #[test]
    fn known_vector_stability() {
        // Pin the output stream: experiment reproducibility depends on it.
        let mut rng = SimRng::new(2008);
        let v: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = SimRng::new(2008);
        let v2: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(v, v2);
        assert_ne!(v[0], v[1]);
    }
}
