//! Event-calendar simulator.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type EventFn<S> = Box<dyn FnOnce(&mut Simulator<S>, &mut S)>;

struct Entry<S> {
    at: SimTime,
    seq: u64,
    id: EventId,
    f: EventFn<S>,
}

impl<S> PartialEq for Entry<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Entry<S> {}
impl<S> PartialOrd for Entry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Entry<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, with the
        // sequence number as a deterministic FIFO tie-break.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulator over user state `S`.
///
/// Events are closures `FnOnce(&mut Simulator<S>, &mut S)`; they may
/// schedule further events. Two events at the same instant run in the order
/// they were scheduled.
///
/// ```
/// use des::{SimDuration, Simulator};
///
/// let mut sim: Simulator<Vec<u32>> = Simulator::new();
/// sim.schedule_in(SimDuration::from_secs(2), |sim, log| {
///     log.push(2);
///     sim.schedule_in(SimDuration::from_secs(1), |_, log| log.push(3));
/// });
/// sim.schedule_in(SimDuration::from_secs(1), |_, log| log.push(1));
/// let mut log = Vec::new();
/// sim.run_to_completion(&mut log);
/// assert_eq!(log, vec![1, 2, 3]);
/// assert_eq!(sim.now().as_secs_f64(), 3.0);
/// ```
pub struct Simulator<S> {
    now: SimTime,
    next_seq: u64,
    next_id: u64,
    queue: BinaryHeap<Entry<S>>,
    cancelled: std::collections::HashSet<u64>,
    executed: u64,
}

impl<S> Default for Simulator<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Simulator<S> {
    /// Create a simulator at t = 0 with an empty calendar.
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            next_seq: 0,
            next_id: 0,
            queue: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (including cancelled ones not yet
    /// reaped).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` at absolute virtual time `at`.
    ///
    /// # Panics
    /// Panics when `at` is in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut Simulator<S>, &mut S) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event at {at} before current time {}",
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Entry {
            at,
            seq,
            id,
            f: Box::new(f),
        });
        id
    }

    /// Schedule `f` after a relative delay `d`.
    pub fn schedule_in(
        &mut self,
        d: SimDuration,
        f: impl FnOnce(&mut Simulator<S>, &mut S) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + d, f)
    }

    /// Cancel a previously scheduled event. Cancelling an already-executed
    /// or already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Execute the next event, advancing the clock to its timestamp.
    /// Returns `false` when the calendar is empty.
    pub fn step(&mut self, state: &mut S) -> bool {
        while let Some(entry) = self.queue.pop() {
            if self.cancelled.remove(&entry.id.0) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "event calendar went backwards");
            self.now = entry.at;
            self.executed += 1;
            (entry.f)(self, state);
            return true;
        }
        false
    }

    /// Timestamp of the next pending (non-cancelled) event.
    pub fn peek_next(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.queue.peek() {
            if self.cancelled.contains(&entry.id.0) {
                let e = self.queue.pop().expect("peeked entry exists");
                self.cancelled.remove(&e.id.0);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Run until the calendar drains.
    pub fn run_to_completion(&mut self, state: &mut S) {
        while self.step(state) {}
    }

    /// Run events with timestamps `<= deadline`, then advance the clock to
    /// exactly `deadline` (even if no event lies there).
    pub fn run_until(&mut self, state: &mut S, deadline: SimTime) {
        while let Some(at) = self.peek_next() {
            if at > deadline {
                break;
            }
            self.step(state);
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    /// Run until `pred(state)` becomes true (checked after every event) or
    /// the calendar drains. Returns `true` when the predicate fired.
    pub fn run_while(&mut self, state: &mut S, mut pred: impl FnMut(&S) -> bool) -> bool {
        loop {
            if pred(state) {
                return true;
            }
            if !self.step(state) {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_in_time_order() {
        let mut sim: Simulator<Vec<u64>> = Simulator::new();
        sim.schedule_at(SimTime::from_nanos(30), |_, v| v.push(30));
        sim.schedule_at(SimTime::from_nanos(10), |_, v| v.push(10));
        sim.schedule_at(SimTime::from_nanos(20), |_, v| v.push(20));
        let mut v = Vec::new();
        sim.run_to_completion(&mut v);
        assert_eq!(v, vec![10, 20, 30]);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut sim: Simulator<Vec<u64>> = Simulator::new();
        for i in 0..10 {
            sim.schedule_at(SimTime::from_nanos(5), move |_, v| v.push(i));
        }
        let mut v = Vec::new();
        sim.run_to_completion(&mut v);
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Simulator<u64> = Simulator::new();
        fn tick(sim: &mut Simulator<u64>, count: &mut u64) {
            *count += 1;
            if *count < 5 {
                sim.schedule_in(SimDuration::from_secs(1), tick);
            }
        }
        sim.schedule_in(SimDuration::from_secs(1), tick);
        let mut count = 0;
        sim.run_to_completion(&mut count);
        assert_eq!(count, 5);
        assert_eq!(sim.now(), SimTime::from_nanos(5_000_000_000));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_past_panics() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.schedule_at(SimTime::from_nanos(10), |sim, _| {
            sim.schedule_at(SimTime::from_nanos(5), |_, _| {});
        });
        sim.run_to_completion(&mut ());
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim: Simulator<Vec<&'static str>> = Simulator::new();
        let id = sim.schedule_in(SimDuration::from_secs(1), |_, v| v.push("cancelled"));
        sim.schedule_in(SimDuration::from_secs(2), |_, v| v.push("kept"));
        sim.cancel(id);
        let mut v = Vec::new();
        sim.run_to_completion(&mut v);
        assert_eq!(v, vec!["kept"]);
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    fn cancel_twice_and_after_run_is_noop() {
        let mut sim: Simulator<()> = Simulator::new();
        let id = sim.schedule_in(SimDuration::from_secs(1), |_, _| {});
        sim.run_to_completion(&mut ());
        sim.cancel(id);
        sim.cancel(id);
        assert!(!sim.step(&mut ()));
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim: Simulator<Vec<u64>> = Simulator::new();
        sim.schedule_at(SimTime::from_nanos(10), |_, v| v.push(10));
        sim.schedule_at(SimTime::from_nanos(100), |_, v| v.push(100));
        let mut v = Vec::new();
        sim.run_until(&mut v, SimTime::from_nanos(50));
        assert_eq!(v, vec![10]);
        assert_eq!(sim.now(), SimTime::from_nanos(50));
        sim.run_to_completion(&mut v);
        assert_eq!(v, vec![10, 100]);
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let mut sim: Simulator<u64> = Simulator::new();
        for i in 1..=10u64 {
            sim.schedule_at(SimTime::from_nanos(i), |_, n| *n += 1);
        }
        let mut n = 0;
        let fired = sim.run_while(&mut n, |&n| n >= 4);
        assert!(fired);
        assert_eq!(n, 4);
        let fired = sim.run_while(&mut n, |&n| n >= 100);
        assert!(!fired);
        assert_eq!(n, 10);
    }

    #[test]
    fn peek_next_skips_cancelled() {
        let mut sim: Simulator<()> = Simulator::new();
        let id = sim.schedule_at(SimTime::from_nanos(1), |_, _| {});
        sim.schedule_at(SimTime::from_nanos(2), |_, _| {});
        sim.cancel(id);
        assert_eq!(sim.peek_next(), Some(SimTime::from_nanos(2)));
    }
}
