//! Virtual time types.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reports and plots).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    /// Panics when `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be after `self`"),
        )
    }

    /// Saturating duration since another instant (zero when negative).
    pub fn saturating_since(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Construct from fractional seconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration seconds must be finite and non-negative, got {s}"
        );
        Self((s * 1e9).round() as u64)
    }

    /// Nanoseconds in the span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds in the span (as float, for reports).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds in the span (as float, for reports).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert!((SimDuration::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
        assert!((SimTime::from_nanos(1_500_000_000).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not be after")]
    fn since_underflow_panics() {
        SimTime::ZERO.since(SimTime::from_nanos(1));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3u64, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_secs_f64(2.5));
        assert_eq!(d * 0.5f64, SimDuration::from_secs(5));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_millis(60)), "60.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(796)), "796.000s");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panics() {
        SimDuration::from_secs_f64(-1.0);
    }
}
