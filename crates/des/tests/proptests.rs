//! Property tests for the simulation kernel: event ordering, clock
//! monotonicity, and sampler statistics under arbitrary inputs.

use des::dist::{HotCold, SequentialCursor, Zipf};
use des::{SimDuration, SimRng, SimTime, Simulator};
use proptest::prelude::*;

proptest! {
    /// Events always execute in nondecreasing timestamp order with FIFO
    /// tie-breaking, regardless of insertion order.
    #[test]
    fn execution_order_is_stable_sort(times in prop::collection::vec(0u64..1_000, 1..100)) {
        let mut sim: Simulator<Vec<(u64, usize)>> = Simulator::new();
        for (seq, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), move |_, log| log.push((t, seq)));
        }
        let mut log = Vec::new();
        sim.run_to_completion(&mut log);
        prop_assert_eq!(log.len(), times.len());
        // Nondecreasing by time; equal times preserve insertion order.
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    /// The clock never goes backwards, even when events schedule more
    /// events with random relative delays.
    #[test]
    fn clock_is_monotone(delays in prop::collection::vec(1u64..1_000_000, 1..50)) {
        let mut sim: Simulator<Vec<u64>> = Simulator::new();
        for &d in &delays {
            sim.schedule_in(SimDuration::from_nanos(d), move |sim, log: &mut Vec<u64>| {
                log.push(sim.now().as_nanos());
                sim.schedule_in(SimDuration::from_nanos(d / 2 + 1), move |sim2, log2| {
                    log2.push(sim2.now().as_nanos());
                });
            });
        }
        let mut log = Vec::new();
        sim.run_to_completion(&mut log);
        prop_assert_eq!(log.len(), delays.len() * 2);
        prop_assert!(log.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Cancelling any subset of events executes exactly the complement.
    #[test]
    fn cancellation_is_exact(
        n in 1usize..60,
        cancel_mask in prop::collection::vec(proptest::bool::ANY, 60),
    ) {
        let mut sim: Simulator<Vec<usize>> = Simulator::new();
        let ids: Vec<_> = (0..n)
            .map(|i| sim.schedule_at(SimTime::from_nanos(i as u64), move |_, log| log.push(i)))
            .collect();
        let mut expected = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i] {
                sim.cancel(*id);
            } else {
                expected.push(i);
            }
        }
        let mut log = Vec::new();
        sim.run_to_completion(&mut log);
        prop_assert_eq!(log, expected);
    }

    /// `SimRng::below` never leaves its bound, for any seed and bound.
    #[test]
    fn rng_below_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Zipf samples stay in range and rank-0 frequency dominates for any
    /// exponent.
    #[test]
    fn zipf_in_range(seed in any::<u64>(), n in 2u64..10_000, s in 0.5f64..2.0) {
        let z = Zipf::new(n, s);
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// HotCold samples stay in the value space.
    #[test]
    fn hotcold_in_range(
        seed in any::<u64>(),
        total in 10u64..100_000,
        p in 0.0f64..=1.0,
    ) {
        let hot = (total / 10).max(1);
        let hc = HotCold::new(total, 0, hot, p);
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            prop_assert!(hc.sample(&mut rng) < total);
        }
    }

    /// A sequential cursor emits exactly its region, in order, forever.
    #[test]
    fn cursor_cycles_region(start in 0u64..1_000, len in 1u64..500) {
        let mut c = SequentialCursor::new(start, len);
        for i in 0..(len * 3) {
            prop_assert_eq!(c.next_value(), start + (i % len));
        }
        // Exactly three complete passes over the region.
        prop_assert_eq!(c.wraps, 3);
    }

    /// Duration arithmetic is consistent: (t + d) - t == d for any values.
    #[test]
    fn time_arithmetic(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((t0 + dur).since(t0), dur);
        prop_assert_eq!((t0 + dur) - dur, t0);
    }
}
