//! Zone configuration: which invariants apply to which paths.
//!
//! `lintkit.toml` at the workspace root is the single source of zone
//! truth (DESIGN.md §16). Each zone is a list of workspace-relative path
//! prefixes; a file is "in" a zone when its path starts with any of
//! them, so `crates/simnet/src/` covers a directory and
//! `crates/vdisk/src/content.rs` pins a single file. The `[allow]`
//! section carries per-site waivers (`"path"` or `"path:line"`) keyed by
//! rule id — the determinism lists are required to stay empty: a
//! nondeterministic container gets converted, not excused.
//!
//! The parser below handles exactly the TOML subset the file uses —
//! `[section]` headers and `key = ["...", ...]` string arrays (multiline
//! allowed, `#` comments) — because lintkit must build offline with
//! nothing but std. Unknown sections, keys, or syntax are hard errors:
//! a typoed zone name silently disabling a rule would be worse than a
//! broken build.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Name of the zone-config file at the workspace root.
pub const CONFIG_FILE: &str = "lintkit.toml";

/// Zone names the rules consult; anything else in `[zones]` is a typo.
pub const ZONE_NAMES: &[&str] = &[
    "transport",
    "deterministic",
    "deterministic-order",
    "reactor-ready",
    "result-dropped",
];

/// Rule ids that accept `[allow]` entries.
pub const ALLOW_KEYS: &[&str] = &[
    "no-panic-transport",
    "lock-order",
    "protocol-exhaustive",
    "determinism",
    "no-blocking",
    "result-dropped",
];

/// Parsed zone config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Zone name → workspace-relative path prefixes.
    pub zones: BTreeMap<String, Vec<String>>,
    /// Rule id → allowed sites (`"path"` waives a file, `"path:line"` a
    /// single diagnostic).
    pub allow: BTreeMap<String, Vec<String>>,
}

impl Config {
    /// The compiled-in zone map, used when no `lintkit.toml` exists
    /// (fixture tests, bare temp workspaces). The shipped root
    /// `lintkit.toml` must stay identical to this — a test pins the two
    /// together.
    pub fn builtin() -> Self {
        let zone = |paths: &[&str]| paths.iter().map(|p| p.to_string()).collect::<Vec<_>>();
        let mut zones = BTreeMap::new();
        // Typed-error territory: a panic on these paths kills a protocol
        // thread mid-session. lintkit itself is included — the lint gate
        // must not be the one binary allowed to crash CI with a panic.
        zones.insert(
            "transport".to_string(),
            zone(&[
                "crates/migrate/src/live/",
                "crates/simnet/src/",
                "crates/telemetry/src/",
                "crates/orchestrator/src/",
                "crates/vdisk/src/content.rs",
                "crates/lintkit/src/",
                "crates/blockstore/src/",
                "crates/scenario/src/",
            ]),
        );
        // Replay territory: same seed ⇒ byte-identical journals. No
        // nondeterministic iteration order, no wall-clock reads.
        zones.insert(
            "deterministic".to_string(),
            zone(&[
                "crates/migrate/src/sim/",
                "crates/orchestrator/src/",
                "crates/vdisk/src/",
                "crates/blockstore/src/",
                "crates/scenario/src/",
            ]),
        );
        // Ordering-only determinism: these paths feed journaled output
        // (container iteration must be deterministic) but legitimately
        // own wall-clock reads — telemetry's dual-clock recorder stamps
        // the wall epoch, the live driver measures real downtime.
        zones.insert(
            "deterministic-order".to_string(),
            zone(&["crates/telemetry/src/", "crates/migrate/src/live/driver.rs"]),
        );
        // Pre-staging the async engine refactor (ROADMAP): these crates
        // must stay free of thread::sleep / blocking recv / join /
        // accept so they can move onto a reactor without surgery.
        zones.insert(
            "reactor-ready".to_string(),
            zone(&[
                "crates/des/src/",
                "crates/block-bitmap/src/",
                "crates/migrate/src/sim/",
                "crates/orchestrator/src/",
                "crates/vdisk/src/",
                "crates/workloads/src/",
                "crates/telemetry/src/",
                "crates/scenario/src/",
            ]),
        );
        // Where a silently dropped Result loses a protocol message or an
        // I/O failure: the wire, the live engine, and lintkit itself.
        zones.insert(
            "result-dropped".to_string(),
            zone(&[
                "crates/simnet/src/",
                "crates/migrate/src/live/",
                "crates/lintkit/src/",
                "crates/blockstore/src/",
            ]),
        );
        let allow = ALLOW_KEYS
            .iter()
            .map(|k| (k.to_string(), Vec::new()))
            .collect();
        Self { zones, allow }
    }

    /// Load `<root>/lintkit.toml`; a missing file means the builtin map.
    pub fn load(root: &Path) -> io::Result<Self> {
        let path = root.join(CONFIG_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Self::builtin()),
            Err(e) => return Err(e),
        };
        Self::parse(&text).map_err(|msg| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{CONFIG_FILE}: {msg}"))
        })
    }

    /// Parse the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut zones: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut allow: BTreeMap<String, Vec<String>> = ALLOW_KEYS
            .iter()
            .map(|k| (k.to_string(), Vec::new()))
            .collect();
        let mut section = String::new();
        let mut lines = text.lines().enumerate();
        while let Some((n, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if section != "zones" && section != "allow" {
                    return Err(format!("line {}: unknown section [{section}]", n + 1));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = [...]`", n + 1));
            };
            let key = key.trim().to_string();
            let mut value = value.trim().to_string();
            // Arrays may span lines: accumulate until the bracket closes.
            while !value.ends_with(']') {
                match lines.next() {
                    Some((_, more)) => {
                        value.push(' ');
                        value.push_str(strip_comment(more).trim());
                    }
                    None => return Err(format!("line {}: unterminated array for `{key}`", n + 1)),
                }
            }
            let items =
                parse_string_array(&value).map_err(|e| format!("line {}: `{key}`: {e}", n + 1))?;
            match section.as_str() {
                "zones" if ZONE_NAMES.contains(&key.as_str()) => {
                    zones.insert(key, items);
                }
                "zones" => return Err(format!("line {}: unknown zone `{key}`", n + 1)),
                "allow" if ALLOW_KEYS.contains(&key.as_str()) => {
                    allow.insert(key, items);
                }
                "allow" => return Err(format!("line {}: unknown allow key `{key}`", n + 1)),
                _ => return Err(format!("line {}: `{key}` outside any section", n + 1)),
            }
        }
        for z in ZONE_NAMES {
            zones.entry(z.to_string()).or_default();
        }
        Ok(Self { zones, allow })
    }

    /// Path prefixes of `zone` (empty when the zone has no paths).
    pub fn zone(&self, zone: &str) -> &[String] {
        self.zones.get(zone).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Is `rel` inside `zone`?
    pub fn in_zone(&self, zone: &str, rel: &str) -> bool {
        self.zone(zone).iter().any(|z| rel.starts_with(z.as_str()))
    }

    /// Is this diagnostic waived by an `[allow]` entry?
    pub fn is_allowed(&self, rule: &str, path: &str, line: usize) -> bool {
        self.allow.get(rule).is_some_and(|entries| {
            entries
                .iter()
                .any(|e| e == path || *e == format!("{path}:{line}"))
        })
    }
}

/// Drop a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `["a", "b", ...]` (trailing comma fine, escapes not supported —
/// paths never need them).
fn parse_string_array(s: &str) -> Result<Vec<String>, String> {
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or("expected a [...] array")?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let path = item
            .strip_prefix('"')
            .and_then(|i| i.strip_suffix('"'))
            .ok_or_else(|| format!("expected a quoted string, got `{item}`"))?;
        out.push(path.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multiline_arrays_and_comments() {
        let cfg = Config::parse(
            "# zones\n[zones]\ntransport = [\n  \"a/\", # wire\n  \"b/c.rs\",\n]\n\
             [allow]\ndeterminism = [\"x.rs:3\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.zone("transport"), ["a/", "b/c.rs"]);
        assert!(cfg.in_zone("transport", "a/mod.rs"));
        assert!(!cfg.in_zone("transport", "b/d.rs"));
        assert!(cfg.is_allowed("determinism", "x.rs", 3));
        assert!(!cfg.is_allowed("determinism", "x.rs", 4));
    }

    #[test]
    fn rejects_typos() {
        assert!(Config::parse("[zone]\n").is_err());
        assert!(Config::parse("[zones]\ntransprot = []\n").is_err());
        assert!(Config::parse("[allow]\nno-such-rule = []\n").is_err());
        assert!(Config::parse("transport = []\n").is_err());
        assert!(Config::parse("[zones]\ntransport = [\"unterminated\"").is_err());
    }

    #[test]
    fn shipped_config_matches_builtin() {
        // lintkit.toml is the single source of zone truth for humans;
        // `builtin()` is what fixture tests and bare temp workspaces
        // get. They must not drift apart.
        let shipped = Config::parse(include_str!("../../../lintkit.toml")).unwrap();
        assert_eq!(shipped, Config::builtin());
    }
}
