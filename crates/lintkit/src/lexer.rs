//! A hand-rolled Rust lexer: just enough tokenization for the lint rules.
//!
//! The sandbox has no crates.io (so no `syn`/`proc-macro2`); the rules
//! instead run over this token stream. The lexer must get right exactly
//! the things a `grep`-based gate gets wrong:
//!
//! * string/char/byte literals — `"panic!(...)"` inside a string is data,
//!   not code, including raw strings `r#"..."#` with any `#` depth;
//! * comments — line comments and *nested* block comments;
//! * lifetimes vs. char literals — `'a` is a lifetime, `'a'` is a char;
//! * raw identifiers — `r#match` is an identifier, not a raw string.
//!
//! Literal and comment *contents* are discarded: no rule ever matches
//! inside them.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_` and raw identifiers).
    Ident,
    /// A lifetime such as `'a` (text includes the leading quote).
    Lifetime,
    /// Any literal: number, string, raw string, byte string, char.
    Literal,
    /// Punctuation. Multi-character `::`, `=>`, `->`, `..`, `..=` are
    /// joined into one token; everything else is a single character.
    Punct,
}

/// One token with its byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Exact source text (empty-ish placeholder `"…"` for literals whose
    /// content does not matter to any rule).
    pub text: String,
    /// Byte offset of the first character in the source.
    pub off: usize,
}

impl Token {
    /// True when this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Tokenize Rust source. Invalid input never panics; unterminated
/// constructs simply run to end-of-file.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    let at = |i: usize| if i < n { b[i] } else { 0 };

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also swallows `//!` and `///` doc comments).
        if c == b'/' && at(i + 1) == b'/' {
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Nested block comment.
        if c == b'/' && at(i + 1) == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && at(i + 1) == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && at(i + 1) == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings, byte strings, and raw identifiers.
        if is_ident_start(c) {
            // r"..." / r#"..."# / br"..." / br#"..."# — but r#ident is a
            // raw identifier, not a raw string.
            let (prefix_len, is_raw) = if c == b'r' && (at(i + 1) == b'"' || at(i + 1) == b'#') {
                (1usize, true)
            } else if (c == b'b' || c == b'c')
                && at(i + 1) == b'r'
                && (at(i + 2) == b'"' || at(i + 2) == b'#')
            {
                (2, true)
            } else {
                (0, false)
            };
            if is_raw {
                let mut j = i + prefix_len;
                let mut hashes = 0usize;
                while at(j) == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if at(j) == b'"' {
                    // Raw string: scan for `"` followed by `hashes` hashes.
                    j += 1;
                    'scan: while j < n {
                        if b[j] == b'"' {
                            let mut k = 0usize;
                            while k < hashes && at(j + 1 + k) == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    out.push(Token {
                        kind: TokKind::Literal,
                        text: "…".to_string(),
                        off: i,
                    });
                    i = j;
                    continue;
                }
                if hashes > 0 && is_ident_start(at(j)) {
                    // Raw identifier `r#match`: emit the bare name.
                    let start = j;
                    while j < n && is_ident_char(b[j]) {
                        j += 1;
                    }
                    out.push(Token {
                        kind: TokKind::Ident,
                        text: src[start..j].to_string(),
                        off: i,
                    });
                    i = j;
                    continue;
                }
                // `r#` followed by nothing useful: fall through as ident.
            }
            // b"..." / c"..." (escaped, non-raw).
            if (c == b'b' || c == b'c') && at(i + 1) == b'"' {
                let start = i;
                i = skip_quoted(b, i + 1, b'"');
                out.push(Token {
                    kind: TokKind::Literal,
                    text: "…".to_string(),
                    off: start,
                });
                continue;
            }
            if c == b'b' && at(i + 1) == b'\'' {
                let start = i;
                i = skip_quoted(b, i + 1, b'\'');
                out.push(Token {
                    kind: TokKind::Literal,
                    text: "…".to_string(),
                    off: start,
                });
                continue;
            }
            // Plain identifier / keyword.
            let start = i;
            while i < n && is_ident_char(b[i]) {
                i += 1;
            }
            out.push(Token {
                kind: TokKind::Ident,
                text: src[start..i].to_string(),
                off: start,
            });
            continue;
        }
        // String literal.
        if c == b'"' {
            let start = i;
            i = skip_quoted(b, i, b'"');
            out.push(Token {
                kind: TokKind::Literal,
                text: "…".to_string(),
                off: start,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == b'\'' {
            let start = i;
            if at(i + 1) == b'\\' {
                // Escaped char literal: '\n', '\'', '\u{..}'.
                i = skip_quoted(b, i, b'\'');
                out.push(Token {
                    kind: TokKind::Literal,
                    text: "…".to_string(),
                    off: start,
                });
                continue;
            }
            if is_ident_start(at(i + 1)) {
                let mut j = i + 2;
                while j < n && is_ident_char(b[j]) {
                    j += 1;
                }
                if at(j) == b'\'' {
                    // Char literal like 'a' (exactly one ident char fits;
                    // longer runs ending in ' only occur in broken code).
                    out.push(Token {
                        kind: TokKind::Literal,
                        text: "…".to_string(),
                        off: start,
                    });
                    i = j + 1;
                } else {
                    // Lifetime 'a / 'static.
                    out.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[start..j].to_string(),
                        off: start,
                    });
                    i = j;
                }
                continue;
            }
            // Char literal of a single non-ident char: '(' , '\u{0}' etc.
            if at(i + 2) == b'\'' {
                out.push(Token {
                    kind: TokKind::Literal,
                    text: "…".to_string(),
                    off: start,
                });
                i += 3;
                continue;
            }
            // Stray quote: emit as punct and move on (never happens in
            // code that compiles).
            out.push(Token {
                kind: TokKind::Punct,
                text: "'".to_string(),
                off: start,
            });
            i += 1;
            continue;
        }
        // Number literal.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (is_ident_char(b[i])) {
                i += 1;
            }
            // Fraction / exponent: consume `.` only when a digit follows
            // (so `0..10` leaves the range operator alone).
            if at(i) == b'.' && at(i + 1).is_ascii_digit() {
                i += 1;
                while i < n && (is_ident_char(b[i])) {
                    i += 1;
                }
            }
            out.push(Token {
                kind: TokKind::Literal,
                text: src[start..i].to_string(),
                off: start,
            });
            continue;
        }
        // Punctuation; join the few multi-char tokens the rules care about.
        let joined: Option<&str> = if c == b'.' && at(i + 1) == b'.' && at(i + 2) == b'=' {
            Some("..=")
        } else if c == b'.' && at(i + 1) == b'.' {
            Some("..")
        } else if c == b':' && at(i + 1) == b':' {
            Some("::")
        } else if c == b'=' && at(i + 1) == b'>' {
            Some("=>")
        } else if c == b'-' && at(i + 1) == b'>' {
            Some("->")
        } else {
            None
        };
        if let Some(j) = joined {
            out.push(Token {
                kind: TokKind::Punct,
                text: j.to_string(),
                off: i,
            });
            i += j.len();
            continue;
        }
        out.push(Token {
            kind: TokKind::Punct,
            text: (c as char).to_string(),
            off: i,
        });
        i += 1;
    }
    out
}

/// Skip a quoted run starting at the opening quote `b[start] == quote`,
/// honoring backslash escapes. Returns the index just past the closing
/// quote (or end of input).
fn skip_quoted(b: &[u8], start: usize, quote: u8) -> usize {
    let n = b.len();
    let mut i = start + 1;
    while i < n {
        if b[i] == b'\\' {
            i += 2;
        } else if b[i] == quote {
            return i + 1;
        } else {
            i += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // `.unwrap()` inside a raw string is data, not code.
        let toks = lex(r####"let s = r#"x.unwrap() panic!"#; s.len()"####);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert!(toks.iter().any(|t| t.is_ident("len")));
        // Deeper hash fences, and a byte raw string.
        let toks = lex(r#####"let s = r##"a "# b.unwrap()"##; let t = br"panic!";"#####);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn raw_identifiers_are_identifiers_not_strings() {
        let toks = lex("fn r#match() { r#fn + 1 }");
        assert!(toks.iter().any(|t| t.is_ident("match")));
        assert!(toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn nested_block_comments_fully_skipped() {
        let toks = lex("a /* x /* y.unwrap() */ panic! */ b");
        assert_eq!(idents("a /* x /* y.unwrap() */ panic! */ b"), ["a", "b"]);
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn line_comments_and_strings_skipped() {
        let src = "call(); // tail.unwrap()\nlet s = \"panic!(\\\"no\\\")\";";
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'static str { 'x' ; '\\n' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static"]);
        let chars = toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(chars, 2, "'x' and '\\n' are char literals");
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        let toks = lex("for i in 0..10 { a[i..=j]; 1.5 }");
        assert!(toks.iter().any(|t| t.is_punct("..")));
        assert!(toks.iter().any(|t| t.is_punct("..=")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "1.5"));
    }

    #[test]
    fn multichar_puncts_joined() {
        let toks = lex("Foo::Bar => x -> y");
        assert!(toks.iter().any(|t| t.is_punct("::")));
        assert!(toks.iter().any(|t| t.is_punct("=>")));
        assert!(toks.iter().any(|t| t.is_punct("->")));
    }
}
