//! lintkit — repo-native static analysis for migration-protocol and
//! concurrency invariants.
//!
//! The interesting invariants in this codebase are not type errors: a
//! panic on a transport path breaks the reconnect/resume story, an
//! inconsistent lock order deadlocks the pre-copy loop, a `_ =>` arm
//! swallows a protocol message added two PRs later. `cargo check` sees
//! none of them. lintkit lexes the workspace with a hand-rolled Rust
//! lexer (no external parser — the toolchain here is offline), layers a
//! per-file import table on top ([`resolve`]) so rules can match
//! fully-qualified names, and runs seven rules over the token streams;
//! see [`rules`] for each invariant and `DESIGN.md` §"Static analysis" /
//! §16 for scope and known limits. Zone membership comes from
//! `lintkit.toml` at the workspace root ([`config`]).
//!
//! Scope: `crates/*/src/**` (and a root `src/**` if one exists). Vendored
//! code under `vendor/`, integration `tests/`, and `benches/` are not
//! scanned — the invariants protect the product code; tests are free to
//! unwrap and to match however they like (also see the `#[cfg(test)]`
//! mask in [`source`]).

#![forbid(unsafe_code)]

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod config;
pub mod lexer;
pub mod report;
pub mod resolve;
pub mod rules;
pub mod source;

pub use config::Config;
pub use report::Violation;
pub use source::SourceFile;

/// Name of the unsafe allowlist file at the workspace root.
pub const ALLOWLIST: &str = "lintkit.allow";

/// Everything the rules see: the lexed files, the zone config, and the
/// unsafe allowlist.
pub struct Workspace {
    /// Lexed sources, sorted by path for deterministic reports.
    pub files: Vec<SourceFile>,
    /// Zone map + per-site allow entries (`lintkit.toml`).
    pub config: Config,
    /// Repo-relative paths permitted to contain `unsafe`.
    pub unsafe_allow: Vec<String>,
}

impl Workspace {
    /// Build a workspace from in-memory `(path, source)` pairs — the
    /// fixture-test entry point.
    pub fn from_sources(sources: &[(&str, &str)]) -> Self {
        let mut files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, text)| SourceFile::new(*rel, text))
            .collect();
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Self {
            files,
            config: Config::builtin(),
            unsafe_allow: Vec::new(),
        }
    }

    /// Scan a workspace rooted at `root`: every `.rs` file under
    /// `crates/*/src/` and a top-level `src/`, plus the allowlist.
    pub fn scan(root: &Path) -> io::Result<Self> {
        let mut rs_files = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            members.sort();
            for member in members {
                collect_rs(&member.join("src"), &mut rs_files)?;
            }
        }
        collect_rs(&root.join("src"), &mut rs_files)?;
        rs_files.sort();

        let mut files = Vec::with_capacity(rs_files.len());
        for path in rs_files {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::new(rel, &text));
        }
        Ok(Self {
            files,
            config: Config::load(root)?,
            unsafe_allow: read_allowlist(&root.join(ALLOWLIST))?,
        })
    }

    /// Run every rule; violations come back grouped by rule, in run
    /// order, each rule's findings in file/line order. Sites waived by a
    /// `lintkit.toml` `[allow]` entry are filtered here, centrally.
    pub fn run(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for rule in rules::all_rules() {
            let mut found = rule.check(self);
            found.retain(|v| !self.config.is_allowed(v.rule, &v.path, v.line));
            found.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
            out.extend(found);
        }
        out
    }
}

/// Recursively collect `.rs` files under `dir` (missing dirs are fine).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Parse `lintkit.allow`: one repo-relative path per line; `#` starts a
/// comment; blank lines ignored. A missing file means an empty list.
fn read_allowlist(path: &Path) -> io::Result<Vec<String>> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(text
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect())
}
