//! The `lintkit` binary: `cargo run -p lintkit --release -- --workspace`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use lintkit::{rules, Workspace};

const USAGE: &str = "\
usage: lintkit [--workspace | PATH] [--allowlist FILE] [--format FMT]
               [--list-rules]

  --workspace       lint the enclosing cargo workspace (found by walking
                    up from the current directory to a Cargo.toml that
                    declares [workspace])
  PATH              lint the workspace rooted at PATH instead
  --allowlist FILE  read the unsafe allowlist from FILE instead of
                    <root>/lintkit.allow
  --format FMT      output format: text (default) or json — json emits
                    one machine-readable document on stdout (the CI
                    artifact); exit codes are identical in both modes
  --list-rules      print each rule id and the invariant it protects

Zone membership comes from <root>/lintkit.toml (see DESIGN.md §16);
a missing file means the compiled-in default zones.
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allowlist: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut use_workspace = false;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => use_workspace = true,
            "--list-rules" => list_rules = true,
            "--allowlist" => match args.next() {
                Some(f) => allowlist = Some(PathBuf::from(f)),
                None => return usage_error("--allowlist needs a file argument"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => json = false,
                Some("json") => json = true,
                Some(other) => {
                    return usage_error(&format!("unknown format `{other}` (text|json)"))
                }
                None => return usage_error("--format needs an argument (text|json)"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = Some(PathBuf::from(other)),
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }

    if list_rules {
        for rule in rules::all_rules() {
            println!("{:<22} {}", rule.id(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None if use_workspace => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("lintkit: no enclosing [workspace] Cargo.toml found");
                return ExitCode::from(2);
            }
        },
        None => return usage_error("pass --workspace or a workspace PATH"),
    };

    let mut ws = match Workspace::scan(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("lintkit: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(file) = allowlist {
        ws.unsafe_allow = match std::fs::read_to_string(&file) {
            Ok(text) => text
                .lines()
                .map(|l| l.split('#').next().unwrap_or("").trim().to_string())
                .filter(|l| !l.is_empty())
                .collect(),
            Err(e) => {
                eprintln!("lintkit: failed to read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
    }

    let violations = ws.run();
    if json {
        let rule_meta: Vec<(&str, &str)> = rules::all_rules()
            .iter()
            .map(|r| (r.id(), r.summary()))
            .collect();
        print!(
            "{}",
            lintkit::report::to_json(&violations, ws.files.len(), &rule_meta)
        );
    } else {
        for v in &violations {
            println!("{v}");
        }
        if violations.is_empty() {
            println!(
                "lintkit: {} files clean across {} rules",
                ws.files.len(),
                rules::all_rules().len()
            );
        } else {
            println!("lintkit: {} violation(s)", violations.len());
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("lintkit: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Walk up from the current directory to a Cargo.toml declaring
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if toml_declares_workspace(&text) {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn toml_declares_workspace(text: &str) -> bool {
    text.lines().any(|l| l.trim() == "[workspace]")
}
