//! Diagnostics: what a rule found, where, and why it matters.

/// One rule violation, pointing at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier, e.g. `no-panic-transport`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the specific finding.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}
