//! Diagnostics: what a rule found, where, and why it matters — plus the
//! machine-readable rendering CI archives as an artifact.

/// One rule violation, pointing at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier, e.g. `no-panic-transport`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the specific finding.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Render a whole run as JSON (`lintkit --format json`). Hand-rolled —
/// lintkit builds with nothing but std — and stable: object keys are in
/// fixed order, violations in report order, so the artifact diffs
/// cleanly between CI runs.
pub fn to_json(violations: &[Violation], files_scanned: usize, rules: &[(&str, &str)]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str("  \"rules\": [");
    for (i, (id, _)) in rules.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(id));
    }
    out.push_str("],\n");
    out.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
            json_string(v.rule),
            json_string(&v.path),
            v.line,
            json_string(&v.message)
        ));
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string escaping: quotes, backslashes, and control characters.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let vs = vec![Violation {
            rule: "determinism",
            path: "crates/x/src/a.rs".to_string(),
            line: 7,
            message: "`HashMap` says \"no\"\n".to_string(),
        }];
        let doc = to_json(&vs, 3, &[("determinism", ""), ("lock-order", "")]);
        assert!(doc.contains("\"files_scanned\": 3"));
        assert!(doc.contains("\"rules\": [\"determinism\", \"lock-order\"]"));
        assert!(doc.contains("\\\"no\\\"\\n"));
        assert!(doc.contains("\"line\": 7"));
        // Empty runs still produce the full shape.
        let empty = to_json(&[], 0, &[]);
        assert!(empty.contains("\"violations\": []"));
    }
}
