//! Symbol resolution: per-file `use`-import tables and path expansion,
//! so rules can match fully-qualified names (`std::collections::HashMap`,
//! `std::time::Instant::now`) instead of bare identifiers.
//!
//! The model is deliberately small — exactly what zone rules need:
//!
//! * every `use` statement (including `pub use`, groups
//!   `use a::{b, c::d}`, renames `as x`, and globs `a::*`) contributes
//!   alias → full-path entries to the file's [`Imports`] table;
//! * at a use site, a path expression `head::seg::…` resolves by
//!   looking the head up in the table (or taking it verbatim when it is
//!   already absolute: `std`/`core`/`alloc`/`crate`); glob imports
//!   contribute one candidate per glob prefix, conservatively.
//!
//! Known limits, on purpose: no scoped (function-local) `use` tracking —
//! imports apply file-wide; no trait-method resolution (`map.insert(…)`
//! is a method call, not a path, and never resolves); `self`/`super`
//! heads stay unresolved. Every limit errs toward *fewer* resolutions,
//! so zone rules miss exotic spellings rather than misfire.

use std::collections::BTreeMap;

use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;

/// Path heads that are already fully qualified.
const ABSOLUTE_HEADS: &[&str] = &["std", "core", "alloc", "crate"];

/// One file's import table.
#[derive(Debug, Default)]
pub struct Imports {
    /// Last-visible-segment (or `as` rename) → full path.
    map: BTreeMap<String, String>,
    /// Prefixes imported wholesale via `use prefix::*;`.
    globs: Vec<String>,
}

impl Imports {
    /// Build the table from every `use` statement in `file` (test code
    /// included — a test-only import still shapes what names mean, and
    /// test *use sites* are masked separately by the rules).
    pub fn of(file: &SourceFile) -> Self {
        let toks = &file.tokens;
        let mut imports = Imports::default();
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("use") {
                let end = statement_end(toks, i);
                parse_use_tree(&toks[i + 1..end], "", &mut imports);
                i = end + 1;
            } else {
                i += 1;
            }
        }
        imports
    }

    /// The full paths the imported name `alias` may refer to: a direct
    /// mapping if one exists, plus one candidate per glob import.
    fn candidates(&self, alias: &str) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(full) = self.map.get(alias) {
            out.push(full.clone());
        }
        for g in &self.globs {
            out.push(format!("{g}::{alias}"));
        }
        out
    }

    /// Resolve the path expression starting at token `i` (which must be
    /// its head — callers check `is_path_head`). Returns the candidate
    /// fully-qualified spellings plus the token length of the
    /// `head(::seg)*` chain consumed.
    pub fn resolve(&self, toks: &[Token], i: usize) -> (Vec<String>, usize) {
        let mut segs: Vec<&str> = vec![toks[i].text.as_str()];
        let mut j = i + 1;
        while j + 1 < toks.len() && toks[j].is_punct("::") && toks[j + 1].kind == TokKind::Ident {
            segs.push(toks[j + 1].text.as_str());
            j += 2;
        }
        let consumed = j - i;
        let rest = segs[1..].join("::");
        let mut out = Vec::new();
        if ABSOLUTE_HEADS.contains(&segs[0]) {
            out.push(segs.join("::"));
        } else {
            for base in self.candidates(segs[0]) {
                if rest.is_empty() {
                    out.push(base);
                } else {
                    out.push(format!("{base}::{rest}"));
                }
            }
        }
        (out, consumed)
    }
}

/// Is token `i` the head of a path expression? True for an identifier
/// not preceded by `::` (mid-path), `.` (a method/field name), or
/// `fn`/`mod`/`struct`-style declaration keywords (a definition, not a
/// use). `use` statements are excluded — they are parsed separately.
pub fn is_path_head(toks: &[Token], i: usize) -> bool {
    if toks[i].kind != TokKind::Ident {
        return false;
    }
    let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
        return true;
    };
    if prev.is_punct("::") || prev.is_punct(".") {
        return false;
    }
    const DECLS: &[&str] = &[
        "fn", "mod", "struct", "enum", "trait", "let", "mut", "use", "as",
    ];
    !DECLS.iter().any(|d| prev.is_ident(d))
}

/// Index of the `;` ending the statement that starts at `s` (or EOF).
fn statement_end(toks: &[Token], s: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(s) {
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && t.is_punct(";") {
            return k;
        }
    }
    toks.len()
}

/// Recursively parse a `use` tree: `prefix` is the path accumulated so
/// far (`""` at the root), `toks` the tokens of one tree level.
fn parse_use_tree(toks: &[Token], prefix: &str, imports: &mut Imports) {
    // Split this level on top-level commas (only groups `{…}` nest).
    let mut start = 0;
    let mut depth = 0i32;
    for k in 0..=toks.len() {
        let at_comma = k < toks.len() && depth == 0 && toks[k].is_punct(",");
        if k < toks.len() {
            if toks[k].is_punct("{") {
                depth += 1;
            } else if toks[k].is_punct("}") {
                depth -= 1;
            }
        }
        if at_comma || k == toks.len() {
            parse_use_item(&toks[start..k], prefix, imports);
            start = k + 1;
        }
    }
}

/// One comma-separated item: `a::b`, `a::b as c`, `a::{…}`, `a::*`.
fn parse_use_item(toks: &[Token], prefix: &str, imports: &mut Imports) {
    let mut path = prefix.to_string();
    let mut last_seg = String::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && !t.is_ident("as") {
            last_seg = t.text.clone();
            if !path.is_empty() {
                path.push_str("::");
            }
            path.push_str(&t.text);
            i += 1;
        } else if t.is_punct("::") {
            i += 1;
        } else if t.is_punct("*") {
            if !path.is_empty() {
                imports.globs.push(path.clone());
            }
            return;
        } else if t.is_punct("{") {
            // Group: recurse with the accumulated path as the prefix.
            let close = toks
                .iter()
                .enumerate()
                .skip(i)
                .scan(0i32, |d, (k, t)| {
                    if t.is_punct("{") {
                        *d += 1;
                    } else if t.is_punct("}") {
                        *d -= 1;
                        if *d == 0 {
                            return Some(Some(k));
                        }
                    }
                    Some(None)
                })
                .flatten()
                .next()
                .unwrap_or(toks.len());
            parse_use_tree(&toks[i + 1..close.min(toks.len())], &path, imports);
            return;
        } else if t.is_ident("as") {
            if let Some(rename) = toks.get(i + 1) {
                if rename.kind == TokKind::Ident {
                    imports.map.insert(rename.text.clone(), path);
                }
            }
            return;
        } else {
            // `pub`, visibility parens, stray tokens: skip.
            i += 1;
        }
    }
    if !last_seg.is_empty() {
        // `use a::b::c;` binds `c`. `use a::b::self;` binds `b` — the
        // lexer keeps `self` as an ident, which naturally does the
        // right thing here (path ends `…::self`, alias is `self`) only
        // if we strip it:
        if last_seg == "self" {
            if let Some(stripped) = path.strip_suffix("::self") {
                let alias = stripped.rsplit("::").next().unwrap_or(stripped);
                imports.map.insert(alias.to_string(), stripped.to_string());
            }
            return;
        }
        imports.map.insert(last_seg, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> Imports {
        Imports::of(&SourceFile::new("a.rs", src))
    }

    fn resolve_ident(src: &str, ident: &str) -> Vec<String> {
        let file = SourceFile::new("a.rs", src);
        let imports = Imports::of(&file);
        let i = file
            .tokens
            .iter()
            .rposition(|t| t.is_ident(ident))
            .expect("ident present");
        imports.resolve(&file.tokens, i).0
    }

    #[test]
    fn plain_group_rename_and_glob_imports() {
        let t = table(
            "use std::collections::HashMap;\n\
             use std::collections::{BTreeMap, hash_map::Entry};\n\
             use std::collections::HashSet as Seen;\n\
             use std::time::*;\n",
        );
        assert_eq!(t.map["HashMap"], "std::collections::HashMap");
        assert_eq!(t.map["BTreeMap"], "std::collections::BTreeMap");
        assert_eq!(t.map["Entry"], "std::collections::hash_map::Entry");
        assert_eq!(t.map["Seen"], "std::collections::HashSet");
        assert_eq!(t.globs, ["std::time"]);
    }

    #[test]
    fn use_sites_resolve_through_the_table() {
        let src = "use std::collections::HashMap;\nfn f() { let m = HashMap::new(); }";
        assert_eq!(
            resolve_ident(src, "HashMap"),
            ["std::collections::HashMap::new"]
        );
        // Absolute paths need no import.
        let src2 = "fn f() { let m = std::collections::HashMap::new(); }";
        let file = SourceFile::new("a.rs", src2);
        let i = file.tokens.iter().position(|t| t.is_ident("std")).unwrap();
        let (paths, consumed) = Imports::of(&file).resolve(&file.tokens, i);
        assert_eq!(paths, ["std::collections::HashMap::new"]);
        assert_eq!(consumed, 7, "std :: collections :: HashMap :: new");
    }

    #[test]
    fn globs_resolve_conservatively() {
        let src = "use std::time::*;\nfn f() { let t = Instant::now(); }";
        assert_eq!(resolve_ident(src, "Instant"), ["std::time::Instant::now"]);
    }

    #[test]
    fn method_names_and_unimported_idents_do_not_resolve() {
        let src = "use std::time::Instant;\nfn f(m: &M) { m.now(); }";
        let file = SourceFile::new("a.rs", src);
        let i = file.tokens.iter().rposition(|t| t.is_ident("now")).unwrap();
        assert!(!is_path_head(&file.tokens, i), "`.now(` is a method");
        assert!(resolve_ident("fn f() { Mystery::now(); }", "Mystery").is_empty());
    }
}
