//! Rule `determinism`: deterministic zones use neither hash-ordered
//! containers nor the wall clock.
//!
//! The repo's strongest correctness claim is same-seed replay: two runs
//! with the same seed produce byte-identical telemetry journals and wire
//! stats (DESIGN.md §12, `tests/telemetry_journal.rs`). `HashMap`/
//! `HashSet` iteration order is randomized per process, and
//! `Instant::now()`/`SystemTime::now()` reads differ per run — either
//! one in a journaled path silently breaks the claim in a way no test
//! catches until the order happens to flip. This rule machine-checks it,
//! via the symbol-resolution layer ([`crate::resolve`]) so
//! fully-qualified spellings, renames (`use … HashSet as Seen`), and
//! glob imports all resolve to the same banned names.
//!
//! Two zones, one distinction: `deterministic` bans containers *and*
//! wall-clock reads; `deterministic-order` bans only the containers —
//! the telemetry recorder owns the wall half of the dual-clock model and
//! the live driver measures real downtime, but both feed ordered
//! journals, so their iteration order must still be deterministic.

use super::{matchers, Rule};
use crate::report::Violation;
use crate::resolve::{is_path_head, Imports};
use crate::Workspace;

/// Banned as a prefix: the types and their module escape hatches
/// (`hash_map::Entry` is still hash iteration order).
const BANNED_CONTAINERS: &[&str] = &[
    "std::collections::HashMap",
    "std::collections::HashSet",
    "std::collections::hash_map",
    "std::collections::hash_set",
];

/// Banned exactly (as a prefix too — `Instant::now` has no children,
/// so prefix matching is exact matching here).
const BANNED_WALLCLOCK: &[&str] = &["std::time::Instant::now", "std::time::SystemTime::now"];

/// See module docs.
pub struct Determinism;

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn summary(&self) -> &'static str {
        "deterministic zones use ordered containers and the sim clock, never hash order or wall time"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in &ws.files {
            let full = ws.config.in_zone("deterministic", &file.rel);
            let order_only = ws.config.in_zone("deterministic-order", &file.rel);
            if !full && !order_only {
                continue;
            }
            let imports = Imports::of(file);
            let toks = &file.tokens;
            let mut last_line = 0usize;
            let mut i = 0;
            while i < toks.len() {
                if file.in_test[i] || !is_path_head(toks, i) || matchers::is_macro_call(toks, i) {
                    i += 1;
                    continue;
                }
                let (candidates, consumed) = imports.resolve(toks, i);
                let container = candidates
                    .iter()
                    .find_map(|c| banned_prefix(c, BANNED_CONTAINERS));
                let wallclock = if full {
                    candidates
                        .iter()
                        .find_map(|c| banned_prefix(c, BANNED_WALLCLOCK))
                } else {
                    None
                };
                let line = file.line_of_token(i);
                // One diagnostic per line: `let m: HashMap<…> = HashMap::new()`
                // is one finding, not two.
                if line != last_line {
                    if let Some(name) = container {
                        last_line = line;
                        out.push(Violation {
                            rule: self.id(),
                            path: file.rel.clone(),
                            line,
                            message: format!(
                                "`{name}` in a deterministic zone — hash iteration \
                                 order breaks same-seed replay; use BTreeMap/BTreeSet \
                                 (or sorted iteration)"
                            ),
                        });
                    } else if let Some(name) = wallclock {
                        last_line = line;
                        out.push(Violation {
                            rule: self.id(),
                            path: file.rel.clone(),
                            line,
                            message: format!(
                                "`{name}` in a deterministic zone — wall-clock reads \
                                 differ per run; take time from the sim clock"
                            ),
                        });
                    }
                }
                i += consumed.max(1);
            }
        }
        out
    }
}

/// The banned name `path` matches, if any: equal, or extends it by a
/// `::` segment (`std::collections::HashMap::new`).
fn banned_prefix<'a>(path: &str, banned: &'a [&'a str]) -> Option<&'a str> {
    banned
        .iter()
        .find(|b| path == **b || path.strip_prefix(**b).is_some_and(|r| r.starts_with("::")))
        .copied()
}
