//! Rule `lock-order`: the static lock-ordering graph must be acyclic,
//! and no guard may be held across a blocking call.
//!
//! Every `Mutex`/`RwLock` acquisition site (`.lock()`, `.read()`,
//! `.write()` with no arguments) is extracted per function. While a
//! guard is live, three things are recorded:
//!
//! * an **ordering edge** to any lock acquired under it — the global
//!   graph over lock names must stay acyclic, or two threads taking the
//!   locks in opposite orders can deadlock;
//! * any **blocking call** (`send`/`recv`/`recv_timeout`/`wait*`/`join`/
//!   `sleep`/`accept`/`connect`/`park`) made under it — a guard held
//!   across a block is how the destination ends up waiting forever on a
//!   pulled block (the paper's §IV-A-3 liveness argument);
//! * any call to a **same-crate helper that itself acquires locks** —
//!   the interprocedural (single-hop) extension. A per-crate summary
//!   maps each `fn` to the locks its body acquires directly; a call to
//!   `helper(…)`, `self.helper(…)`, or `Self::helper(…)` under a guard
//!   contributes the summary's acquisitions as ordering edges (labelled
//!   `via`), closing the "wrap the lock in a function" blind spot.
//!
//! Deliberate limits, documented in DESIGN.md §16: propagation is one
//! hop (helper-of-helper chains are not chased), call targets resolve by
//! bare name within the crate (same-named functions merge into one
//! conservative summary; method calls on receivers other than `self`
//! are skipped — without types, `guard.flush()` vs `disk.flush()` is
//! guesswork), locks are identified by field/binding name (distinct
//! locks sharing a name merge into one conservative node), edges where
//! **both** ends are shared (`.read()`) acquisitions are
//! non-conflicting, and `wait*` calls that take a live guard as an
//! argument are exempt — the condvar pattern releases the lock while
//! parked.

use std::collections::{BTreeMap, BTreeSet};

use super::matchers::{self, match_paren};
use super::Rule;
use crate::lexer::{TokKind, Token};
use crate::report::Violation;
use crate::source::{at_statement_start, is_zero_arg_call, SourceFile};
use crate::Workspace;

const BLOCKING: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_for",
    "wait_timeout",
    "wait_while",
    "join",
    "sleep",
    "accept",
    "connect",
    "park",
];

/// How a lock was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `.read()` — shared; two shared holds cannot deadlock each other.
    Shared,
    /// `.lock()` / `.write()` — exclusive.
    Exclusive,
}

#[derive(Debug, Clone)]
struct Guard {
    /// Graph-node identity: the lock's receiver name (`ledger` in
    /// `self.ledger.lock()`), so the same lock matches across functions.
    node: String,
    /// Local binding name (`g` in `let g = ...`), what `drop(g)` and
    /// `cv.wait(&mut g)` mention. Falls back to the node name.
    binding: String,
    mode: Mode,
    /// Token index after which the guard is dead.
    end: usize,
}

/// An ordering edge `from` → `to` with one example site.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    from_mode: Mode,
    to: String,
    to_mode: Mode,
    path: String,
    line: usize,
    /// Helper function the `to` acquisition happens inside, when the
    /// edge came from the interprocedural extension.
    via: Option<String>,
}

/// Per-crate, per-function summary: locks a function's body acquires
/// directly, as `(node, mode)` pairs.
type CrateSummaries = BTreeMap<String, BTreeMap<String, Vec<(String, Mode)>>>;

/// See module docs.
pub struct LockOrder;

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn summary(&self) -> &'static str {
        "lock acquisition order is globally acyclic; no guard is held across a blocking call"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let summaries = build_summaries(ws);
        let mut out = Vec::new();
        let mut edges: Vec<Edge> = Vec::new();
        for file in &ws.files {
            let crate_fns = summaries.get(matchers::crate_of(&file.rel));
            scan_file(self.id(), file, crate_fns, &mut edges, &mut out);
        }
        violations_from_edges(self.id(), &edges, &mut out);
        out
    }
}

/// Pre-pass: which locks does each function acquire directly?
fn build_summaries(ws: &Workspace) -> CrateSummaries {
    let mut out: CrateSummaries = BTreeMap::new();
    for file in &ws.files {
        let per_crate = out
            .entry(matchers::crate_of(&file.rel).to_string())
            .or_default();
        let toks = &file.tokens;
        for def in matchers::functions_in(file) {
            let acquisitions = per_crate.entry(def.name).or_default();
            let (open, close) = def.body;
            for i in open..close {
                let Some(mode) = acquisition_mode(&toks[i]) else {
                    continue;
                };
                if i > 0 && toks[i - 1].is_punct(".") && is_zero_arg_call(toks, i) {
                    if let Some(node) = receiver_name(toks, i - 1) {
                        if !acquisitions.iter().any(|(n, m)| *n == node && *m == mode) {
                            acquisitions.push((node, mode));
                        }
                    }
                }
            }
        }
    }
    out
}

fn acquisition_mode(t: &Token) -> Option<Mode> {
    match t.text.as_str() {
        "lock" | "write" => Some(Mode::Exclusive),
        "read" => Some(Mode::Shared),
        _ => None,
    }
}

/// One guard-tracking walk over a file: collects ordering edges (direct
/// and via same-crate helpers) and reports blocking calls under guards.
fn scan_file(
    rule: &'static str,
    file: &SourceFile,
    crate_fns: Option<&BTreeMap<String, Vec<(String, Mode)>>>,
    edges: &mut Vec<Edge>,
    out: &mut Vec<Violation>,
) {
    let toks = &file.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    // Innermost-open-brace stack, to scope `let`-bound guards.
    let mut braces: Vec<usize> = Vec::new();

    for i in 0..toks.len() {
        guards.retain(|g| g.end > i);
        let t = &toks[i];
        if t.is_punct("{") {
            braces.push(i);
            continue;
        }
        if t.is_punct("}") {
            braces.pop();
            continue;
        }
        if file.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }

        // Explicit early release: drop(guard) / mem::drop(guard).
        if t.is_ident("drop") && matches!(toks.get(i + 1), Some(n) if n.is_punct("(")) {
            if let Some(close) = match_paren(toks, i + 1) {
                let args = &toks[i + 2..close];
                guards.retain(|g| !args.iter().any(|a| a.is_ident(&g.binding)));
            }
            continue;
        }

        // Lock acquisition: `recv . lock ( )` with zero args.
        if let Some(mode) = acquisition_mode(t) {
            if i > 0 && toks[i - 1].is_punct(".") && is_zero_arg_call(toks, i) {
                let recv_name = receiver_name(toks, i - 1);
                let (binding, end) = guard_extent(file, toks, i, &braces, recv_name.clone());
                let node = recv_name.unwrap_or_else(|| binding.clone());
                for g in &guards {
                    if !(g.mode == Mode::Shared && mode == Mode::Shared) {
                        edges.push(Edge {
                            from: g.node.clone(),
                            from_mode: g.mode,
                            to: node.clone(),
                            to_mode: mode,
                            path: file.rel.clone(),
                            line: file.line_of_token(i),
                            via: None,
                        });
                    }
                }
                guards.push(Guard {
                    node,
                    binding,
                    mode,
                    end,
                });
                continue;
            }
        }

        // Interprocedural hop: a same-crate helper called under a live
        // guard contributes the locks its body acquires.
        if !guards.is_empty() && matches!(toks.get(i + 1), Some(n) if n.is_punct("(")) {
            if let Some(fns) = crate_fns {
                if is_propagatable_call(toks, i) {
                    if let Some(acquired) = fns.get(t.text.as_str()) {
                        for (node, mode) in acquired {
                            for g in &guards {
                                if !(g.mode == Mode::Shared && *mode == Mode::Shared) {
                                    edges.push(Edge {
                                        from: g.node.clone(),
                                        from_mode: g.mode,
                                        to: node.clone(),
                                        to_mode: *mode,
                                        path: file.rel.clone(),
                                        line: file.line_of_token(i),
                                        via: Some(t.text.clone()),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }

        // Blocking call under a live guard.
        if BLOCKING.contains(&t.text.as_str())
            && !guards.is_empty()
            && i > 0
            && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::"))
            && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
        {
            let args: &[Token] = match match_paren(toks, i + 1) {
                Some(close) => &toks[i + 2..close],
                None => &[],
            };
            // Condvar pattern: `cv.wait(&mut guard)` hands the guard to
            // the wait, which releases the lock while parked.
            let consumes_guard = t.text.starts_with("wait")
                && guards
                    .iter()
                    .any(|g| args.iter().any(|a| a.is_ident(&g.binding)));
            if !consumes_guard {
                let held: Vec<&str> = guards.iter().map(|g| g.node.as_str()).collect();
                out.push(Violation {
                    rule,
                    path: file.rel.clone(),
                    line: file.line_of_token(i),
                    message: format!(
                        "guard on `{}` held across blocking `{}` call — release the \
                         lock before blocking",
                        held.join("`, `"),
                        t.text
                    ),
                });
            }
        }
    }
}

/// Call shapes the single-hop extension resolves: a bare `helper(…)`,
/// `self.helper(…)`, or `Self::helper(…)`. Method calls on any other
/// receiver are skipped — without type information the callee is
/// guesswork (`guard.write_block(…)` must not hit `Disk::write_block`'s
/// summary).
fn is_propagatable_call(toks: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
        return true;
    };
    if prev.is_punct(".") {
        return i >= 2 && toks[i - 2].is_ident("self");
    }
    if prev.is_punct("::") {
        return i >= 2 && toks[i - 2].is_ident("Self");
    }
    // `fn helper(` is a definition; `match x` etc. never precede `(`
    // with an ident in call position we care about.
    !prev.is_ident("fn")
}

/// The receiver identifier of a method call whose `.` sits at `dot`:
/// `self.shared.pending.lock()` → `pending`.
fn receiver_name(toks: &[Token], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let r = &toks[dot - 1];
    if r.kind == TokKind::Ident {
        return Some(r.text.clone());
    }
    // Tuple-field receivers like `self.0.lock()` — use the ident before
    // the numeric field: `self`.
    if r.kind == TokKind::Literal && dot >= 3 && toks[dot - 2].is_punct(".") {
        let rr = &toks[dot - 3];
        if rr.kind == TokKind::Ident {
            return Some(rr.text.clone());
        }
    }
    None
}

/// Binding name and end-of-life token index for a guard acquired at
/// method token `m`. A `let`-bound guard lives to the end of the
/// enclosing block; a temporary lives to the end of its statement —
/// where a statement that opens a block before `;` (a `for`/`while`/
/// `match` header) extends through that block.
fn guard_extent(
    file: &SourceFile,
    toks: &[Token],
    m: usize,
    braces: &[usize],
    recv_name: Option<String>,
) -> (String, usize) {
    // Walk back to the statement start looking for `let [mut] name =`.
    let mut s = m;
    while s > 0 && !at_statement_start(toks, s) {
        s -= 1;
    }
    let mut let_name = None;
    if toks.get(s).is_some_and(|t| t.is_ident("let")) {
        let mut j = s + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        if let (Some(name_tok), Some(eq_tok)) = (toks.get(j), toks.get(j + 1)) {
            if name_tok.kind == TokKind::Ident && eq_tok.is_punct("=") {
                let_name = Some(name_tok.text.clone());
            }
        }
    }
    let name = let_name
        .clone()
        .or(recv_name)
        .unwrap_or_else(|| "<expr>".to_string());
    if let_name.is_some() || toks.get(s).is_some_and(|t| t.is_ident("let")) {
        // Let-bound (even into a pattern): enclosing block scope.
        let end = braces
            .last()
            .and_then(|&open| file.brace_match[open])
            .unwrap_or(toks.len());
        return (name, end);
    }
    // Temporary: end of statement, extended through a header-opened block.
    let mut depth = 0i32;
    let mut k = m + 1;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth <= 0 && (t.is_punct(";") || t.is_punct("}")) {
            // `;` ends the statement; `}` ends the enclosing block (the
            // tail-expression case, which has no `;`).
            return (name, k);
        } else if depth <= 0 && t.is_punct("{") {
            return (name, file.brace_match[k].unwrap_or(toks.len()));
        }
        k += 1;
    }
    (name, toks.len())
}

/// Report self-edges and directed cycles in the ordering graph.
fn violations_from_edges(rule: &'static str, edges: &[Edge], out: &mut Vec<Violation>) {
    let mut adj: BTreeMap<&str, BTreeMap<&str, &Edge>> = BTreeMap::new();
    for e in edges {
        if e.from == e.to {
            // Same lock name re-acquired while held. Shared→Shared pairs
            // were never recorded; anything here can deadlock (or is two
            // same-named locks, which the naming scheme conservatively
            // refuses to tell apart).
            let via = e
                .via
                .as_ref()
                .map(|f| format!(" via call to `{f}()`"))
                .unwrap_or_default();
            out.push(Violation {
                rule,
                path: e.path.clone(),
                line: e.line,
                message: format!(
                    "lock `{}` acquired again while already held{via} ({:?} under {:?})",
                    e.to, e.to_mode, e.from_mode
                ),
            });
            continue;
        }
        adj.entry(&e.from).or_default().entry(&e.to).or_insert(e);
    }
    // DFS cycle detection; report each cycle once by its node set.
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack = vec![start];
        dfs(start, &adj, &mut stack, &mut |cycle| {
            let mut key: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
            key.sort();
            if reported.insert(key) {
                let edge = adj[cycle[cycle.len() - 1]][cycle[0]];
                let via = edge
                    .via
                    .as_ref()
                    .map(|f| format!(" (closing edge via call to `{f}()`)"))
                    .unwrap_or_default();
                out.push(Violation {
                    rule,
                    path: edge.path.clone(),
                    line: edge.line,
                    message: format!(
                        "lock-order cycle: {}{via} — acquisition order must be \
                         globally consistent",
                        cycle.join(" -> "),
                    ),
                });
            }
        });
    }
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, BTreeMap<&'a str, &'a Edge>>,
    stack: &mut Vec<&'a str>,
    report: &mut impl FnMut(&[&'a str]),
) {
    let Some(next) = adj.get(node) else { return };
    for &n in next.keys() {
        if let Some(pos) = stack.iter().position(|&s| s == n) {
            report(&stack[pos..]);
            continue;
        }
        stack.push(n);
        dfs(n, adj, stack, report);
        stack.pop();
    }
}
