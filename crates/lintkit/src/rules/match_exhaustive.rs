//! Rule `protocol-exhaustive`: matches over the wire protocol must be
//! exhaustive by construction — no `_ =>` catch-alls.
//!
//! The migration protocol evolves (PR 1 added resume/reconnect
//! messages); a wildcard arm silently swallows any message variant added
//! later, which is exactly how a destination comes to ignore a
//! `DirtyBitmap` frame. Forcing every variant to be named turns "new
//! message kind" into a compile-time/CI-time checklist of every decode
//! and dispatch site.
//!
//! A match participates when any arm *pattern* mentions
//! `MigMessage::`/`Category::` — or `Self::` inside an `impl` of those
//! types. Only pattern position counts: `match ep.send(MigMessage::Ack)`
//! matches over a `Result` and may use wildcards freely, and
//! `from_u8`-style matches over integers returning protocol values are
//! likewise untouched.

use super::matchers::next_depth0_brace;
use super::Rule;
use crate::lexer::{TokKind, Token};
use crate::report::Violation;
use crate::Workspace;

/// Types whose matches must name every variant.
const PROTOCOL_TYPES: &[&str] = &["MigMessage", "Category"];

/// See module docs.
pub struct MatchExhaustive;

impl Rule for MatchExhaustive {
    fn id(&self) -> &'static str {
        "protocol-exhaustive"
    }

    fn summary(&self) -> &'static str {
        "matches over MigMessage/Category name every variant — no `_ =>` arms"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in &ws.files {
            let toks = &file.tokens;
            let impl_ranges = protocol_impl_ranges(toks, &file.brace_match);
            for i in 0..toks.len() {
                if file.in_test[i] || !toks[i].is_ident("match") {
                    continue;
                }
                let Some((open, close)) = match_body(toks, &file.brace_match, i) else {
                    continue;
                };
                let in_protocol_impl = impl_ranges.iter().any(|&(s, e)| i > s && i < e);
                let arms = split_arms(toks, &file.brace_match, open + 1, close);
                let protocol = arms
                    .iter()
                    .any(|a| pattern_is_protocol(&toks[a.0..a.1], in_protocol_impl));
                if !protocol {
                    continue;
                }
                for &(ps, pe) in &arms {
                    let pat = &toks[ps..pe];
                    if pattern_is_wildcard(pat) {
                        out.push(Violation {
                            rule: self.id(),
                            path: file.rel.clone(),
                            line: file.line_of_token(ps),
                            message: "`_ =>` arm in a match over a protocol type — name \
                                      every variant so new messages cannot be silently \
                                      dropped"
                                .to_string(),
                        });
                    }
                }
            }
        }
        out
    }
}

/// Token ranges `(body_open, body_close)` of `impl` blocks whose header
/// names a protocol type (`impl MigMessage`, `impl From<u8> for Category`).
fn protocol_impl_ranges(toks: &[Token], brace_match: &[Option<usize>]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            let Some(j) = next_depth0_brace(toks, i + 1) else {
                i += 1;
                continue;
            };
            let names_protocol = toks[i + 1..j]
                .iter()
                .any(|t| PROTOCOL_TYPES.iter().any(|p| t.is_ident(p)));
            if names_protocol {
                if let Some(close) = brace_match[j] {
                    out.push((j, close));
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// The `{`/`}` token indices of the body of the match at keyword `m`.
/// The scrutinee cannot contain a top-level `{` (struct literals need
/// parens there), so the first depth-0 `{` is the body.
fn match_body(toks: &[Token], brace_match: &[Option<usize>], m: usize) -> Option<(usize, usize)> {
    let open = next_depth0_brace(toks, m + 1)?;
    brace_match[open].map(|c| (open, c))
}

/// Split a match body (token range, exclusive) into arm pattern ranges
/// `(pattern_start, pattern_end_exclusive)` — the tokens before each
/// depth-0 `=>`, including any `if` guard.
fn split_arms(
    toks: &[Token],
    brace_match: &[Option<usize>],
    start: usize,
    end: usize,
) -> Vec<(usize, usize)> {
    let mut arms = Vec::new();
    let mut j = start;
    while j < end {
        let pat_start = j;
        // Find the `=>` terminating this pattern.
        let mut depth = 0i32;
        let mut arrow = None;
        let mut k = j;
        while k < end {
            let t = &toks[k];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("=>") {
                arrow = Some(k);
                break;
            }
            k += 1;
        }
        let Some(arrow) = arrow else { break };
        arms.push((pat_start, arrow));
        // Skip the arm body: a block, or an expression up to a depth-0 `,`.
        let mut b = arrow + 1;
        if b < end && toks[b].is_punct("{") {
            b = brace_match[b].map(|c| c + 1).unwrap_or(end);
            if b < end && toks[b].is_punct(",") {
                b += 1;
            }
        } else {
            let mut depth = 0i32;
            while b < end {
                let t = &toks[b];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    depth -= 1;
                } else if depth == 0 && t.is_punct(",") {
                    b += 1;
                    break;
                }
                b += 1;
            }
        }
        j = b;
    }
    arms
}

/// Does this arm pattern name a protocol type? `MigMessage::…`,
/// `Category::…`, or `Self::…` when inside an `impl` of a protocol type.
fn pattern_is_protocol(pat: &[Token], in_protocol_impl: bool) -> bool {
    pat.windows(2).any(|w| {
        w[1].is_punct("::")
            && (PROTOCOL_TYPES.iter().any(|p| w[0].is_ident(p))
                || (in_protocol_impl && w[0].is_ident("Self")))
    })
}

/// Is this pattern a catch-all: exactly `_`, or `_ if <guard>`?
fn pattern_is_wildcard(pat: &[Token]) -> bool {
    match pat {
        [only] => only.is_ident("_"),
        [first, second, ..] => {
            first.is_ident("_") && second.kind == TokKind::Ident && second.is_ident("if")
        }
        [] => false,
    }
}
