//! Token-scanning helpers shared by the rules.
//!
//! Before this module each rule carried its own copy of paren matching
//! and depth-0 scanning; the semantic rules (determinism, result-dropped,
//! interprocedural lock-order) add a per-file function table on top, so
//! the helpers live here once.

use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;

/// Index of the `)` matching the `(` at `open`.
pub fn match_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index of the `(` matching the `)` at `close`, scanning backwards.
pub fn match_paren_back(toks: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    for i in (0..=close).rev() {
        let t = &toks[i];
        if t.is_punct(")") {
            depth += 1;
        } else if t.is_punct("(") {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// First `{` at parenthesis/bracket depth 0 from `start` — the body
/// opener of a `match`/`impl`/`fn` header (struct literals cannot appear
/// unparenthesized in those positions).
pub fn next_depth0_brace(toks: &[Token], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(start) {
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && t.is_punct("{") {
            return Some(j);
        } else if depth == 0 && t.is_punct(";") {
            // A `;` first means the header had no body (trait method,
            // item declaration).
            return None;
        }
    }
    None
}

/// Is the ident at `i` a macro invocation name (`name!(…)`, `name![…]`,
/// `name!{…}`)?
pub fn is_macro_call(toks: &[Token], i: usize) -> bool {
    toks[i].kind == TokKind::Ident && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"))
}

/// The workspace crate a path belongs to: `crates/<name>/…` → `<name>`,
/// the root package's `src/…` → `<root>`.
pub fn crate_of(rel: &str) -> &str {
    match rel.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or(rest),
        None => "<root>",
    }
}

/// One `fn` definition: its name, body token range, and whether the
/// declared return type mentions `Result`.
pub struct FnDef {
    pub name: String,
    /// Token index of the name (for line reporting).
    pub name_idx: usize,
    /// `(open_brace, close_brace)` token indices of the body.
    pub body: (usize, usize),
    /// The `-> … Result …` check is by token, so `io::Result<()>` and
    /// `Result<T, E>` both count.
    pub ret_result: bool,
}

/// Every non-test `fn` with a body in `file` (free functions and
/// methods alike — an `fn` inside an `impl` block is still `fn`).
pub fn functions_in(file: &SourceFile) -> Vec<FnDef> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") || file.in_test[i] {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue; // `Fn(…)` trait sugar never lexes as `fn` + ident
        }
        let Some(open) = next_depth0_brace(toks, i + 2) else {
            continue;
        };
        let Some(close) = file.brace_match[open] else {
            continue;
        };
        let header = &toks[i + 2..open];
        let ret_result =
            header.iter().any(|t| t.is_punct("->")) && header.iter().any(|t| t.is_ident("Result"));
        out.push(FnDef {
            name: name_tok.text.clone(),
            name_idx: i + 1,
            body: (open, close),
            ret_result,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_table_sees_methods_and_return_types() {
        let src =
            "impl Disk {\n  fn write_block(&self, b: usize) -> io::Result<()> { self.go(b) }\n}\n\
                   fn helper(x: u32) -> u32 { x }\n\
                   trait T { fn decl(&self) -> Result<(), E>; }\n\
                   #[cfg(test)]\nmod t { fn masked() {} }";
        let f = SourceFile::new("crates/vdisk/src/disk.rs", src);
        let fns = functions_in(&f);
        let names: Vec<(&str, bool)> = fns
            .iter()
            .map(|d| (d.name.as_str(), d.ret_result))
            .collect();
        assert_eq!(
            names,
            [("write_block", true), ("helper", false)],
            "bodied non-test fns only"
        );
        assert_eq!(crate_of(&f.rel), "vdisk");
        assert_eq!(crate_of("src/lib.rs"), "<root>");
    }

    #[test]
    fn paren_matching_is_symmetric() {
        let f = SourceFile::new("a.rs", "f(g(1), h(2));");
        let toks = &f.tokens;
        let open = toks.iter().position(|t| t.is_punct("(")).unwrap();
        let close = match_paren(toks, open).unwrap();
        assert_eq!(match_paren_back(toks, close), Some(open));
    }
}
