//! The rule framework: each rule checks one invariant the compiler
//! cannot see, over the whole lexed workspace at once (some rules are
//! cross-file, e.g. the lock-ordering graph and the per-crate function
//! summaries).

use crate::report::Violation;
use crate::Workspace;

mod determinism;
mod lock_order;
mod match_exhaustive;
pub mod matchers;
mod no_blocking;
mod no_panic;
mod result_dropped;
mod unsafe_audit;

pub use determinism::Determinism;
pub use lock_order::LockOrder;
pub use match_exhaustive::MatchExhaustive;
pub use no_blocking::NoBlocking;
pub use no_panic::NoPanicTransport;
pub use result_dropped::ResultDropped;
pub use unsafe_audit::UnsafeAudit;

/// One static-analysis rule.
pub trait Rule {
    /// Stable identifier used in diagnostics (kebab-case).
    fn id(&self) -> &'static str;

    /// One-line statement of the invariant the rule protects.
    fn summary(&self) -> &'static str;

    /// Check the workspace and return every violation found.
    fn check(&self, ws: &Workspace) -> Vec<Violation>;
}

/// Every rule, in the order they are run and reported.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicTransport),
        Box::new(LockOrder),
        Box::new(MatchExhaustive),
        Box::new(UnsafeAudit),
        Box::new(Determinism),
        Box::new(NoBlocking),
        Box::new(ResultDropped),
    ]
}
