//! Rule `no-blocking`: zones marked `reactor-ready` never block a
//! thread.
//!
//! The ROADMAP's async-live-engine refactor will multiplex many
//! migrations onto a small executor; any code that is supposed to move
//! onto that reactor must not park its thread today, or the refactor
//! inherits hidden stalls. The simulation crates are also *logically*
//! non-blocking — the DES loop advances virtual time, so a real
//! `thread::sleep` in there is a bug twice over. Flagged, outside test
//! code:
//!
//! * `thread::sleep` / `thread::park` / `thread::park_timeout`, resolved
//!   through the import table (so `std::thread::sleep(…)`, a bare
//!   `sleep(…)` after `use std::thread::sleep`, and renames all match);
//! * blocking channel receives: `.recv()`, `.recv_timeout(…)`,
//!   `.recv_deadline(…)` method calls;
//! * `.join()` with no arguments (thread joins; `v.join(", ")` on a
//!   slice has an argument and is fine);
//! * `.accept()` with no arguments (listener accepts).

use super::{matchers, Rule};
use crate::lexer::TokKind;
use crate::report::Violation;
use crate::resolve::{is_path_head, Imports};
use crate::source::is_zero_arg_call;
use crate::Workspace;

/// Fully-qualified thread-parking functions.
const BANNED_PATHS: &[&str] = &[
    "std::thread::sleep",
    "std::thread::park",
    "std::thread::park_timeout",
];

/// Method names that block regardless of arguments.
const BLOCKING_ANY_ARGS: &[&str] = &["recv", "recv_timeout", "recv_deadline"];

/// Method names that block only in their zero-argument spelling.
const BLOCKING_ZERO_ARGS: &[&str] = &["join", "accept"];

/// See module docs.
pub struct NoBlocking;

impl Rule for NoBlocking {
    fn id(&self) -> &'static str {
        "no-blocking"
    }

    fn summary(&self) -> &'static str {
        "reactor-ready zones never park a thread: no sleep, blocking recv, join, or accept"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in &ws.files {
            if !ws.config.in_zone("reactor-ready", &file.rel) {
                continue;
            }
            let imports = Imports::of(file);
            let toks = &file.tokens;
            let mut i = 0;
            while i < toks.len() {
                if file.in_test[i] || toks[i].kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                // Method-call spellings: `.recv(…)`, `.join()`, `.accept()`.
                let is_method = i > 0 && toks[i - 1].is_punct(".");
                let name = toks[i].text.as_str();
                let blocking_method = is_method
                    && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
                    && (BLOCKING_ANY_ARGS.contains(&name)
                        || (BLOCKING_ZERO_ARGS.contains(&name) && is_zero_arg_call(toks, i)));
                if blocking_method {
                    out.push(Violation {
                        rule: self.id(),
                        path: file.rel.clone(),
                        line: file.line_of_token(i),
                        message: format!(
                            "blocking `.{name}(…)` in a reactor-ready zone — use a \
                             non-blocking form (try_recv, polling the event queue) \
                             or move the call out of the zone"
                        ),
                    });
                    i += 1;
                    continue;
                }
                // Path spellings: `thread::sleep(…)` and friends.
                if is_path_head(toks, i) && !matchers::is_macro_call(toks, i) {
                    let (candidates, consumed) = imports.resolve(toks, i);
                    if let Some(banned) = candidates
                        .iter()
                        .find(|c| BANNED_PATHS.contains(&c.as_str()))
                    {
                        out.push(Violation {
                            rule: self.id(),
                            path: file.rel.clone(),
                            line: file.line_of_token(i),
                            message: format!(
                                "`{banned}` in a reactor-ready zone — parking the \
                                 thread stalls every migration sharing the executor"
                            ),
                        });
                    }
                    i += consumed.max(1);
                    continue;
                }
                i += 1;
            }
        }
        out
    }
}
