//! Rule `no-panic-transport`: the live-migration receive/transport zones
//! must never panic.
//!
//! The fault-tolerance story (DESIGN.md §9) depends on every transport
//! failure surfacing as a typed `TransportError`/`MigrationError` so the
//! engine can reconnect and resume from the block-bitmap. A single
//! `unwrap()` on a receive, lock, or channel path turns a recoverable
//! connection reset into a dead protocol thread. This rule generalizes
//! the old `awk | grep` CI gate (which only caught `.recv().unwrap()` on
//! two path globs) to *all* `unwrap`/`expect` calls and panic-family
//! macros in the transport zones, outside `#[cfg(test)]` code.
//!
//! The zone list lives in `lintkit.toml` under `transport` (DESIGN.md
//! §16) — it includes the wire/engine/recording paths and lintkit
//! itself: the lint gate must not be the one binary allowed to crash CI
//! with a panic.

use super::{matchers, Rule};
use crate::report::Violation;
use crate::Workspace;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// See module docs.
pub struct NoPanicTransport;

impl Rule for NoPanicTransport {
    fn id(&self) -> &'static str {
        "no-panic-transport"
    }

    fn summary(&self) -> &'static str {
        "transport zones propagate typed errors; they never unwrap/expect/panic"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in &ws.files {
            if !ws.config.in_zone("transport", &file.rel) {
                continue;
            }
            let toks = &file.tokens;
            for i in 0..toks.len() {
                if file.in_test[i] {
                    continue;
                }
                let t = &toks[i];
                // panic!/unreachable!/todo!/unimplemented!
                if PANIC_MACROS.iter().any(|m| t.is_ident(m)) && matchers::is_macro_call(toks, i) {
                    out.push(Violation {
                        rule: self.id(),
                        path: file.rel.clone(),
                        line: file.line_of_token(i),
                        message: format!(
                            "`{}!` in a transport zone — return a typed \
                             MigrationError/TransportError instead",
                            t.text
                        ),
                    });
                }
                // .unwrap( / .expect(
                if (t.is_ident("unwrap") || t.is_ident("expect"))
                    && i > 0
                    && toks[i - 1].is_punct(".")
                    && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
                {
                    out.push(Violation {
                        rule: self.id(),
                        path: file.rel.clone(),
                        line: file.line_of_token(i),
                        message: format!(
                            "`.{}()` in a transport zone — propagate the error \
                             (or recover) instead of panicking",
                            t.text
                        ),
                    });
                }
            }
        }
        out
    }
}
