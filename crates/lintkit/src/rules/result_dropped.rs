//! Rule `result-dropped`: transport and engine zones never discard a
//! `Result`.
//!
//! `#[must_use]` already makes a *silently ignored* Result a compiler
//! warning — so the discards that survive in real code are the explicit
//! ones: `let _ = ep.send(…);` and bare-semicolon statements. Those are
//! exactly how a lost `CompleteAck` or a failed socket shutdown vanishes
//! without a counter incrementing (DESIGN.md §9's reconnect story needs
//! every transport failure *observed*). In the `result-dropped` zones
//! this rule turns both spellings into findings; the fix is a typed
//! decision — match on the error, count it, or propagate it.
//!
//! Detection, outside test code:
//!
//! * `let _ = <expr>;` where the expression contains a call — flagged
//!   outright (discarding a unit call through `let _ =` is noise even
//!   when it isn't a Result). Macro invocations (`let _ = write!(…)`)
//!   are exempt: `fmt::Result` on an in-memory writer is infallible by
//!   construction and the idiom is pervasive.
//! * A bare statement `f(…);` / `self.f(…);` whose callee is a
//!   same-crate `fn` declared `-> … Result …`. The per-crate function
//!   table resolves by bare name, so same-named functions merge; a
//!   merged name counts as Result-returning only when *every*
//!   definition is (the codec's `Writer::u64(v)` / `Reader::u64()
//!   -> Result` pair must not flag the writer side).
//! * A bare statement `recv.m(…);` where `m` is a known Result-returning
//!   std method on these paths: `send`/`shutdown`/`write_all` (with
//!   arguments), `flush`/`recv`/`join` (without). Method resolution
//!   without types is heuristic, so the list is short and the names
//!   specific; `stream.read(buf)` et al. stay out of scope.

use std::collections::BTreeMap;

use super::{matchers, Rule};
use crate::lexer::TokKind;
use crate::report::Violation;
use crate::Workspace;

/// Std methods returning Result, flagged when called with ≥1 argument.
const RESULT_METHODS_WITH_ARGS: &[&str] = &["send", "shutdown", "write_all"];

/// Std methods returning Result, flagged in zero-argument form only
/// (`v.join(", ")` is a slice join, `h.join()` a thread Result).
const RESULT_METHODS_ZERO_ARGS: &[&str] = &["flush", "recv", "join"];

/// Statement-leading keywords that mean the call's value is used.
const VALUE_USED_HEADS: &[&str] = &[
    "return", "break", "continue", "let", "if", "while", "match", "for", "else",
];

/// See module docs.
pub struct ResultDropped;

impl Rule for ResultDropped {
    fn id(&self) -> &'static str {
        "result-dropped"
    }

    fn summary(&self) -> &'static str {
        "transport/engine zones never discard a Result — no `let _ =`, no bare-semicolon calls"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        // Per-crate: fn name → do ALL same-named definitions return
        // Result? (AND-merge: a name shared with a unit-returning fn
        // must not flag — false positives would train people to
        // allowlist.)
        let mut fn_returns: BTreeMap<&str, BTreeMap<String, bool>> = BTreeMap::new();
        for file in &ws.files {
            let per_crate = fn_returns.entry(matchers::crate_of(&file.rel)).or_default();
            for def in matchers::functions_in(file) {
                per_crate
                    .entry(def.name)
                    .and_modify(|all| *all = *all && def.ret_result)
                    .or_insert(def.ret_result);
            }
        }

        let mut out = Vec::new();
        for file in &ws.files {
            if !ws.config.in_zone("result-dropped", &file.rel) {
                continue;
            }
            let crate_fns = &fn_returns[matchers::crate_of(&file.rel)];
            let toks = &file.tokens;
            for i in 0..toks.len() {
                if file.in_test[i] {
                    continue;
                }
                // `let _ = <expr-with-a-call>;`
                if toks[i].is_ident("let")
                    && matches!(toks.get(i + 1), Some(t) if t.is_ident("_"))
                    && matches!(toks.get(i + 2), Some(t) if t.is_punct("="))
                {
                    let end = statement_semicolon(toks, i + 3);
                    let expr = &toks[i + 3..end];
                    let has_call = expr.iter().any(|t| t.is_punct("("));
                    let is_macro = (0..expr.len()).any(|k| matchers::is_macro_call(expr, k));
                    if has_call && !is_macro {
                        out.push(Violation {
                            rule: self.id(),
                            path: file.rel.clone(),
                            line: file.line_of_token(i),
                            message: "`let _ =` discards the call's Result — match on \
                                      it, count the failure, or propagate it"
                                .to_string(),
                        });
                    }
                    continue;
                }
                // Bare-semicolon call statement: `… name(…) ;`
                if !toks[i].is_punct(";") || i == 0 || !toks[i - 1].is_punct(")") {
                    continue;
                }
                let Some(open) = matchers::match_paren_back(toks, i - 1) else {
                    continue;
                };
                let Some(callee_idx) = open.checked_sub(1) else {
                    continue;
                };
                let callee = &toks[callee_idx];
                if callee.kind != TokKind::Ident {
                    continue; // closure call, macro (`name!(…)`), tuple expr
                }
                let is_method = callee_idx > 0 && toks[callee_idx - 1].is_punct(".");
                let qualified = callee_idx > 0 && toks[callee_idx - 1].is_punct("::");
                if qualified {
                    continue; // `mem::swap(…);` etc. — out of scope
                }
                if !statement_is_bare_call(toks, callee_idx, i, is_method) {
                    continue;
                }
                let argc = call_has_args(toks, open);
                let name = callee.text.as_str();
                let dropped = if is_method {
                    let on_self = callee_idx >= 2 && toks[callee_idx - 2].is_ident("self");
                    (on_self && *crate_fns.get(name).unwrap_or(&false))
                        || (RESULT_METHODS_WITH_ARGS.contains(&name) && argc)
                        || (RESULT_METHODS_ZERO_ARGS.contains(&name) && !argc)
                } else {
                    *crate_fns.get(name).unwrap_or(&false)
                };
                if dropped {
                    out.push(Violation {
                        rule: self.id(),
                        path: file.rel.clone(),
                        line: file.line_of_token(callee_idx),
                        message: format!(
                            "Result of `{name}(…)` dropped at the `;` — handle or \
                             propagate it (`?`, match, or an error counter)"
                        ),
                    });
                }
            }
        }
        out
    }
}

/// The `;` ending the statement whose expression starts at `s`.
fn statement_semicolon(toks: &[crate::lexer::Token], s: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(s) {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if depth == 0 && t.is_punct(";") {
            return k;
        }
    }
    toks.len()
}

/// Is the call ending this statement a *bare expression statement* —
/// i.e. nothing consumes its value? Walks from the callee back to the
/// statement start and rejects assignment (`x = f(y);`), `?`, keyword
/// heads (`return f(y);`), and match-arm arrows.
fn statement_is_bare_call(
    toks: &[crate::lexer::Token],
    callee_idx: usize,
    semi: usize,
    is_method: bool,
) -> bool {
    // Start of the receiver chain / expression.
    let mut s = callee_idx;
    if is_method {
        // Walk back over `recv .` / `recv . field .` chains, including
        // a chain hanging off a closed call `f(…).m(…)`.
        while s >= 2 && toks[s - 1].is_punct(".") {
            let prev = &toks[s - 2];
            if prev.kind == TokKind::Ident || prev.kind == TokKind::Literal {
                s -= 2;
            } else if prev.is_punct(")") {
                match matchers::match_paren_back(toks, s - 2) {
                    Some(open) if open >= 1 && toks[open - 1].kind == TokKind::Ident => {
                        s = open - 1;
                    }
                    _ => return false, // `(expr).m(…);` — too opaque, skip
                }
            } else {
                return false;
            }
        }
    }
    // The expression must begin the statement…
    if s > 0 {
        let prev = &toks[s - 1];
        if !(prev.is_punct(";") || prev.is_punct("{") || prev.is_punct("}")) {
            return false;
        }
    }
    // …and nothing between it and the `;` may consume the value.
    !toks[s..semi].iter().any(|t| {
        t.is_punct("=")
            || t.is_punct("?")
            || t.is_punct("=>")
            || VALUE_USED_HEADS.iter().any(|k| t.is_ident(k))
    })
}

/// Does the call whose `(` is at `open` have any arguments?
fn call_has_args(toks: &[crate::lexer::Token], open: usize) -> bool {
    !matches!(toks.get(open + 1), Some(t) if t.is_punct(")"))
}
