//! Rule `unsafe-audit`: `unsafe` appears only where the allowlist says a
//! human has justified it, and every crate root carries a
//! `#![forbid(unsafe_code)]`/`#![deny(unsafe_code)]` pragma.
//!
//! The simulator deliberately contains no unsafe code — determinism and
//! the fault-injection tests both rely on every data race being a
//! compile error. `lintkit.allow` at the workspace root lists the files
//! (one repo-relative path per line, `#` comments) permitted to contain
//! `unsafe`; an entry also waives that file's crate-root pragma check.
//! The list is empty today: adding unsafe code means adding a reviewed
//! allowlist entry in the same diff.

use super::Rule;
use crate::lexer::Token;
use crate::report::Violation;
use crate::Workspace;

/// See module docs.
pub struct UnsafeAudit;

impl Rule for UnsafeAudit {
    fn id(&self) -> &'static str {
        "unsafe-audit"
    }

    fn summary(&self) -> &'static str {
        "no unsafe code outside the allowlist; crate roots forbid unsafe_code"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in &ws.files {
            let allowed = ws.unsafe_allow.iter().any(|a| a == &file.rel);
            if allowed {
                continue;
            }
            for (i, t) in file.tokens.iter().enumerate() {
                if !file.in_test[i] && t.is_ident("unsafe") {
                    out.push(Violation {
                        rule: self.id(),
                        path: file.rel.clone(),
                        line: file.line_of_token(i),
                        message: "`unsafe` outside the allowlist — justify it with an \
                                  entry in lintkit.allow or rewrite in safe Rust"
                            .to_string(),
                    });
                }
            }
            if is_crate_root(&file.rel) && !has_unsafe_pragma(&file.tokens) {
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel.clone(),
                    line: 1,
                    message: "crate root lacks `#![forbid(unsafe_code)]` (or deny) — \
                              add the pragma or allowlist the file"
                        .to_string(),
                });
            }
        }
        out
    }
}

/// Crate roots: `crates/<name>/src/lib.rs|main.rs` and the workspace's
/// own `src/lib.rs|main.rs` if present.
fn is_crate_root(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", _, "src", f] | ["src", f] => *f == "lib.rs" || *f == "main.rs",
        _ => false,
    }
}

/// Look for `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]`.
fn has_unsafe_pragma(toks: &[Token]) -> bool {
    toks.windows(6).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && (w[3].is_ident("forbid") || w[3].is_ident("deny"))
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
    })
}
