//! One analyzed source file: token stream, test-code mask, line lookup.

use crate::lexer::{lex, Token};

/// A lexed source file plus the derived structure every rule needs.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable diagnostics).
    pub rel: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// `in_test[i]` is true when token `i` sits inside a `#[cfg(test)]`
    /// item (module or function) or under a `#[test]` attribute. Rules
    /// never fire on test code — tests may unwrap freely.
    pub in_test: Vec<bool>,
    /// For every `{` token index, the index of its matching `}`.
    pub brace_match: Vec<Option<usize>>,
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Lex `text` and derive the masks.
    pub fn new(rel: impl Into<String>, text: &str) -> Self {
        let tokens = lex(text);
        let line_starts = std::iter::once(0)
            .chain(
                text.bytes()
                    .enumerate()
                    .filter(|&(_, b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        let brace_match = match_braces(&tokens);
        let in_test = test_mask(&tokens, &brace_match);
        Self {
            rel: rel.into(),
            tokens,
            in_test,
            brace_match,
            line_starts,
        }
    }

    /// 1-based line number of byte offset `off`.
    pub fn line_of(&self, off: usize) -> usize {
        match self.line_starts.binary_search(&off) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// 1-based line of token `i` (last line for out-of-range indices).
    pub fn line_of_token(&self, i: usize) -> usize {
        self.tokens
            .get(i)
            .map(|t| self.line_of(t.off))
            .unwrap_or_else(|| self.line_starts.len())
    }
}

/// Map each `{` to its matching `}` by index.
fn match_braces(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut out = vec![None; tokens.len()];
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            if let Some(open) = stack.pop() {
                out[open] = Some(i);
            }
        }
    }
    out
}

/// Mark the token ranges covered by `#[cfg(test)]` / `#[test]` items.
///
/// After such an attribute (plus any further attributes on the same
/// item), the item extends to the first top-level `;` (e.g. an annotated
/// `use`) or through the matching `}` of its first top-level `{` (a
/// module or function body). This is the one subtlety the old awk gate
/// handled — everything after the *first* `#[cfg(test)]` marker was
/// exempt — and which must not regress into exempting too little.
fn test_mask(tokens: &[Token], brace_match: &[Option<usize>]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && matches!(tokens.get(i + 1), Some(t) if t.is_punct("["))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some(attr_end) = close_bracket(tokens, i + 1) else {
            break;
        };
        if !attr_is_test(&tokens[i + 2..attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = attr_end + 1;
        while j < tokens.len() && tokens[j].is_punct("#") {
            match tokens.get(j + 1) {
                Some(t) if t.is_punct("[") => match close_bracket(tokens, j + 1) {
                    Some(e) => j = e + 1,
                    None => break,
                },
                _ => break,
            }
        }
        // Find the item's extent: first `;` or matched `{..}` at depth 0.
        let mut depth = 0i32;
        let mut end = tokens.len().saturating_sub(1);
        let mut k = j;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_punct(";") {
                end = k;
                break;
            } else if depth == 0 && t.is_punct("{") {
                end = brace_match[k].unwrap_or(tokens.len() - 1);
                break;
            }
            k += 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(attr_start) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Index of the `]` closing the `[` at `open`.
fn close_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Does this attribute body mark test code? Catches `test`, `cfg(test)`,
/// and compounds like `cfg(all(test, unix))`; string literals (e.g.
/// `cfg(feature = "testing")`) don't count because the lexer discards
/// literal contents.
fn attr_is_test(body: &[Token]) -> bool {
    let has_test = body.iter().any(|t| t.is_ident("test"));
    if !has_test {
        return false;
    }
    // `#[test]` alone, or a `cfg(...)` mentioning the ident `test`.
    body.len() == 1 || body.first().is_some_and(|t| t.is_ident("cfg"))
}

/// True when token `i` looks like the start of a statement: the previous
/// token is one of `;`, `{`, `}` or there is no previous token.
pub fn at_statement_start(tokens: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let p = &tokens[i - 1];
    p.is_punct(";") || p.is_punct("{") || p.is_punct("}")
}

/// The kind-aware check for "is this `.name(` a zero-argument call" —
/// used to tell `storage.read()` (a lock acquisition) from
/// `stream.read(&mut buf)` (I/O).
pub fn is_zero_arg_call(tokens: &[Token], name_idx: usize) -> bool {
    matches!(tokens.get(name_idx + 1), Some(t) if t.is_punct("("))
        && matches!(tokens.get(name_idx + 2), Some(t) if t.is_punct(")"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn tail() {}";
        let f = SourceFile::new("a.rs", src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| f.in_test[i])
            .collect();
        assert_eq!(
            unwraps,
            [false, true],
            "only the test-module unwrap is masked"
        );
        // Code after the test module is live again.
        let tail = f.tokens.iter().position(|t| t.is_ident("tail"));
        assert!(matches!(tail, Some(i) if !f.in_test[i]));
    }

    #[test]
    fn test_attribute_masks_single_fn() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn live() { b.unwrap(); }";
        let f = SourceFile::new("a.rs", src);
        let states: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| f.in_test[i])
            .collect();
        assert_eq!(states, [true, false]);
    }

    #[test]
    fn stacked_attributes_still_masked() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn f() { x.unwrap(); } }";
        let f = SourceFile::new("a.rs", src);
        assert!(f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .all(|(i, _)| f.in_test[i]));
    }

    #[test]
    fn cfg_all_test_counts_and_features_do_not() {
        let src = "#[cfg(all(test, unix))]\nmod t { fn f() { x.unwrap(); } }";
        let f = SourceFile::new("a.rs", src);
        assert!(f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .all(|(i, _)| f.in_test[i]));
        // A cfg with no `test` ident leaves code live.
        let src2 = "#[cfg(unix)]\nfn f() { x.unwrap(); }";
        let f2 = SourceFile::new("a.rs", src2);
        assert!(f2
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .all(|(i, _)| !f2.in_test[i]));
    }

    #[test]
    fn line_numbers_are_one_based() {
        let f = SourceFile::new("a.rs", "a\nb\nc.unwrap()");
        let i = f.tokens.iter().position(|t| t.is_ident("unwrap"));
        assert!(matches!(i, Some(i) if f.line_of_token(i) == 3));
    }
}
