//! Fixture: the compliant spellings of what `determinism_trip.rs` does
//! wrong — ordered containers, the sim clock. NOT compiled.

use std::collections::{BTreeMap, BTreeSet};

pub struct Plan {
    by_host: BTreeMap<String, u32>,
}

pub fn build(hosts: &[String]) -> Plan {
    let mut by_host = BTreeMap::new();
    let mut seen = BTreeSet::new();
    for h in hosts {
        if seen.insert(h.clone()) {
            by_host.insert(h.clone(), 0);
        }
    }
    Plan { by_host }
}

pub fn stamp(clock: &SimClock) -> u64 {
    clock.now_nanos() // virtual time, not the wall
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_may_hash_and_time() {
        let started = Instant::now();
        let mut m = HashMap::new();
        m.insert("k", started.elapsed());
        assert_eq!(m.len(), 1);
    }
}
