//! Fixture: hash-ordered containers and wall-clock reads in a
//! deterministic zone — every spelling the resolver must catch. NOT
//! compiled.

use std::collections::HashMap;
use std::collections::HashSet as Seen;
use std::time::Instant;

pub struct Plan {
    by_host: HashMap<String, u32>, // type position, via plain import
}

pub fn build(hosts: &[String]) -> Plan {
    let mut by_host = HashMap::new(); // constructor, via plain import
    let mut seen = Seen::new(); // rename resolves to HashSet
    for h in hosts {
        if seen.insert(h.clone()) {
            by_host.insert(h.clone(), 0);
        }
    }
    Plan { by_host }
}

pub fn hash_module_escape_hatch(n: u64) -> u64 {
    let h = std::collections::hash_map::DefaultHasher::new(); // fully qualified
    hash_one(h, n)
}

pub fn stamp(clock: &SimClock) -> u64 {
    let t = Instant::now(); // wall clock, via plain import
    let s = std::time::SystemTime::now(); // wall clock, fully qualified
    record(t, s);
    clock.now_nanos()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_order_is_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }
}
