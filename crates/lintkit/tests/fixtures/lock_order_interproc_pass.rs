//! Fixture: helper calls the interprocedural extension must leave
//! alone — shared pairs, released guards, non-self receivers. NOT
//! compiled.

fn read_ledger(s: &Shared) -> u64 {
    let l = s.ledger.read();
    l.total()
}

pub fn shared_under_shared(s: &Shared) -> u64 {
    let p = s.pending.read();
    read_ledger(s) + p.len() // shared + shared cannot deadlock
}

fn grab_pending(s: &Shared) {
    let p = s.pending.lock();
    p.touch();
}

pub fn helper_after_release(s: &Shared) {
    let g = s.ledger.lock();
    drop(g);
    grab_pending(s); // nothing held at the call site
}

pub fn other_receivers_do_not_resolve(s: &Shared, disk: &Disk) {
    let g = s.ledger.lock();
    disk.grab_pending(0); // receiver is not `self`: summary not applied
    g.done();
}

pub fn pending_then_ledger(s: &Shared) {
    // The inverse direct order exists; only a wrong propagation of the
    // `disk.grab_pending` call above would close a cycle with it.
    let p = s.pending.lock();
    let l = s.ledger.lock();
    l.merge(&p);
}
