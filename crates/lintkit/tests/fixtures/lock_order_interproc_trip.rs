//! Fixture: lock acquisitions hidden inside a same-crate helper — the
//! single-hop interprocedural extension must see through the call. NOT
//! compiled.

fn grab_ledger(s: &Shared) {
    let l = s.ledger.lock();
    l.touch();
}

pub fn reacquires_via_helper(s: &Shared) {
    let g = s.ledger.lock();
    grab_ledger(s); // ledger already held: self-deadlock via the call
    g.done();
}

pub fn pending_then_helper(s: &Shared) {
    let p = s.pending.lock();
    grab_ledger(s); // pending -> ledger edge, via the call
    p.done();
}

pub fn ledger_then_pending(s: &Shared) {
    let l = s.ledger.lock();
    let p = s.pending.lock(); // ledger -> pending: closes the cycle
    l.merge(&p);
}
