//! Fixture: compliant locking — consistent global order, guards released
//! before blocking, the condvar wait pattern, shared read pairs. NOT
//! compiled.

pub fn source_side(s: &Shared) {
    let a = s.ledger.lock();
    let b = s.pending.lock(); // ledger -> pending, both sides agree
    a.record(&b);
}

pub fn dest_side(s: &Shared) {
    let a = s.ledger.lock();
    let b = s.pending.lock(); // same order: no cycle
    b.record(&a);
}

pub fn released_before_send(s: &Shared, tx: &Sender<MigMessage>) {
    let guard = s.ledger.lock();
    let msg = guard.next_message();
    drop(guard);
    if tx.send(msg).is_err() {
        reconnect(); // guard explicitly dropped first; Result consumed
    }
}

pub fn scoped_before_send(s: &Shared, tx: &Sender<MigMessage>) {
    let msg = {
        let guard = s.ledger.lock();
        guard.next_message()
    };
    if tx.send(msg).is_err() {
        reconnect(); // guard died with its block; Result consumed
    }
}

pub fn condvar_wait(s: &Shared) {
    let mut st = s.state.lock();
    while !st.ready {
        s.cv.wait(&mut st); // wait() consumes the guard: exempt
    }
}

pub fn shared_readers(a: &Disk, b: &Disk) -> bool {
    let x = a.storage.read();
    let y = b.storage.read(); // shared+shared cannot deadlock
    x.bytes() == y.bytes()
}

pub fn io_read_is_not_a_lock(stream: &mut TcpStream, buf: &mut [u8]) {
    stream.read(buf); // has arguments: I/O, not a RwLock acquisition
}
