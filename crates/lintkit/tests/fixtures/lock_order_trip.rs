//! Fixture: lock-order violations — an ordering cycle between two lock
//! functions, a guard held across a blocking call, and a re-acquisition
//! of a held lock. NOT compiled.

pub fn source_side(s: &Shared) {
    let a = s.ledger.lock();
    let b = s.pending.lock(); // edge: ledger -> pending
    a.record(&b);
}

pub fn dest_side(s: &Shared) {
    let b = s.pending.lock();
    let a = s.ledger.lock(); // edge: pending -> ledger — cycle!
    b.record(&a);
}

pub fn held_across_send(s: &Shared, tx: &Sender<MigMessage>) {
    let guard = s.ledger.lock();
    tx.send(MigMessage::Suspended); // blocking send under `guard`
    guard.record_send();
}

pub fn double_acquire(s: &Shared) {
    let first = s.ledger.lock();
    let again = s.ledger.lock(); // self-deadlock
    first.merge(&again);
}
