//! Fixture: compliant matches — exhaustive protocol matches, and
//! wildcards over non-protocol scrutinees that must stay legal. NOT
//! compiled.

pub fn dispatch(msg: MigMessage) {
    match msg {
        MigMessage::Suspended => on_suspend(),
        MigMessage::Resumed => on_resume(),
        MigMessage::PullRequest { block } => on_pull(block),
    }
}

pub fn category_of(cat: Category) -> u8 {
    match cat {
        Category::Memory => 0,
        Category::Bitmap => 1,
        Category::Control => 2,
    }
}

pub fn from_u8(v: u8) -> Option<Category> {
    match v {
        0 => Some(Category::Memory),
        1 => Some(Category::Bitmap),
        _ => None, // scrutinee is an integer: wildcard is the only option
    }
}

pub fn send_result(ep: &Endpoint) {
    match ep.send(MigMessage::Suspended) {
        Ok(()) => {}
        _ => reconnect(), // protocol type in the scrutinee, not the pattern
    }
}
