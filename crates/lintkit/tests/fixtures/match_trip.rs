//! Fixture: wildcard arms in protocol matches — every form the
//! protocol-exhaustive rule must reject. NOT compiled.

pub fn dispatch(msg: MigMessage) {
    match msg {
        MigMessage::Suspended => on_suspend(),
        MigMessage::Resumed => on_resume(),
        _ => {} // line 8: silently drops every other protocol message
    }
}

pub fn guarded(msg: MigMessage, strict: bool) {
    match msg {
        MigMessage::Suspended => on_suspend(),
        _ if strict => reject(), // line 15: guarded wildcard still hides variants
        _ => {}                  // line 16: and so does the plain one
    }
}

impl MigMessage {
    pub fn weight(&self) -> u64 {
        match self {
            Self::Suspended => 1,
            _ => 0, // line 24: Self:: is MigMessage:: inside this impl
        }
    }
}
