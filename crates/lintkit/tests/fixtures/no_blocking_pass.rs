//! Fixture: the non-blocking forms of what `no_blocking_trip.rs` does
//! wrong, plus the spellings that merely look blocking. NOT compiled.

pub fn drain(rx: &Receiver<Event>) -> Vec<Event> {
    let mut out = Vec::new();
    while let Ok(ev) = rx.try_recv() {
        out.push(ev); // polling, never parked
    }
    out
}

pub fn join_paths(parts: &[String]) -> String {
    parts.join("/") // slice join takes an argument: not a thread join
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_block() {
        let (tx, rx) = channel();
        tx.send(1).ok();
        assert_eq!(rx.recv().ok(), Some(1));
    }
}
