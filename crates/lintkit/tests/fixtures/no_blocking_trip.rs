//! Fixture: thread-parking calls in a reactor-ready zone — channel
//! receives, joins, accepts, and the `thread::` family. NOT compiled.

use std::thread;

pub fn drain(rx: &Receiver<Event>) -> Vec<Event> {
    let mut out = Vec::new();
    out.extend(rx.recv()); // blocking receive
    while let Ok(ev) = rx.recv_timeout(TICK) {
        out.push(ev);
    }
    out
}

pub fn wait_for_worker(h: JoinHandle<()>, backoff: Duration) {
    thread::sleep(backoff); // resolved through the import table
    drop(h.join()); // zero-arg join: a thread join
}

pub fn serve(listener: &TcpListener) {
    std::thread::park(); // fully qualified
    drop(listener.accept()); // zero-arg accept
}
