//! Fixture: the compliant version of the transport zone — typed errors
//! propagated, no panic paths. NOT compiled.

pub fn recv_loop(rx: &Receiver<MigMessage>) -> Result<MigMessage, TransportError> {
    rx.recv().map_err(|_| TransportError::Disconnected)
}

pub fn strict(st: &State) -> Result<Instant, MigrationError> {
    st.suspended_at.ok_or(MigrationError::Io("not stamped".into()))
}

pub fn dispatch(kind: u8) -> Result<(), MigrationError> {
    match kind {
        0 => Ok(()),
        // unwrap_or_else is recovery, not a panic path.
        other => Err(MigrationError::Io(format!("unknown kind {other}"))),
    }
}

pub fn fallback(st: &State) -> Instant {
    st.suspended_at.unwrap_or_else(Instant::now)
}
