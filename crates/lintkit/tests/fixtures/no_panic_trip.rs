//! Fixture: every panic path the no-panic-transport rule must catch.
//! Mapped under a transport zone by the test harness; NOT compiled.

pub fn recv_loop(rx: &Receiver<MigMessage>) -> MigMessage {
    rx.recv().unwrap() // line 5: .unwrap()
}

pub fn strict(st: &State) -> Instant {
    st.suspended_at.expect("stamped") // line 9: .expect()
}

pub fn dispatch(kind: u8) {
    match kind {
        0 => {}
        _ => panic!("unknown kind"), // line 15: panic!
    }
}

pub fn later() {
    todo!() // line 20: todo!
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        makes_result().unwrap(); // masked: test code never trips the rule
    }
}
