//! Fixture: every Result observed — propagated, matched, or counted —
//! plus the shapes the rule must deliberately not flag. NOT compiled.

use std::fmt::Write;

pub struct Peer {
    frames: Vec<u8>,
    lost: u64,
}

impl Peer {
    fn push_frame(&mut self, b: u8) -> Result<(), WireError> {
        self.frames.push(b); // Vec::push returns unit: nothing dropped
        Ok(())
    }

    // `checksum` has a split personality: this writer half returns
    // unit, the free reader below returns a Result. The per-crate
    // table AND-merges same-named functions, so a bare
    // `self.checksum();` must not flag.
    fn checksum(&mut self) {
        self.frames.push(0);
    }

    pub fn relay(&mut self, ep: &Sender<u8>, b: u8) -> Result<(), WireError> {
        self.push_frame(b)?; // propagated
        self.checksum(); // unit-returning sibling wins the merge
        if ep.send(b).is_err() {
            self.lost += 1; // counted, not discarded
        }
        Ok(())
    }
}

pub fn render(out: &mut String, n: u64) {
    let _ = write!(out, "{n}"); // macro: fmt to a String is infallible
}

pub fn teardown(sock: &TcpStream) {
    match sock.shutdown(Shutdown::Both) {
        Ok(()) => {}
        Err(_already_closed) => {} // named, deliberate
    }
}

fn checksum(frames: &[u8]) -> Result<u8, WireError> {
    frames.last().copied().ok_or(WireError::Empty)
}
