//! Fixture: discarded Results in a transport zone — `let _ =`, bare
//! curated std methods, and bare same-crate Result functions. NOT
//! compiled.

pub struct Peer {
    frames: Vec<u8>,
}

impl Peer {
    fn push_frame(&mut self, b: u8) -> Result<(), WireError> {
        self.frames.push(b);
        Ok(())
    }

    pub fn relay(&mut self, ep: &Sender<u8>, b: u8) {
        self.push_frame(b); // same-crate fn table says -> Result
        ep.send(b); // curated method: send with arguments
    }
}

pub fn teardown(w: &mut BufWriter<TcpStream>, sock: &TcpStream) {
    w.flush(); // curated method: zero-argument flush
    let _ = sock.shutdown(Shutdown::Both); // `let _ =` around a call
}

pub fn forward(b: u8) -> Result<u8, WireError> {
    deliver(b); // bare free function returning Result
    Ok(b)
}

fn deliver(b: u8) -> Result<(), WireError> {
    if b == 0 {
        Err(WireError::ZeroFrame)
    } else {
        Ok(())
    }
}
