//! Fixture: a compliant crate root — pragma present, no unsafe. The word
//! "unsafe" in comments and strings must not trip the token-level rule.
//! NOT compiled.

#![forbid(unsafe_code)]

pub fn describe() -> &'static str {
    "this crate has no unsafe code"
}
