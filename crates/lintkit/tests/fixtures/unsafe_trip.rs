//! Fixture: unlisted unsafe code plus a crate root missing the
//! forbid(unsafe_code) pragma. NOT compiled.

pub fn raw_len(v: &[u8]) -> usize {
    unsafe { v.get_unchecked(0) }; // line 5: unsafe outside the allowlist
    v.len()
}
