//! Meta-test: the gate itself catches seeded violations end-to-end.
//!
//! `tests/rules.rs` feeds sources straight to the rules; this test goes
//! through the same path CI does — real files on disk, `Workspace::scan`,
//! `lintkit.toml` loading — by materializing a small workspace in a temp
//! directory, planting one violation per analysis, and asserting each
//! comes back naming the right rule at the right `file:line`.

use std::fs;
use std::path::PathBuf;

use lintkit::{Violation, Workspace};

struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("lintkit-meta-{tag}-{}", std::process::id()));
        // A stale run's leftovers would poison the scan.
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create temp workspace");
        Self { root }
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("file has a parent")).expect("mkdir");
        fs::write(path, text).expect("write seed file");
    }

    fn scan(&self) -> Vec<Violation> {
        Workspace::scan(&self.root)
            .expect("scan temp workspace")
            .run()
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn assert_finding(vs: &[Violation], rule: &str, rel: &str, line: usize) {
    assert!(
        vs.iter()
            .any(|v| v.rule == rule && v.path == rel && v.line == line),
        "expected [{rule}] at {rel}:{line}, got: {vs:#?}"
    );
}

#[test]
fn seeded_violations_surface_with_rule_and_location() {
    let ws = TempWorkspace::new("seeded");
    // One violation per analysis, each on a known line, each inside the
    // builtin zone that owns the rule (no lintkit.toml is written, so
    // scan falls back to the compiled-in zone map).
    ws.write(
        "crates/orchestrator/src/sched.rs",
        "use std::collections::HashMap;\n\npub fn plan() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n",
    );
    ws.write(
        "crates/des/src/pump.rs",
        "pub fn pump(rx: &Receiver<Ev>) {\n    let ev = rx.recv();\n    drop(ev);\n}\n",
    );
    ws.write(
        "crates/simnet/src/wire.rs",
        "pub fn relay(ep: &Sender<u8>, b: u8) {\n    ep.send(b);\n}\n",
    );
    ws.write(
        "crates/migrate/src/live/sync.rs",
        "fn grab(s: &St) {\n    let g = s.ledger.lock();\n    g.touch();\n}\n\n\
         pub fn outer(s: &St) {\n    let g = s.ledger.lock();\n    grab(s);\n    g.done();\n}\n",
    );
    ws.write(
        "crates/simnet/src/panicky.rs",
        "pub fn decode(b: Option<u8>) -> u8 {\n    b.unwrap()\n}\n",
    );

    let vs = ws.scan();
    assert_finding(&vs, "determinism", "crates/orchestrator/src/sched.rs", 3);
    assert_finding(&vs, "determinism", "crates/orchestrator/src/sched.rs", 4);
    assert_finding(&vs, "no-blocking", "crates/des/src/pump.rs", 2);
    assert_finding(&vs, "result-dropped", "crates/simnet/src/wire.rs", 2);
    assert_finding(&vs, "lock-order", "crates/migrate/src/live/sync.rs", 8);
    assert_finding(&vs, "no-panic-transport", "crates/simnet/src/panicky.rs", 2);
    // Nothing beyond the seeds fires.
    assert_eq!(vs.len(), 6, "unexpected extra findings: {vs:#?}");
}

#[test]
fn a_written_config_overrides_the_builtin_zones() {
    let ws = TempWorkspace::new("config");
    // The same seeded file, but lintkit.toml moves the deterministic
    // zone elsewhere and waives the one remaining no-blocking site.
    ws.write(
        "crates/orchestrator/src/sched.rs",
        "use std::collections::HashMap;\n\npub fn plan() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n",
    );
    ws.write(
        "crates/engine/src/pump.rs",
        "pub fn pump(rx: &Receiver<Ev>) {\n    let ev = rx.recv();\n    drop(ev);\n}\n",
    );
    ws.write(
        "lintkit.toml",
        "[zones]\ntransport = []\ndeterministic = []\ndeterministic-order = []\n\
         reactor-ready = [\"crates/engine/src/\"]\nresult-dropped = []\n\n\
         [allow]\nno-blocking = [\"crates/engine/src/pump.rs:2\"]\n",
    );
    let vs = ws.scan();
    assert!(
        vs.is_empty(),
        "zones moved + site waived, nothing should fire: {vs:#?}"
    );
}

#[test]
fn a_broken_config_is_a_hard_error_not_a_silent_pass() {
    let ws = TempWorkspace::new("broken");
    ws.write("crates/x/src/lib.rs", "pub fn f() {}\n");
    ws.write("lintkit.toml", "[zones]\ntransprot = []\n");
    let err = match Workspace::scan(&ws.root) {
        Err(e) => e,
        Ok(_) => panic!("typoed zone must not scan"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("transprot"), "{err}");
}

#[test]
fn scan_is_deterministic_across_runs() {
    let ws = TempWorkspace::new("stable");
    ws.write(
        "crates/orchestrator/src/a.rs",
        "use std::collections::HashSet;\npub fn f() -> HashSet<u8> {\n    HashSet::new()\n}\n",
    );
    ws.write(
        "crates/orchestrator/src/b.rs",
        "pub fn g() {\n    let t = std::time::Instant::now();\n    drop(t);\n}\n",
    );
    let first: Vec<String> = ws.scan().iter().map(Violation::to_string).collect();
    let second: Vec<String> = ws.scan().iter().map(Violation::to_string).collect();
    assert_eq!(first, second, "report order must be stable");
    assert_eq!(first.len(), 3, "{first:#?}");
    // Reports are path-sorted within a rule regardless of write order.
    assert!(
        first[0].starts_with("crates/orchestrator/src/a.rs:2"),
        "{first:#?}"
    );
}
