//! Per-rule fixture tests: each rule trips on its tripping fixture at the
//! expected lines, and stays silent on the compliant fixture. Fixtures
//! live in `tests/fixtures/` and are never compiled — they are lexed by
//! lintkit under fake workspace-relative paths chosen to land inside (or
//! outside) the zones each rule cares about.

use lintkit::{Violation, Workspace};

const NO_PANIC_TRIP: &str = include_str!("fixtures/no_panic_trip.rs");
const NO_PANIC_PASS: &str = include_str!("fixtures/no_panic_pass.rs");
const LOCK_ORDER_TRIP: &str = include_str!("fixtures/lock_order_trip.rs");
const LOCK_ORDER_PASS: &str = include_str!("fixtures/lock_order_pass.rs");
const MATCH_TRIP: &str = include_str!("fixtures/match_trip.rs");
const MATCH_PASS: &str = include_str!("fixtures/match_pass.rs");
const UNSAFE_TRIP: &str = include_str!("fixtures/unsafe_trip.rs");
const UNSAFE_PASS: &str = include_str!("fixtures/unsafe_pass.rs");
const DETERMINISM_TRIP: &str = include_str!("fixtures/determinism_trip.rs");
const DETERMINISM_PASS: &str = include_str!("fixtures/determinism_pass.rs");
const NO_BLOCKING_TRIP: &str = include_str!("fixtures/no_blocking_trip.rs");
const NO_BLOCKING_PASS: &str = include_str!("fixtures/no_blocking_pass.rs");
const RESULT_DROPPED_TRIP: &str = include_str!("fixtures/result_dropped_trip.rs");
const RESULT_DROPPED_PASS: &str = include_str!("fixtures/result_dropped_pass.rs");
const INTERPROC_TRIP: &str = include_str!("fixtures/lock_order_interproc_trip.rs");
const INTERPROC_PASS: &str = include_str!("fixtures/lock_order_interproc_pass.rs");

fn run(sources: &[(&str, &str)]) -> Vec<Violation> {
    Workspace::from_sources(sources).run()
}

fn lines_of<'a>(violations: &'a [Violation], rule: &str) -> Vec<(&'a str, usize)> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| (v.path.as_str(), v.line))
        .collect()
}

#[test]
fn no_panic_trips_on_each_panic_path() {
    let vs = run(&[("crates/simnet/src/fixture.rs", NO_PANIC_TRIP)]);
    let hits = lines_of(&vs, "no-panic-transport");
    let lines: Vec<usize> = hits.iter().map(|&(_, l)| l).collect();
    assert_eq!(
        lines,
        [5, 9, 15, 20],
        "unwrap/expect/panic!/todo! sites: {vs:#?}"
    );
    assert!(hits
        .iter()
        .all(|&(p, _)| p == "crates/simnet/src/fixture.rs"));
}

#[test]
fn no_panic_ignores_test_code_and_compliant_files() {
    let vs = run(&[("crates/migrate/src/live/fixture.rs", NO_PANIC_PASS)]);
    assert!(vs.is_empty(), "compliant zone file must be clean: {vs:#?}");
}

#[test]
fn no_panic_only_applies_inside_the_zones() {
    // The same panicking code outside the transport zones is legal.
    let vs = run(&[("crates/vdisk/src/fixture.rs", NO_PANIC_TRIP)]);
    assert!(
        lines_of(&vs, "no-panic-transport").is_empty(),
        "zone rule fired outside its zones: {vs:#?}"
    );
}

#[test]
fn lock_order_finds_cycle_blocking_call_and_reacquisition() {
    let vs = run(&[("crates/migrate/src/live/fixture.rs", LOCK_ORDER_TRIP)]);
    let hits = lines_of(&vs, "lock-order");
    assert_eq!(
        hits.len(),
        3,
        "cycle + blocked send + re-acquisition: {vs:#?}"
    );
    let msgs: Vec<&str> = vs
        .iter()
        .filter(|v| v.rule == "lock-order")
        .map(|v| v.message.as_str())
        .collect();
    assert!(msgs.iter().any(|m| m.contains("cycle")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("blocking `send`")),
        "{msgs:?}"
    );
    assert!(msgs.iter().any(|m| m.contains("already held")), "{msgs:?}");
    // The blocking-send diagnostic points at the send, line 19.
    assert!(
        hits.contains(&("crates/migrate/src/live/fixture.rs", 19)),
        "{hits:?}"
    );
}

#[test]
fn lock_order_accepts_consistent_order_and_condvar_waits() {
    let vs = run(&[("crates/migrate/src/live/fixture.rs", LOCK_ORDER_PASS)]);
    assert!(vs.is_empty(), "compliant locking flagged: {vs:#?}");
}

#[test]
fn lock_order_cycle_detection_is_cross_file() {
    // Each half of the inverted order lives in a different file; only the
    // whole-workspace graph shows the cycle.
    let a = "pub fn one(s: &S) { let x = s.alpha.lock(); let y = s.beta.lock(); x.use_both(&y); }";
    let b = "pub fn two(s: &S) { let y = s.beta.lock(); let x = s.alpha.lock(); y.use_both(&x); }";
    let vs = run(&[
        ("crates/migrate/src/a.rs", a),
        ("crates/vmstate/src/b.rs", b),
    ]);
    let hits = lines_of(&vs, "lock-order");
    assert_eq!(hits.len(), 1, "one cycle, reported once: {vs:#?}");
    // Neither file alone trips.
    for (path, src) in [
        ("crates/migrate/src/a.rs", a),
        ("crates/vmstate/src/b.rs", b),
    ] {
        let solo = run(&[(path, src)]);
        assert!(lines_of(&solo, "lock-order").is_empty(), "{solo:#?}");
    }
}

#[test]
fn protocol_matches_must_name_every_variant() {
    let vs = run(&[("crates/migrate/src/proto_use.rs", MATCH_TRIP)]);
    let hits = lines_of(&vs, "protocol-exhaustive");
    let lines: Vec<usize> = hits.iter().map(|&(_, l)| l).collect();
    assert_eq!(
        lines,
        [8, 15, 16, 24],
        "wildcard, guarded wildcard, stacked wildcard, Self:: impl: {vs:#?}"
    );
}

#[test]
fn non_protocol_wildcards_stay_legal() {
    let vs = run(&[("crates/migrate/src/proto_use.rs", MATCH_PASS)]);
    assert!(vs.is_empty(), "compliant matches flagged: {vs:#?}");
}

#[test]
fn unsafe_outside_allowlist_is_flagged_with_missing_pragma() {
    let vs = run(&[("crates/fast/src/lib.rs", UNSAFE_TRIP)]);
    let hits = lines_of(&vs, "unsafe-audit");
    assert_eq!(hits.len(), 2, "unsafe use + missing pragma: {vs:#?}");
    assert!(hits.contains(&("crates/fast/src/lib.rs", 5)), "{hits:?}");
    assert!(hits.contains(&("crates/fast/src/lib.rs", 1)), "{hits:?}");
}

#[test]
fn allowlisted_files_may_contain_unsafe() {
    let mut ws = Workspace::from_sources(&[("crates/fast/src/lib.rs", UNSAFE_TRIP)]);
    ws.unsafe_allow = vec!["crates/fast/src/lib.rs".to_string()];
    let vs = ws.run();
    assert!(
        !vs.iter().any(|v| v.rule == "unsafe-audit"),
        "allowlist ignored: {vs:#?}"
    );
}

#[test]
fn pragma_satisfies_the_crate_root_check() {
    let vs = run(&[("crates/good/src/lib.rs", UNSAFE_PASS)]);
    assert!(vs.is_empty(), "compliant crate root flagged: {vs:#?}");
    // Non-root files don't need the pragma at all.
    let vs = run(&[("crates/good/src/inner/util.rs", "pub fn f() {}")]);
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn determinism_trips_on_every_spelling() {
    // `deterministic` zone: containers and wall-clock reads both banned.
    let vs = run(&[("crates/orchestrator/src/fixture.rs", DETERMINISM_TRIP)]);
    let hits = lines_of(&vs, "determinism");
    let lines: Vec<usize> = hits.iter().map(|&(_, l)| l).collect();
    assert_eq!(
        lines,
        [10, 14, 15, 25, 30, 31],
        "type pos, ctor, rename, hash_map module, Instant, SystemTime: {vs:#?}"
    );
}

#[test]
fn determinism_order_zone_bans_containers_but_not_the_clock() {
    // The telemetry recorder owns the wall half of the dual-clock model:
    // `deterministic-order` keeps hash containers out, lets `now()` in.
    let vs = run(&[("crates/telemetry/src/fixture.rs", DETERMINISM_TRIP)]);
    let lines: Vec<usize> = lines_of(&vs, "determinism")
        .iter()
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(
        lines,
        [10, 14, 15, 25],
        "wall-clock lines must drop: {vs:#?}"
    );
}

#[test]
fn determinism_ignores_test_code_and_compliant_files() {
    let vs = run(&[("crates/orchestrator/src/fixture.rs", DETERMINISM_PASS)]);
    assert!(vs.is_empty(), "compliant zone file must be clean: {vs:#?}");
    // Outside every deterministic zone the same code is legal.
    let vs = run(&[("crates/workloads/src/fixture.rs", DETERMINISM_TRIP)]);
    assert!(
        lines_of(&vs, "determinism").is_empty(),
        "zone rule fired outside its zones: {vs:#?}"
    );
}

#[test]
fn no_blocking_trips_on_parks_receives_joins_and_accepts() {
    let vs = run(&[("crates/des/src/fixture.rs", NO_BLOCKING_TRIP)]);
    let hits = lines_of(&vs, "no-blocking");
    let lines: Vec<usize> = hits.iter().map(|&(_, l)| l).collect();
    assert_eq!(
        lines,
        [8, 9, 16, 17, 21, 22],
        "recv, recv_timeout, thread::sleep, join, park, accept: {vs:#?}"
    );
}

#[test]
fn no_blocking_allows_polling_slice_joins_and_test_code() {
    let vs = run(&[("crates/des/src/fixture.rs", NO_BLOCKING_PASS)]);
    assert!(vs.is_empty(), "compliant zone file must be clean: {vs:#?}");
    // Outside the reactor-ready zones blocking is legal.
    let vs = run(&[("crates/simnet/src/fixture.rs", NO_BLOCKING_TRIP)]);
    assert!(
        lines_of(&vs, "no-blocking").is_empty(),
        "zone rule fired outside its zones: {vs:#?}"
    );
}

#[test]
fn result_dropped_trips_on_discards() {
    let vs = run(&[("crates/simnet/src/fixture.rs", RESULT_DROPPED_TRIP)]);
    let hits = lines_of(&vs, "result-dropped");
    let lines: Vec<usize> = hits.iter().map(|&(_, l)| l).collect();
    assert_eq!(
        lines,
        [16, 17, 22, 23, 27],
        "self fn, send, flush, let _, free fn: {vs:#?}"
    );
}

#[test]
fn result_dropped_accepts_handled_results_and_merged_names() {
    let vs = run(&[("crates/simnet/src/fixture.rs", RESULT_DROPPED_PASS)]);
    assert!(vs.is_empty(), "compliant zone file must be clean: {vs:#?}");
    // Outside the result-dropped zones discards are legal.
    let vs = run(&[("crates/des/src/fixture.rs", RESULT_DROPPED_TRIP)]);
    assert!(
        lines_of(&vs, "result-dropped").is_empty(),
        "zone rule fired outside its zones: {vs:#?}"
    );
}

#[test]
fn lock_order_sees_through_single_hop_helpers() {
    let vs = run(&[("crates/migrate/src/live/fixture.rs", INTERPROC_TRIP)]);
    let hits = lines_of(&vs, "lock-order");
    assert_eq!(
        hits,
        [
            ("crates/migrate/src/live/fixture.rs", 12),
            ("crates/migrate/src/live/fixture.rs", 18),
        ],
        "re-acquisition via helper + cycle closed via helper: {vs:#?}"
    );
    let msgs: Vec<&str> = vs.iter().map(|v| v.message.as_str()).collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("already held via call to `grab_ledger()`")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("closing edge via call to `grab_ledger()`")),
        "{msgs:?}"
    );
}

#[test]
fn lock_order_interproc_skips_shared_released_and_foreign_receivers() {
    let vs = run(&[("crates/migrate/src/live/fixture.rs", INTERPROC_PASS)]);
    assert!(vs.is_empty(), "compliant helper calls flagged: {vs:#?}");
}

#[test]
fn allow_entries_suppress_named_findings() {
    // An `[allow]` entry scoped to `path:line` silences exactly that
    // finding; a bare path entry silences the file.
    let mut ws = Workspace::from_sources(&[("crates/des/src/fixture.rs", NO_BLOCKING_TRIP)]);
    ws.config
        .allow
        .entry("no-blocking".to_string())
        .or_default()
        .push("crates/des/src/fixture.rs:16".to_string());
    let vs = ws.run();
    let lines: Vec<usize> = lines_of(&vs, "no-blocking")
        .iter()
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(lines, [8, 9, 17, 21, 22], "line 16 allowed: {vs:#?}");

    let mut ws = Workspace::from_sources(&[("crates/des/src/fixture.rs", NO_BLOCKING_TRIP)]);
    ws.config
        .allow
        .entry("no-blocking".to_string())
        .or_default()
        .push("crates/des/src/fixture.rs".to_string());
    assert!(ws.run().is_empty(), "whole-file allow ignored");
}

#[test]
fn violations_render_as_path_line_rule() {
    let vs = run(&[("crates/simnet/src/fixture.rs", NO_PANIC_TRIP)]);
    let first = vs.first().expect("fixture trips");
    let rendered = first.to_string();
    assert!(
        rendered.starts_with("crates/simnet/src/fixture.rs:5: [no-panic-transport]"),
        "diagnostic format drifted: {rendered}"
    );
}
