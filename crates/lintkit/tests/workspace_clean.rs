//! The invariant the whole PR exists to hold: the real workspace is
//! lint-clean. Running this as a tier-1 test means `cargo test -q` fails
//! the moment someone reintroduces a transport unwrap, an inverted lock
//! order, a protocol wildcard, or unlisted unsafe — even without ci.sh.

use std::path::Path;

use lintkit::Workspace;

#[test]
fn the_repo_passes_its_own_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lintkit sits two levels under the workspace root");
    let ws = Workspace::scan(root).expect("workspace scan");
    assert!(
        ws.files.len() > 50,
        "scan found only {} files — scope bug?",
        ws.files.len()
    );
    let violations = ws.run();
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
