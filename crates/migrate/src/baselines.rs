//! The related-work baselines of §II, implemented over the same substrate
//! as TPM so the comparison is apples-to-apples.
//!
//! * [`run_freeze_and_copy`] — Internet Suspend/Resume-style: stop the VM,
//!   copy everything, restart it. Zero redundancy, catastrophic downtime.
//! * [`run_on_demand`] — migrate memory/CPU live, resume immediately, and
//!   fetch disk blocks only when the guest touches them. Downtime matches
//!   shared-storage migration, but blocks the guest never reads are never
//!   synchronized: the source can never be retired, and system
//!   availability drops to p² (both machines must stay up).
//! * [`run_collective`] — The Collective (OSDI'02): freeze-and-copy over
//!   a shared base image, transferring only the copy-on-write diff —
//!   smaller, but the VM is still down for the whole transfer.
//! * [`run_delta_queue`] — Bradford et al. (VEE'07): pre-copy the disk
//!   once while forwarding every write as a delta record; after resume,
//!   destination I/O is blocked until the queued deltas are replayed.
//!   Write locality makes many deltas redundant — the redundancy TPM's
//!   bitmap eliminates by construction.

use block_bitmap::{DirtyMap, FlatBitmap};
use des::{SimDuration, SimRng, SimTime};
use simnet::capacity::seek_aware_share;
use simnet::proto::{Category, TransferLedger, FRAME_OVERHEAD};
use vdisk::MetaDisk;
use vmstate::{CpuState, GuestMemory};
use workloads::probe::ThroughputProbe;
use workloads::{OpKind, Workload, WorkloadKind};

use crate::report::{IterationStats, MigrationReport, PhaseTimings, PostCopyStats};
use crate::sim::{DirtyTracker, PostCopyConfig};
use crate::MigrationConfig;

/// Availability of the migrated system when it depends on `n` machines
/// each available with probability `p` — the paper's p² argument against
/// on-demand fetching.
pub fn dependent_availability(p: f64, machines: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p), "availability must be in [0,1]");
    p.powi(machines as i32)
}

struct BaselineWorld {
    cfg: MigrationConfig,
    workload: Box<dyn Workload>,
    rng: SimRng,
    now: SimTime,
    src_disk: MetaDisk,
    dst_disk: MetaDisk,
    src_mem: GuestMemory,
    dst_mem: GuestMemory,
    cpu: CpuState,
    ledger: TransferLedger,
    probe: ThroughputProbe,
}

impl BaselineWorld {
    fn new(cfg: MigrationConfig, kind: WorkloadKind) -> Self {
        cfg.validate();
        let mut rng = SimRng::new(cfg.seed);
        let workload = kind.build(cfg.disk_blocks as u64);
        let mut src_disk = MetaDisk::new(cfg.disk_blocks);
        for b in 0..cfg.disk_blocks {
            src_disk.write(b);
        }
        let mut src_mem = GuestMemory::new(4096, cfg.mem_pages);
        for p in 0..cfg.mem_pages {
            src_mem.touch(p);
        }
        src_mem.drain_dirty();
        let mut cpu = CpuState::new(cfg.vcpus);
        cpu.scribble(rng.next_u64());
        Self {
            dst_disk: MetaDisk::new(cfg.disk_blocks),
            dst_mem: GuestMemory::new(4096, cfg.mem_pages),
            workload,
            rng,
            now: SimTime::ZERO,
            src_disk,
            src_mem,
            cpu,
            ledger: TransferLedger::new(),
            probe: ThroughputProbe::new(),
            cfg,
        }
    }

    fn empty_report(&self, scheme: &str) -> MigrationReport {
        MigrationReport {
            scheme: scheme.into(),
            workload: self.workload.name().into(),
            total_time_secs: 0.0,
            downtime_ms: 0.0,
            disruption_secs: 0.0,
            ledger: TransferLedger::new(),
            wire: Default::default(),
            disk_iterations: Vec::new(),
            mem_iterations: Vec::new(),
            postcopy: PostCopyStats::default(),
            phases: PhaseTimings::default(),
            timeline: Vec::new(),
            io_blocked_secs: 0.0,
            residual_blocks: 0,
            redundant_deltas: 0,
            stream_blocks: Vec::new(),
            multisource: Default::default(),
            consistent: false,
        }
    }
}

/// Freeze-and-copy (Internet Suspend/Resume): suspend, move everything,
/// resume. Downtime equals total migration time.
pub fn run_freeze_and_copy(cfg: MigrationConfig, kind: WorkloadKind) -> MigrationReport {
    let mut w = BaselineWorld::new(cfg, kind);
    let bs = w.cfg.block_size;
    let rate = w.cfg.disk_stream_demand(); // the pipeline ceiling still applies
    let disk_bytes = w.cfg.disk_blocks as u64 * (bs + 8) + FRAME_OVERHEAD;
    let mem_bytes = w.cfg.mem_pages as u64 * (4096 + 8) + FRAME_OVERHEAD;
    let cpu_bytes = w.cpu.size_bytes() as u64 + FRAME_OVERHEAD;

    // VM is down for the entire transfer.
    w.probe.record(w.now, 0.0);
    for b in 0..w.cfg.disk_blocks {
        w.dst_disk.copy_block_from(&w.src_disk, b);
    }
    for p in 0..w.cfg.mem_pages {
        w.dst_mem.copy_page_from(&w.src_mem, p);
    }
    w.ledger.add(Category::DiskPrecopy, disk_bytes);
    w.ledger.add(Category::Memory, mem_bytes);
    w.ledger.add(Category::Cpu, cpu_bytes);
    let total_bytes = disk_bytes + mem_bytes + cpu_bytes;
    let downtime = w.cfg.suspend_overhead
        + SimDuration::from_secs_f64(total_bytes as f64 / rate.min(w.cfg.migration_net_rate()))
        + w.cfg.link.latency()
        + w.cfg.resume_overhead;
    w.now += downtime;
    w.probe.record(w.now, 0.0);

    let consistent = w.src_disk.content_equals(&w.dst_disk) && w.src_mem.content_equals(&w.dst_mem);
    MigrationReport {
        total_time_secs: downtime.as_secs_f64(),
        downtime_ms: downtime.as_millis_f64(),
        disruption_secs: downtime.as_secs_f64(),
        ledger: w.ledger.clone(),
        disk_iterations: vec![IterationStats {
            index: 1,
            units_sent: w.cfg.disk_blocks as u64,
            bytes: w.cfg.disk_blocks as u64 * bs,
            duration_secs: downtime.as_secs_f64(),
            dirty_at_end: 0,
        }],
        timeline: w.probe.samples().to_vec(),
        consistent,
        ..w.empty_report("freeze-and-copy")
    }
}

/// On-demand fetching: live memory/CPU migration, then resume with the
/// whole disk remote; blocks are pulled as the guest reads them, and
/// *nothing is pushed*. Measures the residual source dependency at
/// `horizon`.
pub fn run_on_demand(
    cfg: MigrationConfig,
    kind: WorkloadKind,
    horizon: SimDuration,
) -> MigrationReport {
    let mut w = BaselineWorld::new(cfg, kind);

    // Live memory pre-copy (simplified single pass + remainder, which is
    // what matters for downtime parity with shared-storage migration).
    let net = w.cfg.migration_net_rate();
    let mem_bytes = w.cfg.mem_pages as u64 * (4096 + 8);
    let mem_time = SimDuration::from_secs_f64(mem_bytes as f64 / net);
    // Guest runs normally during the memory copy.
    let solo = w.workload.disk_demand().min(w.cfg.disk_capacity);
    let mut t = SimDuration::ZERO;
    while t < mem_time {
        let dt = w.cfg.step.min(mem_time - t);
        for op in w.workload.ops_for(dt, solo, &mut w.rng) {
            if let OpKind::Write { block } = op.kind {
                w.src_disk.write(block as usize);
            }
        }
        w.probe
            .record(w.now + dt, w.workload.client_throughput(solo));
        t += dt;
        w.now += dt;
    }
    for p in 0..w.cfg.mem_pages {
        w.dst_mem.copy_page_from(&w.src_mem, p);
    }
    w.ledger.add(Category::Memory, mem_bytes + FRAME_OVERHEAD);
    w.ledger
        .add(Category::Cpu, w.cpu.size_bytes() as u64 + FRAME_OVERHEAD);

    let downtime = w.cfg.suspend_overhead
        + SimDuration::from_secs_f64(w.cpu.size_bytes() as f64 / net)
        + w.cfg.link.latency()
        + w.cfg.resume_overhead;
    w.probe.record(w.now, 0.0);
    w.now += downtime;
    let t_resume = w.now;

    // Every block is remote; pulls only.
    let all_remote = FlatBitmap::all_set(w.cfg.disk_blocks);
    let mut dead_tracker = DirtyTracker::new(w.cfg.bitmap, w.cfg.disk_blocks);
    let (w_share, pull_rate) = seek_aware_share(
        w.cfg.disk_capacity,
        w.cfg.seek_penalty,
        w.workload.disk_demand(),
        w.cfg.disk_stream_demand(),
    );
    let pc = PostCopyConfig {
        block_size: w.cfg.block_size,
        push_rate: pull_rate.max(1.0),
        workload_share: w_share,
        latency: w.cfg.link.latency(),
        push_batch: 32,
        slice: SimDuration::from_millis(20),
        horizon,
        push_enabled: false,
    };
    let mut rng = w.rng.fork(1);
    let out = crate::sim::run_postcopy(
        pc,
        t_resume,
        &w.src_disk,
        &mut w.dst_disk,
        all_remote.clone(),
        all_remote,
        &mut dead_tracker,
        w.workload.as_mut(),
        &mut rng,
        &mut w.ledger,
        &mut w.probe,
        &telemetry::Recorder::off(),
    );
    w.now = out.finished_at;

    MigrationReport {
        total_time_secs: w.now.since(SimTime::ZERO).as_secs_f64(),
        downtime_ms: downtime.as_millis_f64(),
        disruption_secs: 0.0,
        ledger: w.ledger.clone(),
        postcopy: out.stats,
        residual_blocks: out.residual_blocks,
        timeline: w.probe.samples().to_vec(),
        // On-demand never converges: the destination is NOT a complete
        // copy at the horizon.
        consistent: out.residual_blocks == 0,
        ..w.empty_report("on-demand")
    }
}

/// Collective-style migration (Sapuntzakis et al., OSDI'02): freeze-and-
/// copy, but all updates since a shared base image are captured in a
/// copy-on-write disk, so only the differences transfer. Downtime shrinks
/// with the diff size — but it is still downtime: the VM is stopped for
/// the whole transfer ("even transferring disk updates could cause
/// significant downtimes", §II-B).
///
/// `cow_dirty` marks the blocks that have diverged from the base image
/// both ends share.
pub fn run_collective(
    cfg: MigrationConfig,
    kind: WorkloadKind,
    cow_dirty: &FlatBitmap,
) -> MigrationReport {
    assert_eq!(
        cow_dirty.len(),
        cfg.disk_blocks,
        "CoW bitmap must cover the whole disk"
    );
    let mut w = BaselineWorld::new(cfg, kind);
    // Both ends share the base image; the source then diverges on the
    // CoW-captured blocks.
    w.dst_disk = w.src_disk.clone();
    for b in cow_dirty.iter_set() {
        w.src_disk.write(b);
    }
    let bs = w.cfg.block_size;
    let rate = w.cfg.disk_stream_demand().min(w.cfg.migration_net_rate());
    let diff_blocks = cow_dirty.count_ones() as u64;
    let disk_bytes = diff_blocks * (bs + 8) + FRAME_OVERHEAD;
    let mem_bytes = w.cfg.mem_pages as u64 * (4096 + 8) + FRAME_OVERHEAD;
    let cpu_bytes = w.cpu.size_bytes() as u64 + FRAME_OVERHEAD;

    w.probe.record(w.now, 0.0);
    for b in cow_dirty.iter_set() {
        w.dst_disk.copy_block_from(&w.src_disk, b);
    }
    for p in 0..w.cfg.mem_pages {
        w.dst_mem.copy_page_from(&w.src_mem, p);
    }
    w.ledger.add(Category::DiskPrecopy, disk_bytes);
    w.ledger.add(Category::Memory, mem_bytes);
    w.ledger.add(Category::Cpu, cpu_bytes);
    let total_bytes = disk_bytes + mem_bytes + cpu_bytes;
    let downtime = w.cfg.suspend_overhead
        + SimDuration::from_secs_f64(total_bytes as f64 / rate)
        + w.cfg.link.latency()
        + w.cfg.resume_overhead;
    w.now += downtime;
    w.probe.record(w.now, 0.0);

    let consistent = w.src_disk.content_equals(&w.dst_disk) && w.src_mem.content_equals(&w.dst_mem);
    MigrationReport {
        total_time_secs: downtime.as_secs_f64(),
        downtime_ms: downtime.as_millis_f64(),
        disruption_secs: downtime.as_secs_f64(),
        ledger: w.ledger.clone(),
        disk_iterations: vec![IterationStats {
            index: 1,
            units_sent: diff_blocks,
            bytes: diff_blocks * bs,
            duration_secs: downtime.as_secs_f64(),
            dirty_at_end: 0,
        }],
        timeline: w.probe.samples().to_vec(),
        consistent,
        ..w.empty_report("collective")
    }
}

/// Bradford-style delta-queue migration: one disk pass with every
/// concurrent write forwarded as a delta; after resume, destination I/O
/// blocks until the remaining queue replays. Reports the redundant bytes
/// and the I/O-blocked time that TPM avoids.
pub fn run_delta_queue(cfg: MigrationConfig, kind: WorkloadKind) -> MigrationReport {
    let mut w = BaselineWorld::new(cfg, kind);
    let bs = w.cfg.block_size;

    // ---- single disk pass with write forwarding ----
    let total_blocks = w.cfg.disk_blocks as u64;
    let mut sent = 0u64;
    let mut forwarded: u64 = 0; // total deltas forwarded
    let mut seen = FlatBitmap::new(w.cfg.disk_blocks);
    let mut redundant: u64 = 0;
    let mut queue: u64 = 0; // deltas queued at dst, not yet applied
    let phase_start = w.now;
    while sent < total_blocks {
        let (w_share, m_share) = seek_aware_share(
            w.cfg.disk_capacity,
            w.cfg.seek_penalty,
            w.workload.disk_demand(),
            w.cfg.disk_stream_demand(),
        );
        let dt = w.cfg.step;
        let n = ((m_share * dt.as_secs_f64() / bs as f64) as u64).min(total_blocks - sent);
        for b in sent..sent + n {
            w.dst_disk.copy_block_from(&w.src_disk, b as usize);
        }
        w.ledger
            .add(Category::DiskPrecopy, n * (bs + 8) + FRAME_OVERHEAD);
        sent += n;
        // Guest writes become deltas on the wire (including rewrites).
        for op in w.workload.ops_for(dt, w_share, &mut w.rng) {
            if let OpKind::Write { block } = op.kind {
                let b = block as usize;
                w.src_disk.write(b);
                forwarded += 1;
                queue += 1;
                if seen.set(b) {
                    redundant += 1;
                }
                // A delta record: location + size + payload.
                w.ledger.add(Category::DiskPush, bs + 16);
            }
        }
        w.probe
            .record(w.now + dt, w.workload.client_throughput(w_share));
        w.now += dt;
    }
    let precopy_secs = w.now.since(phase_start).as_secs_f64();

    // ---- memory copy + freeze (Xen-equivalent, simplified) ----
    let net = w.cfg.migration_net_rate();
    let mem_bytes = w.cfg.mem_pages as u64 * (4096 + 8);
    w.now += SimDuration::from_secs_f64(mem_bytes as f64 / net);
    for p in 0..w.cfg.mem_pages {
        w.dst_mem.copy_page_from(&w.src_mem, p);
    }
    w.ledger.add(Category::Memory, mem_bytes + FRAME_OVERHEAD);
    w.ledger
        .add(Category::Cpu, w.cpu.size_bytes() as u64 + FRAME_OVERHEAD);
    let downtime = w.cfg.suspend_overhead
        + SimDuration::from_secs_f64(w.cpu.size_bytes() as f64 / net)
        + w.cfg.link.latency()
        + w.cfg.resume_overhead;
    w.probe.record(w.now, 0.0);
    w.now += downtime;

    // ---- replay: destination I/O blocked until the queue drains ----
    // Deltas apply at local disk speed; the queue at resume is whatever
    // was forwarded during the (short) freeze tail — conservatively, the
    // deltas of the last pre-copy step plus those in flight.
    let replay_blocks = queue.min(forwarded);
    let apply_rate = w.cfg.disk_capacity;
    let io_blocked = SimDuration::from_secs_f64(
        // The paper's complaint: every queued delta must apply before any
        // guest I/O proceeds. Locality means the queue holds redundant
        // work proportional to the rewrite ratio.
        replay_blocks as f64 * bs as f64 / apply_rate,
    );
    w.probe.record(w.now, 0.0);
    w.now += io_blocked;

    // Apply the deltas (the destination converges after the replay).
    for b in seen.iter_set() {
        w.dst_disk.copy_block_from(&w.src_disk, b);
    }
    let consistent = w.src_disk.content_equals(&w.dst_disk) && w.src_mem.content_equals(&w.dst_mem);

    MigrationReport {
        total_time_secs: w.now.since(SimTime::ZERO).as_secs_f64(),
        downtime_ms: downtime.as_millis_f64(),
        disruption_secs: io_blocked.as_secs_f64(),
        ledger: w.ledger.clone(),
        disk_iterations: vec![IterationStats {
            index: 1,
            units_sent: total_blocks,
            bytes: total_blocks * bs,
            duration_secs: precopy_secs,
            dirty_at_end: forwarded,
        }],
        io_blocked_secs: io_blocked.as_secs_f64(),
        redundant_deltas: redundant,
        timeline: w.probe.samples().to_vec(),
        consistent,
        ..w.empty_report("delta-queue")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MigrationConfig {
        MigrationConfig::small()
    }

    #[test]
    fn availability_squares() {
        assert!((dependent_availability(0.99, 2) - 0.9801).abs() < 1e-9);
        assert!((dependent_availability(0.9, 1) - 0.9).abs() < 1e-9);
        assert!(dependent_availability(0.99, 2) < 0.99);
    }

    #[test]
    fn freeze_and_copy_downtime_equals_total_time() {
        let r = run_freeze_and_copy(cfg(), WorkloadKind::Idle);
        assert!(r.consistent);
        assert!((r.downtime_ms / 1000.0 - r.total_time_secs).abs() < 1e-6);
        // 256 MiB + 32 MiB at ~52 MB/s: seconds of downtime, not millis.
        assert!(r.downtime_ms > 1_000.0, "downtime {} ms", r.downtime_ms);
    }

    #[test]
    fn on_demand_has_short_downtime_but_residual_dependency() {
        let r = run_on_demand(cfg(), WorkloadKind::Web, SimDuration::from_secs(30));
        // Downtime comparable to shared-storage migration (ms).
        assert!(r.downtime_ms < 200.0, "downtime {} ms", r.downtime_ms);
        // But a huge residual dependency on the source.
        assert!(
            r.residual_blocks > (cfg().disk_blocks as u64) / 2,
            "residual {}",
            r.residual_blocks
        );
        assert!(!r.consistent);
    }

    #[test]
    fn collective_downtime_scales_with_diff() {
        let c = cfg();
        let mut small_diff = FlatBitmap::new(c.disk_blocks);
        for b in (0..c.disk_blocks).step_by(100) {
            small_diff.set(b);
        }
        let small = run_collective(c.clone(), WorkloadKind::Idle, &small_diff);
        assert!(small.consistent);
        let big = run_freeze_and_copy(c.clone(), WorkloadKind::Idle);
        // A 1% diff shrinks downtime dramatically (memory still crosses
        // in full) — but it is still far above TPM's, because the VM
        // stays frozen for the whole transfer.
        assert!(small.downtime_ms * 5.0 < big.downtime_ms);
        let tpm = crate::sim::run_tpm(c, WorkloadKind::Idle).report;
        assert!(
            tpm.downtime_ms * 5.0 < small.downtime_ms,
            "TPM {} ms vs Collective {} ms",
            tpm.downtime_ms,
            small.downtime_ms
        );
    }

    #[test]
    fn delta_queue_ships_redundant_bytes_and_blocks_io() {
        let r = run_delta_queue(cfg(), WorkloadKind::Web);
        assert!(r.consistent);
        // Forwarded deltas exist and the destination endured an I/O block.
        assert!(r.ledger.get(Category::DiskPush) > 0);
        assert!(r.io_blocked_secs >= 0.0);
        // TPM on the same scenario ships less disk data: every rewrite is
        // a redundant delta here but a free re-set bit there.
        let tpm = crate::sim::run_tpm(cfg(), WorkloadKind::Web).report;
        assert!(
            tpm.ledger.disk_total() < r.ledger.disk_total(),
            "tpm {} vs delta {}",
            tpm.ledger.disk_total(),
            r.ledger.disk_total()
        );
    }
}
