//! Migration engine configuration.

use std::time::Duration;

use des::SimDuration;
use simnet::Link;

/// How the live engine recovers from transport failures.
///
/// A mid-stream connection failure is not fatal: the source reconnects
/// with exponential-free fixed backoff, the two sides exchange a
/// [`simnet::proto::MigMessage::ResumeFrom`] bitmap, and only the blocks
/// and pages the destination is still missing are retransmitted — the
/// paper's Incremental Migration mechanism reused as crash recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Reconnect attempts permitted after the initial connection.
    pub max_reconnects: u32,
    /// Wall-clock pause before each reconnect attempt.
    pub backoff: Duration,
    /// A protocol phase that makes no progress for this long is declared
    /// dead (the peer is connected but stuck).
    pub phase_timeout: Duration,
    /// Partition tolerance: with a budget set, reconnect attempts beyond
    /// `max_reconnects` are still permitted while the wall-clock time
    /// since the migration's *first* transport failure stays under it. A
    /// network partition that heals within the budget is ridden out on
    /// backoff instead of burning the attempt counter; a source that is
    /// truly dead still fails once the budget drains (and the
    /// destination still falls over to peer holders at that point).
    pub outage_budget: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_reconnects: 3,
            backoff: Duration::from_millis(25),
            phase_timeout: Duration::from_secs(10),
            outage_budget: None,
        }
    }
}

impl RetryPolicy {
    /// No recovery: the first transport failure ends the migration.
    pub fn none() -> Self {
        Self {
            max_reconnects: 0,
            ..Self::default()
        }
    }

    /// Partition-tolerant recovery: ride out link outages up to `budget`
    /// of wall-clock time, regardless of how many reconnect attempts
    /// that takes.
    pub fn partition_tolerant(budget: Duration) -> Self {
        Self {
            outage_budget: Some(budget),
            ..Self::default()
        }
    }

    /// Has the retry budget truly run out? Attempts up to
    /// `max_reconnects` are always allowed; beyond that, an
    /// [`RetryPolicy::outage_budget`] keeps the session alive while the
    /// outage that started at `outage_start` is younger than the budget.
    pub fn exhausted(&self, attempt: u32, outage_start: Option<std::time::Instant>) -> bool {
        if attempt <= self.max_reconnects {
            return false;
        }
        match (self.outage_budget, outage_start) {
            (Some(budget), Some(start)) => start.elapsed() >= budget,
            // Budget configured but no failure observed yet: not spent.
            (Some(_), None) => false,
            (None, _) => true,
        }
    }
}

/// Which bitmap structure tracks dirty blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitmapKind {
    /// Dense flat bitmap (1 bit/block, always allocated).
    Flat,
    /// Two-layer lazily allocated bitmap (§IV-A-2).
    Layered,
}

/// Configuration for a whole-system migration.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Disk capacity in 4 KiB blocks.
    pub disk_blocks: usize,
    /// Block size in bytes.
    pub block_size: u64,
    /// Guest memory pages (4 KiB each).
    pub mem_pages: usize,
    /// Number of vCPUs (sizes the CPU context transfer).
    pub vcpus: u32,
    /// The migration network link.
    pub link: Link,
    /// Optional cap on the bandwidth the migration may use (§VI-C-3),
    /// bytes/second.
    pub rate_limit: Option<f64>,
    /// Nominal streaming disk throughput of each host with a single
    /// sequential stream, bytes/second.
    pub disk_capacity: f64,
    /// Capacity lost per byte/second of interleaved migration traffic
    /// (seek interference between the migration's sequential scan and the
    /// guest's own I/O). See `simnet::capacity::seek_aware_share`.
    pub seek_penalty: f64,
    /// End-to-end throughput ceiling of the migration pipeline
    /// (sustained whole-disk reads through `blkd`, userspace copies, TCP),
    /// bytes/second. The paper's prototype moves a 40 GB VBD in ~790 s —
    /// about 52 MB/s — on a link that could carry twice that; this models
    /// the same pipeline ceiling. Buffered guest writes (Table III's
    /// 96 MB/s `write(2)`) are *not* subject to it, hence the separate
    /// `disk_capacity`.
    pub migration_throughput_cap: f64,
    /// Maximum disk pre-copy iterations (the paper limits the maximum
    /// number of iterations to avoid endless migration").
    pub max_disk_iterations: u32,
    /// Stop disk pre-copy when an iteration ends with at most this many
    /// dirty blocks.
    pub disk_dirty_threshold: usize,
    /// Maximum memory pre-copy iterations (Xen's cap).
    pub max_mem_iterations: u32,
    /// Proceed to freeze-and-copy when the memory dirty set is at most
    /// this many pages.
    pub mem_dirty_threshold: usize,
    /// Simulation step for the time-sliced phases.
    pub step: SimDuration,
    /// Fixed hypervisor overhead for suspending the guest.
    pub suspend_overhead: SimDuration,
    /// Fixed hypervisor overhead for resuming the guest.
    pub resume_overhead: SimDuration,
    /// Fixed control-plane overhead of entering and completing post-copy
    /// (blkd wakeups, bitmap acknowledgement, completion handshake).
    pub postcopy_fixed_overhead: SimDuration,
    /// Which bitmap implementation the tracker uses.
    pub bitmap: BitmapKind,
    /// Parallel transport streams for the disk data plane. The block
    /// range is sharded into this many contiguous word-aligned
    /// [`block_bitmap::FlatBitmap`] shards; each stream drains its own
    /// shard, interleaved round-robin. Aggregate bandwidth, ledger
    /// accounting, and downtime are identical to a single stream under
    /// the same seed — sharding changes *which* block crosses next, never
    /// how many cross per step.
    pub streams: usize,
    /// Content-addressed transfer: ship a 16-byte reference instead of a
    /// full block whenever the destination provably already holds the
    /// identical content (template clones, blocks re-sent unchanged).
    /// With dedup off — or when no block qualifies — the data plane is
    /// bit-identical to the classic one, floats and all.
    pub dedup: bool,
    /// Model wire compression of residual full-block payloads. The
    /// simulation carries no real bytes, so this affects only the
    /// `wire.*` accounting (a fixed 2:1 modeled ratio); ledger bytes and
    /// timing are unchanged.
    pub compress: bool,
    /// Multi-source block fetching: owed full blocks that a fresh
    /// replica holder can serve are pulled from peer hosts instead of
    /// the source. With multisource off — or when no peers are attached
    /// or no owed block is fresh anywhere else — the data plane is
    /// bit-identical to the single-source engine, floats and all.
    pub multisource: bool,
    /// NIC bandwidth each peer holder offers a multi-source migration,
    /// bytes/second. The destination's ingest (its migration net rate)
    /// and this per-holder budget feed `max_min_share`, so K-peer
    /// fan-in never starves the holders' resident workloads.
    pub peer_budget: f64,
    /// RNG seed — every run with the same config and seed is
    /// bit-identical.
    pub seed: u64,
    /// Horizon for abandoning a post-copy that cannot converge (only the
    /// on-demand baseline hits this).
    pub postcopy_horizon: SimDuration,
}

impl MigrationConfig {
    /// The paper's testbed: 40 GB VBD, 512 MB guest, one vCPU, Gigabit
    /// LAN, SATA-class disk (~110 MB/s), 3-iteration-scale pre-copy caps.
    pub fn paper_testbed() -> Self {
        Self {
            // The paper's VBD is 40 GB = 40·10⁹ bytes ("39070MB"):
            disk_blocks: 9_765_625,
            block_size: 4096,
            mem_pages: 131_072, // 512 MiB at 4 KiB
            vcpus: 1,
            link: Link::gigabit(),
            rate_limit: None,
            disk_capacity: 137.7 * 1024.0 * 1024.0,
            seek_penalty: 1.2,
            migration_throughput_cap: 50.0 * 1024.0 * 1024.0,
            max_disk_iterations: 8,
            disk_dirty_threshold: 256,
            max_mem_iterations: 10,
            mem_dirty_threshold: 512,
            step: SimDuration::from_millis(250),
            suspend_overhead: SimDuration::from_millis(15),
            resume_overhead: SimDuration::from_millis(25),
            postcopy_fixed_overhead: SimDuration::from_millis(300),
            bitmap: BitmapKind::Flat,
            streams: 1,
            dedup: true,
            compress: true,
            multisource: true,
            peer_budget: 50.0 * 1024.0 * 1024.0,
            seed: 2008,
            postcopy_horizon: SimDuration::from_secs(3600),
        }
    }

    /// A scaled-down configuration for fast tests: 256 MiB disk, 32 MiB
    /// guest, same rates.
    pub fn small() -> Self {
        Self {
            disk_blocks: 65_536, // 256 MiB
            mem_pages: 8_192,    // 32 MiB
            disk_dirty_threshold: 64,
            mem_dirty_threshold: 128,
            step: SimDuration::from_millis(100),
            ..Self::paper_testbed()
        }
    }

    /// Effective network rate available to the migration, bytes/second.
    pub fn migration_net_rate(&self) -> f64 {
        match self.rate_limit {
            Some(l) => self.link.bandwidth().min(l),
            None => self.link.bandwidth(),
        }
    }

    /// Demand the disk-copy stream places on the disk: the network rate
    /// further capped by the migration pipeline ceiling.
    pub fn disk_stream_demand(&self) -> f64 {
        self.migration_net_rate().min(self.migration_throughput_cap)
    }

    /// Disk capacity in bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.disk_blocks as u64 * self.block_size
    }

    /// Validate invariants; call before running an engine.
    ///
    /// # Panics
    /// Panics on nonsensical configurations (zero-sized disk or memory,
    /// zero step, non-positive capacities).
    pub fn validate(&self) {
        assert!(self.disk_blocks > 0, "disk must have at least one block");
        assert!(self.block_size > 0, "block size must be non-zero");
        assert!(self.mem_pages > 0, "guest memory must be non-empty");
        assert!(self.vcpus > 0, "guest needs at least one vCPU");
        assert!(self.disk_capacity > 0.0, "disk capacity must be positive");
        assert!(
            self.step > SimDuration::ZERO,
            "simulation step must be positive"
        );
        assert!(
            self.max_disk_iterations >= 1,
            "need at least one disk pre-copy iteration"
        );
        assert!(self.streams >= 1, "need at least one transport stream");
        assert!(
            self.peer_budget >= 0.0 && self.peer_budget.is_finite(),
            "peer budget must be finite and non-negative"
        );
        if let Some(l) = self.rate_limit {
            assert!(l > 0.0, "rate limit must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_geometry() {
        let c = MigrationConfig::paper_testbed();
        c.validate();
        assert_eq!(c.disk_bytes(), 40_000_000_000);
        assert_eq!(c.mem_pages * 4096, 512 * 1024 * 1024);
        // Unlimited: migration may use the whole link.
        assert_eq!(c.migration_net_rate(), c.link.bandwidth());
    }

    #[test]
    fn rate_limit_caps_net_rate() {
        let mut c = MigrationConfig::small();
        c.rate_limit = Some(1_000_000.0);
        c.validate();
        assert_eq!(c.migration_net_rate(), 1_000_000.0);
        // A limit above the link speed has no effect.
        c.rate_limit = Some(1e12);
        assert_eq!(c.migration_net_rate(), c.link.bandwidth());
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_disk_rejected() {
        let c = MigrationConfig {
            disk_blocks: 0,
            ..MigrationConfig::small()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one transport stream")]
    fn zero_streams_rejected() {
        let c = MigrationConfig {
            streams: 0,
            ..MigrationConfig::small()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "rate limit must be positive")]
    fn zero_rate_limit_rejected() {
        let c = MigrationConfig {
            rate_limit: Some(0.0),
            ..MigrationConfig::small()
        };
        c.validate();
    }
}
