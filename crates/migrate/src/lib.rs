//! Three-Phase Migration (TPM) and Incremental Migration (IM) — the
//! paper's contribution — plus the baselines it compares against.
//!
//! # The algorithms
//!
//! **TPM** (§IV) migrates a VM's whole system state — local disk, memory,
//! CPU — in three phases:
//!
//! 1. **Pre-copy**: the local disk is copied iteratively: the first
//!    iteration ships every block while a block-bitmap records concurrent
//!    guest writes; each later iteration ships the blocks dirtied during
//!    the previous one. When the dirty set stops shrinking (or an
//!    iteration cap is hit) memory is pre-copied the same way, Xen-style,
//!    with the disk bitmap still recording writes.
//! 2. **Freeze-and-copy**: the VM suspends; the remaining dirty pages, the
//!    CPU context, and the *block-bitmap itself* (not the blocks!) are
//!    sent. Downtime is exactly this phase.
//! 3. **Post-copy**: the VM resumes on the destination immediately. The
//!    source *pushes* the remaining dirty blocks continuously while the
//!    destination *pulls* any dirty block a guest read touches; a guest
//!    write to a dirty block cancels its synchronization entirely (the
//!    write overwrites the whole block). Push guarantees completion in
//!    finite time — the paper's "finite dependency on the source".
//!
//! **IM** (§V) keeps a fresh bitmap recording writes on the destination
//! after the primary migration; migrating *back* only ships the blocks in
//! that bitmap.
//!
//! # Engines
//!
//! * [`sim`] — deterministic virtual-time engine at full paper scale
//!   (40 GB disks, 512 MB guests, Gigabit link), used by the benchmark
//!   harness to regenerate every table and figure.
//! * [`live`] — a real multi-threaded userspace prototype: actual byte
//!   disks, actual concurrent workload writes, actual channel transport —
//!   the paper's `blkd`/`blkback` architecture reproduced in userspace.
//! * [`baselines`] — freeze-and-copy (Internet Suspend/Resume), pure
//!   on-demand fetching, and Bradford-style delta forward-and-replay, for
//!   the related-work comparisons of §II.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod config;
pub mod live;
mod report;
pub mod sim;

pub use config::{BitmapKind, MigrationConfig, RetryPolicy};
pub use report::{
    IterationStats, MigrationReport, MultiSourceReport, PeerBytes, PhaseTimings, PostCopyStats,
};
