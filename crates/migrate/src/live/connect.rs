//! Connection establishment and re-establishment for live migration.
//!
//! The protocol engines never hold a transport across a failure; they
//! ask a [`Connector`] for attempt *k*'s connection and, when the link
//! dies mid-stream, come back for attempt *k+1*. Three implementations:
//!
//! * [`OnceConnector`] — wraps an existing transport; no reconnection
//!   (the legacy single-connection entry points).
//! * [`DuplexConnector`] — in-process rendezvous that mints a fresh
//!   crossbeam duplex pair per attempt, wrapped in
//!   [`simnet::fault::FaultyTransport`] so a [`FaultPlan`] can sever
//!   specific attempts at specific wire offsets.
//! * [`TcpSourceConnector`] / [`TcpDestConnector`] — real sockets:
//!   connect-with-backoff on the source, re-accept on the destination.

use std::collections::HashMap;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use simnet::fault::{faulty_named_pair, FaultPlan, FaultyTransport};
use simnet::tcp::TcpTransport;
use simnet::transport::{duplex, Endpoint, Transport};

use crate::config::RetryPolicy;
use crate::live::error::MigrationError;

/// A factory for the migration link, invoked once per connection
/// attempt (attempt 0 is the initial connection).
pub trait Connector: Send {
    /// The transport this connector produces.
    type Link: Transport + 'static;

    /// Establish attempt `attempt`'s connection.
    fn connect(&mut self, attempt: u32) -> Result<Self::Link, MigrationError>;

    /// Tell the peer's connector this side will never connect again, so
    /// a peer blocked in [`Connector::connect`] can give up promptly.
    /// Call on final exit (success or failure). Default: no-op.
    fn abort(&self) {}
}

/// A connector around one pre-established transport: attempt 0 returns
/// it, any reconnect attempt fails. Gives fixed-transport entry points
/// the new error surface without changing their connection behavior.
pub struct OnceConnector<T: Transport>(Option<T>);

impl<T: Transport> OnceConnector<T> {
    /// Wrap an already-connected transport.
    pub fn new(t: T) -> Self {
        Self(Some(t))
    }
}

impl<T: Transport + 'static> Connector for OnceConnector<T> {
    type Link = T;

    fn connect(&mut self, attempt: u32) -> Result<T, MigrationError> {
        self.0.take().ok_or(MigrationError::Protocol {
            phase: "reconnect",
            detail: format!("transport cannot reconnect (attempt {attempt})"),
        })
    }
}

/// Which half of a [`DuplexConnector`] pair this is. The fault plan is
/// evaluated on source sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Side {
    Source,
    Dest,
}

impl Side {
    fn peer(self) -> Self {
        match self {
            Self::Source => Self::Dest,
            Self::Dest => Self::Source,
        }
    }
}

/// Shared state of a duplex rendezvous: the first side to ask for
/// attempt *k* mints the (fault-wrapped) pair, keeps its half, and
/// parks the peer's half here under `(k, peer_side)`.
struct Rendezvous {
    pending: Mutex<HashMap<(u32, Side), FaultyTransport<Endpoint>>>,
    aborted: AtomicBool,
}

/// In-process reconnecting link with fault injection; build pairs with
/// [`duplex_connector_pair`].
pub struct DuplexConnector {
    shared: Arc<Rendezvous>,
    side: Side,
    plan: FaultPlan,
    rate_limit: Option<f64>,
}

/// Create a source/destination connector pair sharing one rendezvous.
/// Each attempt *k* gets a fresh duplex channel wrapped with the plan's
/// attempt-*k* faults (evaluated on source sends); `rate_limit` paces
/// the source half of every attempt.
pub fn duplex_connector_pair(
    plan: FaultPlan,
    rate_limit: Option<f64>,
) -> (DuplexConnector, DuplexConnector) {
    let shared = Arc::new(Rendezvous {
        pending: Mutex::new(HashMap::new()),
        aborted: AtomicBool::new(false),
    });
    let mk = |side| DuplexConnector {
        shared: Arc::clone(&shared),
        side,
        plan: plan.clone(),
        rate_limit,
    };
    (mk(Side::Source), mk(Side::Dest))
}

impl Connector for DuplexConnector {
    type Link = FaultyTransport<Endpoint>;

    fn connect(&mut self, attempt: u32) -> Result<Self::Link, MigrationError> {
        if self.shared.aborted.load(Ordering::SeqCst) {
            return Err(MigrationError::Protocol {
                phase: "reconnect",
                detail: "peer will not reconnect".to_string(),
            });
        }
        let mut pending = self.shared.pending.lock();
        if let Some(mine) = pending.remove(&(attempt, self.side)) {
            return Ok(mine);
        }
        // First arriver for this attempt: mint the pair. Channels are
        // connected from birth, so we can start sending immediately; the
        // peer picks its half up whenever it gets here.
        let (mut src_ep, dst_ep) = duplex();
        if let Some(limit) = self.rate_limit {
            src_ep.set_rate_limit(limit);
        }
        // The migration link belongs to the named session "source": a
        // `FaultPlan::kill_session("source", n)` re-arms on every
        // attempt, modeling a dead source host rather than a flapping
        // link. Plans without kills behave exactly as before.
        let (src, dst) = faulty_named_pair(src_ep, dst_ep, &self.plan, "source", attempt);
        let (mine, theirs) = match self.side {
            Side::Source => (src, dst),
            Side::Dest => (dst, src),
        };
        pending.insert((attempt, self.side.peer()), theirs);
        Ok(mine)
    }

    fn abort(&self) {
        self.shared.aborted.store(true, Ordering::SeqCst);
    }
}

/// Source-side TCP connector: dials the destination with fixed backoff
/// until the policy's phase timeout, wrapping each connection with the
/// plan's faults for that attempt.
pub struct TcpSourceConnector {
    addr: String,
    plan: FaultPlan,
    rate_limit: Option<f64>,
    policy: RetryPolicy,
}

impl TcpSourceConnector {
    /// Dial `addr` (e.g. `127.0.0.1:7777`) for every attempt.
    pub fn new(addr: impl Into<String>, plan: FaultPlan, policy: RetryPolicy) -> Self {
        Self {
            addr: addr.into(),
            plan,
            rate_limit: None,
            policy,
        }
    }

    /// Pace every attempt's sends at `bytes_per_sec`.
    pub fn with_rate_limit(mut self, bytes_per_sec: f64) -> Self {
        self.rate_limit = Some(bytes_per_sec);
        self
    }
}

impl Connector for TcpSourceConnector {
    type Link = FaultyTransport<TcpTransport>;

    fn connect(&mut self, attempt: u32) -> Result<Self::Link, MigrationError> {
        let deadline = Instant::now() + self.policy.phase_timeout;
        let mut transport = loop {
            match TcpTransport::connect(&self.addr) {
                Ok(t) => break t,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(MigrationError::Io(format!(
                            "connect to {} (attempt {attempt}): {e}",
                            self.addr
                        )));
                    }
                    std::thread::sleep(self.policy.backoff);
                }
            }
        };
        if let Some(limit) = self.rate_limit {
            transport.set_rate_limit(limit);
        }
        Ok(FaultyTransport::wrap(transport, &self.plan, attempt))
    }
}

/// Destination-side TCP connector: accepts one connection per attempt
/// on a bound listener.
pub struct TcpDestConnector {
    listener: TcpListener,
    policy: RetryPolicy,
    aborted: Arc<AtomicBool>,
}

impl TcpDestConnector {
    /// Bind `addr` and accept one connection per attempt.
    pub fn bind(addr: impl ToSocketAddrs, policy: RetryPolicy) -> Result<Self, MigrationError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            policy,
            aborted: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address, for handing to the source.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, MigrationError> {
        Ok(self.listener.local_addr()?)
    }
}

impl Connector for TcpDestConnector {
    type Link = TcpTransport;

    fn connect(&mut self, attempt: u32) -> Result<TcpTransport, MigrationError> {
        let deadline = Instant::now() + self.policy.phase_timeout;
        loop {
            if self.aborted.load(Ordering::SeqCst) {
                return Err(MigrationError::Protocol {
                    phase: "reconnect",
                    detail: "peer will not reconnect".to_string(),
                });
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    return Ok(TcpTransport::new(stream)?);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(MigrationError::Timeout {
                            phase: "accept",
                            waited: self.policy.phase_timeout,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    return Err(MigrationError::Io(format!(
                        "accept (attempt {attempt}): {e}"
                    )))
                }
            }
        }
    }

    fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::proto::MigMessage;

    #[test]
    fn once_connector_yields_exactly_once() {
        let (a, _b) = duplex();
        let mut c = OnceConnector::new(a);
        let t = c.connect(0).expect("first connect");
        drop(t);
        assert!(matches!(c.connect(1), Err(MigrationError::Protocol { .. })));
    }

    #[test]
    fn duplex_rendezvous_pairs_attempts() {
        let (mut src, mut dst) = duplex_connector_pair(FaultPlan::none(), None);
        // Source arrives first, can send before the dest picks up.
        let s0 = src.connect(0).expect("src attempt 0");
        s0.send(MigMessage::Suspended).expect("queued");
        let d0 = dst.connect(0).expect("dst attempt 0");
        assert_eq!(d0.recv().expect("delivered"), MigMessage::Suspended);
        // A second attempt gets a *fresh* channel, not the old one.
        let d1 = dst.connect(1).expect("dst attempt 1");
        let s1 = src.connect(1).expect("src attempt 1");
        s1.send(MigMessage::Resumed).expect("queued");
        assert_eq!(d1.recv().expect("delivered"), MigMessage::Resumed);
    }

    #[test]
    fn duplex_abort_fails_future_connects() {
        let (mut src, dst) = duplex_connector_pair(FaultPlan::none(), None);
        dst.abort();
        assert!(src.connect(0).is_err());
    }

    #[test]
    fn tcp_connectors_reconnect() {
        let policy = RetryPolicy {
            phase_timeout: Duration::from_secs(5),
            ..RetryPolicy::default()
        };
        let mut dst = TcpDestConnector::bind("127.0.0.1:0", policy.clone()).expect("bind");
        let addr = dst.local_addr().expect("addr").to_string();
        for attempt in 0..2 {
            let join = std::thread::spawn({
                let mut s =
                    TcpSourceConnector::new(addr.clone(), FaultPlan::none(), policy.clone());
                move || s.connect(attempt).expect("source connects")
            });
            let d = dst.connect(attempt).expect("dest accepts");
            let s = join.join().expect("source thread");
            s.send(MigMessage::PrepareAck).expect("send");
            assert_eq!(d.recv().expect("recv"), MigMessage::PrepareAck);
        }
    }
}
