//! The guest driver thread: plays a workload against the current disk,
//! with suspend/resume orchestration and end-to-end stamp verification.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use des::dist::HotCold;
use des::{SimDuration, SimRng};
use parking_lot::{Condvar, Mutex};
use telemetry::Recorder;
use vdisk::stamp_bytes;
use vmstate::LiveRam;

use crate::live::error::MigrationError;
use workloads::{OpKind, Workload, WorkloadKind};

use crate::live::GuestIo;

/// A workload adapted for wall-clock live mode: each driver tick plays
/// `dt_per_tick` of virtual workload time.
pub struct LiveWorkload {
    inner: Box<dyn Workload>,
    dt_per_tick: SimDuration,
}

impl LiveWorkload {
    /// Wrap a simulation workload; every driver tick (~1 ms of wall time)
    /// replays `dt_per_tick` of its virtual op stream.
    pub fn new(inner: Box<dyn Workload>, dt_per_tick: SimDuration) -> Self {
        Self { inner, dt_per_tick }
    }

    /// Standard construction from a workload kind for a disk of
    /// `num_blocks` blocks.
    pub fn from_kind(kind: WorkloadKind, num_blocks: u64, dt_per_tick: SimDuration) -> Self {
        Self::new(kind.build(num_blocks), dt_per_tick)
    }

    fn ops(&mut self, rng: &mut SimRng) -> Vec<OpKind> {
        let demand = self.inner.disk_demand();
        self.inner
            .ops_for(self.dt_per_tick, demand, rng)
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    SuspendRequested,
    Suspended,
}

struct CtlInner {
    state: Mutex<CtlState>,
    cv: Condvar,
    ticks: AtomicU64,
}

struct CtlState {
    phase: Phase,
    target: Arc<dyn GuestIo>,
    ram: Arc<LiveRam>,
    stop: bool,
    suspended_at: Option<Instant>,
    resumed_at: Option<Instant>,
}

/// Shared control handle for the driver thread (clonable across the
/// protocol threads).
#[derive(Clone)]
pub struct DriverCtl(Arc<CtlInner>);

impl DriverCtl {
    /// Ask the guest to pause (the `xc_linux_save` suspend signal) and
    /// wait until it acknowledges. Returns the suspension instant —
    /// downtime starts here.
    pub fn request_suspend(&self) -> Instant {
        let mut st = self.0.state.lock();
        assert_eq!(st.phase, Phase::Running, "guest must be running to suspend");
        st.phase = Phase::SuspendRequested;
        self.0.cv.notify_all();
        while st.phase != Phase::Suspended {
            self.0.cv.wait(&mut st);
        }
        // Phase::Suspended implies the driver stamped the instant; fall
        // back to "now" rather than panicking a protocol thread.
        st.suspended_at.unwrap_or_else(Instant::now)
    }

    /// Resume the guest on the destination's I/O path and RAM. Returns
    /// the resume instant — downtime ends here.
    pub fn resume_on(&self, target: Arc<dyn GuestIo>, ram: Arc<LiveRam>) -> Instant {
        let mut st = self.0.state.lock();
        assert_eq!(
            st.phase,
            Phase::Suspended,
            "guest must be suspended to resume"
        );
        st.target = target;
        st.ram = ram;
        st.phase = Phase::Running;
        let now = Instant::now();
        st.resumed_at = Some(now);
        self.0.cv.notify_all();
        now
    }

    /// Guest ticks completed while running (workload ops + memory
    /// writes). Monotonic; lets the engine wait for guaranteed guest
    /// progress between protocol phases without sleeping blind.
    pub fn ticks(&self) -> u64 {
        self.0.ticks.load(Ordering::Acquire)
    }

    fn request_stop(&self) {
        let mut st = self.0.state.lock();
        st.stop = true;
        self.0.cv.notify_all();
    }
}

/// What the guest did, for verification.
#[derive(Debug)]
pub struct DriverResult {
    /// Last stamp written per block (ground truth for consistency).
    pub model: BTreeMap<usize, u64>,
    /// Last stamp written per memory page.
    pub mem_model: BTreeMap<usize, u64>,
    /// Total writes issued.
    pub writes: u64,
    /// Total reads issued.
    pub reads: u64,
    /// Memory page writes issued.
    pub mem_writes: u64,
    /// Reads that returned data not matching the guest's own last write
    /// (or the initial image). Must be zero for a correct migration.
    pub read_violations: u64,
}

/// Handle to the running guest driver thread.
pub struct DriverHandle {
    ctl: DriverCtl,
    join: JoinHandle<DriverResult>,
}

impl DriverHandle {
    /// Start the guest: plays `workload` against `initial` (the source
    /// path) and dirties `ram` at `mem_writes_per_tick` pages/tick, one
    /// tick per `tick_wall` of wall time. Guest activity totals land in
    /// `telemetry`'s `guest.*` counters when the recorder is enabled.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        mut workload: LiveWorkload,
        initial: Arc<dyn GuestIo>,
        ram: Arc<LiveRam>,
        mem_writes_per_tick: u64,
        block_size: usize,
        seed: u64,
        tick_wall: Duration,
        telemetry: Arc<Recorder>,
    ) -> Self {
        let page_size = ram.page_size();
        let num_pages = ram.num_pages();
        let hot_pages = HotCold::new(num_pages as u64, 0, (num_pages as u64 / 8).max(1), 0.8);
        let ctl = DriverCtl(Arc::new(CtlInner {
            state: Mutex::new(CtlState {
                phase: Phase::Running,
                target: initial,
                ram,
                stop: false,
                suspended_at: None,
                resumed_at: None,
            }),
            cv: Condvar::new(),
            ticks: AtomicU64::new(0),
        }));
        let thread_ctl = ctl.clone();
        let join = std::thread::spawn(move || {
            let mut rng = SimRng::new(seed);
            let mut model: BTreeMap<usize, u64> = BTreeMap::new();
            let mut stamp = 1u64;
            let mut mem_model: BTreeMap<usize, u64> = BTreeMap::new();
            let mut res = DriverResult {
                model: BTreeMap::new(),
                mem_model: BTreeMap::new(),
                writes: 0,
                reads: 0,
                mem_writes: 0,
                read_violations: 0,
            };
            loop {
                let (target, ram) = {
                    let mut st = thread_ctl.0.state.lock();
                    loop {
                        if st.stop {
                            res.model = model;
                            res.mem_model = mem_model;
                            if telemetry.is_enabled() {
                                let m = telemetry.metrics();
                                m.counter("guest.disk_writes").add(res.writes);
                                m.counter("guest.disk_reads").add(res.reads);
                                m.counter("guest.mem_writes").add(res.mem_writes);
                                m.counter("guest.ticks")
                                    .add(thread_ctl.0.ticks.load(Ordering::Acquire));
                            }
                            return res;
                        }
                        match st.phase {
                            Phase::Running => break (Arc::clone(&st.target), Arc::clone(&st.ram)),
                            Phase::SuspendRequested => {
                                st.phase = Phase::Suspended;
                                st.suspended_at = Some(Instant::now());
                                thread_ctl.0.cv.notify_all();
                            }
                            Phase::Suspended => {
                                thread_ctl.0.cv.wait(&mut st);
                            }
                        }
                    }
                };
                for op in workload.ops(&mut rng) {
                    match op {
                        OpKind::Write { block } => {
                            let b = block as usize;
                            target.write(b, &stamp_bytes(b, stamp, block_size));
                            model.insert(b, stamp);
                            stamp += 1;
                            res.writes += 1;
                        }
                        OpKind::Read { block } => {
                            let b = block as usize;
                            let data = target.read(b);
                            res.reads += 1;
                            let ok = match model.get(&b) {
                                // Read-your-writes: the guest's own last
                                // write must be exactly what comes back.
                                Some(&expect) => data == stamp_bytes(b, expect, block_size),
                                // Never written by this guest: the block
                                // carries whatever image the run started
                                // from (an incremental migration inherits
                                // a prior run's stamps), which the driver
                                // cannot know. It must still be a
                                // well-formed stamp block for THIS index
                                // — zeroed, torn, or misdirected content
                                // all fail here.
                                None if block_size >= 16 => {
                                    let stamp = u64::from_le_bytes(
                                        data[8..16].try_into().unwrap_or([0; 8]),
                                    );
                                    data == stamp_bytes(b, stamp, block_size)
                                }
                                None => data == stamp_bytes(b, 0, block_size),
                            };
                            if !ok {
                                res.read_violations += 1;
                            }
                        }
                    }
                }
                // Memory dirtying: hot/cold page writes, stamped like
                // disk blocks so the destination RAM can be verified.
                for _ in 0..mem_writes_per_tick {
                    let p = hot_pages.sample(&mut rng) as usize;
                    ram.write_page(p, &stamp_bytes(p, stamp, page_size));
                    mem_model.insert(p, stamp);
                    stamp += 1;
                    res.mem_writes += 1;
                }
                thread_ctl.0.ticks.fetch_add(1, Ordering::Release);
                std::thread::sleep(tick_wall);
            }
        });
        Self { ctl, join }
    }

    /// The clonable control handle.
    pub fn ctl(&self) -> DriverCtl {
        self.ctl.clone()
    }

    /// Stop the guest and collect its ground-truth model. A driver
    /// thread that died surfaces as a protocol error, not a panic.
    pub fn finish(self) -> Result<DriverResult, MigrationError> {
        self.ctl.request_stop();
        self.join.join().map_err(|_| MigrationError::Protocol {
            phase: "guest driver",
            detail: "guest driver thread panicked".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::SourceIo;
    use vdisk::{DomainId, TrackedDisk, VirtualDisk};
    use vmstate::LiveRam;

    fn io(blocks: usize) -> (Arc<TrackedDisk>, Arc<dyn GuestIo>, Arc<LiveRam>) {
        let disk = Arc::new(TrackedDisk::new(Arc::new(VirtualDisk::dense(512, blocks))));
        // Initialize with the stamp-0 image the verifier expects.
        for b in 0..blocks {
            disk.disk().write_block(b, &stamp_bytes(b, 0, 512));
        }
        let g: Arc<dyn GuestIo> = Arc::new(SourceIo::new(Arc::clone(&disk), DomainId(1)));
        let ram = Arc::new(LiveRam::new(512, 64));
        (disk, g, ram)
    }

    fn workload(blocks: u64) -> LiveWorkload {
        LiveWorkload::from_kind(WorkloadKind::Web, blocks, SimDuration::from_millis(100))
    }

    #[test]
    fn driver_writes_and_verifies_reads() {
        let (disk, g, ram) = io(65_536);
        let h = DriverHandle::start(
            workload(65_536),
            g,
            Arc::clone(&ram),
            2,
            512,
            3,
            Duration::from_millis(1),
            Recorder::off(),
        );
        std::thread::sleep(Duration::from_millis(100));
        let res = h.finish().expect("driver thread healthy");
        assert!(res.writes > 0, "driver made no writes");
        assert!(res.mem_writes > 0, "driver dirtied no memory");
        assert_eq!(res.read_violations, 0, "read-your-writes violated");
        // The disk holds exactly the model's last stamps.
        for (&b, &s) in &res.model {
            assert_eq!(disk.disk().read_block(b), stamp_bytes(b, s, 512));
        }
        // And the RAM holds the memory model's last stamps.
        for (&p, &s) in &res.mem_model {
            assert_eq!(ram.read_page(p), stamp_bytes(p, s, 512));
        }
    }

    #[test]
    fn suspend_blocks_progress_until_resume() {
        let (_disk, g, ram) = io(65_536);
        let h = DriverHandle::start(
            workload(65_536),
            Arc::clone(&g),
            Arc::clone(&ram),
            1,
            512,
            4,
            Duration::from_millis(1),
            Recorder::off(),
        );
        std::thread::sleep(Duration::from_millis(30));
        let ctl = h.ctl();
        let t_suspend = ctl.request_suspend();
        // While suspended, no writes happen (counts frozen): we cannot
        // read counts without finishing, so verify indirectly via resume
        // instants ordering.
        std::thread::sleep(Duration::from_millis(20));
        let t_resume = ctl.resume_on(g, ram);
        assert!(t_resume > t_suspend);
        assert!(t_resume - t_suspend >= Duration::from_millis(15));
        let res = h.finish().expect("driver thread healthy");
        assert_eq!(res.read_violations, 0);
    }
}
