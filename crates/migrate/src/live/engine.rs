//! Live migration orchestration: source and destination protocol threads.
//!
//! Both protocol engines are **resumable**: they never hold a transport
//! across a failure. All progress lives in an explicit state value; when
//! the link dies mid-stream the engine asks its
//! [`Connector`](crate::live::connect::Connector) for a fresh connection,
//! the two sides exchange a [`MigMessage::SessionHello`] /
//! [`MigMessage::ResumeFrom`] handshake, and only the blocks and pages
//! whose delivery the failed session left uncertain are retransmitted —
//! the paper's block-bitmap doubling as the crash-recovery ledger.
//!
//! The resume rule per failed session: the source tracks what it *sent*
//! that session, the destination reports what it *received* that
//! session; their difference (plus whatever worklist was pending) is
//! owed. During post-copy the destination's still-needed bitmap is
//! authoritative instead. Re-sent blocks are re-read from the current
//! disk, so a resend can never apply stale data.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use block_bitmap::{ser, AtomicBitmap, DirtyMap, FlatBitmap};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use des::SimDuration;
use simnet::codec::{compress_blocks, decompress_blocks};
use simnet::fault::FaultPlan;
use simnet::proto::{MigMessage, ResumePhase, TransferLedger, WireStats, BLOCK_REF_WIRE};
use simnet::transport::{duplex, Transport, TransportError};
use telemetry::{Event, Phase, Recorder, Resource, Side};

use blockstore::{fetch_blocks, serve_blocks, BlockSource, BlockWant};

use crate::report::PeerBytes;
use vdisk::{
    hash_block, stamp_bytes, ContentIndex, DomainId, TrackedDisk, TrackerHandle, VirtualDisk,
};
use vmstate::LiveRam;
use workloads::WorkloadKind;

use crate::config::RetryPolicy;
use crate::live::connect::{
    duplex_connector_pair, Connector, OnceConnector, TcpDestConnector, TcpSourceConnector,
};
use crate::live::driver::{DriverCtl, DriverHandle, DriverResult, LiveWorkload};
use crate::live::error::MigrationError;
use crate::live::io::{DestIo, SourceIo};

/// The migrated guest's domain id in live mode.
const GUEST: DomainId = DomainId(1);

/// A surviving holder of the migrating image's content — a replica host
/// or shared-storage attachment the destination may fetch blocks from
/// when the source dies with its reconnect budget exhausted. The
/// destination verifies every fetched payload against the freeze-time
/// [`MigMessage::BlockManifest`] fingerprints, so a stale holder
/// degrades to a miss, never to a wrong image.
#[derive(Clone)]
pub struct LivePeer {
    /// Host id the holder is known by (telemetry, per-peer accounting).
    pub host: u64,
    /// The holder's copy of the image.
    pub disk: Arc<TrackedDisk>,
}

impl std::fmt::Debug for LivePeer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LivePeer")
            .field("host", &self.host)
            .field("blocks", &self.disk.disk().num_blocks())
            .finish()
    }
}

/// Serves a [`LivePeer`]'s disk over a blockstore session: a block is
/// shipped only when its current content hashes to the requested
/// fingerprint, anything else answers a miss.
struct PeerDiskSource {
    disk: Arc<TrackedDisk>,
}

impl BlockSource for PeerDiskSource {
    fn fetch(&self, block: u64, fingerprint: u64, _generation: u64) -> Option<Bytes> {
        let b = block as usize;
        if b >= self.disk.disk().num_blocks() {
            return None;
        }
        let data = self.disk.disk().read_block(b);
        (hash_block(&data) == fingerprint).then(|| Bytes::from(data))
    }
}

/// Configuration of a live (threaded) migration.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Block size in bytes (small blocks keep tests fast).
    pub block_size: usize,
    /// Disk capacity in blocks.
    pub num_blocks: usize,
    /// Maximum pre-copy iterations.
    pub max_iterations: u32,
    /// Freeze when an iteration leaves at most this many dirty blocks.
    pub dirty_threshold: usize,
    /// Blocks per `DiskBlocks` message.
    pub batch: usize,
    /// Optional wall-clock pacing of the source's sends, bytes/second.
    pub rate_limit: Option<f64>,
    /// Workload the guest runs.
    pub workload: WorkloadKind,
    /// Virtual workload time replayed per ~1 ms driver tick.
    pub dt_per_tick: SimDuration,
    /// Guest RAM pages (byte-real, migrated live).
    pub mem_pages: usize,
    /// RAM page size in bytes.
    pub mem_page_size: usize,
    /// Guest page writes per driver tick.
    pub mem_writes_per_tick: u64,
    /// Memory pre-copy stops when an iteration leaves at most this many
    /// dirty pages.
    pub mem_dirty_threshold: usize,
    /// Maximum memory pre-copy iterations.
    pub max_mem_iterations: u32,
    /// Pages per `MemPages` message.
    pub mem_batch: usize,
    /// Parallel logical streams for the disk data plane. The block range
    /// is split into this many contiguous word-aligned shards
    /// ([`FlatBitmap::shard_bounds`]) and `DiskBlocks` batches are drawn
    /// round-robin across the shards — the send order K independent
    /// transport streams would produce. Session-shipped accounting stays
    /// global, so reconnect-resume re-shards exactly the owed set.
    pub streams: usize,
    /// Seed for the guest's op stream.
    pub seed: u64,
    /// Minimum guest driver ticks between disk pre-copy convergence and
    /// the suspend request. Non-zero values guarantee a writing workload
    /// dirties blocks into the freeze bitmap (deterministic
    /// `frozen_dirty > 0` instead of racing the guest thread).
    pub min_guest_ticks: u64,
    /// Offer content-addressed block dedup to the destination. A session
    /// runs dedup only when both sides agree (the destination echoes its
    /// acceptance in [`MigMessage::ResumeFrom`]).
    pub dedup: bool,
    /// Offer per-block compression for residual full-block sends.
    pub compress: bool,
    /// Multi-source mode: the source ships a freeze-time fingerprint
    /// manifest ([`MigMessage::BlockManifest`]) so the destination can
    /// complete post-copy from `peers` if the source dies for good.
    pub multisource: bool,
    /// Surviving holders the destination may fail over to. Only
    /// consulted after the source's reconnect budget is exhausted while
    /// the guest is already running on the destination (post-copy).
    pub peers: Vec<LivePeer>,
    /// Transport failure recovery policy.
    pub retry: RetryPolicy,
    /// Telemetry sink for the run. Defaults to a disabled recorder, whose
    /// record calls cost one relaxed atomic load; hand in
    /// `Recorder::enabled()` to capture the journal and metrics.
    pub telemetry: Arc<Recorder>,
}

impl LiveConfig {
    /// A fast default suitable for tests: 16 Mi disk of 4 Ki × 4 KiB-..
    /// actually 4096 blocks × 512 B = 2 MiB, web workload.
    pub fn test_default() -> Self {
        Self {
            block_size: 512,
            num_blocks: 65_536,
            max_iterations: 5,
            dirty_threshold: 64,
            batch: 256,
            rate_limit: None,
            workload: WorkloadKind::Web,
            dt_per_tick: SimDuration::from_millis(50),
            mem_pages: 2_048,
            mem_page_size: 512,
            mem_writes_per_tick: 8,
            mem_dirty_threshold: 32,
            max_mem_iterations: 8,
            mem_batch: 128,
            streams: 1,
            seed: 2008,
            min_guest_ticks: 0,
            dedup: true,
            compress: true,
            multisource: false,
            peers: Vec::new(),
            retry: RetryPolicy::default(),
            telemetry: Recorder::off(),
        }
    }
}

/// Outcome of a live migration run.
pub struct LiveOutcome {
    /// Wall-clock downtime (suspend acknowledged → resumed).
    pub downtime: Duration,
    /// Wall-clock total migration time.
    pub total: Duration,
    /// Blocks sent per pre-copy iteration.
    pub iterations: Vec<u64>,
    /// Pages sent per memory pre-copy iteration.
    pub mem_iterations: Vec<u64>,
    /// Dirty pages transferred during freeze (the memory tail).
    pub frozen_mem_dirty: u64,
    /// Dirty blocks in the freeze-phase bitmap.
    pub frozen_dirty: u64,
    /// Post-copy pushed blocks applied.
    pub pushed: u64,
    /// Post-copy pulled blocks applied.
    pub pulled: u64,
    /// Post-copy arrivals dropped (superseded by destination writes).
    pub dropped: u64,
    /// Guest reads that stalled on a pull.
    pub stalled_reads: u64,
    /// Reconnections performed after mid-stream transport failures.
    pub reconnects: u32,
    /// Source-death failovers performed (0 or 1): the source's
    /// reconnect budget ran out during post-copy and the destination
    /// completed the image from surviving peer holders instead.
    pub failovers: u32,
    /// Blocks and bytes fetched from each peer holder during failover.
    pub peer_bytes: Vec<PeerBytes>,
    /// Disk blocks scheduled for retransmission at each reconnect: the
    /// failed session's sent-but-unacknowledged set during pre-copy, the
    /// destination's still-needed bitmap during post-copy. Each entry far
    /// below `num_blocks` is the resume-efficiency win over restarting.
    pub resume_owed: Vec<u64>,
    /// Source-side wire savings from dedup and compression: raw disk
    /// bytes that would have crossed versus what actually did.
    pub wire: WireStats,
    /// Bytes sent by the source, per category.
    pub src_ledger: TransferLedger,
    /// Bytes sent by the destination (pull requests, completion).
    pub dst_ledger: TransferLedger,
    /// The destination disk the guest now runs on.
    pub dst_disk: Arc<TrackedDisk>,
    /// The retired source disk.
    pub src_disk: Arc<TrackedDisk>,
    /// The destination RAM the guest now runs on.
    pub dst_ram: Arc<LiveRam>,
    /// The guest's last stamp written per memory page.
    pub mem_model: BTreeMap<usize, u64>,
    /// Destination-side new-write bitmap (feeds a live IM).
    pub new_bitmap: FlatBitmap,
    /// The guest's ground truth: last stamp written per block.
    pub model: BTreeMap<usize, u64>,
    /// Guest reads that saw wrong data (must be 0).
    pub read_violations: u64,
}

impl LiveOutcome {
    /// Blocks of the destination disk that disagree with the guest's
    /// ground-truth model (empty = consistent migration).
    pub fn inconsistent_blocks(&self) -> Vec<usize> {
        let disk = self.dst_disk.disk();
        let bs = disk.block_size();
        (0..disk.num_blocks())
            .filter(|&b| {
                let expect = self.model.get(&b).copied().unwrap_or(0);
                disk.read_block(b) != stamp_bytes(b, expect, bs)
            })
            .collect()
    }

    /// Pages of the destination RAM that disagree with the guest's
    /// memory write log (empty = consistent memory migration).
    pub fn inconsistent_pages(&self) -> Vec<usize> {
        let ps = self.dst_ram.page_size();
        (0..self.dst_ram.num_pages())
            .filter(|&p| {
                let expect = self.mem_model.get(&p).copied().unwrap_or(0);
                self.dst_ram.read_page(p) != stamp_bytes(p, expect, ps)
            })
            .collect()
    }
}

fn fresh_disks(cfg: &LiveConfig) -> (Arc<TrackedDisk>, Arc<TrackedDisk>) {
    let src = Arc::new(TrackedDisk::new(Arc::new(VirtualDisk::dense(
        cfg.block_size,
        cfg.num_blocks,
    ))));
    for b in 0..cfg.num_blocks {
        src.disk()
            .write_block(b, &stamp_bytes(b, 0, cfg.block_size));
    }
    let dst = Arc::new(TrackedDisk::new(Arc::new(VirtualDisk::dense(
        cfg.block_size,
        cfg.num_blocks,
    ))));
    (src, dst)
}

/// Run a primary live migration with freshly created disks: the source
/// holds the stamp-0 image, the destination is blank.
pub fn run_live_migration(cfg: &LiveConfig) -> Result<LiveOutcome, MigrationError> {
    let (src, dst) = fresh_disks(cfg);
    run_live_migration_with(cfg, src, dst, None)
}

/// Run a primary live migration with a deterministic transport fault
/// schedule. Faults are evaluated on source sends; each reconnect gets
/// the plan's faults for its attempt number.
pub fn run_live_migration_faulty(
    cfg: &LiveConfig,
    plan: FaultPlan,
) -> Result<LiveOutcome, MigrationError> {
    let (src, dst) = fresh_disks(cfg);
    run_live_migration_with_faults(cfg, src, dst, None, plan)
}

/// Run a primary live migration with `holders` shared-storage replica
/// holders registered as failover peers (hosts `1..=holders`, each
/// attached to the source image) and multi-source fetch enabled. This is
/// the CLI's `--sources N` entry: with a benign fault plan it behaves
/// exactly like [`run_live_migration_faulty`]; under a source-killing
/// plan the destination completes the image from the peers.
pub fn run_live_migration_replicated(
    cfg: &LiveConfig,
    plan: FaultPlan,
    holders: usize,
) -> Result<LiveOutcome, MigrationError> {
    let (src, dst) = fresh_disks(cfg);
    let mut cfg = cfg.clone();
    cfg.multisource = true;
    cfg.peers = (1..=holders as u64)
        .map(|host| LivePeer {
            host,
            disk: Arc::clone(&src),
        })
        .collect();
    run_live_migration_with_faults(&cfg, src, dst, None, plan)
}

/// Run a live migration between existing disks. `initial_bitmap` enables
/// Incremental Migration: only the marked blocks are shipped in the first
/// iteration (§V — "if \[the bitmap\] does \[exist\], only the blocks marked
/// dirty in the block-bitmap need to be migrated").
pub fn run_live_migration_with(
    cfg: &LiveConfig,
    src: Arc<TrackedDisk>,
    dst: Arc<TrackedDisk>,
    initial_bitmap: Option<FlatBitmap>,
) -> Result<LiveOutcome, MigrationError> {
    run_live_migration_with_faults(cfg, src, dst, initial_bitmap, FaultPlan::none())
}

/// Run a live migration between existing disks under a fault plan.
pub fn run_live_migration_with_faults(
    cfg: &LiveConfig,
    src: Arc<TrackedDisk>,
    dst: Arc<TrackedDisk>,
    initial_bitmap: Option<FlatBitmap>,
    plan: FaultPlan,
) -> Result<LiveOutcome, MigrationError> {
    let (src_conn, dst_conn) = duplex_connector_pair(plan, cfg.rate_limit);
    run_live_migration_connected(cfg, src, dst, initial_bitmap, src_conn, dst_conn)
}

/// Run a primary live migration over **real TCP sockets** on the loopback
/// interface — the protocol crosses an actual network stack, framed by
/// `simnet::codec`, exactly as it would between two hosts.
pub fn run_live_migration_tcp(cfg: &LiveConfig) -> Result<LiveOutcome, MigrationError> {
    run_live_migration_tcp_faulty(cfg, FaultPlan::none())
}

/// TCP migration with injected faults: the source side's transport is
/// wrapped per attempt; a fired fault also severs the real socket, so
/// the destination observes it as a genuine dead stream.
pub fn run_live_migration_tcp_faulty(
    cfg: &LiveConfig,
    plan: FaultPlan,
) -> Result<LiveOutcome, MigrationError> {
    let (src, dst) = fresh_disks(cfg);
    let dst_conn = TcpDestConnector::bind("127.0.0.1:0", cfg.retry.clone())?;
    let addr = dst_conn.local_addr()?.to_string();
    let mut src_conn = TcpSourceConnector::new(addr, plan, cfg.retry.clone());
    if let Some(limit) = cfg.rate_limit {
        src_conn = src_conn.with_rate_limit(limit);
    }
    run_live_migration_connected(cfg, src, dst, None, src_conn, dst_conn)
}

/// Run a live migration between existing disks over a pre-connected pair
/// of [`Transport`]s. No reconnection is possible on a fixed pair: the
/// first mid-stream failure surfaces as [`MigrationError`].
pub fn run_live_migration_over<S, D>(
    cfg: &LiveConfig,
    src: Arc<TrackedDisk>,
    dst: Arc<TrackedDisk>,
    initial_bitmap: Option<FlatBitmap>,
    src_ep: S,
    dst_ep: D,
) -> Result<LiveOutcome, MigrationError>
where
    S: Transport + 'static,
    D: Transport + 'static,
{
    run_live_migration_connected(
        cfg,
        src,
        dst,
        initial_bitmap,
        OnceConnector::new(src_ep),
        OnceConnector::new(dst_ep),
    )
}

/// Run a live migration between existing disks, drawing each connection
/// attempt from the given connectors.
pub fn run_live_migration_connected<CS, CD>(
    cfg: &LiveConfig,
    src: Arc<TrackedDisk>,
    dst: Arc<TrackedDisk>,
    initial_bitmap: Option<FlatBitmap>,
    src_conn: CS,
    dst_conn: CD,
) -> Result<LiveOutcome, MigrationError>
where
    CS: Connector + 'static,
    CD: Connector + 'static,
{
    assert_eq!(src.disk().num_blocks(), cfg.num_blocks);
    assert_eq!(dst.disk().num_blocks(), cfg.num_blocks);
    src.set_telemetry(&cfg.telemetry, "disk.src");
    dst.set_telemetry(&cfg.telemetry, "disk.dst");

    // Byte-real RAM on both ends; the source starts with the stamp-0
    // image the verifier expects.
    let src_ram = Arc::new(LiveRam::new(cfg.mem_page_size, cfg.mem_pages));
    for p in 0..cfg.mem_pages {
        src_ram.write_page(p, &stamp_bytes(p, 0, cfg.mem_page_size));
    }
    let dst_ram = Arc::new(LiveRam::new(cfg.mem_page_size, cfg.mem_pages));

    // Guest starts on the source path.
    let workload = LiveWorkload::from_kind(cfg.workload, cfg.num_blocks as u64, cfg.dt_per_tick);
    let driver = DriverHandle::start(
        workload,
        Arc::new(SourceIo::new(Arc::clone(&src), GUEST)),
        Arc::clone(&src_ram),
        cfg.mem_writes_per_tick,
        cfg.block_size,
        cfg.seed,
        Duration::from_millis(1),
        Arc::clone(&cfg.telemetry),
    );
    let start = Instant::now();

    let src_thread = {
        let cfg = cfg.clone();
        let src = Arc::clone(&src);
        let ram = Arc::clone(&src_ram);
        let ctl = driver.ctl();
        std::thread::spawn(move || {
            source_protocol(&cfg, &src, &ram, src_conn, &ctl, initial_bitmap)
        })
    };
    let dst_thread = {
        let cfg = cfg.clone();
        let dst = Arc::clone(&dst);
        let ram = Arc::clone(&dst_ram);
        let ctl = driver.ctl();
        std::thread::spawn(move || dest_protocol(&cfg, &dst, &ram, dst_conn, &ctl))
    };

    let src_res = src_thread.join().unwrap_or_else(|_| {
        Err((
            MigrationError::Protocol {
                phase: "source",
                detail: "source protocol thread panicked".into(),
            },
            None,
        ))
    });
    let dst_res = dst_thread.join().unwrap_or_else(|_| {
        Err(MigrationError::Protocol {
            phase: "destination",
            detail: "destination protocol thread panicked".into(),
        })
    });
    let total = start.elapsed();
    let DriverResult {
        model,
        mem_model,
        read_violations,
        ..
    } = driver.finish()?;
    let (src_res, dst_res) = match (src_res, dst_res) {
        (Ok(s), Ok(d)) => (s, d),
        // The source died for good but the destination completed the
        // image from peer holders: the migration as a whole succeeded.
        (Err((_, Some(s))), Ok(d)) if d.failovers > 0 => (*s, d),
        (Err((e, _)), _) => return Err(e),
        (_, Err(e)) => return Err(e),
    };

    let outcome = LiveOutcome {
        downtime: dst_res.resumed_at - src_res.suspended_at,
        total,
        iterations: src_res.iterations,
        mem_iterations: src_res.mem_iterations,
        frozen_mem_dirty: src_res.frozen_mem_dirty,
        frozen_dirty: src_res.frozen_dirty,
        pushed: dst_res.pushed,
        pulled: dst_res.pulled,
        dropped: dst_res.dropped,
        stalled_reads: dst_res.stalled_reads,
        reconnects: src_res.reconnects,
        failovers: dst_res.failovers,
        peer_bytes: dst_res.failover_peers,
        resume_owed: src_res.resume_owed,
        wire: src_res.wire,
        src_ledger: src_res.ledger,
        dst_ledger: dst_res.ledger,
        dst_disk: dst,
        src_disk: src,
        dst_ram,
        mem_model,
        new_bitmap: dst_res.new_bitmap,
        model,
        read_violations,
    };
    if cfg.telemetry.is_enabled() {
        let m = cfg.telemetry.metrics();
        m.counter("live.postcopy.pushed").add(outcome.pushed);
        m.counter("live.postcopy.pulled").add(outcome.pulled);
        m.counter("live.postcopy.dropped").add(outcome.dropped);
        m.counter("live.reconnects")
            .add(u64::from(outcome.reconnects));
        m.gauge("live.frozen_dirty").set(outcome.frozen_dirty);
        m.gauge("live.downtime_nanos")
            .set(u64::try_from(outcome.downtime.as_nanos()).unwrap_or(u64::MAX));
        m.gauge("live.src_bytes_total")
            .set(outcome.src_ledger.total());
        m.counter("wire.bytes_raw").add(outcome.wire.bytes_raw);
        m.counter("wire.bytes_sent").add(outcome.wire.bytes_sent);
        m.counter("wire.blocks_deduped")
            .add(outcome.wire.blocks_deduped);
        m.counter("wire.blocks_compressed")
            .add(outcome.wire.blocks_compressed);
        m.histogram("live.iteration_blocks")
            .observe_all(outcome.iterations.iter().copied());
        if outcome.failovers > 0 {
            m.counter("blockstore.failovers")
                .add(u64::from(outcome.failovers));
            for p in &outcome.peer_bytes {
                m.counter(&format!("blockstore.peer.{}.blocks", p.host))
                    .add(p.blocks);
                m.counter(&format!("blockstore.peer.{}.bytes", p.host))
                    .add(p.bytes);
            }
        }
    }
    Ok(outcome)
}

/// How one protocol session ended short of completion.
enum SessionError {
    /// The connection died; reconnect and resume.
    Reconnect(TransportError),
    /// Unrecoverable: protocol violation, stuck peer, bad state.
    Fatal(MigrationError),
}

/// Map a transport failure: dead connections are reconnectable,
/// anything else (`Empty` misuse) is a protocol-level bug.
fn classify(phase: &'static str, e: TransportError) -> SessionError {
    if e.is_fatal() {
        SessionError::Reconnect(e)
    } else {
        SessionError::Fatal(MigrationError::Transport { phase, error: e })
    }
}

fn send_or<T: Transport>(ep: &T, phase: &'static str, msg: MigMessage) -> Result<(), SessionError> {
    ep.send(msg).map_err(|e| classify(phase, e))
}

/// Blocking receive with the phase timeout: a peer that stays connected
/// but silent for the whole window is declared stuck (fatal), a dead
/// connection triggers a reconnect.
fn recv_or<T: Transport>(
    ep: &T,
    phase: &'static str,
    timeout: Duration,
) -> Result<MigMessage, SessionError> {
    match ep.recv_timeout(timeout) {
        Ok(msg) => Ok(msg),
        Err(TransportError::Timeout) => Err(SessionError::Fatal(MigrationError::Timeout {
            phase,
            waited: timeout,
        })),
        Err(e) => Err(classify(phase, e)),
    }
}

fn protocol_err(phase: &'static str, detail: String) -> SessionError {
    SessionError::Fatal(MigrationError::Protocol { phase, detail })
}

fn decode_bitmap(phase: &'static str, encoded: &Bytes) -> Result<FlatBitmap, SessionError> {
    ser::decode(encoded).map_err(|e| protocol_err(phase, format!("undecodable bitmap: {e:?}")))
}

/// Union of `extra` indices and a `current` worklist, deduplicated and
/// sorted via a scratch bitmap over `nbits` slots.
fn merged_worklist(
    nbits: usize,
    extra: impl IntoIterator<Item = usize>,
    current: &[usize],
) -> Vec<usize> {
    let mut bm = FlatBitmap::new(nbits);
    for b in extra {
        bm.set(b);
    }
    for &b in current {
        bm.set(b);
    }
    bm.to_indices()
}

/// Indices marked in `shipped` but not in `got`: sent during the failed
/// session with no proof of delivery, hence owed on resume.
fn owed_indices(shipped: &FlatBitmap, got: &FlatBitmap) -> Vec<usize> {
    shipped.iter_set().filter(|&b| !got.get(b)).collect()
}

fn read_batch(disk: &TrackedDisk, blocks: &[usize], block_size: usize) -> Bytes {
    let mut payload = Vec::with_capacity(blocks.len() * block_size);
    for &b in blocks {
        payload.extend_from_slice(&disk.disk().read_block(b));
    }
    Bytes::from(payload)
}

/// Reorder a disk worklist for K parallel logical streams: the block
/// range splits into K contiguous word-aligned shards
/// ([`FlatBitmap::shard_bounds`]), and batches are drawn round-robin
/// across them — the send order K independent transport streams would
/// produce. Per-stream scheduled-block counts land in the
/// `live.stream.{i}.blocks_scheduled` counters.
fn interleave_streams(
    worklist: &[usize],
    num_blocks: usize,
    streams: usize,
    batch: usize,
    telemetry: &Recorder,
) -> Vec<usize> {
    let bounds = FlatBitmap::shard_bounds(num_blocks, streams);
    // No sortedness assumption: a reconnect hands back an already
    // interleaved remainder, so each block finds its shard by range.
    let mut per: Vec<Vec<usize>> = vec![Vec::new(); bounds.len()];
    for &b in worklist {
        let s = bounds.partition_point(|r| r.end <= b);
        per[s.min(bounds.len() - 1)].push(b);
    }
    if telemetry.is_enabled() {
        let m = telemetry.metrics();
        for (i, shard) in per.iter().enumerate() {
            m.counter(&format!("live.stream.{i}.blocks_scheduled"))
                .add(shard.len() as u64);
        }
    }
    let mut out = Vec::with_capacity(worklist.len());
    let mut idx = vec![0usize; per.len()];
    while out.len() < worklist.len() {
        for (s, shard) in per.iter().enumerate() {
            let i = idx[s];
            if i < shard.len() {
                let end = (i + batch).min(shard.len());
                out.extend_from_slice(&shard[i..end]);
                idx[s] = end;
            }
        }
    }
    out
}

/// Per-session wire-optimization state on the source side: the
/// negotiated dedup/compress agreement, the source's view of which
/// fingerprints the destination can resolve (seeded from
/// [`MigMessage::ContentSummary`], grown by every full block this
/// session ships — in-order transports guarantee the destination
/// indexed those before any later reference arrives), blocks the
/// destination bounced with [`MigMessage::BlockRefMiss`] (always re-sent
/// in full, never re-referenced), and the run-wide savings ledger.
struct DedupCtx {
    dedup: bool,
    compress: bool,
    known_remote: HashSet<u64>,
    force_full: HashSet<usize>,
    wire: WireStats,
}

impl DedupCtx {
    fn new() -> Self {
        Self {
            dedup: false,
            compress: false,
            known_remote: HashSet::new(),
            force_full: HashSet::new(),
            wire: WireStats::default(),
        }
    }

    /// Re-arm for a fresh session: the negotiated flags are this
    /// session's, and the previous session's view of remote content is
    /// discarded — a resumed session re-validates against a fresh
    /// [`MigMessage::ContentSummary`], it never trusts stale knowledge.
    /// The savings ledger spans the whole run and survives.
    fn reset(&mut self, dedup: bool, compress: bool) {
        self.dedup = dedup;
        self.compress = compress;
        self.known_remote.clear();
        self.force_full.clear();
    }
}

/// Pull every queued [`MigMessage::BlockRefMiss`] off the transport.
/// During pre-copy and freeze the destination sends nothing else, so
/// any other message is a protocol violation.
fn drain_ref_misses<T: Transport>(
    ep: &T,
    misses: &mut Vec<usize>,
    phase: &'static str,
) -> Result<(), SessionError> {
    loop {
        match ep.try_recv() {
            Ok(MigMessage::BlockRefMiss { block }) => misses.push(block as usize),
            Ok(other) => {
                return Err(protocol_err(
                    phase,
                    format!("unexpected message at source: {other:?}"),
                ))
            }
            Err(TransportError::Empty) => return Ok(()),
            Err(e) => return Err(classify(phase, e)),
        }
    }
}

/// Ship a batch of full blocks, compressed when the session negotiated
/// it and the codec actually wins; returns the payload bytes that
/// crossed the wire and whether the compressed form was used.
fn send_full_batch<T: Transport>(
    ep: &T,
    disk: &TrackedDisk,
    chunk: &[usize],
    compress: bool,
    block_size: usize,
    phase: &'static str,
) -> Result<(u64, bool), SessionError> {
    let payload = read_batch(disk, chunk, block_size);
    let blocks: Vec<u64> = chunk.iter().map(|&b| b as u64).collect();
    if compress {
        let frames = compress_blocks(&payload, block_size);
        if frames.len() < payload.len() {
            let sent = frames.len() as u64;
            send_or(
                ep,
                phase,
                MigMessage::CompressedBlocks {
                    blocks,
                    raw_len: payload.len() as u64,
                    payload: Bytes::from(frames),
                },
            )?;
            return Ok((sent, true));
        }
    }
    let sent = payload.len() as u64;
    send_or(
        ep,
        phase,
        MigMessage::DiskBlocks {
            blocks,
            payload_len: payload.len() as u64,
            payload: Some(payload),
        },
    )?;
    Ok((sent, false))
}

/// Drain a disk worklist into `DiskBlocks` batches, marking each block
/// in the session-shipped set *before* its send is attempted (delivery
/// of an errored send is unknown — assume sent, let the destination's
/// receipt report settle it). On failure the unsent remainder stays in
/// the worklist.
///
/// With `cfg.streams > 1` the worklist is first re-interleaved so
/// consecutive batches rotate across the stream shards; because shipped
/// accounting is per-block and global, ordering never affects
/// correctness or resume.
///
/// On a dedup session each block is fingerprinted first: content the
/// destination provably holds goes as a 16-byte [`MigMessage::BlockRef`]
/// instead of `block_size` bytes, the full batch for everything else is
/// flushed *before* the chunk's references so a reference can reach
/// content shipped in its own chunk. `BlockRefMiss` bounces are drained
/// between batches and re-queued as forced-full sends; a bounce still in
/// flight when this returns is answered from post-copy instead.
fn send_disk_worklist<T: Transport>(
    ep: &T,
    disk: &TrackedDisk,
    worklist: &mut Vec<usize>,
    shipped: &mut FlatBitmap,
    ctx: &mut DedupCtx,
    cfg: &LiveConfig,
    phase: &'static str,
) -> Result<(), SessionError> {
    let block_size = cfg.block_size;
    let batch = cfg.batch.max(1);
    if cfg.streams > 1 && worklist.len() > batch {
        *worklist =
            interleave_streams(worklist, cfg.num_blocks, cfg.streams, batch, &cfg.telemetry);
    }
    let mut misses = Vec::new();
    loop {
        let mut done = 0;
        let res = loop {
            if done >= worklist.len() {
                break Ok(());
            }
            let end = (done + batch).min(worklist.len());
            let chunk = &worklist[done..end];
            for &b in chunk {
                shipped.set(b);
            }
            ctx.wire.bytes_raw += (chunk.len() * block_size) as u64;
            if ctx.dedup {
                // Partition the chunk: blocks whose fingerprint the
                // destination can already resolve become references;
                // intra-chunk duplicates count too, because the full
                // batch is flushed first.
                let mut fulls: Vec<usize> = Vec::new();
                let mut refs: Vec<(u64, u64)> = Vec::new();
                for &b in chunk {
                    let fp = hash_block(&disk.disk().read_block(b));
                    if !ctx.force_full.contains(&b) && ctx.known_remote.contains(&fp) {
                        refs.push((b as u64, fp));
                    } else {
                        ctx.known_remote.insert(fp);
                        fulls.push(b);
                    }
                }
                if !fulls.is_empty() {
                    match send_full_batch(ep, disk, &fulls, ctx.compress, block_size, phase) {
                        Ok((sent, compressed)) => {
                            ctx.wire.bytes_sent += sent;
                            if compressed {
                                ctx.wire.blocks_compressed += fulls.len() as u64;
                            }
                        }
                        Err(e) => break Err(e),
                    }
                }
                let mut failed = None;
                for &(block, fingerprint) in &refs {
                    ctx.wire.bytes_sent += BLOCK_REF_WIRE;
                    ctx.wire.blocks_deduped += 1;
                    if let Err(e) = send_or(ep, phase, MigMessage::BlockRef { block, fingerprint })
                    {
                        failed = Some(e);
                        break;
                    }
                }
                if let Some(e) = failed {
                    break Err(e);
                }
                done = end;
                if let Err(e) = drain_ref_misses(ep, &mut misses, phase) {
                    break Err(e);
                }
            } else {
                match send_full_batch(ep, disk, chunk, ctx.compress, block_size, phase) {
                    Ok((sent, compressed)) => {
                        ctx.wire.bytes_sent += sent;
                        if compressed {
                            ctx.wire.blocks_compressed += chunk.len() as u64;
                        }
                        done = end;
                    }
                    Err(e) => break Err(e),
                }
            }
        };
        worklist.drain(..done);
        res?;
        if ctx.dedup {
            drain_ref_misses(ep, &mut misses, phase)?;
        }
        if misses.is_empty() {
            return Ok(());
        }
        // Bounced references rejoin the worklist as forced-full sends —
        // a re-sent block can never bounce again, so this converges.
        for &b in &misses {
            ctx.force_full.insert(b);
        }
        worklist.append(&mut misses);
    }
}

/// `MemPages` analogue of [`send_disk_worklist`].
fn send_page_worklist<T: Transport>(
    ep: &T,
    ram: &LiveRam,
    worklist: &mut Vec<usize>,
    shipped: &mut FlatBitmap,
    batch: usize,
    phase: &'static str,
) -> Result<(), SessionError> {
    let mut done = 0;
    let res = loop {
        if done >= worklist.len() {
            break Ok(());
        }
        let end = (done + batch.max(1)).min(worklist.len());
        let chunk = &worklist[done..end];
        for &p in chunk {
            shipped.set(p);
        }
        let payload = Bytes::from(ram.read_pages(chunk));
        match ep.send(MigMessage::MemPages {
            pages: chunk.iter().map(|&p| p as u64).collect(),
            payload_len: payload.len() as u64,
            payload: Some(payload),
        }) {
            Ok(()) => done = end,
            Err(e) => break Err(classify(phase, e)),
        }
    };
    worklist.drain(..done);
    res
}

/// Where the source protocol stands; advanced only on confirmed sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SrcPhase {
    DiskPrecopy,
    MemPrecopy,
    Frozen,
    PostCopy,
}

/// All source-side progress, held *outside* any connection so a dead
/// transport loses nothing but in-flight frames.
struct SourceState {
    phase: SrcPhase,
    session_id: u64,
    prepared: bool,
    // Disk pre-copy.
    disk_worklist: Vec<usize>,
    disk_resend: Vec<usize>,
    session_disk_shipped: FlatBitmap,
    iterations: Vec<u64>,
    iter_bm: Arc<AtomicBitmap>,
    tracker: Option<TrackerHandle>,
    converged_at_tick: Option<u64>,
    // Memory pre-copy.
    mem_started: bool,
    mem_worklist: Vec<usize>,
    session_mem_shipped: FlatBitmap,
    mem_iterations: Vec<u64>,
    // Freeze.
    dest_suspended: bool,
    suspended_at: Option<Instant>,
    frozen_bitmap: FlatBitmap,
    frozen_dirty: u64,
    tail_worklist: Vec<usize>,
    frozen_mem_dirty: u64,
    // Post-copy.
    src_bm: FlatBitmap,
    cursor: usize,
    push_complete_sent: bool,
    // Wire optimizations (per-session agreement, run-wide savings).
    ctx: DedupCtx,
    // Accounting.
    ledger: TransferLedger,
    reconnects: u32,
    resume_owed: Vec<u64>,
}

impl SourceState {
    fn new(cfg: &LiveConfig, initial_bitmap: Option<&FlatBitmap>) -> Self {
        let disk_worklist = match initial_bitmap {
            Some(bm) => bm.to_indices(),
            None => (0..cfg.num_blocks).collect(),
        };
        Self {
            phase: SrcPhase::DiskPrecopy,
            session_id: cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            prepared: false,
            disk_worklist,
            disk_resend: Vec::new(),
            session_disk_shipped: FlatBitmap::new(cfg.num_blocks),
            iterations: Vec::new(),
            iter_bm: Arc::new(AtomicBitmap::new(cfg.num_blocks)),
            tracker: None,
            converged_at_tick: None,
            mem_started: false,
            mem_worklist: Vec::new(),
            session_mem_shipped: FlatBitmap::new(cfg.mem_pages),
            mem_iterations: Vec::new(),
            dest_suspended: false,
            suspended_at: None,
            frozen_bitmap: FlatBitmap::new(cfg.num_blocks),
            frozen_dirty: 0,
            tail_worklist: Vec::new(),
            frozen_mem_dirty: 0,
            src_bm: FlatBitmap::new(cfg.num_blocks),
            cursor: 0,
            push_complete_sent: false,
            ctx: DedupCtx::new(),
            ledger: TransferLedger::new(),
            reconnects: 0,
            resume_owed: Vec::new(),
        }
    }
}

struct SourceResult {
    iterations: Vec<u64>,
    mem_iterations: Vec<u64>,
    frozen_mem_dirty: u64,
    frozen_dirty: u64,
    suspended_at: Instant,
    wire: WireStats,
    ledger: TransferLedger,
    reconnects: u32,
    resume_owed: Vec<u64>,
}

/// Drive the source protocol to completion. On failure the error is
/// paired with the partial accounting gathered so far (`Some` once the
/// guest was suspended) — a destination that fails over to peer holders
/// still needs the source's phase statistics for the outcome report.
fn source_protocol<C: Connector>(
    cfg: &LiveConfig,
    disk: &Arc<TrackedDisk>,
    ram: &Arc<LiveRam>,
    mut connector: C,
    ctl: &DriverCtl,
    initial_bitmap: Option<FlatBitmap>,
) -> Result<SourceResult, (MigrationError, Option<Box<SourceResult>>)> {
    let mut st = SourceState::new(cfg, initial_bitmap.as_ref());
    let rec = Arc::clone(&cfg.telemetry);
    rec.record(|| Event::PhaseStart {
        side: Side::Source,
        phase: Phase::DiskPrecopy,
    });
    // "Signal blkback to start monitoring write accesses."
    st.tracker = Some(disk.attach_tracker(Arc::clone(&st.iter_bm), Some(GUEST)));
    disk.enable_tracking();

    let mut attempt: u32 = 0;
    let mut last_failure = String::new();
    let mut outage_start: Option<Instant> = None;
    let result = loop {
        if cfg.retry.exhausted(attempt, outage_start) {
            break Err(MigrationError::RetriesExhausted {
                attempts: attempt,
                last: last_failure,
            });
        }
        if attempt > 0 {
            std::thread::sleep(cfg.retry.backoff);
            st.reconnects += 1;
            rec.record(|| Event::Reconnect {
                side: Side::Source,
                attempt: u64::from(attempt),
            });
        }
        let ep = match connector.connect(attempt) {
            Ok(ep) => ep,
            Err(e) => break Err(e),
        };
        ep.set_telemetry(&rec, Side::Source);
        let session = run_source_session(cfg, disk, ram, &ep, ctl, &mut st, attempt);
        let session_ledger = ep.sent_ledger();
        rec.record(|| Event::TransportBytes {
            side: Side::Source,
            bytes: session_ledger.total(),
        });
        st.ledger.merge(&session_ledger);
        match session {
            Ok(()) => {
                // Completed migrations pass through freeze, which stamps
                // the suspension instant; a missing stamp is a protocol
                // bug, reported as such rather than unwound as a panic.
                let Some(suspended_at) = st.suspended_at else {
                    break Err(MigrationError::Protocol {
                        phase: "freeze-and-copy",
                        detail: "session completed without suspending the guest".into(),
                    });
                };
                break Ok(SourceResult {
                    iterations: std::mem::take(&mut st.iterations),
                    mem_iterations: std::mem::take(&mut st.mem_iterations),
                    frozen_mem_dirty: st.frozen_mem_dirty,
                    frozen_dirty: st.frozen_dirty,
                    suspended_at,
                    wire: st.ctx.wire,
                    ledger: std::mem::take(&mut st.ledger),
                    reconnects: st.reconnects,
                    resume_owed: std::mem::take(&mut st.resume_owed),
                });
            }
            Err(SessionError::Fatal(e)) => break Err(e),
            Err(SessionError::Reconnect(te)) => {
                last_failure = te.to_string();
                outage_start.get_or_insert_with(Instant::now);
                attempt += 1;
            }
        }
    };
    connector.abort();
    match result {
        Ok(r) => Ok(r),
        Err(e) => {
            // A failed migration leaves the guest on the source: stop
            // paying the write-interception cost.
            if let Some(h) = st.tracker.take() {
                disk.detach_tracker(h);
            }
            disk.disable_tracking();
            // A source that died after suspending still hands its phase
            // accounting to a failover outcome.
            let partial = st.suspended_at.map(|suspended_at| {
                Box::new(SourceResult {
                    iterations: std::mem::take(&mut st.iterations),
                    mem_iterations: std::mem::take(&mut st.mem_iterations),
                    frozen_mem_dirty: st.frozen_mem_dirty,
                    frozen_dirty: st.frozen_dirty,
                    suspended_at,
                    wire: st.ctx.wire,
                    ledger: std::mem::take(&mut st.ledger),
                    reconnects: st.reconnects,
                    resume_owed: std::mem::take(&mut st.resume_owed),
                })
            });
            Err((e, partial))
        }
    }
}

/// Handshake + reconcile + drive the protocol to completion (or the next
/// failure) on one connection.
fn run_source_session<T: Transport>(
    cfg: &LiveConfig,
    disk: &Arc<TrackedDisk>,
    ram: &Arc<LiveRam>,
    ep: &T,
    ctl: &DriverCtl,
    st: &mut SourceState,
    attempt: u32,
) -> Result<(), SessionError> {
    send_or(
        ep,
        "handshake",
        MigMessage::SessionHello {
            session_id: st.session_id,
            attempt,
            dedup: cfg.dedup,
            compress: cfg.compress,
        },
    )?;
    let resume = recv_or(ep, "handshake", cfg.retry.phase_timeout)?;
    let MigMessage::ResumeFrom {
        phase: dest_phase,
        dedup: dest_dedup,
        compress: dest_compress,
        disk_bitmap,
        mem_bitmap,
    } = resume
    else {
        return Err(protocol_err(
            "handshake",
            format!("expected ResumeFrom, got {resume:?}"),
        ));
    };
    if attempt == 0 && dest_phase != ResumePhase::AwaitPrepare {
        return Err(protocol_err(
            "handshake",
            format!("destination claims {dest_phase:?} on the initial connection"),
        ));
    }
    // The destination echoes the acceptance it will actually honour;
    // AND-ing with our own offer guards against a peer accepting a
    // feature that was never offered.
    st.ctx
        .reset(cfg.dedup && dest_dedup, cfg.compress && dest_compress);
    if st.ctx.dedup {
        // Dedup-negotiated sessions open with the resident-content
        // summary; the previous session's view was discarded above.
        let summary = recv_or(ep, "handshake", cfg.retry.phase_timeout)?;
        let MigMessage::ContentSummary { fingerprints } = summary else {
            return Err(protocol_err(
                "handshake",
                format!("expected ContentSummary, got {summary:?}"),
            ));
        };
        st.ctx.known_remote = fingerprints.into_iter().collect();
    }
    reconcile_source(cfg, st, attempt, dest_phase, &disk_bitmap, &mem_bitmap)?;

    if !st.prepared {
        send_or(
            ep,
            "prepare",
            MigMessage::PrepareVbd {
                block_size: cfg.block_size as u32,
                num_blocks: cfg.num_blocks as u64,
            },
        )?;
        match recv_or(ep, "prepare", cfg.retry.phase_timeout)? {
            MigMessage::PrepareAck => st.prepared = true,
            other => {
                return Err(protocol_err(
                    "prepare",
                    format!("expected PrepareAck, got {other:?}"),
                ))
            }
        }
    }

    loop {
        match st.phase {
            SrcPhase::DiskPrecopy => source_disk_precopy(cfg, disk, ep, ctl, st)?,
            SrcPhase::MemPrecopy => source_mem_precopy(cfg, disk, ram, ep, st)?,
            SrcPhase::Frozen => source_freeze(cfg, disk, ram, ep, ctl, st)?,
            SrcPhase::PostCopy => return source_post_copy(cfg, disk, ep, st),
        }
    }
}

/// Fold the destination's receipt report into the source state: decide
/// what the failed session left owed, and where to restart.
fn reconcile_source(
    cfg: &LiveConfig,
    st: &mut SourceState,
    attempt: u32,
    dest_phase: ResumePhase,
    disk_bitmap: &Bytes,
    mem_bitmap: &Bytes,
) -> Result<(), SessionError> {
    // Only actual resumes contribute a resume_owed entry; the initial
    // handshake has nothing owed by construction.
    let record_owed = attempt > 0;
    match dest_phase {
        ResumePhase::AwaitPrepare => {
            if st.prepared {
                return Err(protocol_err(
                    "handshake",
                    "destination lost its prepared state".to_string(),
                ));
            }
            // Nothing the destination ever acknowledged: everything the
            // failed sessions attempted rejoins the worklist.
            let owed = st.session_disk_shipped.to_indices();
            if record_owed {
                st.resume_owed.push(owed.len() as u64);
            }
            st.disk_worklist = merged_worklist(cfg.num_blocks, owed, &st.disk_worklist);
        }
        ResumePhase::Precopy | ResumePhase::Frozen => {
            let got_blocks = decode_bitmap("handshake", disk_bitmap)?;
            let got_pages = decode_bitmap("handshake", mem_bitmap)?;
            let disk_owed = owed_indices(&st.session_disk_shipped, &got_blocks);
            let mem_owed = owed_indices(&st.session_mem_shipped, &got_pages);
            if record_owed {
                st.resume_owed.push(disk_owed.len() as u64);
            }
            if dest_phase == ResumePhase::Frozen
                && matches!(st.phase, SrcPhase::DiskPrecopy | SrcPhase::MemPrecopy)
            {
                return Err(protocol_err(
                    "handshake",
                    "destination is frozen but the source never suspended".to_string(),
                ));
            }
            match st.phase {
                SrcPhase::DiskPrecopy => {
                    st.disk_worklist =
                        merged_worklist(cfg.num_blocks, disk_owed, &st.disk_worklist);
                }
                SrcPhase::MemPrecopy => {
                    st.disk_resend = merged_worklist(cfg.num_blocks, disk_owed, &st.disk_resend);
                    st.mem_worklist = merged_worklist(cfg.mem_pages, mem_owed, &st.mem_worklist);
                }
                SrcPhase::Frozen | SrcPhase::PostCopy => {
                    st.disk_resend = merged_worklist(cfg.num_blocks, disk_owed, &st.disk_resend);
                    st.tail_worklist = merged_worklist(cfg.mem_pages, mem_owed, &st.tail_worklist);
                    // Post-copy progress is void if the destination never
                    // resumed: the freeze payloads must go again, and the
                    // push set reverts to the full frozen bitmap (re-read
                    // at push time, so content stays current).
                    st.phase = SrcPhase::Frozen;
                    st.dest_suspended = dest_phase == ResumePhase::Frozen;
                }
            }
        }
        ResumePhase::PostCopy => {
            if st.phase != SrcPhase::PostCopy {
                return Err(protocol_err(
                    "handshake",
                    "destination resumed but the source never shipped the bitmap".to_string(),
                ));
            }
            // The destination's still-needed set is authoritative.
            st.src_bm = decode_bitmap("handshake", disk_bitmap)?;
            st.cursor = 0;
            st.push_complete_sent = false;
            if record_owed {
                st.resume_owed.push(st.src_bm.count_ones() as u64);
            }
        }
    }
    st.session_disk_shipped.clear_all();
    st.session_mem_shipped.clear_all();
    Ok(())
}

fn source_disk_precopy<T: Transport>(
    cfg: &LiveConfig,
    disk: &Arc<TrackedDisk>,
    ep: &T,
    ctl: &DriverCtl,
    st: &mut SourceState,
) -> Result<(), SessionError> {
    // Iterative pre-copy. IM: iteration 1 ships only the inherited
    // bitmap's blocks (or everything on a primary migration).
    loop {
        let iter = st.iterations.len() as u32 + 1;
        let count = st.disk_worklist.len() as u64;
        send_disk_worklist(
            ep,
            disk,
            &mut st.disk_worklist,
            &mut st.session_disk_shipped,
            &mut st.ctx,
            cfg,
            "disk pre-copy",
        )?;
        st.iterations.push(count);
        let snap = st.iter_bm.snapshot_and_clear();
        let dirty = snap.count_ones();
        cfg.telemetry.record(|| Event::Iteration {
            side: Side::Source,
            resource: Resource::Disk,
            index: u64::from(iter),
            units_sent: count,
            dirty_at_end: dirty as u64,
        });
        cfg.telemetry.record(|| Event::BitmapSnapshot {
            side: Side::Source,
            set_bits: dirty as u64,
        });
        if dirty <= cfg.dirty_threshold || iter >= cfg.max_iterations {
            // The residual set is NOT sent: it becomes the freeze-phase
            // bitmap (the paper ships the bitmap, not the blocks).
            st.frozen_bitmap = snap;
            st.converged_at_tick = Some(ctl.ticks());
            st.phase = SrcPhase::MemPrecopy;
            cfg.telemetry.record(|| Event::PhaseEnd {
                side: Side::Source,
                phase: Phase::DiskPrecopy,
            });
            cfg.telemetry.record(|| Event::PhaseStart {
                side: Side::Source,
                phase: Phase::MemPrecopy,
            });
            return Ok(());
        }
        st.disk_worklist = snap.to_indices();
    }
}

fn source_mem_precopy<T: Transport>(
    cfg: &LiveConfig,
    disk: &Arc<TrackedDisk>,
    ram: &Arc<LiveRam>,
    ep: &T,
    st: &mut SourceState,
) -> Result<(), SessionError> {
    // Converged disk content lost by a failed session goes first; the
    // destination applies DiskBlocks the same way in every pre-freeze
    // state.
    send_disk_worklist(
        ep,
        disk,
        &mut st.disk_resend,
        &mut st.session_disk_shipped,
        &mut st.ctx,
        cfg,
        "memory pre-copy",
    )?;
    if !st.mem_started {
        ram.enable_tracking();
        st.mem_worklist = (0..cfg.mem_pages).collect();
        st.mem_started = true;
    }
    // Memory pre-copy (disk writes keep accumulating in iter_bm for the
    // freeze bitmap): iteration 1 ships every page, later iterations ship
    // the pages dirtied meanwhile, Xen-style.
    loop {
        let iter = st.mem_iterations.len() as u32 + 1;
        let count = st.mem_worklist.len() as u64;
        send_page_worklist(
            ep,
            ram,
            &mut st.mem_worklist,
            &mut st.session_mem_shipped,
            cfg.mem_batch,
            "memory pre-copy",
        )?;
        st.mem_iterations.push(count);
        let dirty = ram.drain_dirty();
        let remaining = dirty.count_ones();
        cfg.telemetry.record(|| Event::Iteration {
            side: Side::Source,
            resource: Resource::Memory,
            index: u64::from(iter),
            units_sent: count,
            dirty_at_end: remaining as u64,
        });
        if remaining <= cfg.mem_dirty_threshold || iter >= cfg.max_mem_iterations {
            // The set drained at the convergence decision has NOT been
            // sent; it must ride into the freeze tail or those pages are
            // silently lost.
            st.tail_worklist = merged_worklist(cfg.mem_pages, dirty.to_indices(), &[]);
            st.phase = SrcPhase::Frozen;
            return Ok(());
        }
        st.mem_worklist = dirty.to_indices();
    }
}

fn source_freeze<T: Transport>(
    cfg: &LiveConfig,
    disk: &Arc<TrackedDisk>,
    ram: &Arc<LiveRam>,
    ep: &T,
    ctl: &DriverCtl,
    st: &mut SourceState,
) -> Result<(), SessionError> {
    // First entry: actually suspend the guest and seal the bitmaps. On
    // re-entry after a reconnect the guest is already suspended and all
    // frozen content is stable — resending any of it is idempotent.
    if st.suspended_at.is_none() {
        if cfg.min_guest_ticks > 0 {
            // Let the guest run: guarantees a writing workload lands
            // blocks in the freeze bitmap, deterministically.
            let target = st.converged_at_tick.unwrap_or(0) + cfg.min_guest_ticks;
            let guard = Instant::now() + Duration::from_secs(10);
            while ctl.ticks() < target && Instant::now() < guard {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let suspended_at = ctl.request_suspend();
        st.suspended_at = Some(suspended_at);
        // Stamped at the same instant the guest stopped, so the journal's
        // freeze span reproduces the reported downtime exactly.
        cfg.telemetry
            .record_at_instant(suspended_at, || Event::PhaseEnd {
                side: Side::Source,
                phase: Phase::MemPrecopy,
            });
        cfg.telemetry
            .record_at_instant(suspended_at, || Event::PhaseStart {
                side: Side::Source,
                phase: Phase::Freeze,
            });
        cfg.telemetry
            .record_at_instant(suspended_at, || Event::Suspended { side: Side::Source });
        // Fold in the writes that raced with the last drains.
        let mut frozen = std::mem::replace(&mut st.frozen_bitmap, FlatBitmap::new(0));
        frozen.union_with(&st.iter_bm.snapshot_and_clear());
        if let Some(h) = st.tracker.take() {
            disk.detach_tracker(h);
        }
        st.frozen_dirty = frozen.count_ones() as u64;
        st.frozen_bitmap = frozen;
        let tail_extra = ram.drain_dirty();
        st.tail_worklist =
            merged_worklist(cfg.mem_pages, tail_extra.to_indices(), &st.tail_worklist);
        st.frozen_mem_dirty = st.tail_worklist.len() as u64;
        ram.disable_tracking();
    }
    // Pre-copy disk content still owed from a failed session.
    send_disk_worklist(
        ep,
        disk,
        &mut st.disk_resend,
        &mut st.session_disk_shipped,
        &mut st.ctx,
        cfg,
        "freeze",
    )?;
    if !st.dest_suspended {
        send_or(ep, "freeze", MigMessage::Suspended)?;
        st.dest_suspended = true;
    }
    // Ship the memory tail, the CPU context and the disk bitmap (not the
    // blocks).
    send_page_worklist(
        ep,
        ram,
        &mut st.tail_worklist,
        &mut st.session_mem_shipped,
        cfg.mem_batch,
        "freeze",
    )?;
    send_or(
        ep,
        "freeze",
        MigMessage::CpuState {
            payload_len: 8 * 1024,
            payload: None,
        },
    )?;
    if cfg.multisource {
        // The guest is suspended: the frozen blocks' content is final,
        // so these fingerprints anchor peer-holder verification for the
        // whole post-copy phase (source-death failover). Re-sent on
        // freeze re-entry like every other freeze payload — idempotent.
        let blocks: Vec<u64> = st.frozen_bitmap.iter_set().map(|b| b as u64).collect();
        let fingerprints: Vec<u64> = st
            .frozen_bitmap
            .iter_set()
            .map(|b| hash_block(&disk.disk().read_block(b)))
            .collect();
        send_or(
            ep,
            "freeze",
            MigMessage::BlockManifest {
                blocks,
                fingerprints,
            },
        )?;
    }
    let encoded = Bytes::from(ser::encode(&st.frozen_bitmap));
    cfg.telemetry.record(|| Event::BitmapEncoded {
        set_bits: st.frozen_bitmap.count_ones() as u64,
        encoded_bytes: encoded.len() as u64,
    });
    send_or(ep, "freeze", MigMessage::Bitmap { encoded })?;
    st.src_bm = st.frozen_bitmap.clone();
    st.cursor = 0;
    st.push_complete_sent = false;
    st.phase = SrcPhase::PostCopy;
    Ok(())
}

/// Best-effort ack: the destination is provably synced; if the ack is
/// lost it completes on its own evidence. The loss is still *observed* —
/// it increments `live.ack_lost` instead of vanishing in a `let _ =`.
fn send_complete_ack<T: Transport>(cfg: &LiveConfig, ep: &T) {
    match ep.send(MigMessage::CompleteAck) {
        Ok(()) => {}
        Err(_) if cfg.telemetry.is_enabled() => {
            cfg.telemetry.metrics().counter("live.ack_lost").add(1);
        }
        Err(_) => {}
    }
}

fn source_post_copy<T: Transport>(
    cfg: &LiveConfig,
    disk: &Arc<TrackedDisk>,
    ep: &T,
    st: &mut SourceState,
) -> Result<(), SessionError> {
    // Push continuously, answer pulls preferentially.
    let answer_pull = |st: &mut SourceState, block: u64| -> Result<(), SessionError> {
        let b = block as usize;
        let payload = read_batch(disk, &[b], cfg.block_size);
        st.src_bm.clear(b);
        send_or(
            ep,
            "post-copy",
            MigMessage::PostCopyBlock {
                block,
                pulled: true,
                payload_len: payload.len() as u64,
                payload: Some(payload),
            },
        )
    };
    let mut last_progress = Instant::now();
    loop {
        // Answer any queued requests first.
        loop {
            match ep.try_recv() {
                Ok(MigMessage::PullRequest { block }) => {
                    last_progress = Instant::now();
                    answer_pull(st, block)?;
                }
                // A reference bounce that was still in flight when
                // pre-copy ended: the destination unioned the block into
                // its still-needed set, so answer it like a pull.
                Ok(MigMessage::BlockRefMiss { block }) => {
                    last_progress = Instant::now();
                    answer_pull(st, block)?;
                }
                Ok(MigMessage::MigrationComplete) => {
                    send_complete_ack(cfg, ep);
                    return Ok(());
                }
                Ok(MigMessage::Resumed) => {} // downtime over; informational
                Ok(other) => {
                    return Err(protocol_err(
                        "post-copy",
                        format!("unexpected message at source: {other:?}"),
                    ))
                }
                Err(TransportError::Empty) => break,
                Err(e) => return Err(classify("post-copy", e)),
            }
        }
        // Then push the next block.
        match st.src_bm.next_set_from(st.cursor) {
            Some(b) => {
                st.src_bm.clear(b);
                st.cursor = b + 1;
                let payload = read_batch(disk, &[b], cfg.block_size);
                send_or(
                    ep,
                    "post-copy",
                    MigMessage::PostCopyBlock {
                        block: b as u64,
                        pulled: false,
                        payload_len: payload.len() as u64,
                        payload: Some(payload),
                    },
                )?;
            }
            None if st.cursor > 0 && !st.src_bm.none_set() => {
                st.cursor = 0; // wrap to catch pull-cleared gaps... none left
            }
            None => {
                if !st.push_complete_sent {
                    send_or(ep, "post-copy", MigMessage::PushComplete)?;
                    st.push_complete_sent = true;
                }
                // Nothing to push: wait for pulls or completion.
                match ep.recv_timeout(Duration::from_millis(20)) {
                    Ok(MigMessage::PullRequest { block }) => {
                        last_progress = Instant::now();
                        answer_pull(st, block)?;
                    }
                    Ok(MigMessage::BlockRefMiss { block }) => {
                        last_progress = Instant::now();
                        answer_pull(st, block)?;
                    }
                    Ok(MigMessage::MigrationComplete) => {
                        send_complete_ack(cfg, ep);
                        return Ok(());
                    }
                    Ok(MigMessage::Resumed) => {}
                    Ok(other) => {
                        return Err(protocol_err(
                            "post-copy",
                            format!("unexpected message at source: {other:?}"),
                        ))
                    }
                    Err(TransportError::Timeout) => {
                        if last_progress.elapsed() > cfg.retry.phase_timeout {
                            return Err(SessionError::Fatal(MigrationError::Timeout {
                                phase: "post-copy",
                                waited: cfg.retry.phase_timeout,
                            }));
                        }
                    }
                    Err(e) => return Err(classify("post-copy", e)),
                }
            }
        }
    }
}

struct DestResult {
    pushed: u64,
    pulled: u64,
    dropped: u64,
    stalled_reads: u64,
    resumed_at: Instant,
    new_bitmap: FlatBitmap,
    ledger: TransferLedger,
    failovers: u32,
    failover_peers: Vec<PeerBytes>,
}

fn apply_blocks(
    disk: &TrackedDisk,
    blocks: &[u64],
    payload: &Bytes,
    block_size: usize,
) -> Result<(), SessionError> {
    if payload.len() != blocks.len() * block_size {
        return Err(protocol_err(
            "apply",
            format!(
                "payload of {} bytes for {} blocks of {block_size}",
                payload.len(),
                blocks.len()
            ),
        ));
    }
    for (i, &b) in blocks.iter().enumerate() {
        disk.disk()
            .write_block(b as usize, &payload[i * block_size..(i + 1) * block_size]);
    }
    Ok(())
}

/// All destination-side progress, held outside any connection.
struct DestState {
    phase: ResumePhase,
    session_seen: Option<u64>,
    session_got_blocks: FlatBitmap,
    session_got_pages: FlatBitmap,
    /// This session's negotiated flags (re-derived at every handshake).
    dedup: bool,
    compress: bool,
    /// Fingerprint index over resident content, maintained exactly
    /// across every applied block while dedup is active.
    index: Option<ContentIndex>,
    /// Blocks whose *latest* delivery attempt was a reference that could
    /// not be resolved; folded into the still-needed bitmap at freeze so
    /// post-copy recovers them even if the bounce answer raced the
    /// phase change.
    ref_missing: FlatBitmap,
    /// Freeze-time fingerprint manifest (block → `hash_block`), the
    /// verification anchors for a peer-holder failover. Populated by
    /// [`MigMessage::BlockManifest`] on multi-source runs.
    manifest: BTreeMap<usize, u64>,
    /// Source-death failovers performed (0 or 1).
    failovers: u32,
    /// Per-peer blocks and bytes applied during failover.
    failover_peers: Vec<PeerBytes>,
    transferred: Option<Arc<AtomicBitmap>>,
    new_bm: Option<Arc<AtomicBitmap>>,
    dest_io: Option<Arc<DestIo>>,
    pull_tx: Sender<usize>,
    pull_rx: Receiver<usize>,
    requested: HashSet<usize>,
    pushed: u64,
    pulled: u64,
    dropped: u64,
    push_done: bool,
    complete_sent: bool,
    resumed_at: Option<Instant>,
    ledger: TransferLedger,
}

impl DestState {
    fn new(cfg: &LiveConfig) -> Self {
        let (pull_tx, pull_rx) = unbounded();
        Self {
            phase: ResumePhase::AwaitPrepare,
            session_seen: None,
            session_got_blocks: FlatBitmap::new(cfg.num_blocks),
            session_got_pages: FlatBitmap::new(cfg.mem_pages),
            dedup: false,
            compress: false,
            index: None,
            ref_missing: FlatBitmap::new(cfg.num_blocks),
            manifest: BTreeMap::new(),
            failovers: 0,
            failover_peers: Vec::new(),
            transferred: None,
            new_bm: None,
            dest_io: None,
            pull_tx,
            pull_rx,
            requested: HashSet::new(),
            pushed: 0,
            pulled: 0,
            dropped: 0,
            push_done: false,
            complete_sent: false,
            resumed_at: None,
            ledger: TransferLedger::new(),
        }
    }
}

/// Source-death failover: complete post-copy from surviving peer
/// holders. Eligible only when the run is multi-source, peers exist,
/// and the guest already runs here (post-copy) — otherwise, or if some
/// owed block survives nowhere, the original `dead` error is returned.
///
/// Every still-owed block is fetched over a per-peer blockstore
/// session and verified against the freeze-time manifest fingerprint
/// before it is applied; blocks superseded by local guest writes in
/// the meantime are dropped exactly like late source pushes. Holders
/// are tried in declaration order, each seeing only what its
/// predecessors missed.
fn dest_failover(
    cfg: &LiveConfig,
    disk: &Arc<TrackedDisk>,
    st: &mut DestState,
    dead: MigrationError,
) -> Result<(), MigrationError> {
    let eligible = cfg.multisource
        && !cfg.peers.is_empty()
        && st.phase == ResumePhase::PostCopy
        && st.resumed_at.is_some();
    let Some(transferred) = st.transferred.as_ref().filter(|_| eligible) else {
        return Err(dead);
    };
    let transferred = Arc::clone(transferred);
    let owed = transferred.snapshot();
    cfg.telemetry.record(|| Event::SourceFailover {
        side: Side::Destination,
        owed_blocks: owed.count_ones() as u64,
        peers: cfg.peers.len() as u64,
    });
    st.failovers += 1;
    // Owed blocks absent from the manifest have no verification anchor
    // and cannot be fetched (only unresolved dedup bounces can end up
    // here); they stay owed and fail the run below.
    let mut wants: Vec<BlockWant> = owed
        .iter_set()
        .filter_map(|b| {
            st.manifest.get(&b).map(|&fp| BlockWant {
                block: b as u64,
                fingerprint: fp,
                generation: 0,
            })
        })
        .collect();
    let dest_io = st.dest_io.clone();
    let mut dropped = 0u64;
    for peer in &cfg.peers {
        if wants.is_empty() {
            break;
        }
        let (mine, theirs) = duplex();
        let serve_disk = Arc::clone(&peer.disk);
        let server = std::thread::spawn(move || {
            let holder = PeerDiskSource { disk: serve_disk };
            serve_blocks(&theirs, &holder)
        });
        let mut applied = 0u64;
        let outcome = fetch_blocks(&mine, &wants, cfg.num_blocks, &mut |b, payload| {
            let b = b as usize;
            match payload {
                // Verified content for a block still owed: apply it and
                // wake any guest read parked on it.
                Some(data) if transferred.get(b) => {
                    disk.disk().write_block(b, data);
                    transferred.clear(b);
                    applied += 1;
                    if let Some(io) = &dest_io {
                        io.notify_block();
                    }
                }
                // Superseded by a local write while the fetch was in
                // flight: drop, like a late source push.
                Some(_) => dropped += 1,
                None => {}
            }
        });
        st.ledger.merge(&mine.sent_ledger());
        drop(mine);
        // The serve side's byte count is advisory (it includes payloads
        // a local write later superseded), and a peer link that died
        // mid-session — or a panicked serve thread — leaves whatever it
        // failed to serve set in `transferred`, rolling to the next
        // holder. Either way the join result carries nothing actionable.
        let _joined: Result<_, _> = server.join();
        if applied > 0 {
            cfg.telemetry.record(|| Event::PeerFetch {
                side: Side::Destination,
                peer: peer.host,
                blocks: applied,
                bytes: applied * cfg.block_size as u64,
            });
            st.failover_peers.push(PeerBytes {
                host: peer.host,
                blocks: applied,
                bytes: applied * cfg.block_size as u64,
            });
        }
        // Blocks this holder missed (or that died with a failed link)
        // are still set in `transferred` and stay in the next holder's
        // want list.
        debug_assert!(outcome.got.count_ones() as u64 >= applied);
        wants.retain(|w| transferred.get(w.block as usize));
    }
    st.dropped += dropped;
    if transferred.count_ones() == 0 {
        // The image is complete on local evidence; there is no source
        // left to exchange MigrationComplete/CompleteAck with.
        st.complete_sent = true;
        Ok(())
    } else {
        Err(dead)
    }
}

fn dest_protocol<C: Connector>(
    cfg: &LiveConfig,
    disk: &Arc<TrackedDisk>,
    ram: &Arc<LiveRam>,
    mut connector: C,
    ctl: &DriverCtl,
) -> Result<DestResult, MigrationError> {
    let mut st = DestState::new(cfg);
    let rec = Arc::clone(&cfg.telemetry);
    let mut attempt: u32 = 0;
    let mut last_failure = String::new();
    let mut outage_start: Option<Instant> = None;
    let result = loop {
        if cfg.retry.exhausted(attempt, outage_start) {
            let exhausted = MigrationError::RetriesExhausted {
                attempts: attempt,
                last: last_failure,
            };
            // The source is dead for good. If the guest already runs
            // here, the still-owed blocks may survive on peer holders.
            break dest_failover(cfg, disk, &mut st, exhausted);
        }
        if attempt > 0 {
            std::thread::sleep(cfg.retry.backoff);
            rec.record(|| Event::Reconnect {
                side: Side::Destination,
                attempt: u64::from(attempt),
            });
        }
        let ep = match connector.connect(attempt) {
            Ok(ep) => ep,
            // The source will never reconnect. If we already announced
            // full sync, the lost message was only the ack: the data here
            // is complete and the migration succeeded.
            Err(_) if st.complete_sent => break Ok(()),
            // It may have aborted before our own budget ran out (its
            // budget exhausted first): same situation, same failover.
            Err(e) => break dest_failover(cfg, disk, &mut st, e),
        };
        ep.set_telemetry(&rec, Side::Destination);
        let session = run_dest_session(cfg, disk, ram, &ep, ctl, &mut st);
        let session_ledger = ep.sent_ledger();
        rec.record(|| Event::TransportBytes {
            side: Side::Destination,
            bytes: session_ledger.total(),
        });
        st.ledger.merge(&session_ledger);
        match session {
            Ok(()) => break Ok(()),
            Err(SessionError::Fatal(e)) => break Err(e),
            Err(SessionError::Reconnect(_)) if st.complete_sent => break Ok(()),
            Err(SessionError::Reconnect(te)) => {
                last_failure = te.to_string();
                outage_start.get_or_insert_with(Instant::now);
                attempt += 1;
            }
        }
    };
    connector.abort();
    match result {
        Ok(()) => {
            disk.disable_tracking();
            rec.record(|| Event::PhaseEnd {
                side: Side::Destination,
                phase: Phase::PostCopy,
            });
            // Completion implies the guest resumed here, which populates
            // all three of these; a gap is a protocol bug, not a panic.
            match (&st.dest_io, st.resumed_at, &st.new_bm) {
                (Some(dest_io), Some(resumed_at), Some(new_bm)) => {
                    let (stalled_reads, _) = dest_io.stall_stats();
                    Ok(DestResult {
                        pushed: st.pushed,
                        pulled: st.pulled,
                        dropped: st.dropped,
                        stalled_reads,
                        resumed_at,
                        new_bitmap: new_bm.snapshot(),
                        ledger: std::mem::take(&mut st.ledger),
                        failovers: st.failovers,
                        failover_peers: std::mem::take(&mut st.failover_peers),
                    })
                }
                _ => Err(MigrationError::Protocol {
                    phase: "resume",
                    detail: "session completed without resuming the guest".into(),
                }),
            }
        }
        Err(e) => {
            // Unpark any guest reads stalled on pulls that will never be
            // answered, so the driver can be stopped and diagnosed.
            if let Some(io) = &st.dest_io {
                io.poison();
            }
            Err(e)
        }
    }
}

fn run_dest_session<T: Transport>(
    cfg: &LiveConfig,
    disk: &Arc<TrackedDisk>,
    ram: &Arc<LiveRam>,
    ep: &T,
    ctl: &DriverCtl,
    st: &mut DestState,
) -> Result<(), SessionError> {
    let hello = recv_or(ep, "handshake", cfg.retry.phase_timeout)?;
    let MigMessage::SessionHello {
        session_id,
        dedup: offer_dedup,
        compress: offer_compress,
        ..
    } = hello
    else {
        return Err(protocol_err(
            "handshake",
            format!("expected SessionHello, got {hello:?}"),
        ));
    };
    // References are only valid before the guest resumes here (local
    // writes would invalidate the content index), so a post-copy resume
    // declines dedup outright. Compression needs no index and stays
    // available (post-copy pushes are uncompressed anyway).
    st.dedup = cfg.dedup && offer_dedup && st.phase != ResumePhase::PostCopy;
    st.compress = cfg.compress && offer_compress;
    match st.session_seen {
        None => st.session_seen = Some(session_id),
        Some(seen) if seen == session_id => {}
        Some(seen) => {
            return Err(protocol_err(
                "handshake",
                format!("session {session_id:#x} reconnected into session {seen:#x}"),
            ))
        }
    }
    // Report what the last session actually delivered (during pre-copy
    // and freeze) or what is still needed (during post-copy), then reset
    // the per-session receipt ledgers for this connection.
    let (disk_bm, mem_bm) = match st.phase {
        ResumePhase::AwaitPrepare => (Bytes::new(), Bytes::new()),
        ResumePhase::Precopy | ResumePhase::Frozen => (
            Bytes::from(ser::encode(&st.session_got_blocks)),
            Bytes::from(ser::encode(&st.session_got_pages)),
        ),
        ResumePhase::PostCopy => {
            let Some(transferred) = st.transferred.as_ref() else {
                return Err(protocol_err(
                    "handshake",
                    "post-copy resume state lost its transfer bitmap".into(),
                ));
            };
            (
                Bytes::from(ser::encode(&transferred.snapshot())),
                Bytes::from(ser::encode(&FlatBitmap::new(0))),
            )
        }
    };
    send_or(
        ep,
        "handshake",
        MigMessage::ResumeFrom {
            phase: st.phase,
            dedup: st.dedup,
            compress: st.compress,
            disk_bitmap: disk_bm,
            mem_bitmap: mem_bm,
        },
    )?;
    st.session_got_blocks.clear_all();
    st.session_got_pages.clear_all();
    if st.dedup {
        // Open the dedup session with a fresh summary of resident
        // content: the index is rebuilt from the disk as it stands, so
        // a resumed source re-validates every assumption instead of
        // trusting the previous session's view.
        let mut fps = Vec::with_capacity(cfg.num_blocks);
        for b in 0..cfg.num_blocks {
            fps.push(hash_block(&disk.disk().read_block(b)));
        }
        let index = ContentIndex::from_fps(fps);
        send_or(
            ep,
            "handshake",
            MigMessage::ContentSummary {
                fingerprints: index.fingerprints(),
            },
        )?;
        st.index = Some(index);
    } else {
        st.index = None;
    }

    if st.phase == ResumePhase::AwaitPrepare {
        // Provision the VBD.
        match recv_or(ep, "prepare", cfg.retry.phase_timeout)? {
            MigMessage::PrepareVbd {
                block_size,
                num_blocks,
            } => {
                if block_size as usize != cfg.block_size || num_blocks as usize != cfg.num_blocks {
                    return Err(protocol_err(
                        "prepare",
                        format!("geometry mismatch: {block_size} B × {num_blocks} blocks"),
                    ));
                }
            }
            other => {
                return Err(protocol_err(
                    "prepare",
                    format!("expected PrepareVbd, got {other:?}"),
                ))
            }
        }
        send_or(ep, "prepare", MigMessage::PrepareAck)?;
        st.phase = ResumePhase::Precopy;
    }

    if st.phase == ResumePhase::Precopy {
        dest_precopy(cfg, disk, ram, ep, st)?;
    }
    if st.phase == ResumePhase::Frozen {
        dest_freeze(cfg, disk, ram, ep, st)?;
    }
    dest_post_copy(cfg, disk, ram, ep, ctl, st)
}

/// Apply a batch of full blocks at the destination: write the bytes,
/// mark the per-session receipt bitmap, and — on a dedup session — keep
/// the content index exact by recording each block's new fingerprint.
fn dest_apply_full(
    st: &mut DestState,
    disk: &TrackedDisk,
    blocks: &[u64],
    payload: &Bytes,
    block_size: usize,
) -> Result<(), SessionError> {
    apply_blocks(disk, blocks, payload, block_size)?;
    for (i, &b) in blocks.iter().enumerate() {
        let b = b as usize;
        st.session_got_blocks.set(b);
        st.ref_missing.clear(b);
        if let Some(ix) = st.index.as_mut() {
            ix.record(
                b,
                hash_block(&payload[i * block_size..(i + 1) * block_size]),
            );
        }
    }
    Ok(())
}

/// Materialize a content reference from a resident block. The resolved
/// candidate is re-hashed before use, so an index gone stale under any
/// hash behaviour degrades to a [`MigMessage::BlockRefMiss`] bounce and
/// an eventual full resend — never to a wrong image.
fn dest_apply_ref<T: Transport>(
    st: &mut DestState,
    disk: &TrackedDisk,
    ep: &T,
    block: u64,
    fingerprint: u64,
    phase: &'static str,
) -> Result<(), SessionError> {
    let b = block as usize;
    let data = st
        .index
        .as_ref()
        .and_then(|ix| ix.resolve(fingerprint))
        .map(|holder| disk.disk().read_block(holder))
        .filter(|data| hash_block(data) == fingerprint);
    match data {
        Some(data) => {
            disk.disk().write_block(b, &data);
            st.session_got_blocks.set(b);
            st.ref_missing.clear(b);
            if let Some(ix) = st.index.as_mut() {
                ix.record(b, fingerprint);
            }
        }
        None => {
            st.ref_missing.set(b);
            send_or(ep, phase, MigMessage::BlockRefMiss { block })?;
        }
    }
    Ok(())
}

/// Decode a compressed batch back to raw block bytes, validating the
/// advertised raw length.
fn decode_compressed(
    blocks: &[u64],
    raw_len: u64,
    payload: &Bytes,
    block_size: usize,
    phase: &'static str,
) -> Result<Bytes, SessionError> {
    let raw = decompress_blocks(payload, blocks.len(), block_size)
        .map_err(|e| protocol_err(phase, format!("undecodable compressed batch: {e:?}")))?;
    if raw.len() as u64 != raw_len {
        return Err(protocol_err(
            phase,
            format!(
                "compressed batch declared {raw_len} raw bytes, decoded {}",
                raw.len()
            ),
        ));
    }
    Ok(Bytes::from(raw))
}

fn dest_precopy<T: Transport>(
    cfg: &LiveConfig,
    disk: &Arc<TrackedDisk>,
    ram: &Arc<LiveRam>,
    ep: &T,
    st: &mut DestState,
) -> Result<(), SessionError> {
    // Apply incoming block and page batches until the source suspends.
    loop {
        match recv_or(ep, "pre-copy", cfg.retry.phase_timeout)? {
            MigMessage::DiskBlocks {
                blocks,
                payload: Some(payload),
                ..
            } => {
                dest_apply_full(st, disk, &blocks, &payload, cfg.block_size)?;
            }
            MigMessage::CompressedBlocks {
                blocks,
                raw_len,
                payload,
            } => {
                let raw =
                    decode_compressed(&blocks, raw_len, &payload, cfg.block_size, "pre-copy")?;
                dest_apply_full(st, disk, &blocks, &raw, cfg.block_size)?;
            }
            MigMessage::BlockRef { block, fingerprint } => {
                dest_apply_ref(st, disk, ep, block, fingerprint, "pre-copy")?;
            }
            MigMessage::MemPages {
                pages,
                payload: Some(payload),
                ..
            } => {
                let idx: Vec<usize> = pages.iter().map(|&p| p as usize).collect();
                ram.apply_pages(&idx, &payload);
                for &p in &idx {
                    st.session_got_pages.set(p);
                }
            }
            MigMessage::Suspended => {
                st.phase = ResumePhase::Frozen;
                return Ok(());
            }
            other => {
                return Err(protocol_err(
                    "pre-copy",
                    format!("unexpected message at destination: {other:?}"),
                ))
            }
        }
    }
}

fn dest_freeze<T: Transport>(
    cfg: &LiveConfig,
    disk: &Arc<TrackedDisk>,
    ram: &Arc<LiveRam>,
    ep: &T,
    st: &mut DestState,
) -> Result<(), SessionError> {
    // Freeze payloads: the memory tail, the CPU context, the block-bitmap.
    // Re-sent pre-copy blocks (lost by a failed session) and a duplicate
    // `Suspended` marker are accepted too — frozen content is stable, so
    // applying any of it twice is harmless.
    let transferred_flat = loop {
        match recv_or(ep, "freeze", cfg.retry.phase_timeout)? {
            MigMessage::MemPages {
                pages,
                payload: Some(payload),
                ..
            } => {
                let idx: Vec<usize> = pages.iter().map(|&p| p as usize).collect();
                ram.apply_pages(&idx, &payload);
                for &p in &idx {
                    st.session_got_pages.set(p);
                }
            }
            MigMessage::DiskBlocks {
                blocks,
                payload: Some(payload),
                ..
            } => {
                dest_apply_full(st, disk, &blocks, &payload, cfg.block_size)?;
            }
            MigMessage::CompressedBlocks {
                blocks,
                raw_len,
                payload,
            } => {
                let raw = decode_compressed(&blocks, raw_len, &payload, cfg.block_size, "freeze")?;
                dest_apply_full(st, disk, &blocks, &raw, cfg.block_size)?;
            }
            MigMessage::BlockRef { block, fingerprint } => {
                dest_apply_ref(st, disk, ep, block, fingerprint, "freeze")?;
            }
            MigMessage::CpuState { .. } | MigMessage::Suspended => {}
            MigMessage::BlockManifest {
                blocks,
                fingerprints,
            } => {
                for (&b, &fp) in blocks.iter().zip(fingerprints.iter()) {
                    st.manifest.insert(b as usize, fp);
                }
            }
            MigMessage::Bitmap { encoded } => {
                let mut still_needed = decode_bitmap("freeze", &encoded)?;
                // References bounced but not yet re-answered join the
                // still-needed set: their `BlockRefMiss` is answered
                // from post-copy as a pulled block.
                still_needed.union_with(&st.ref_missing);
                break still_needed;
            }
            other => {
                return Err(protocol_err(
                    "freeze",
                    format!("unexpected freeze message: {other:?}"),
                ))
            }
        }
    };
    // Stand up the destination interception path.
    let transferred = Arc::new(AtomicBitmap::new(cfg.num_blocks));
    transferred.load_from(&transferred_flat);
    let new_bm = Arc::new(AtomicBitmap::new(cfg.num_blocks));
    disk.attach_tracker(Arc::clone(&new_bm), Some(GUEST));
    disk.enable_tracking();
    st.dest_io = Some(Arc::new(DestIo::new(
        Arc::clone(disk),
        GUEST,
        Arc::clone(&transferred),
        st.pull_tx.clone(),
        Arc::clone(&cfg.telemetry),
    )));
    st.transferred = Some(transferred);
    st.new_bm = Some(new_bm);
    st.phase = ResumePhase::PostCopy;
    Ok(())
}

fn dest_post_copy<T: Transport>(
    cfg: &LiveConfig,
    disk: &Arc<TrackedDisk>,
    ram: &Arc<LiveRam>,
    ep: &T,
    ctl: &DriverCtl,
    st: &mut DestState,
) -> Result<(), SessionError> {
    // Freeze-and-copy builds both of these before entering post-copy; a
    // gap is a protocol bug surfaced as an error, not a panic.
    let (Some(transferred), Some(dest_io)) = (st.transferred.as_ref(), st.dest_io.as_ref()) else {
        return Err(protocol_err(
            "post-copy",
            "post-copy entered without the freeze-phase bitmap and io path".into(),
        ));
    };
    let transferred = Arc::clone(transferred);
    let io = Arc::clone(dest_io);
    // First entry: resume the guest on the destination path. Reconnects
    // find it already running.
    if st.resumed_at.is_none() {
        let resumed_at = ctl.resume_on(io as Arc<dyn crate::live::GuestIo>, Arc::clone(ram));
        st.resumed_at = Some(resumed_at);
        // Stamped at the resume instant: with the source's suspend stamp
        // this bounds the freeze span to exactly the reported downtime.
        cfg.telemetry
            .record_at_instant(resumed_at, || Event::PhaseEnd {
                side: Side::Destination,
                phase: Phase::Freeze,
            });
        cfg.telemetry
            .record_at_instant(resumed_at, || Event::Resumed {
                side: Side::Destination,
            });
        cfg.telemetry
            .record_at_instant(resumed_at, || Event::PhaseStart {
                side: Side::Destination,
                phase: Phase::PostCopy,
            });
    }
    send_or(ep, "post-copy", MigMessage::Resumed)?;
    // Pull requests forwarded on a dead session got no answer: re-issue
    // every outstanding one so parked readers make progress.
    let outstanding: Vec<usize> = st
        .requested
        .iter()
        .copied()
        .filter(|&b| transferred.get(b))
        .collect();
    for b in outstanding {
        send_or(ep, "post-copy", MigMessage::PullRequest { block: b as u64 })?;
    }
    // The source re-announces push completion every session.
    st.push_done = false;

    let mut last_progress = Instant::now();
    loop {
        // Forward guest pull requests.
        while let Ok(b) = st.pull_rx.try_recv() {
            // A block may be requested by several stalled reads or have
            // been cleared since; only forward live, novel requests.
            if transferred.get(b) && st.requested.insert(b) {
                cfg.telemetry
                    .record(|| Event::PullRequested { block: b as u64 });
                send_or(ep, "post-copy", MigMessage::PullRequest { block: b as u64 })?;
            }
        }
        // Process arrivals.
        match ep.recv_timeout(Duration::from_millis(2)) {
            Ok(MigMessage::PostCopyBlock {
                block,
                pulled: was_pulled,
                payload,
                ..
            }) => {
                last_progress = Instant::now();
                let b = block as usize;
                if transferred.get(b) {
                    let Some(payload) = payload else {
                        return Err(protocol_err(
                            "post-copy",
                            "live mode ships real bytes".to_string(),
                        ));
                    };
                    apply_blocks(disk, &[block], &payload, cfg.block_size)?;
                    transferred.clear(b);
                    if let Some(io) = &st.dest_io {
                        io.notify_block();
                    }
                    if was_pulled {
                        st.pulled += 1;
                        cfg.telemetry.record(|| Event::BlockPulled { block });
                    } else {
                        st.pushed += 1;
                        cfg.telemetry.record(|| Event::BlockPushed { block });
                    }
                } else {
                    // Superseded by a local write: drop (paper lines 2-3
                    // of the receive algorithm).
                    st.dropped += 1;
                    cfg.telemetry.record(|| Event::BlockDropped { block });
                }
            }
            Ok(MigMessage::PushComplete) => {
                last_progress = Instant::now();
                st.push_done = true;
            }
            Ok(other) => {
                return Err(protocol_err(
                    "post-copy",
                    format!("unexpected message at destination: {other:?}"),
                ))
            }
            Err(TransportError::Timeout) => {
                if last_progress.elapsed() > cfg.retry.phase_timeout {
                    return Err(SessionError::Fatal(MigrationError::Timeout {
                        phase: "post-copy",
                        waited: cfg.retry.phase_timeout,
                    }));
                }
            }
            Err(TransportError::Empty) => {}
            Err(e) => return Err(classify("post-copy", e)),
        }
        if st.push_done && transferred.count_ones() == 0 {
            send_or(ep, "completion", MigMessage::MigrationComplete)?;
            st.complete_sent = true;
            // Wait for the source's ack so a lost completion message
            // cannot strand it in post-copy.
            let deadline = Instant::now() + cfg.retry.phase_timeout;
            loop {
                match ep.recv_timeout(Duration::from_millis(20)) {
                    Ok(MigMessage::CompleteAck) => return Ok(()),
                    // Late pushes raced with completion: superseded.
                    Ok(MigMessage::PostCopyBlock { block, .. }) => {
                        st.dropped += 1;
                        cfg.telemetry.record(|| Event::BlockDropped { block });
                    }
                    Ok(MigMessage::PushComplete) => {}
                    Ok(other) => {
                        return Err(protocol_err(
                            "completion",
                            format!("expected CompleteAck, got {other:?}"),
                        ))
                    }
                    Err(TransportError::Timeout) => {
                        if Instant::now() > deadline {
                            return Err(SessionError::Fatal(MigrationError::Timeout {
                                phase: "completion",
                                waited: cfg.retry.phase_timeout,
                            }));
                        }
                    }
                    Err(e) => return Err(classify("completion", e)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_migration_is_consistent_under_concurrent_writes() {
        let cfg = LiveConfig {
            num_blocks: 16_384,
            ..LiveConfig::test_default()
        };
        let out = run_live_migration(&cfg).expect("clean migration completes");
        assert_eq!(out.read_violations, 0, "guest saw stale data");
        assert!(
            out.inconsistent_blocks().is_empty(),
            "destination diverged from guest ground truth"
        );
        assert!(!out.iterations.is_empty());
        // First iteration ships the whole disk.
        assert_eq!(out.iterations[0], 16_384);
        assert!(out.total >= out.downtime);
        // No faults: no reconnects, no resume traffic.
        assert_eq!(out.reconnects, 0);
        assert!(out.resume_owed.is_empty());
    }

    #[test]
    fn live_downtime_is_small_fraction_of_total() {
        let cfg = LiveConfig {
            num_blocks: 32_768,
            ..LiveConfig::test_default()
        };
        let out = run_live_migration(&cfg).expect("clean migration completes");
        assert_eq!(out.read_violations, 0);
        assert!(out.inconsistent_blocks().is_empty());
        // Live migration: the guest is down far less than the total.
        assert!(
            out.downtime.as_secs_f64() < out.total.as_secs_f64() / 2.0,
            "downtime {:?} vs total {:?}",
            out.downtime,
            out.total
        );
    }

    #[test]
    fn live_migration_with_four_streams_is_consistent() {
        let cfg = LiveConfig {
            num_blocks: 16_384,
            streams: 4,
            ..LiveConfig::test_default()
        };
        let out = run_live_migration(&cfg).expect("sharded migration completes");
        assert_eq!(out.read_violations, 0, "guest saw stale data");
        assert!(
            out.inconsistent_blocks().is_empty(),
            "destination diverged from guest ground truth"
        );
        // Sharding reorders sends, never changes what crosses: the first
        // iteration still ships the whole disk exactly once.
        assert_eq!(out.iterations[0], 16_384);
        assert_eq!(out.reconnects, 0);
    }

    #[test]
    fn interleave_rotates_batches_across_shards() {
        let rec = Recorder::off();
        // 256 blocks, 4 streams → word-aligned shards of 64 blocks each.
        let worklist: Vec<usize> = (0..256).collect();
        let out = interleave_streams(&worklist, 256, 4, 16, &rec);
        assert_eq!(out.len(), 256);
        // Same multiset of blocks.
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, worklist);
        // First batch from shard 0, second from shard 1, and so on.
        assert_eq!(&out[..16], (0..16).collect::<Vec<_>>().as_slice());
        assert_eq!(&out[16..32], (64..80).collect::<Vec<_>>().as_slice());
        assert_eq!(&out[32..48], (128..144).collect::<Vec<_>>().as_slice());
        assert_eq!(&out[48..64], (192..208).collect::<Vec<_>>().as_slice());
        // Uneven remainder still drains completely.
        let sparse: Vec<usize> = (0..256).step_by(7).collect();
        let out = interleave_streams(&sparse, 256, 4, 16, &rec);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, sparse);
    }

    #[test]
    fn live_im_ships_only_dirty_blocks() {
        let cfg = LiveConfig {
            num_blocks: 16_384,
            ..LiveConfig::test_default()
        };
        let first = run_live_migration(&cfg).expect("clean migration completes");
        assert!(first.inconsistent_blocks().is_empty());

        // Migrate back: old destination is the new source; the stale old
        // source is the target; only blocks dirtied since (the new_bitmap
        // accumulated during post-copy) must cross.
        let mut im_bitmap = first.new_bitmap.clone();
        // Blocks written on the destination during/after post-copy, plus
        // anything the guest writes during the back-migration, are exactly
        // what IM must move.
        let cfg_back = LiveConfig {
            seed: cfg.seed + 1,
            ..cfg.clone()
        };
        // Note: the guest driver restarts with a fresh stamp space, so
        // re-initialize both disks' ground truth via the engine contract:
        // the back-migration's model only covers its own writes; blocks
        // untouched by it must match the *first* run's final destination
        // content. We verify that stronger property manually below.
        let src_back = Arc::clone(&first.dst_disk);
        let dst_back = Arc::clone(&first.src_disk);
        // Every block that differs between the two disks is marked in the
        // IM bitmap (the paper's IM premise).
        {
            let diffs = src_back.disk().diff_blocks(dst_back.disk());
            for b in &diffs {
                im_bitmap.set(*b);
            }
        }
        let out = run_live_migration_with(&cfg_back, src_back, dst_back, Some(im_bitmap.clone()))
            .expect("IM migration completes");
        assert_eq!(out.read_violations, 0);
        // IM's first iteration shipped only the bitmap's blocks.
        assert_eq!(out.iterations[0], im_bitmap.count_ones() as u64);
        assert!((out.iterations[0] as usize) < cfg.num_blocks / 4);
        // Full consistency: the destination equals the new source.
        assert!(out
            .src_disk
            .disk()
            .diff_blocks(out.dst_disk.disk())
            .into_iter()
            .all(|b| out.new_bitmap.get(b)));
    }

    #[test]
    fn source_death_fails_over_to_peer_holders() {
        use simnet::proto::Category;

        let mut cfg = LiveConfig {
            num_blocks: 16_384,
            // Guarantee the guest dirties blocks between pre-copy
            // convergence and suspend: post-copy must have real traffic
            // left when the source dies.
            min_guest_ticks: 25,
            // The freeze-time manifest covers the frozen bitmap only;
            // unresolved dedup reference bounces would have no
            // verification anchor, so this scenario runs without dedup.
            dedup: false,
            multisource: true,
            telemetry: Recorder::enabled(),
            retry: RetryPolicy {
                max_reconnects: 2,
                backoff: Duration::from_millis(10),
                phase_timeout: Duration::from_secs(5),
                outage_budget: None,
            },
            ..LiveConfig::test_default()
        };
        let (src, dst) = fresh_disks(&cfg);
        // A stale holder: the start-of-migration image. Every frozen
        // block was dirtied after start (stamp ≥ 1 vs stamp 0), so each
        // fingerprint probe must miss and roll to the next holder.
        let stale = Arc::new(TrackedDisk::new(Arc::new(VirtualDisk::dense(
            cfg.block_size,
            cfg.num_blocks,
        ))));
        for b in 0..cfg.num_blocks {
            stale
                .disk()
                .write_block(b, &stamp_bytes(b, 0, cfg.block_size));
        }
        // A synchronous replica (shared-storage model): the same backing
        // disk the suspended source holds, so it serves every frozen
        // block with a matching fingerprint.
        cfg.peers = vec![
            LivePeer {
                host: 7,
                disk: stale,
            },
            LivePeer {
                host: 8,
                disk: Arc::clone(&src),
            },
        ];
        // Kill every attempt on its second post-copy push: the reconnect
        // budget exhausts with blocks still owed while the guest already
        // runs on the destination — the failover precondition.
        let mut plan = FaultPlan::none();
        for attempt in 0..=cfg.retry.max_reconnects + 1 {
            plan = plan.reset_after_category(attempt, Category::DiskPush, 2);
        }
        let out = run_live_migration_with_faults(&cfg, src, dst, None, plan)
            .expect("failover must complete the migration without a source");
        assert_eq!(out.failovers, 1, "exactly one source-death failover");
        assert_eq!(out.read_violations, 0, "guest observed stale data");
        assert!(
            out.inconsistent_blocks().is_empty(),
            "destination image must be block-exact after failover"
        );
        assert!(out.inconsistent_pages().is_empty());
        // Every failover block came from the replica; the stale holder
        // missed every probe (its content predates the freeze).
        assert!(!out.peer_bytes.is_empty(), "failover must fetch blocks");
        for pb in &out.peer_bytes {
            assert_eq!(pb.host, 8, "stale holder cannot serve frozen content");
            assert_eq!(pb.bytes, pb.blocks * cfg.block_size as u64);
        }
        // The journal records the failover decision and the peer fetch.
        let records = cfg.telemetry.records();
        let failovers = records
            .iter()
            .filter(|r| matches!(r.event, Event::SourceFailover { .. }))
            .count();
        assert_eq!(failovers, 1, "one SourceFailover event");
        assert!(
            records.iter().any(|r| matches!(
                r.event,
                Event::PeerFetch {
                    side: Side::Destination,
                    peer: 8,
                    ..
                }
            )),
            "the replica's contribution must be journaled"
        );
    }
}
