//! Live migration orchestration: source and destination protocol threads.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use block_bitmap::{ser, AtomicBitmap, DirtyMap, FlatBitmap};
use bytes::Bytes;
use crossbeam::channel::unbounded;
use des::SimDuration;
use simnet::proto::{MigMessage, TransferLedger};
use simnet::tcp::loopback_pair;
use simnet::transport::{duplex, Transport, TransportError};
use vdisk::{stamp_bytes, DomainId, TrackedDisk, VirtualDisk};
use vmstate::LiveRam;
use workloads::WorkloadKind;

use crate::live::driver::{DriverCtl, DriverHandle, DriverResult, LiveWorkload};
use crate::live::io::{DestIo, SourceIo};

/// The migrated guest's domain id in live mode.
const GUEST: DomainId = DomainId(1);

/// Configuration of a live (threaded) migration.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Block size in bytes (small blocks keep tests fast).
    pub block_size: usize,
    /// Disk capacity in blocks.
    pub num_blocks: usize,
    /// Maximum pre-copy iterations.
    pub max_iterations: u32,
    /// Freeze when an iteration leaves at most this many dirty blocks.
    pub dirty_threshold: usize,
    /// Blocks per `DiskBlocks` message.
    pub batch: usize,
    /// Optional wall-clock pacing of the source's sends, bytes/second.
    pub rate_limit: Option<f64>,
    /// Workload the guest runs.
    pub workload: WorkloadKind,
    /// Virtual workload time replayed per ~1 ms driver tick.
    pub dt_per_tick: SimDuration,
    /// Guest RAM pages (byte-real, migrated live).
    pub mem_pages: usize,
    /// RAM page size in bytes.
    pub mem_page_size: usize,
    /// Guest page writes per driver tick.
    pub mem_writes_per_tick: u64,
    /// Memory pre-copy stops when an iteration leaves at most this many
    /// dirty pages.
    pub mem_dirty_threshold: usize,
    /// Maximum memory pre-copy iterations.
    pub max_mem_iterations: u32,
    /// Pages per `MemPages` message.
    pub mem_batch: usize,
    /// Seed for the guest's op stream.
    pub seed: u64,
}

impl LiveConfig {
    /// A fast default suitable for tests: 16 Mi disk of 4 Ki × 4 KiB-..
    /// actually 4096 blocks × 512 B = 2 MiB, web workload.
    pub fn test_default() -> Self {
        Self {
            block_size: 512,
            num_blocks: 65_536,
            max_iterations: 5,
            dirty_threshold: 64,
            batch: 256,
            rate_limit: None,
            workload: WorkloadKind::Web,
            dt_per_tick: SimDuration::from_millis(50),
            mem_pages: 2_048,
            mem_page_size: 512,
            mem_writes_per_tick: 8,
            mem_dirty_threshold: 32,
            max_mem_iterations: 8,
            mem_batch: 128,
            seed: 2008,
        }
    }
}

/// Outcome of a live migration run.
pub struct LiveOutcome {
    /// Wall-clock downtime (suspend acknowledged → resumed).
    pub downtime: Duration,
    /// Wall-clock total migration time.
    pub total: Duration,
    /// Blocks sent per pre-copy iteration.
    pub iterations: Vec<u64>,
    /// Pages sent per memory pre-copy iteration.
    pub mem_iterations: Vec<u64>,
    /// Dirty pages transferred during freeze (the memory tail).
    pub frozen_mem_dirty: u64,
    /// Dirty blocks in the freeze-phase bitmap.
    pub frozen_dirty: u64,
    /// Post-copy pushed blocks applied.
    pub pushed: u64,
    /// Post-copy pulled blocks applied.
    pub pulled: u64,
    /// Post-copy arrivals dropped (superseded by destination writes).
    pub dropped: u64,
    /// Guest reads that stalled on a pull.
    pub stalled_reads: u64,
    /// Bytes sent by the source, per category.
    pub src_ledger: TransferLedger,
    /// Bytes sent by the destination (pull requests, completion).
    pub dst_ledger: TransferLedger,
    /// The destination disk the guest now runs on.
    pub dst_disk: Arc<TrackedDisk>,
    /// The retired source disk.
    pub src_disk: Arc<TrackedDisk>,
    /// The destination RAM the guest now runs on.
    pub dst_ram: Arc<LiveRam>,
    /// The guest's last stamp written per memory page.
    pub mem_model: HashMap<usize, u64>,
    /// Destination-side new-write bitmap (feeds a live IM).
    pub new_bitmap: FlatBitmap,
    /// The guest's ground truth: last stamp written per block.
    pub model: HashMap<usize, u64>,
    /// Guest reads that saw wrong data (must be 0).
    pub read_violations: u64,
}

impl LiveOutcome {
    /// Blocks of the destination disk that disagree with the guest's
    /// ground-truth model (empty = consistent migration).
    pub fn inconsistent_blocks(&self) -> Vec<usize> {
        let disk = self.dst_disk.disk();
        let bs = disk.block_size();
        (0..disk.num_blocks())
            .filter(|&b| {
                let expect = self.model.get(&b).copied().unwrap_or(0);
                disk.read_block(b) != stamp_bytes(b, expect, bs)
            })
            .collect()
    }

    /// Pages of the destination RAM that disagree with the guest's
    /// memory write log (empty = consistent memory migration).
    pub fn inconsistent_pages(&self) -> Vec<usize> {
        let ps = self.dst_ram.page_size();
        (0..self.dst_ram.num_pages())
            .filter(|&p| {
                let expect = self.mem_model.get(&p).copied().unwrap_or(0);
                self.dst_ram.read_page(p) != stamp_bytes(p, expect, ps)
            })
            .collect()
    }
}

/// Run a primary live migration with freshly created disks: the source
/// holds the stamp-0 image, the destination is blank.
pub fn run_live_migration(cfg: &LiveConfig) -> LiveOutcome {
    let src = Arc::new(TrackedDisk::new(Arc::new(VirtualDisk::dense(
        cfg.block_size,
        cfg.num_blocks,
    ))));
    for b in 0..cfg.num_blocks {
        src.disk().write_block(b, &stamp_bytes(b, 0, cfg.block_size));
    }
    let dst = Arc::new(TrackedDisk::new(Arc::new(VirtualDisk::dense(
        cfg.block_size,
        cfg.num_blocks,
    ))));
    run_live_migration_with(cfg, src, dst, None)
}

/// Run a live migration between existing disks. `initial_bitmap` enables
/// Incremental Migration: only the marked blocks are shipped in the first
/// iteration (§V — "if \[the bitmap\] does \[exist\], only the blocks marked
/// dirty in the block-bitmap need to be migrated").
pub fn run_live_migration_with(
    cfg: &LiveConfig,
    src: Arc<TrackedDisk>,
    dst: Arc<TrackedDisk>,
    initial_bitmap: Option<FlatBitmap>,
) -> LiveOutcome {
    let (mut src_ep, dst_ep) = duplex();
    if let Some(limit) = cfg.rate_limit {
        src_ep.set_rate_limit(limit);
    }
    run_live_migration_over(cfg, src, dst, initial_bitmap, src_ep, dst_ep)
}

/// Run a primary live migration over **real TCP sockets** on the loopback
/// interface — the protocol crosses an actual network stack, framed by
/// `simnet::codec`, exactly as it would between two hosts.
pub fn run_live_migration_tcp(cfg: &LiveConfig) -> std::io::Result<LiveOutcome> {
    let src = Arc::new(TrackedDisk::new(Arc::new(VirtualDisk::dense(
        cfg.block_size,
        cfg.num_blocks,
    ))));
    for b in 0..cfg.num_blocks {
        src.disk().write_block(b, &stamp_bytes(b, 0, cfg.block_size));
    }
    let dst = Arc::new(TrackedDisk::new(Arc::new(VirtualDisk::dense(
        cfg.block_size,
        cfg.num_blocks,
    ))));
    let (mut src_ep, dst_ep) = loopback_pair()?;
    if let Some(limit) = cfg.rate_limit {
        src_ep.set_rate_limit(limit);
    }
    Ok(run_live_migration_over(cfg, src, dst, None, src_ep, dst_ep))
}

/// Run a live migration between existing disks over any pair of
/// connected [`Transport`]s.
pub fn run_live_migration_over<S, D>(
    cfg: &LiveConfig,
    src: Arc<TrackedDisk>,
    dst: Arc<TrackedDisk>,
    initial_bitmap: Option<FlatBitmap>,
    src_ep: S,
    dst_ep: D,
) -> LiveOutcome
where
    S: Transport + 'static,
    D: Transport + 'static,
{
    assert_eq!(src.disk().num_blocks(), cfg.num_blocks);
    assert_eq!(dst.disk().num_blocks(), cfg.num_blocks);

    // Byte-real RAM on both ends; the source starts with the stamp-0
    // image the verifier expects.
    let src_ram = Arc::new(LiveRam::new(cfg.mem_page_size, cfg.mem_pages));
    for p in 0..cfg.mem_pages {
        src_ram.write_page(p, &stamp_bytes(p, 0, cfg.mem_page_size));
    }
    let dst_ram = Arc::new(LiveRam::new(cfg.mem_page_size, cfg.mem_pages));

    // Guest starts on the source path.
    let workload = LiveWorkload::from_kind(cfg.workload, cfg.num_blocks as u64, cfg.dt_per_tick);
    let driver = DriverHandle::start(
        workload,
        Arc::new(SourceIo::new(Arc::clone(&src), GUEST)),
        Arc::clone(&src_ram),
        cfg.mem_writes_per_tick,
        cfg.block_size,
        cfg.seed,
        Duration::from_millis(1),
    );
    let start = Instant::now();

    let src_thread = {
        let cfg = cfg.clone();
        let src = Arc::clone(&src);
        let ram = Arc::clone(&src_ram);
        let ctl = driver.ctl();
        std::thread::spawn(move || source_protocol(&cfg, src, ram, src_ep, ctl, initial_bitmap))
    };
    let dst_thread = {
        let cfg = cfg.clone();
        let dst = Arc::clone(&dst);
        let ram = Arc::clone(&dst_ram);
        let ctl = driver.ctl();
        std::thread::spawn(move || dest_protocol(&cfg, dst, ram, dst_ep, ctl))
    };

    let src_res = src_thread.join().expect("source protocol panicked");
    let dst_res = dst_thread.join().expect("destination protocol panicked");
    let total = start.elapsed();
    let DriverResult {
        model,
        mem_model,
        read_violations,
        ..
    } = driver.finish();

    LiveOutcome {
        downtime: dst_res.resumed_at - src_res.suspended_at,
        total,
        iterations: src_res.iterations,
        mem_iterations: src_res.mem_iterations,
        frozen_mem_dirty: src_res.frozen_mem_dirty,
        frozen_dirty: src_res.frozen_dirty,
        pushed: dst_res.pushed,
        pulled: dst_res.pulled,
        dropped: dst_res.dropped,
        stalled_reads: dst_res.stalled_reads,
        src_ledger: src_res.ledger,
        dst_ledger: dst_res.ledger,
        dst_disk: dst,
        src_disk: src,
        dst_ram,
        mem_model,
        new_bitmap: dst_res.new_bitmap,
        model,
        read_violations,
    }
}

struct SourceResult {
    iterations: Vec<u64>,
    mem_iterations: Vec<u64>,
    frozen_mem_dirty: u64,
    frozen_dirty: u64,
    suspended_at: Instant,
    ledger: TransferLedger,
}

fn read_batch(disk: &TrackedDisk, blocks: &[usize], block_size: usize) -> Bytes {
    let mut payload = Vec::with_capacity(blocks.len() * block_size);
    for &b in blocks {
        payload.extend_from_slice(&disk.disk().read_block(b));
    }
    Bytes::from(payload)
}

fn send_block_set(
    ep: &impl Transport,
    disk: &TrackedDisk,
    blocks: &[usize],
    block_size: usize,
    batch: usize,
) {
    for chunk in blocks.chunks(batch.max(1)) {
        let payload = read_batch(disk, chunk, block_size);
        ep.send(MigMessage::DiskBlocks {
            blocks: chunk.iter().map(|&b| b as u64).collect(),
            payload_len: payload.len() as u64,
            payload: Some(payload),
        })
        .expect("destination alive");
    }
}

fn send_page_set(ep: &impl Transport, ram: &LiveRam, pages: &[usize], batch: usize) {
    for chunk in pages.chunks(batch.max(1)) {
        let payload = Bytes::from(ram.read_pages(chunk));
        ep.send(MigMessage::MemPages {
            pages: chunk.iter().map(|&p| p as u64).collect(),
            payload_len: payload.len() as u64,
            payload: Some(payload),
        })
        .expect("destination alive");
    }
}

fn source_protocol(
    cfg: &LiveConfig,
    disk: Arc<TrackedDisk>,
    ram: Arc<LiveRam>,
    ep: impl Transport,
    ctl: DriverCtl,
    initial_bitmap: Option<FlatBitmap>,
) -> SourceResult {
    ep.send(MigMessage::PrepareVbd {
        block_size: cfg.block_size as u32,
        num_blocks: cfg.num_blocks as u64,
    })
    .expect("destination alive");
    assert_eq!(ep.recv().expect("ack"), MigMessage::PrepareAck);

    // "Signal blkback to start monitoring write accesses."
    let iter_bm = Arc::new(AtomicBitmap::new(cfg.num_blocks));
    let tracker = disk.attach_tracker(Arc::clone(&iter_bm), Some(GUEST));
    disk.enable_tracking();

    // Iterative pre-copy. IM: ship only the inherited bitmap's blocks.
    let mut to_send: Vec<usize> = match &initial_bitmap {
        Some(bm) => bm.to_indices(),
        None => (0..cfg.num_blocks).collect(),
    };
    let mut iterations = Vec::new();
    let final_bitmap = loop {
        let iter = iterations.len() as u32 + 1;
        send_block_set(&ep, &disk, &to_send, cfg.block_size, cfg.batch);
        iterations.push(to_send.len() as u64);
        let snap = iter_bm.snapshot_and_clear();
        let count = snap.count_ones();
        if count <= cfg.dirty_threshold || iter >= cfg.max_iterations {
            break snap;
        }
        to_send = snap.to_indices();
    };

    // Memory pre-copy (disk writes keep accumulating in iter_bm for the
    // freeze bitmap): iteration 1 ships every page, later iterations ship
    // the pages dirtied meanwhile, Xen-style.
    ram.enable_tracking();
    let mut mem_iterations = Vec::new();
    let mut pages_to_send: Vec<usize> = (0..cfg.mem_pages).collect();
    // The set drained at the convergence decision has NOT been sent; it
    // must ride into the freeze tail or those pages are silently lost.
    let leftover_dirty = loop {
        let iter = mem_iterations.len() as u32 + 1;
        send_page_set(&ep, &ram, &pages_to_send, cfg.mem_batch);
        mem_iterations.push(pages_to_send.len() as u64);
        let dirty = ram.drain_dirty();
        let count = dirty.count_ones();
        if count <= cfg.mem_dirty_threshold || iter >= cfg.max_mem_iterations {
            break dirty;
        }
        pages_to_send = dirty.to_indices();
    };

    // Freeze: suspend the guest, fold in the writes that raced with the
    // last drains, and ship the memory tail, the CPU context and the
    // disk bitmap (not the blocks).
    let suspended_at = ctl.request_suspend();
    let mut final_bitmap = final_bitmap;
    final_bitmap.union_with(&iter_bm.snapshot_and_clear());
    disk.detach_tracker(tracker);
    let frozen_dirty = final_bitmap.count_ones() as u64;
    let mut tail_bitmap = leftover_dirty;
    tail_bitmap.union_with(&ram.drain_dirty());
    let mem_tail = tail_bitmap.to_indices();
    let frozen_mem_dirty = mem_tail.len() as u64;
    ram.disable_tracking();
    ep.send(MigMessage::Suspended).expect("destination alive");
    send_page_set(&ep, &ram, &mem_tail, cfg.mem_batch);
    ep.send(MigMessage::CpuState {
        payload_len: 8 * 1024,
        payload: None,
    })
    .expect("destination alive");
    ep.send(MigMessage::Bitmap {
        encoded: Bytes::from(ser::encode(&final_bitmap)),
    })
    .expect("destination alive");

    // Post-copy: push continuously, answer pulls preferentially.
    let mut src_bm = final_bitmap;
    let mut cursor = 0usize;
    let mut push_complete_sent = false;
    loop {
        // Answer any queued pulls first.
        loop {
            match ep.try_recv() {
                Ok(MigMessage::PullRequest { block }) => {
                    let b = block as usize;
                    let payload = read_batch(&disk, &[b], cfg.block_size);
                    src_bm.clear(b);
                    ep.send(MigMessage::PostCopyBlock {
                        block,
                        pulled: true,
                        payload_len: payload.len() as u64,
                        payload: Some(payload),
                    })
                    .expect("destination alive");
                }
                Ok(MigMessage::MigrationComplete) => {
                    return SourceResult {
                        iterations,
                        mem_iterations,
                        frozen_mem_dirty,
                        frozen_dirty,
                        suspended_at,
                        ledger: ep.sent_ledger(),
                    };
                }
                Ok(MigMessage::Resumed) => {} // downtime over; informational
                Ok(other) => panic!("unexpected message at source: {other:?}"),
                Err(TransportError::Empty) => break,
                Err(e) => panic!("source transport failed: {e}"),
            }
        }
        // Then push the next block.
        match src_bm.next_set_from(cursor) {
            Some(b) => {
                src_bm.clear(b);
                cursor = b + 1;
                let payload = read_batch(&disk, &[b], cfg.block_size);
                ep.send(MigMessage::PostCopyBlock {
                    block: b as u64,
                    pulled: false,
                    payload_len: payload.len() as u64,
                    payload: Some(payload),
                })
                .expect("destination alive");
            }
            None if cursor > 0 && !src_bm.none_set() => {
                cursor = 0; // wrap to catch pull-cleared gaps... none left
            }
            None => {
                if !push_complete_sent {
                    ep.send(MigMessage::PushComplete).expect("destination alive");
                    push_complete_sent = true;
                }
                // Nothing to push: wait for pulls or completion.
                match ep.recv_timeout(Duration::from_millis(20)) {
                    Ok(MigMessage::PullRequest { block }) => {
                        let b = block as usize;
                        let payload = read_batch(&disk, &[b], cfg.block_size);
                        ep.send(MigMessage::PostCopyBlock {
                            block,
                            pulled: true,
                            payload_len: payload.len() as u64,
                            payload: Some(payload),
                        })
                        .expect("destination alive");
                    }
                    Ok(MigMessage::MigrationComplete) => {
                        return SourceResult {
                            iterations,
                            mem_iterations,
                            frozen_mem_dirty,
                            frozen_dirty,
                            suspended_at,
                            ledger: ep.sent_ledger(),
                        };
                    }
                    Ok(MigMessage::Resumed) => {}
                    Ok(other) => panic!("unexpected message at source: {other:?}"),
                    Err(TransportError::Timeout) => {}
                    Err(e) => panic!("source transport failed: {e}"),
                }
            }
        }
    }
}

struct DestResult {
    pushed: u64,
    pulled: u64,
    dropped: u64,
    stalled_reads: u64,
    resumed_at: Instant,
    new_bitmap: FlatBitmap,
    ledger: TransferLedger,
}

fn apply_blocks(disk: &TrackedDisk, blocks: &[u64], payload: &Bytes, block_size: usize) {
    assert_eq!(payload.len(), blocks.len() * block_size, "payload size");
    for (i, &b) in blocks.iter().enumerate() {
        disk.disk()
            .write_block(b as usize, &payload[i * block_size..(i + 1) * block_size]);
    }
}

fn dest_protocol(
    cfg: &LiveConfig,
    disk: Arc<TrackedDisk>,
    ram: Arc<LiveRam>,
    ep: impl Transport,
    ctl: DriverCtl,
) -> DestResult {
    // Provision the VBD.
    match ep.recv().expect("source alive") {
        MigMessage::PrepareVbd {
            block_size,
            num_blocks,
        } => {
            assert_eq!(block_size as usize, cfg.block_size);
            assert_eq!(num_blocks as usize, cfg.num_blocks);
        }
        other => panic!("expected PrepareVbd, got {other:?}"),
    }
    ep.send(MigMessage::PrepareAck).expect("source alive");

    // Pre-copy: apply incoming block and page batches until the source
    // suspends.
    let apply_pages = |pages: &[u64], payload: &Bytes| {
        let idx: Vec<usize> = pages.iter().map(|&p| p as usize).collect();
        ram.apply_pages(&idx, payload);
    };
    loop {
        match ep.recv().expect("source alive") {
            MigMessage::DiskBlocks {
                blocks, payload, ..
            } => {
                let payload = payload.expect("live mode ships real bytes");
                apply_blocks(&disk, &blocks, &payload, cfg.block_size);
            }
            MigMessage::MemPages { pages, payload, .. } => {
                apply_pages(&pages, &payload.expect("live mode ships real bytes"));
            }
            MigMessage::Suspended => break,
            other => panic!("unexpected message at destination: {other:?}"),
        }
    }
    // Freeze payloads: the memory tail, the CPU context, the block-bitmap.
    let transferred_flat = loop {
        match ep.recv().expect("source alive") {
            MigMessage::MemPages { pages, payload, .. } => {
                apply_pages(&pages, &payload.expect("live mode ships real bytes"));
            }
            MigMessage::CpuState { .. } => {}
            MigMessage::Bitmap { encoded } => {
                break ser::decode(&encoded).expect("valid bitmap")
            }
            other => panic!("unexpected freeze message: {other:?}"),
        }
    };

    // Stand up the destination interception path and resume the guest.
    let transferred = Arc::new(AtomicBitmap::new(cfg.num_blocks));
    transferred.load_from(&transferred_flat);
    let new_bm = Arc::new(AtomicBitmap::new(cfg.num_blocks));
    disk.attach_tracker(Arc::clone(&new_bm), Some(GUEST));
    disk.enable_tracking();
    let (pull_tx, pull_rx) = unbounded::<usize>();
    let dest_io = Arc::new(DestIo::new(
        Arc::clone(&disk),
        GUEST,
        Arc::clone(&transferred),
        pull_tx,
    ));
    let resumed_at =
        ctl.resume_on(Arc::clone(&dest_io) as Arc<dyn crate::live::GuestIo>, Arc::clone(&ram));
    ep.send(MigMessage::Resumed).expect("source alive");

    // Post-copy: interleave pull forwarding with arrivals.
    let mut pushed = 0u64;
    let mut pulled = 0u64;
    let mut dropped = 0u64;
    let mut push_done = false;
    let mut requested = std::collections::HashSet::new();
    loop {
        // Forward guest pull requests.
        while let Ok(b) = pull_rx.try_recv() {
            // A block may be requested by several stalled reads or have
            // been cleared since; only forward live, novel requests.
            if transferred.get(b) && requested.insert(b) {
                ep.send(MigMessage::PullRequest { block: b as u64 })
                    .expect("source alive");
            }
        }
        // Process arrivals.
        match ep.recv_timeout(Duration::from_millis(2)) {
            Ok(MigMessage::PostCopyBlock {
                block,
                pulled: was_pulled,
                payload,
                ..
            }) => {
                let b = block as usize;
                if transferred.get(b) {
                    let payload = payload.expect("live mode ships real bytes");
                    apply_blocks(&disk, &[block], &payload, cfg.block_size);
                    transferred.clear(b);
                    dest_io.notify_block();
                    if was_pulled {
                        pulled += 1;
                    } else {
                        pushed += 1;
                    }
                } else {
                    // Superseded by a local write: drop (paper lines 2-3
                    // of the receive algorithm).
                    dropped += 1;
                }
            }
            Ok(MigMessage::PushComplete) => push_done = true,
            Ok(other) => panic!("unexpected message at destination: {other:?}"),
            Err(TransportError::Timeout) => {}
            Err(e) => panic!("destination transport failed: {e}"),
        }
        if push_done && transferred.count_ones() == 0 {
            ep.send(MigMessage::MigrationComplete).expect("source alive");
            break;
        }
    }

    disk.disable_tracking();
    let (stalled_reads, _) = dest_io.stall_stats();
    DestResult {
        pushed,
        pulled,
        dropped,
        stalled_reads,
        resumed_at,
        new_bitmap: new_bm.snapshot(),
        ledger: ep.sent_ledger(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_migration_is_consistent_under_concurrent_writes() {
        let cfg = LiveConfig {
            num_blocks: 16_384,
            ..LiveConfig::test_default()
        };
        let out = run_live_migration(&cfg);
        assert_eq!(out.read_violations, 0, "guest saw stale data");
        assert!(
            out.inconsistent_blocks().is_empty(),
            "destination diverged from guest ground truth"
        );
        assert!(!out.iterations.is_empty());
        // First iteration ships the whole disk.
        assert_eq!(out.iterations[0], 16_384);
        assert!(out.total >= out.downtime);
    }

    #[test]
    fn live_downtime_is_small_fraction_of_total() {
        let cfg = LiveConfig {
            num_blocks: 32_768,
            ..LiveConfig::test_default()
        };
        let out = run_live_migration(&cfg);
        assert_eq!(out.read_violations, 0);
        assert!(out.inconsistent_blocks().is_empty());
        // Live migration: the guest is down far less than the total.
        assert!(
            out.downtime.as_secs_f64() < out.total.as_secs_f64() / 2.0,
            "downtime {:?} vs total {:?}",
            out.downtime,
            out.total
        );
    }

    #[test]
    fn live_im_ships_only_dirty_blocks() {
        let cfg = LiveConfig {
            num_blocks: 16_384,
            ..LiveConfig::test_default()
        };
        let first = run_live_migration(&cfg);
        assert!(first.inconsistent_blocks().is_empty());

        // Migrate back: old destination is the new source; the stale old
        // source is the target; only blocks dirtied since (the new_bitmap
        // accumulated during post-copy) must cross.
        let mut im_bitmap = first.new_bitmap.clone();
        // Blocks written on the destination during/after post-copy, plus
        // anything the guest writes during the back-migration, are exactly
        // what IM must move.
        let cfg_back = LiveConfig {
            seed: cfg.seed + 1,
            ..cfg.clone()
        };
        // Note: the guest driver restarts with a fresh stamp space, so
        // re-initialize both disks' ground truth via the engine contract:
        // the back-migration's model only covers its own writes; blocks
        // untouched by it must match the *first* run's final destination
        // content. We verify that stronger property manually below.
        let src_back = Arc::clone(&first.dst_disk);
        let dst_back = Arc::clone(&first.src_disk);
        // Every block that differs between the two disks is marked in the
        // IM bitmap (the paper's IM premise).
        {
            let diffs = src_back.disk().diff_blocks(dst_back.disk());
            for b in &diffs {
                im_bitmap.set(*b);
            }
        }
        let out = run_live_migration_with(&cfg_back, src_back, dst_back, Some(im_bitmap.clone()));
        assert_eq!(out.read_violations, 0);
        // IM's first iteration shipped only the bitmap's blocks.
        assert_eq!(out.iterations[0], im_bitmap.count_ones() as u64);
        assert!((out.iterations[0] as usize) < cfg.num_blocks / 4);
        // Full consistency: the destination equals the new source.
        assert!(out
            .src_disk
            .disk()
            .diff_blocks(out.dst_disk.disk())
            .into_iter()
            .all(|b| out.new_bitmap.get(b)));
    }
}
