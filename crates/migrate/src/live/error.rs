//! Typed failure surface of a live migration.
//!
//! Every way a migration can end other than success is a
//! [`MigrationError`]: a transport that died mid-stream, a peer that
//! spoke out of protocol, a phase that made no progress within its
//! timeout, or a reconnect budget that ran out. Transport deaths inside
//! a session are *not* immediately fatal — the engine reconnects and
//! resumes from the block-bitmap — so the variants here describe what
//! remained wrong after recovery was attempted.

use std::time::Duration;

use simnet::transport::TransportError;

/// Why a live migration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationError {
    /// The transport failed in `phase` and no further reconnect was
    /// possible (or permitted) to recover from it.
    Transport {
        /// Protocol phase the failure hit.
        phase: &'static str,
        /// The underlying transport failure.
        error: TransportError,
    },
    /// The peer sent something the protocol does not allow in `phase`.
    Protocol {
        /// Protocol phase the violation hit.
        phase: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// The peer stayed connected but made no progress within the
    /// per-phase timeout.
    Timeout {
        /// Protocol phase that stalled.
        phase: &'static str,
        /// How long we waited.
        waited: Duration,
    },
    /// Reconnect attempts were exhausted without completing the
    /// migration.
    RetriesExhausted {
        /// Connection attempts made (initial connection included).
        attempts: u32,
        /// The failure that ended the last attempt.
        last: String,
    },
    /// An I/O error outside the migration protocol itself (e.g. binding
    /// or connecting the TCP listener).
    Io(String),
}

impl std::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Transport { phase, error } => {
                write!(f, "transport failed during {phase}: {error}")
            }
            Self::Protocol { phase, detail } => {
                write!(f, "protocol violation during {phase}: {detail}")
            }
            Self::Timeout { phase, waited } => {
                write!(f, "no progress during {phase} for {waited:?}")
            }
            Self::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "migration failed after {attempts} connection attempts: {last}"
                )
            }
            Self::Io(detail) => write!(f, "i/o error: {detail}"),
        }
    }
}

impl std::error::Error for MigrationError {}

impl From<std::io::Error> for MigrationError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_cause() {
        let e = MigrationError::Transport {
            phase: "disk pre-copy",
            error: TransportError::Reset("injected".into()),
        };
        let s = e.to_string();
        assert!(s.contains("disk pre-copy"), "{s}");
        assert!(s.contains("injected"), "{s}");

        let t = MigrationError::Timeout {
            phase: "handshake",
            waited: Duration::from_secs(3),
        };
        assert!(t.to_string().contains("handshake"));
    }

    #[test]
    fn io_errors_convert() {
        let e: MigrationError = std::io::Error::other("bind failed").into();
        assert!(matches!(e, MigrationError::Io(ref s) if s.contains("bind failed")));
    }
}
