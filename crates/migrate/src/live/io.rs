//! Guest-side I/O paths for live migration.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use block_bitmap::AtomicBitmap;
use crossbeam::channel::Sender;
use parking_lot::{Condvar, Mutex};
use telemetry::{Event, Recorder};
use vdisk::{DomainId, IoRequest, TrackedDisk};

/// The block I/O interface the guest driver uses, switching from
/// [`SourceIo`] to [`DestIo`] at resume time.
pub trait GuestIo: Send + Sync {
    /// Read one block (may wait for a pull during post-copy).
    fn read(&self, block: usize) -> Vec<u8>;

    /// Write one block.
    fn write(&self, block: usize, data: &[u8]);
}

/// Pre-migration path: requests go straight to the (tracked) source disk.
pub struct SourceIo {
    disk: Arc<TrackedDisk>,
    domain: DomainId,
}

impl SourceIo {
    /// Wrap the source disk for the given guest domain.
    pub fn new(disk: Arc<TrackedDisk>, domain: DomainId) -> Self {
        Self { disk, domain }
    }
}

impl GuestIo for SourceIo {
    fn read(&self, block: usize) -> Vec<u8> {
        self.disk.read_block(block)
    }

    fn write(&self, block: usize, data: &[u8]) {
        self.disk
            .submit(IoRequest::write(block, self.domain), Some(data));
    }
}

/// Post-resume path: the paper's destination interception algorithm
/// (§IV-A-3).
///
/// * Writes go to the destination disk (tracked into the IM bitmap by the
///   attached tracker), clear the block's transferred bit, and wake any
///   reader parked on the block.
/// * Reads to still-dirty blocks send a pull request and wait until the
///   block's bit clears (satisfied by the pulled block, a pushed block, or
///   a superseding local write).
pub struct DestIo {
    disk: Arc<TrackedDisk>,
    domain: DomainId,
    transferred: Arc<AtomicBitmap>,
    pull_tx: Sender<usize>,
    gate: Mutex<()>,
    arrived: Condvar,
    stalled_reads: AtomicU64,
    stall_nanos: AtomicU64,
    failed: AtomicBool,
    recorder: Arc<Recorder>,
}

impl DestIo {
    /// Build the destination path. `transferred` is the received copy of
    /// the freeze-phase block-bitmap; pull requests are sent through
    /// `pull_tx` to the destination protocol thread; `recorder` journals
    /// each §IV-A-3 synchronization cancellation.
    pub fn new(
        disk: Arc<TrackedDisk>,
        domain: DomainId,
        transferred: Arc<AtomicBitmap>,
        pull_tx: Sender<usize>,
        recorder: Arc<Recorder>,
    ) -> Self {
        Self {
            disk,
            domain,
            transferred,
            pull_tx,
            gate: Mutex::new(()),
            arrived: Condvar::new(),
            stalled_reads: AtomicU64::new(0),
            stall_nanos: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            recorder,
        }
    }

    /// Mark the synchronization path dead: the protocol thread is gone
    /// and no pull will ever be answered. Parked readers wake and fall
    /// through to the local (possibly stale) copy instead of waiting
    /// forever — the migration itself already failed; this only keeps
    /// the guest thread stoppable for diagnosis.
    pub fn poison(&self) {
        self.failed.store(true, Ordering::SeqCst);
        let _g = self.gate.lock();
        self.arrived.notify_all();
    }

    /// Called by the destination protocol thread when a block's bit
    /// cleared (arrival applied, or push dropped after a local write):
    /// wakes parked readers.
    pub fn notify_block(&self) {
        let _g = self.gate.lock();
        self.arrived.notify_all();
    }

    /// Number of reads that had to wait for a pull, and their total wait.
    pub fn stall_stats(&self) -> (u64, Duration) {
        (
            self.stalled_reads.load(Ordering::Relaxed),
            Duration::from_nanos(self.stall_nanos.load(Ordering::Relaxed)),
        )
    }
}

impl GuestIo for DestIo {
    fn read(&self, block: usize) -> Vec<u8> {
        if self.transferred.get(block) && !self.failed.load(Ordering::SeqCst) {
            // Dirty: request a pull and wait until some arrival or a
            // superseding write clears the bit.
            let start = std::time::Instant::now();
            self.stalled_reads.fetch_add(1, Ordering::Relaxed);
            // A dropped receiver means the protocol thread died between
            // our failed-flag check and the send: poison ourselves so no
            // later reader parks on an unanswerable pull.
            if self.pull_tx.send(block).is_err() {
                self.poison();
            }
            let mut guard = self.gate.lock();
            while self.transferred.get(block) && !self.failed.load(Ordering::SeqCst) {
                self.arrived.wait_for(&mut guard, Duration::from_millis(50));
            }
            drop(guard);
            self.stall_nanos
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        self.disk.read_block(block)
    }

    fn write(&self, block: usize, data: &[u8]) {
        // The write overwrites the whole block: no pull needed, cancel
        // synchronization for it (paper lines 5-10).
        self.disk
            .submit(IoRequest::write(block, self.domain), Some(data));
        if self.transferred.clear(block) {
            self.recorder.record(|| Event::SyncCancelled {
                block: block as u64,
            });
            self.notify_block();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use vdisk::{stamp_bytes, VirtualDisk};

    fn tracked(blocks: usize) -> Arc<TrackedDisk> {
        Arc::new(TrackedDisk::new(Arc::new(VirtualDisk::dense(512, blocks))))
    }

    #[test]
    fn source_io_roundtrip() {
        let disk = tracked(8);
        let io = SourceIo::new(Arc::clone(&disk), DomainId(1));
        io.write(3, &stamp_bytes(3, 7, 512));
        assert_eq!(io.read(3), stamp_bytes(3, 7, 512));
    }

    #[test]
    fn dest_read_clean_block_never_pulls() {
        let disk = tracked(8);
        let transferred = Arc::new(AtomicBitmap::new(8));
        let (tx, rx) = unbounded();
        let io = DestIo::new(
            Arc::clone(&disk),
            DomainId(1),
            transferred,
            tx,
            Recorder::off(),
        );
        io.read(2);
        assert!(rx.try_recv().is_err(), "clean read must not pull");
        assert_eq!(io.stall_stats().0, 0);
    }

    #[test]
    fn dest_read_dirty_block_pulls_and_waits_for_arrival() {
        let disk = tracked(8);
        let transferred = Arc::new(AtomicBitmap::new(8));
        transferred.set(5);
        let (tx, rx) = unbounded();
        let io = Arc::new(DestIo::new(
            Arc::clone(&disk),
            DomainId(1),
            Arc::clone(&transferred),
            tx,
            Recorder::off(),
        ));
        let reader = {
            let io = Arc::clone(&io);
            std::thread::spawn(move || io.read(5))
        };
        // The protocol thread observes the pull request, "receives" the
        // block, applies it, clears the bit and notifies.
        let pulled = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("reader forwards a pull request");
        assert_eq!(pulled, 5);
        disk.disk().write_block(5, &stamp_bytes(5, 42, 512));
        transferred.clear(5);
        io.notify_block();
        let data = reader.join().unwrap();
        assert_eq!(data, stamp_bytes(5, 42, 512));
        let (stalls, wait) = io.stall_stats();
        assert_eq!(stalls, 1);
        assert!(wait > Duration::ZERO);
    }

    #[test]
    fn poisoned_dest_io_unparks_readers_promptly() {
        let disk = tracked(8);
        let transferred = Arc::new(AtomicBitmap::new(8));
        transferred.set(5);
        let (tx, rx) = unbounded();
        let io = Arc::new(DestIo::new(
            Arc::clone(&disk),
            DomainId(1),
            Arc::clone(&transferred),
            tx,
            Recorder::off(),
        ));
        let reader = {
            let io = Arc::clone(&io);
            std::thread::spawn(move || io.read(5))
        };
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5))
                .expect("reader forwards a pull request"),
            5
        );
        // The migration fails: the protocol thread poisons the io path
        // instead of answering. The reader must return (stale data) and
        // later reads must not park at all.
        drop(rx);
        io.poison();
        let t = std::time::Instant::now();
        reader.join().expect("reader thread");
        assert!(t.elapsed() < Duration::from_secs(2), "reader stayed parked");
        io.read(5); // still-dirty block: returns immediately once failed
    }

    #[test]
    fn dest_write_cancels_sync() {
        let disk = tracked(8);
        let transferred = Arc::new(AtomicBitmap::new(8));
        transferred.set(4);
        let (tx, rx) = unbounded();
        let io = DestIo::new(
            Arc::clone(&disk),
            DomainId(1),
            Arc::clone(&transferred),
            tx,
            Recorder::off(),
        );
        io.write(4, &stamp_bytes(4, 9, 512));
        assert!(!transferred.get(4), "write must clear the dirty bit");
        assert!(rx.try_recv().is_err(), "write must not pull");
        // Subsequent read sees local data without pulling.
        assert_eq!(io.read(4), stamp_bytes(4, 9, 512));
        assert!(rx.try_recv().is_err());
    }
}
