//! Live (threaded) migration prototype.
//!
//! This is the paper's `blkd`/`blkback` architecture rebuilt in userspace
//! with real bytes and real concurrency:
//!
//! * a **guest driver** thread plays the workload, writing stamped block
//!   contents through the write-intercepting [`vdisk::TrackedDisk`] — the
//!   `blkback` analogue — first on the source, then (after resume) on the
//!   destination;
//! * a **source protocol** thread runs pre-copy iterations by draining the
//!   atomic block-bitmap, then freeze-and-copy (ships the bitmap, not the
//!   blocks), then the post-copy push loop that also answers pulls
//!   preferentially;
//! * a **destination protocol** thread provisions the VBD, applies
//!   incoming blocks, and during post-copy implements the paper's
//!   destination algorithm: reads to dirty blocks wait on a pull, writes
//!   cancel synchronization, late pushes are dropped.
//!
//! Consistency is verified end-to-end: every guest write carries a unique
//! stamp, and after migration the destination disk must hold, for every
//! block, exactly the last stamp the guest wrote (or the initial image).

mod connect;
mod driver;
mod engine;
mod error;
mod io;

pub use connect::{
    duplex_connector_pair, Connector, DuplexConnector, OnceConnector, TcpDestConnector,
    TcpSourceConnector,
};
pub use driver::{DriverCtl, DriverHandle, DriverResult, LiveWorkload};
pub use engine::{
    run_live_migration, run_live_migration_connected, run_live_migration_faulty,
    run_live_migration_over, run_live_migration_replicated, run_live_migration_tcp,
    run_live_migration_tcp_faulty, run_live_migration_with, run_live_migration_with_faults,
    LiveConfig, LiveOutcome, LivePeer,
};
pub use error::MigrationError;
pub use io::{DestIo, GuestIo, SourceIo};
