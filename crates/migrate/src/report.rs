//! Migration outcome reports — the numbers behind every table and figure.

use serde::Serialize;

use des::SimDuration;
use simnet::proto::{TransferLedger, WireStats};
use workloads::probe::Sample;

/// Statistics of one pre-copy iteration (disk or memory).
#[derive(Debug, Clone, Serialize)]
pub struct IterationStats {
    /// Iteration number (1-based; iteration 1 is the full copy).
    pub index: u32,
    /// Blocks (or pages) transferred in this iteration.
    pub units_sent: u64,
    /// Bytes on the wire for this iteration.
    pub bytes: u64,
    /// Virtual-time duration of the iteration.
    pub duration_secs: f64,
    /// Dirty units accumulated by the time the iteration finished
    /// (the next iteration's work).
    pub dirty_at_end: u64,
}

/// Wall-clock (virtual) duration of each migration phase, seconds.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PhaseTimings {
    /// Iterative disk pre-copy.
    pub disk_precopy_secs: f64,
    /// Iterative memory pre-copy.
    pub mem_precopy_secs: f64,
    /// Freeze-and-copy (== downtime).
    pub freeze_secs: f64,
    /// Push-and-pull post-copy.
    pub postcopy_secs: f64,
}

/// Post-copy phase statistics.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PostCopyStats {
    /// Phase duration in seconds (the paper reports 349 ms / 380 ms).
    pub duration_secs: f64,
    /// Dirty blocks outstanding when the VM resumed.
    pub remaining_at_resume: u64,
    /// Blocks pushed by the source.
    pub pushed: u64,
    /// Blocks pulled on demand by guest reads.
    pub pulled: u64,
    /// Pushed blocks dropped because a destination write superseded them.
    pub dropped: u64,
    /// Largest pending-read queue population.
    pub pending_high_water: u64,
}

/// Bytes one peer holder contributed to a multi-source migration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PeerBytes {
    /// Peer host id.
    pub host: u64,
    /// Full blocks fetched from this peer.
    pub blocks: u64,
    /// Wire bytes those blocks cost.
    pub bytes: u64,
}

/// Multi-source block store accounting: where the owed full blocks
/// actually came from. All zeros/empty for single-source runs and
/// feature-off runs.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MultiSourceReport {
    /// Fetch plans computed (one per worklist that had a fresh peer).
    pub plans: u64,
    /// Owed full blocks routed to the migration source.
    pub planned_source: u64,
    /// Owed full blocks routed to peer holders.
    pub planned_peer: u64,
    /// Per-peer contribution, ascending host id.
    pub peer_bytes: Vec<PeerBytes>,
    /// Source-death failovers completed from surviving holders.
    pub failovers: u64,
}

impl MultiSourceReport {
    /// Fraction of owed full blocks that arrived from non-source peers
    /// (the E14 headline number).
    pub fn peer_fraction(&self) -> f64 {
        let fulls = self.planned_source + self.planned_peer;
        if fulls == 0 {
            0.0
        } else {
            self.planned_peer as f64 / fulls as f64
        }
    }

    /// Total full blocks fetched from peers.
    pub fn peer_blocks(&self) -> u64 {
        self.peer_bytes.iter().map(|p| p.blocks).sum()
    }
}

/// Complete report of one migration run.
#[derive(Debug, Clone, Serialize)]
pub struct MigrationReport {
    /// Engine that produced the report ("tpm", "im", "freeze-and-copy",
    /// "on-demand", "delta-queue").
    pub scheme: String,
    /// Workload running in the guest.
    pub workload: String,
    /// Total migration time: start to full synchronization (§III-A).
    pub total_time_secs: f64,
    /// Downtime: suspend on the source to resume on the destination.
    pub downtime_ms: f64,
    /// Disruption time: client-observed degradation (§III-A).
    pub disruption_secs: f64,
    /// Exact per-category byte counts.
    pub ledger: TransferLedger,
    /// Dedup/compression accounting for the disk pre-copy data plane:
    /// raw block bytes versus bytes that actually crossed, plus how many
    /// blocks went as references or compressed frames. All zeros for
    /// baselines and feature-off runs.
    pub wire: WireStats,
    /// Disk pre-copy iterations.
    pub disk_iterations: Vec<IterationStats>,
    /// Memory pre-copy iterations.
    pub mem_iterations: Vec<IterationStats>,
    /// Post-copy statistics.
    pub postcopy: PostCopyStats,
    /// Per-phase duration breakdown.
    pub phases: PhaseTimings,
    /// Client throughput timeline (Figures 5 & 6).
    pub timeline: Vec<Sample>,
    /// Destination I/O blocked time (delta-queue baseline only; zero for
    /// TPM — the property the paper claims).
    pub io_blocked_secs: f64,
    /// Blocks never synchronized at the report horizon (on-demand
    /// baseline's residual dependency; zero for TPM).
    pub residual_blocks: u64,
    /// Forwarded delta records that were redundant rewrites of an
    /// already-forwarded block (delta-queue baseline only; structurally
    /// zero for TPM's bitmap).
    pub redundant_deltas: u64,
    /// Disk pre-copy blocks carried by each parallel stream (one entry
    /// per stream; a single entry for the classic one-stream data plane,
    /// empty for baselines that never shard).
    pub stream_blocks: Vec<u64>,
    /// Multi-source block store accounting (bytes-from-source vs
    /// bytes-from-peers); defaulted for single-source runs.
    pub multisource: MultiSourceReport,
    /// Whether the destination state verified equal to the source state
    /// (modulo post-resume guest writes).
    pub consistent: bool,
}

impl MigrationReport {
    /// Amount of migrated data in MB (the unit of Tables I & II; the
    /// paper uses decimal-ish MB for a "39 070 MB" 40 GB disk, i.e. MiB).
    pub fn migrated_mb(&self) -> f64 {
        self.ledger.total() as f64 / (1024.0 * 1024.0)
    }

    /// Disk blocks retransferred after the first pass (the paper quotes
    /// 6 680 for the web server, 610 for video).
    pub fn retransferred_blocks(&self) -> u64 {
        self.disk_iterations
            .iter()
            .skip(1)
            .map(|i| i.units_sent)
            .sum()
    }

    /// Total migration time in seconds.
    pub fn total_time(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.total_time_secs)
    }

    /// Multi-section plain-text rendering of the whole report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== {} migration of '{}' — {} ===",
            self.scheme,
            self.workload,
            if self.consistent {
                "CONSISTENT"
            } else {
                "INCONSISTENT"
            }
        );
        let _ = writeln!(
            out,
            "total {:.1}s | downtime {:.1}ms | disruption {:.1}s | data {:.1} MB",
            self.total_time_secs,
            self.downtime_ms,
            self.disruption_secs,
            self.migrated_mb()
        );
        let _ = writeln!(
            out,
            "phases: disk pre-copy {:.1}s, memory pre-copy {:.2}s, freeze {:.0}ms, post-copy {:.0}ms",
            self.phases.disk_precopy_secs,
            self.phases.mem_precopy_secs,
            self.phases.freeze_secs * 1000.0,
            self.phases.postcopy_secs * 1000.0,
        );
        if !self.disk_iterations.is_empty() {
            let _ = writeln!(out, "disk pre-copy iterations:");
            for it in &self.disk_iterations {
                let _ = writeln!(
                    out,
                    "  #{:<2} {:>10} blocks {:>9.1} MB {:>8.2}s  (dirtied meanwhile: {})",
                    it.index,
                    it.units_sent,
                    it.bytes as f64 / 1048576.0,
                    it.duration_secs,
                    it.dirty_at_end
                );
            }
        }
        if !self.mem_iterations.is_empty() {
            let _ = writeln!(out, "memory pre-copy iterations:");
            for it in &self.mem_iterations {
                let _ = writeln!(
                    out,
                    "  #{:<2} {:>10} pages  {:>9.1} MB {:>8.2}s  (dirtied meanwhile: {})",
                    it.index,
                    it.units_sent,
                    it.bytes as f64 / 1048576.0,
                    it.duration_secs,
                    it.dirty_at_end
                );
            }
        }
        let _ = writeln!(
            out,
            "post-copy: {} outstanding at resume — {} pushed, {} pulled, {} dropped (peak pending {})",
            self.postcopy.remaining_at_resume,
            self.postcopy.pushed,
            self.postcopy.pulled,
            self.postcopy.dropped,
            self.postcopy.pending_high_water,
        );
        use simnet::proto::Category as C;
        let mb = |c: C| self.ledger.get(c) as f64 / 1048576.0;
        let _ = writeln!(
            out,
            "wire: disk pre-copy {:.1} MB, push {:.3} MB, pull {:.3} MB, memory {:.1} MB, bitmap {} B, cpu {:.2} MB",
            mb(C::DiskPrecopy),
            mb(C::DiskPush),
            mb(C::DiskPull),
            mb(C::Memory),
            self.ledger.get(C::Bitmap),
            mb(C::Cpu),
        );
        if self.wire.blocks_deduped > 0 || self.wire.blocks_compressed > 0 {
            let _ = writeln!(
                out,
                "content-aware: {:.1} MB raw -> {:.1} MB sent ({:.1}% off the wire; {} deduped, {} compressed)",
                self.wire.bytes_raw as f64 / 1048576.0,
                self.wire.bytes_sent as f64 / 1048576.0,
                self.wire.reduction_pct(),
                self.wire.blocks_deduped,
                self.wire.blocks_compressed,
            );
        }
        if self.multisource.planned_peer > 0 || self.multisource.failovers > 0 {
            let _ = writeln!(
                out,
                "multi-source: {} fulls from {} peer(s), {} from source ({:.1}% off-source); {} failover(s)",
                self.multisource.planned_peer,
                self.multisource.peer_bytes.len(),
                self.multisource.planned_source,
                self.multisource.peer_fraction() * 100.0,
                self.multisource.failovers,
            );
            for p in &self.multisource.peer_bytes {
                let _ = writeln!(
                    out,
                    "  peer {:<4} {:>10} blocks {:>9.1} MB",
                    p.host,
                    p.blocks,
                    p.bytes as f64 / 1048576.0
                );
            }
        }
        if self.io_blocked_secs > 0.0 {
            let _ = writeln!(out, "destination I/O blocked: {:.2}s", self.io_blocked_secs);
        }
        if self.residual_blocks > 0 {
            let _ = writeln!(
                out,
                "RESIDUAL DEPENDENCY: {} blocks never synchronized",
                self.residual_blocks
            );
        }
        out
    }

    /// One-line summary, used by the repro harness.
    pub fn summary(&self) -> String {
        format!(
            "{:<12} {:<12} total={:>8.1}s downtime={:>7.1}ms data={:>9.0}MB iters={} postcopy={:.0}ms (push {} pull {} drop {}) consistent={}",
            self.scheme,
            self.workload,
            self.total_time_secs,
            self.downtime_ms,
            self.migrated_mb(),
            self.disk_iterations.len(),
            self.postcopy.duration_secs * 1000.0,
            self.postcopy.pushed,
            self.postcopy.pulled,
            self.postcopy.dropped,
            self.consistent,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::proto::Category;

    fn sample_report() -> MigrationReport {
        let mut ledger = TransferLedger::new();
        ledger.add(Category::DiskPrecopy, 40 * 1024 * 1024 * 1024);
        ledger.add(Category::Memory, 600 * 1024 * 1024);
        MigrationReport {
            scheme: "tpm".into(),
            workload: "web".into(),
            total_time_secs: 796.1,
            downtime_ms: 60.0,
            disruption_secs: 3.0,
            ledger,
            wire: WireStats::default(),
            disk_iterations: vec![
                IterationStats {
                    index: 1,
                    units_sent: 10_485_760,
                    bytes: 40 * 1024 * 1024 * 1024,
                    duration_secs: 790.0,
                    dirty_at_end: 6_618,
                },
                IterationStats {
                    index: 2,
                    units_sent: 6_618,
                    bytes: 6_618 * 4096,
                    duration_secs: 0.5,
                    dirty_at_end: 62,
                },
                IterationStats {
                    index: 3,
                    units_sent: 62,
                    bytes: 62 * 4096,
                    duration_secs: 0.01,
                    dirty_at_end: 62,
                },
            ],
            mem_iterations: vec![],
            phases: PhaseTimings {
                disk_precopy_secs: 790.51,
                mem_precopy_secs: 5.2,
                freeze_secs: 0.06,
                postcopy_secs: 0.349,
            },
            postcopy: PostCopyStats {
                duration_secs: 0.349,
                remaining_at_resume: 62,
                pushed: 61,
                pulled: 1,
                dropped: 0,
                pending_high_water: 1,
            },
            timeline: vec![],
            io_blocked_secs: 0.0,
            residual_blocks: 0,
            redundant_deltas: 0,
            stream_blocks: vec![10_485_760 + 6_618 + 62],
            multisource: MultiSourceReport::default(),
            consistent: true,
        }
    }

    #[test]
    fn migrated_mb_sums_ledger() {
        let r = sample_report();
        assert!((r.migrated_mb() - (40.0 * 1024.0 + 600.0)).abs() < 0.01);
    }

    #[test]
    fn retransferred_counts_after_first_pass() {
        let r = sample_report();
        assert_eq!(r.retransferred_blocks(), 6_618 + 62);
    }

    #[test]
    fn summary_mentions_key_metrics() {
        let s = sample_report().summary();
        assert!(s.contains("796.1s"));
        assert!(s.contains("60.0ms"));
        assert!(s.contains("consistent=true"));
    }

    #[test]
    fn render_covers_all_sections() {
        let r = sample_report();
        let text = r.render();
        assert!(text.contains("CONSISTENT"));
        assert!(text.contains("downtime 60.0ms"));
        assert!(text.contains("disk pre-copy iterations:"));
        assert!(text.contains("6618"));
        assert!(text.contains("post-copy: 62 outstanding"));
        assert!(text.contains("wire: disk pre-copy"));
        // No residual / blocked sections for a clean TPM run.
        assert!(!text.contains("RESIDUAL"));
        assert!(!text.contains("I/O blocked"));
    }

    #[test]
    fn report_serializes_to_json() {
        let r = sample_report();
        let j = serde_json::to_string(&r).unwrap();
        assert!(j.contains("\"scheme\":\"tpm\""));
        assert!(j.contains("\"downtime_ms\":60.0"));
        assert!(j.contains("\"disk_precopy_secs\""));
    }

    #[test]
    fn phase_timings_sum_close_to_total() {
        let r = sample_report();
        let sum = r.phases.disk_precopy_secs
            + r.phases.mem_precopy_secs
            + r.phases.freeze_secs
            + r.phases.postcopy_secs;
        assert!((sum - r.total_time_secs).abs() < 1.0);
    }
}
