//! The simulated TPM/IM engine.

use std::collections::BTreeMap;
use std::sync::Arc;

use block_bitmap::{ser, DirtyMap, FlatBitmap};
use blockstore::{BlockDirectory, FetchPlan, FetchPlanner};
use des::{SimDuration, SimRng, SimTime};
use simnet::capacity::seek_aware_share;
use simnet::proto::{Category, TransferLedger, WireStats, BLOCK_REF_WIRE, FRAME_OVERHEAD};
use telemetry::Recorder;
use vdisk::MetaDisk;
use vmstate::{CpuState, Domain, DomainId, GuestMemory, WssModel};
use workloads::probe::ThroughputProbe;
use workloads::{OpKind, Workload, WorkloadKind};

use crate::report::{IterationStats, MigrationReport, MultiSourceReport, PeerBytes, PhaseTimings};
use crate::sim::postcopy::{run_postcopy, PostCopyConfig};
use crate::sim::tracker::DirtyTracker;
use crate::MigrationConfig;

/// The single migrating VM's id inside the engine's private
/// [`BlockDirectory`] (the orchestrator uses real VM ids; a lone engine
/// has only one image to name).
const MS_VM: u64 = 0;

/// Everything a completed migration leaves behind: the report, the
/// destination-side state the VM now runs on, and the IM tracker that a
/// later migration back can use.
pub struct TpmOutcome {
    /// Metrics of the run.
    pub report: MigrationReport,
    /// The (now stale) source disk, exactly as it was at suspend time plus
    /// nothing — the source was retired.
    pub src_disk: MetaDisk,
    /// The live destination disk the VM runs on.
    pub dst_disk: MetaDisk,
    /// The live destination memory.
    pub dst_mem: GuestMemory,
    /// Destination-side tracker of post-resume writes (the paper's
    /// BM_3 / new_block_bitmap, feeding IM).
    pub im_tracker: DirtyTracker,
    /// The workload, carried over so IM continues the same op stream.
    pub workload: Box<dyn Workload>,
    /// The RNG, carried over for determinism across TPM→dwell→IM.
    pub rng: SimRng,
    /// Client throughput samples across the whole run so far.
    pub probe: ThroughputProbe,
    /// Virtual time at the end of the run.
    pub end_time: SimTime,
    /// Workload kind, for constructing follow-up runs.
    pub kind: WorkloadKind,
}

/// The simulated three-phase migration engine.
pub struct TpmEngine {
    pub(crate) cfg: MigrationConfig,
    pub(crate) kind: WorkloadKind,
    pub(crate) workload: Box<dyn Workload>,
    pub(crate) rng: SimRng,
    pub(crate) now: SimTime,
    pub(crate) src_disk: MetaDisk,
    pub(crate) dst_disk: MetaDisk,
    pub(crate) src_mem: GuestMemory,
    pub(crate) dst_mem: GuestMemory,
    pub(crate) cpu: CpuState,
    pub(crate) wss: WssModel,
    pub(crate) domain: Domain,
    pub(crate) tracker: DirtyTracker,
    pub(crate) tracking: bool,
    pub(crate) probe: ThroughputProbe,
    pub(crate) ledger: TransferLedger,
    /// Dedup/compression accounting for the disk pre-copy data plane.
    pub(crate) wire: WireStats,
    /// `Some` = incremental migration: only these blocks need the first
    /// pass.
    pub(crate) initial_to_send: Option<FlatBitmap>,
    pub(crate) scheme: &'static str,
    pub(crate) block_carry: f64,
    /// Guest-declared free blocks (§VII future work): never transferred
    /// unless written, and exempt from the consistency check — their
    /// contents are, by the guest's own declaration, meaningless.
    pub(crate) free_blocks: Option<FlatBitmap>,
    /// Blocks carried by each parallel stream across all disk phases
    /// (one entry per stream; index 0 carries everything when
    /// `cfg.streams == 1`).
    pub(crate) stream_blocks: Vec<u64>,
    /// Telemetry sink; disabled by default (a single atomic check per
    /// potential record). Events are stamped with virtual time.
    pub(crate) recorder: Arc<Recorder>,
    /// Peer holders for multi-source fetching: host id → the image that
    /// host holds. Empty (the default) means classic single-source.
    pub(crate) peers: BTreeMap<u64, MetaDisk>,
    /// Multi-source plan accounting for the report.
    pub(crate) ms: MultiSourceReport,
    /// Per-peer (blocks, bytes) fetched so far.
    pub(crate) peer_fetched: BTreeMap<u64, (u64, u64)>,
}

impl TpmEngine {
    /// Fresh primary migration: the source disk holds an installed system
    /// image (every block written once); the destination is blank.
    pub fn new(cfg: MigrationConfig, kind: WorkloadKind) -> Self {
        cfg.validate();
        let mut rng = SimRng::new(cfg.seed);
        let workload = kind.build(cfg.disk_blocks as u64);
        let mut src_disk = MetaDisk::new(cfg.disk_blocks);
        // The installed image: every block distinct from the blank
        // destination, so the first full pass is load-bearing for the
        // consistency check.
        for b in 0..cfg.disk_blocks {
            src_disk.write(b);
        }
        let mut src_mem = GuestMemory::new(4096, cfg.mem_pages);
        for p in 0..cfg.mem_pages {
            src_mem.touch(p);
        }
        src_mem.drain_dirty();
        let mut cpu = CpuState::new(cfg.vcpus);
        cpu.scribble(rng.next_u64());
        let wss = workload.wss_model(cfg.mem_pages);
        let tracker = DirtyTracker::new(cfg.bitmap, cfg.disk_blocks);
        Self {
            dst_disk: MetaDisk::new(cfg.disk_blocks),
            dst_mem: GuestMemory::new(4096, cfg.mem_pages),
            domain: Domain::new(
                DomainId(1),
                format!("vm-{}", workload.name()),
                GuestMemory::new(4096, 1),
                CpuState::new(1),
            ),
            kind,
            workload,
            rng,
            now: SimTime::ZERO,
            src_disk,
            src_mem,
            cpu,
            wss,
            tracker,
            tracking: false,
            probe: ThroughputProbe::new(),
            ledger: TransferLedger::new(),
            wire: WireStats::default(),
            initial_to_send: None,
            scheme: "tpm",
            block_carry: 0.0,
            free_blocks: None,
            stream_blocks: vec![0; cfg.streams],
            cfg,
            recorder: Recorder::off(),
            peers: BTreeMap::new(),
            ms: MultiSourceReport::default(),
            peer_fetched: BTreeMap::new(),
        }
    }

    /// Attach a telemetry recorder; every subsequent phase, iteration, and
    /// post-copy block event is journaled in virtual time.
    pub fn set_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = recorder;
    }

    /// Enable guest-assisted sparse migration (§VII): the guest declares
    /// `free` blocks unused, the first pre-copy pass skips them, and the
    /// consistency contract excludes them (unless the guest writes them,
    /// which re-enters them through the dirty path).
    ///
    /// # Panics
    /// Panics when the bitmap size does not match the disk.
    pub fn set_free_blocks(&mut self, free: FlatBitmap) {
        assert_eq!(
            free.len(),
            self.cfg.disk_blocks,
            "free bitmap must cover the whole disk"
        );
        self.free_blocks = Some(free);
    }

    /// Attach peer holders for multi-source fetching: each entry maps a
    /// host id to the disk image that host holds (a template clone, a
    /// `ReplicaTable` departure image…). Owed full blocks a peer holds
    /// at the live generation are fetched from the peers instead of the
    /// source, paced by `max_min_share` over `cfg.peer_budget` and the
    /// destination's ingest rate.
    ///
    /// # Panics
    /// Panics when a peer image's geometry does not match the disk.
    pub fn set_peers(&mut self, peers: BTreeMap<u64, MetaDisk>) {
        for disk in peers.values() {
            assert_eq!(
                disk.num_blocks(),
                self.cfg.disk_blocks,
                "peer image must match the disk geometry"
            );
        }
        self.peers = peers;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run the guest without migrating for `duration` (pre-migration
    /// timeline for the figures; also ages the disk image).
    pub fn warmup(&mut self, duration: SimDuration) {
        let end = self.now + duration;
        while self.now < end {
            let dt = self.cfg.step.min(end.since(self.now));
            self.guest_step(dt, self.workload_solo_share());
        }
    }

    /// Disk share the workload gets when no migration stream competes.
    fn workload_solo_share(&self) -> f64 {
        self.workload.disk_demand().min(self.cfg.disk_capacity)
    }

    /// Advance the guest by `dt` at the given achieved disk share: apply
    /// workload ops to the source disk (tracking writes when enabled),
    /// dirty guest memory, record a throughput sample.
    fn guest_step(&mut self, dt: SimDuration, w_share: f64) {
        let ops = self.workload.ops_for(dt, w_share, &mut self.rng);
        for op in ops {
            if let OpKind::Write { block } = op.kind {
                let b = block as usize;
                self.src_disk.write(b);
                if self.tracking {
                    self.tracker.set(b);
                }
            }
        }
        self.wss.dirty_for(&mut self.src_mem, dt, &mut self.rng);
        self.probe
            .record(self.now + dt, self.workload.client_throughput(w_share));
        self.now += dt;
    }

    /// Transfer every block marked in `set` to the destination while the
    /// guest keeps running, contending for the disk. With `cfg.dedup` the
    /// set is first split against a snapshot of what the destination
    /// already holds verbatim (same generation at the same index — the
    /// MetaDisk notion of identical content): those blocks cross as
    /// 16-byte references, the rest as full payloads. Returns
    /// (blocks_sent, bytes, duration).
    fn transfer_disk_set(&mut self, set: &FlatBitmap, cat: Category) -> (u64, u64, SimDuration) {
        if !self.cfg.dedup {
            return self.transfer_disk_fulls(set, cat);
        }
        let mut refs = FlatBitmap::new(set.len());
        for b in set.iter_set() {
            if self.dst_disk.generation(b) == self.src_disk.generation(b) {
                refs.set(b);
            }
        }
        if refs.count_ones() == 0 {
            // Nothing to reference: take the classic path, bit-identical
            // to a dedup-off run (same floats, same ledger, same clock).
            return self.transfer_disk_fulls(set, cat);
        }
        // Full payloads first, then the cheap references — two
        // uniform-cost sub-phases, so K-stream sharding still cannot
        // change how many blocks cross per step (the invariant behind
        // `four_streams_match_single_stream_exactly`).
        let mut fulls = set.clone();
        fulls.subtract(&refs);
        let (fs, fb, fd) = self.transfer_disk_fulls(&fulls, cat);
        let (rs, rb, rd) = self.transfer_disk_blocks::<true>(&refs, cat);
        (fs + rs, fb + rb, fd + rd)
    }

    /// Route full payloads: classic source-streamed transfer, or — with
    /// multi-source on and at least one fresh holder — a planned split
    /// between the source stream and peer-fetch sessions. With
    /// multisource off, no peers attached, or no owed block fresh on
    /// any peer, the call reduces to the classic transfer loop with
    /// zero extra float math: bit-identical ledger and clock.
    fn transfer_disk_fulls(
        &mut self,
        fulls: &FlatBitmap,
        cat: Category,
    ) -> (u64, u64, SimDuration) {
        if !self.cfg.multisource || self.peers.is_empty() || fulls.count_ones() == 0 {
            return self.transfer_disk_blocks::<false>(fulls, cat);
        }
        let mut dir = BlockDirectory::new();
        for (&host, disk) in &self.peers {
            dir.publish(MS_VM, host, disk);
        }
        let budgets: BTreeMap<u64, f64> = self
            .peers
            .keys()
            .map(|&h| (h, self.cfg.peer_budget))
            .collect();
        let plan = FetchPlanner::plan(
            &dir,
            MS_VM,
            &self.src_disk,
            fulls,
            None, // dedup already classified resident content as refs
            &budgets,
            self.cfg.migration_net_rate(),
        );
        if plan.any_peer.count_ones() == 0 {
            return self.transfer_disk_blocks::<false>(fulls, cat);
        }
        self.ms.plans += 1;
        self.ms.planned_source += plan.source_only.count_ones() as u64;
        self.ms.planned_peer += plan.any_peer.count_ones() as u64;
        let rec = Arc::clone(&self.recorder);
        rec.record_at_nanos(self.now.as_nanos(), || telemetry::Event::FetchPlanned {
            side: telemetry::Side::Destination,
            source_blocks: plan.source_only.count_ones() as u64,
            peer_blocks: plan.any_peer.count_ones() as u64,
            ref_blocks: 0,
            peers: plan.per_peer.len() as u64,
        });
        let (ss, sb, sd) = self.transfer_disk_blocks::<false>(&plan.source_only, cat);
        let (ps, pb, pd) = self.transfer_peer_blocks(&plan);
        (ss + ps, sb + pb, sd + pd)
    }

    /// Drain the plan's per-peer assignments: blocks stream from their
    /// holders round-robin (ascending host id) at the aggregate max-min
    /// fan-in rate, while the guest keeps its full disk share — peer
    /// fetches never touch the source's disk, which is the whole point.
    /// Ledger entries go to [`Category::DiskPull`]: peer traffic
    /// accounts like post-copy pulls, per the wire protocol's category
    /// mapping for `BlockData`.
    fn transfer_peer_blocks(&mut self, plan: &FetchPlan) -> (u64, u64, SimDuration) {
        let phase_start = self.now;
        let total = plan.any_peer.count_ones() as u64;
        if total == 0 {
            return (0, 0, SimDuration::ZERO);
        }
        // Aggregate fan-in: the per-peer max-min shares already respect
        // both the holders' budgets and the destination's ingest cap.
        let rate: f64 = plan
            .per_peer
            .keys()
            .filter_map(|h| plan.shares.get(h))
            .sum::<f64>()
            .max(1.0);
        let bs = self.cfg.block_size;
        let hosts: Vec<u64> = plan.per_peer.keys().copied().collect();
        let mut cursors: BTreeMap<u64, usize> = hosts.iter().map(|&h| (h, 0usize)).collect();
        let parked = plan.any_peer.len();
        let mut session: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let mut sent = 0u64;
        let mut bytes = 0u64;
        let mut carry = 0.0f64;
        let mut rr = 0usize;
        while sent < total {
            let remaining = total - sent;
            let full_step_blocks = rate * self.cfg.step.as_secs_f64() / bs as f64;
            let dt = if full_step_blocks + carry >= remaining as f64 {
                SimDuration::from_secs_f64(((remaining as f64 - carry).max(0.0) * bs as f64) / rate)
            } else {
                self.cfg.step
            };
            let raw = carry + rate * dt.as_secs_f64() / bs as f64;
            let mut n = (raw.floor() as u64).min(remaining);
            carry = raw - n as f64;
            if dt == SimDuration::ZERO || (n == 0 && dt < self.cfg.step) {
                n = remaining;
                carry = 0.0;
            }
            for _ in 0..n {
                let (host, b) = loop {
                    let h = hosts[rr % hosts.len()];
                    rr += 1;
                    let cur = cursors.get(&h).copied().unwrap_or(parked);
                    if cur >= parked {
                        continue;
                    }
                    if let Some(b) = plan.per_peer.get(&h).and_then(|bm| bm.next_set_from(cur)) {
                        break (h, b);
                    }
                    // This peer's assignment is drained; `sent < total`
                    // guarantees another peer still holds blocks.
                    cursors.insert(h, parked);
                };
                cursors.insert(host, b + 1);
                if let Some(peer_disk) = self.peers.get(&host) {
                    self.dst_disk.copy_block_from(peer_disk, b);
                }
                let e = session.entry(host).or_insert((0, 0));
                e.0 += 1;
                e.1 += bs;
            }
            if n > 0 {
                // BlockData frames: 16-byte header per block, one frame
                // envelope per step batch.
                self.ledger
                    .add(Category::DiskPull, n * (bs + 16) + FRAME_OVERHEAD);
                if self.cfg.compress {
                    self.wire.bytes_sent += n * bs / 2;
                    self.wire.blocks_compressed += n;
                } else {
                    self.wire.bytes_sent += n * bs;
                }
                self.wire.bytes_raw += n * bs;
            }
            sent += n;
            bytes += n * bs;
            self.guest_step(dt, self.workload_solo_share());
        }
        let rec = Arc::clone(&self.recorder);
        for (host, (blocks, b)) in session {
            rec.record_at_nanos(self.now.as_nanos(), || telemetry::Event::PeerFetch {
                side: telemetry::Side::Destination,
                peer: host,
                blocks,
                bytes: b,
            });
            let e = self.peer_fetched.entry(host).or_insert((0, 0));
            e.0 += blocks;
            e.1 += b;
        }
        (sent, bytes, self.now.since(phase_start))
    }

    /// Uniform-cost transfer loop: every block in `set` crosses either as
    /// a full payload (`AS_REFS == false`) or as a 16-byte content
    /// reference. A referenced block is *not* copied — the destination
    /// already holds identical content by the snapshot; if the guest
    /// overwrites it mid-flight the dirty tracker re-enters it as a full
    /// send, exactly like the live engine's fingerprint-mismatch
    /// fallback.
    fn transfer_disk_blocks<const AS_REFS: bool>(
        &mut self,
        set: &FlatBitmap,
        cat: Category,
    ) -> (u64, u64, SimDuration) {
        let phase_start = self.now;
        let total = set.count_ones() as u64;
        if total == 0 {
            return (0, 0, SimDuration::ZERO);
        }
        let mut bytes = 0u64;
        let mut sent = 0u64;
        let bs = self.cfg.block_size;
        // Budget the step in whatever unit actually crosses the wire.
        // With `AS_REFS == false` this is exactly `bs as f64`, so the
        // float sequence of a feature-off run is unchanged bit for bit.
        let unit_bytes = if AS_REFS {
            BLOCK_REF_WIRE as f64
        } else {
            bs as f64
        };
        // One cursor per stream, each walking its own word-aligned shard
        // of the set (a lone stream walks the set directly, no copy).
        // Blocks drain round-robin across streams, so sharding decides
        // *which* block crosses next — the per-step quota `n`, the ledger
        // entries, and the guest stepping below never see the stream
        // count, which is what keeps K-stream runs bit-identical to
        // single-stream in time and bytes.
        let k = self.cfg.streams;
        let shards: Vec<FlatBitmap> = if k > 1 {
            FlatBitmap::shard_bounds(set.len(), k)
                .into_iter()
                .map(|r| set.restrict_to(r))
                .collect()
        } else {
            Vec::new()
        };
        let mut cursors = vec![0usize; k];
        let mut rr = 0usize;
        while sent < total {
            let w_demand = self.workload.disk_demand();
            let (w_share, m_share) = seek_aware_share(
                self.cfg.disk_capacity,
                self.cfg.seek_penalty,
                w_demand,
                self.cfg.disk_stream_demand(),
            );
            debug_assert!(m_share > 0.0, "migration starved of disk bandwidth");
            // Blocks transferable in a full step; shrink the step when the
            // set is nearly done so phase timing stays exact.
            let remaining = total - sent;
            let full_step_blocks = m_share * self.cfg.step.as_secs_f64() / unit_bytes;
            let dt = if full_step_blocks + self.block_carry >= remaining as f64 {
                SimDuration::from_secs_f64(
                    ((remaining as f64 - self.block_carry).max(0.0) * unit_bytes) / m_share,
                )
            } else {
                self.cfg.step
            };
            let raw = self.block_carry + m_share * dt.as_secs_f64() / unit_bytes;
            let mut n = (raw.floor() as u64).min(remaining);
            self.block_carry = raw - n as f64;
            if dt == SimDuration::ZERO || (n == 0 && dt < self.cfg.step) {
                // Numerical corner: force the last block(s) through.
                n = remaining;
                self.block_carry = 0.0;
            }
            for _ in 0..n {
                let (s, b) = loop {
                    let s = rr % k;
                    rr += 1;
                    // A drained cursor parks at `set.len()` so the probe
                    // skips it without re-scanning the map tail.
                    if cursors[s] >= set.len() {
                        continue;
                    }
                    let shard = if k > 1 { &shards[s] } else { set };
                    if let Some(b) = shard.next_set_from(cursors[s]) {
                        break (s, b);
                    }
                    // This shard is drained; `sent < total` guarantees
                    // another stream still holds blocks.
                    cursors[s] = set.len();
                };
                cursors[s] = b + 1;
                if !AS_REFS {
                    self.dst_disk.copy_block_from(&self.src_disk, b);
                }
                self.stream_blocks[s] += 1;
            }
            if n > 0 {
                if AS_REFS {
                    self.ledger.add(cat, n * BLOCK_REF_WIRE + FRAME_OVERHEAD);
                    self.wire.bytes_sent += n * BLOCK_REF_WIRE;
                    self.wire.blocks_deduped += n;
                } else {
                    self.ledger.add(cat, n * (bs + 8) + FRAME_OVERHEAD);
                    if self.cfg.compress {
                        // Modeled 2:1 on residual full payloads — the sim
                        // has no real bytes, so this touches the wire
                        // accounting only, never the ledger or the clock.
                        self.wire.bytes_sent += n * bs / 2;
                        self.wire.blocks_compressed += n;
                    } else {
                        self.wire.bytes_sent += n * bs;
                    }
                }
                self.wire.bytes_raw += n * bs;
            }
            sent += n;
            bytes += n * if AS_REFS { BLOCK_REF_WIRE } else { bs };
            self.guest_step(dt, w_share);
        }
        (sent, bytes, self.now.since(phase_start))
    }

    /// Transfer every page marked in `set` (memory is network-bound, not
    /// disk-bound; the guest keeps its full disk share). Returns
    /// (pages_sent, bytes, duration).
    fn transfer_mem_set(&mut self, set: &FlatBitmap) -> (u64, u64, SimDuration) {
        let phase_start = self.now;
        let total = set.count_ones() as u64;
        if total == 0 {
            return (0, 0, SimDuration::ZERO);
        }
        let rate = self.cfg.migration_net_rate();
        let page = 4096u64;
        let mut sent = 0u64;
        let mut cursor = 0usize;
        let mut carry = 0.0f64;
        while sent < total {
            let remaining = total - sent;
            let full_step_pages = rate * self.cfg.step.as_secs_f64() / page as f64;
            let dt = if full_step_pages + carry >= remaining as f64 {
                SimDuration::from_secs_f64(
                    ((remaining as f64 - carry).max(0.0) * page as f64) / rate,
                )
            } else {
                self.cfg.step
            };
            let raw = carry + rate * dt.as_secs_f64() / page as f64;
            let mut n = (raw.floor() as u64).min(remaining);
            carry = raw - n as f64;
            if dt == SimDuration::ZERO || (n == 0 && dt < self.cfg.step) {
                n = remaining;
                carry = 0.0;
            }
            for _ in 0..n {
                let p = set
                    .next_set_from(cursor)
                    .expect("set must contain the pages being counted");
                self.dst_mem.copy_page_from(&self.src_mem, p);
                cursor = p + 1;
            }
            if n > 0 {
                self.ledger
                    .add(Category::Memory, n * (page + 8) + FRAME_OVERHEAD);
            }
            sent += n;
            self.guest_step(dt, self.workload_solo_share());
        }
        (sent, total * page, self.now.since(phase_start))
    }

    /// Execute the three phases. Consumes the engine; the guest ends up
    /// running on the destination.
    pub fn run(mut self) -> TpmOutcome {
        let t_start = self.now;
        self.tracking = true;
        let mut disk_iterations: Vec<IterationStats> = Vec::new();
        let rec = Arc::clone(&self.recorder);
        rec.record_at_nanos(t_start.as_nanos(), || telemetry::Event::PhaseStart {
            side: telemetry::Side::Source,
            phase: telemetry::Phase::DiskPrecopy,
        });

        // ---------------- Phase 1a: iterative disk pre-copy ----------------
        let mut to_send = match self.initial_to_send.take() {
            Some(bm) => bm,
            None => FlatBitmap::all_set(self.cfg.disk_blocks),
        };
        if let Some(free) = &self.free_blocks {
            to_send.subtract(free);
        }
        for iter in 1..=self.cfg.max_disk_iterations {
            let (sent, bytes, duration) = self.transfer_disk_set(&to_send, Category::DiskPrecopy);
            let dirty = self.tracker.drain();
            let dirty_count = dirty.count_ones();
            disk_iterations.push(IterationStats {
                index: iter,
                units_sent: sent,
                bytes,
                duration_secs: duration.as_secs_f64(),
                dirty_at_end: dirty_count as u64,
            });
            rec.record_at_nanos(self.now.as_nanos(), || telemetry::Event::Iteration {
                side: telemetry::Side::Source,
                resource: telemetry::Resource::Disk,
                index: iter as u64,
                units_sent: sent,
                dirty_at_end: dirty_count as u64,
            });
            rec.record_at_nanos(self.now.as_nanos(), || telemetry::Event::BitmapSnapshot {
                side: telemetry::Side::Source,
                set_bits: dirty_count as u64,
            });
            // Stop conditions (§IV-A-1): converged, iteration cap, or a
            // dirty rate the transfer cannot outrun.
            let converged = dirty_count <= self.cfg.disk_dirty_threshold;
            let capped = iter == self.cfg.max_disk_iterations;
            let diverging = duration > SimDuration::ZERO
                && sent > 0
                && (dirty_count as f64 / duration.as_secs_f64())
                    >= (sent as f64 / duration.as_secs_f64());
            if converged || capped || diverging {
                // The final dirty set rides along through the memory phase,
                // still accumulating, and crosses as the freeze bitmap.
                self.tracker.merge(&dirty);
                break;
            }
            to_send = dirty;
        }

        let t_disk_end = self.now;
        rec.record_at_nanos(t_disk_end.as_nanos(), || telemetry::Event::PhaseEnd {
            side: telemetry::Side::Source,
            phase: telemetry::Phase::DiskPrecopy,
        });
        rec.record_at_nanos(t_disk_end.as_nanos(), || telemetry::Event::PhaseStart {
            side: telemetry::Side::Source,
            phase: telemetry::Phase::MemPrecopy,
        });

        // ---------------- Phase 1b: iterative memory pre-copy --------------
        let mut mem_iterations: Vec<IterationStats> = Vec::new();
        self.src_mem.drain_dirty(); // everything is sent in pass 1 anyway
        let mut pages_to_send = FlatBitmap::all_set(self.cfg.mem_pages);
        let mut remaining_pages = FlatBitmap::new(self.cfg.mem_pages);
        for iter in 1..=self.cfg.max_mem_iterations {
            let (sent, bytes, duration) = self.transfer_mem_set(&pages_to_send);
            let dirty = self.src_mem.drain_dirty();
            let dirty_count = dirty.count_ones();
            mem_iterations.push(IterationStats {
                index: iter,
                units_sent: sent,
                bytes,
                duration_secs: duration.as_secs_f64(),
                dirty_at_end: dirty_count as u64,
            });
            rec.record_at_nanos(self.now.as_nanos(), || telemetry::Event::Iteration {
                side: telemetry::Side::Source,
                resource: telemetry::Resource::Memory,
                index: iter as u64,
                units_sent: sent,
                dirty_at_end: dirty_count as u64,
            });
            let converged = dirty_count <= self.cfg.mem_dirty_threshold;
            let capped = iter == self.cfg.max_mem_iterations;
            let diverging =
                duration > SimDuration::ZERO && sent > 0 && (dirty_count as f64) >= sent as f64;
            if converged || capped || diverging {
                remaining_pages = dirty;
                break;
            }
            pages_to_send = dirty;
        }

        // ---------------- Phase 2: freeze-and-copy -------------------------
        self.domain.suspend().expect("guest was running");
        let t_suspend = self.now;
        rec.record_at_nanos(t_suspend.as_nanos(), || telemetry::Event::PhaseEnd {
            side: telemetry::Side::Source,
            phase: telemetry::Phase::MemPrecopy,
        });
        rec.record_at_nanos(t_suspend.as_nanos(), || telemetry::Event::PhaseStart {
            side: telemetry::Side::Source,
            phase: telemetry::Phase::Freeze,
        });
        rec.record_at_nanos(t_suspend.as_nanos(), || telemetry::Event::Suspended {
            side: telemetry::Side::Source,
        });
        self.probe.record(t_suspend, 0.0);
        let final_bitmap = self.tracker.drain();
        let bitmap_encoded_len = ser::encoded_len(&final_bitmap) as u64;
        rec.record_at_nanos(t_suspend.as_nanos(), || telemetry::Event::BitmapEncoded {
            set_bits: final_bitmap.count_ones() as u64,
            encoded_bytes: bitmap_encoded_len,
        });
        let page = 4096u64;
        let rem_count = remaining_pages.count_ones() as u64;
        let down_bytes = rem_count * (page + 8)
            + self.cpu.size_bytes() as u64
            + bitmap_encoded_len
            + 3 * FRAME_OVERHEAD;
        self.ledger
            .add(Category::Memory, rem_count * (page + 8) + FRAME_OVERHEAD);
        self.ledger
            .add(Category::Cpu, self.cpu.size_bytes() as u64 + FRAME_OVERHEAD);
        self.ledger
            .add(Category::Bitmap, bitmap_encoded_len + FRAME_OVERHEAD);
        for p in remaining_pages.iter_set() {
            self.dst_mem.copy_page_from(&self.src_mem, p);
        }
        let dst_cpu = self.cpu.clone();
        let rate = self.cfg.migration_net_rate();
        let downtime = self.cfg.suspend_overhead
            + SimDuration::from_secs_f64(down_bytes as f64 / rate)
            + self.cfg.link.latency()
            + self.cfg.resume_overhead;
        self.now += downtime;
        self.probe.record(self.now, 0.0);

        // Memory and CPU must now be exactly synchronized.
        let mem_consistent = self.src_mem.content_equals(&self.dst_mem);
        let cpu_consistent = dst_cpu.checksum() == self.cpu.checksum();

        self.domain.resume().expect("guest was suspended");
        let t_resume = self.now;
        rec.record_at_nanos(t_resume.as_nanos(), || telemetry::Event::PhaseEnd {
            side: telemetry::Side::Source,
            phase: telemetry::Phase::Freeze,
        });
        rec.record_at_nanos(t_resume.as_nanos(), || telemetry::Event::Resumed {
            side: telemetry::Side::Destination,
        });
        rec.record_at_nanos(t_resume.as_nanos(), || telemetry::Event::PhaseStart {
            side: telemetry::Side::Destination,
            phase: telemetry::Phase::PostCopy,
        });

        // ---------------- Phase 3: push-and-pull post-copy -----------------
        let mut im_tracker = DirtyTracker::new(self.cfg.bitmap, self.cfg.disk_blocks);
        let (w_share_dst, push_share) = seek_aware_share(
            self.cfg.disk_capacity,
            self.cfg.seek_penalty,
            self.workload.disk_demand(),
            self.cfg.disk_stream_demand(),
        );
        let pc_cfg = PostCopyConfig {
            block_size: self.cfg.block_size,
            push_rate: push_share.max(1.0),
            workload_share: w_share_dst,
            latency: self.cfg.link.latency(),
            push_batch: 32,
            slice: SimDuration::from_millis(20),
            horizon: self.cfg.postcopy_horizon,
            push_enabled: true,
        };
        let outcome = run_postcopy(
            pc_cfg,
            t_resume,
            &self.src_disk,
            &mut self.dst_disk,
            final_bitmap.clone(),
            final_bitmap,
            &mut im_tracker,
            self.workload.as_mut(),
            &mut self.rng,
            &mut self.ledger,
            &mut self.probe,
            &rec,
        );
        self.now = outcome.finished_at + self.cfg.postcopy_fixed_overhead;
        let mut pc_stats = outcome.stats;
        // One subtraction over the whole span (rather than summing partial
        // spans) so the report and a journal-reconstructed timing are the
        // same f64, bit for bit.
        pc_stats.duration_secs = self.now.since(t_resume).as_secs_f64();
        rec.record_at_nanos(self.now.as_nanos(), || telemetry::Event::PhaseEnd {
            side: telemetry::Side::Destination,
            phase: telemetry::Phase::PostCopy,
        });

        // ---------------- Verification & report ----------------------------
        // Every difference between source and destination must be a block
        // the guest wrote after resuming.
        let im_snapshot = match &im_tracker {
            DirtyTracker::Flat(b) => b.clone(),
            DirtyTracker::Layered(b) => b.to_flat(),
        };
        let disk_consistent = self
            .src_disk
            .diff_blocks(&self.dst_disk)
            .into_iter()
            .all(|b| im_snapshot.get(b) || self.free_blocks.as_ref().is_some_and(|f| f.get(b)));
        let total_time = self.now.since(t_start);
        let downtime_ms = downtime.as_millis_f64();

        let baseline = self.workload.client_throughput(self.workload_solo_share());
        let disruption = self.probe.disruption_time(baseline, 0.10);

        let report = MigrationReport {
            scheme: self.scheme.into(),
            workload: self.workload.name().into(),
            total_time_secs: total_time.as_secs_f64(),
            downtime_ms,
            disruption_secs: disruption.as_secs_f64(),
            ledger: self.ledger.clone(),
            wire: self.wire,
            disk_iterations,
            mem_iterations,
            phases: PhaseTimings {
                disk_precopy_secs: t_disk_end.since(t_start).as_secs_f64(),
                mem_precopy_secs: t_suspend.since(t_disk_end).as_secs_f64(),
                freeze_secs: downtime.as_secs_f64(),
                postcopy_secs: pc_stats.duration_secs,
            },
            postcopy: pc_stats.clone(),
            timeline: self.probe.samples().to_vec(),
            io_blocked_secs: 0.0,
            residual_blocks: outcome.residual_blocks,
            redundant_deltas: 0,
            stream_blocks: self.stream_blocks.clone(),
            multisource: {
                let mut ms = self.ms.clone();
                ms.peer_bytes = self
                    .peer_fetched
                    .iter()
                    .map(|(&host, &(blocks, bytes))| PeerBytes {
                        host,
                        blocks,
                        bytes,
                    })
                    .collect();
                ms
            },
            consistent: disk_consistent && mem_consistent && cpu_consistent,
        };

        if rec.is_enabled() {
            let m = rec.metrics();
            m.counter("sim.disk.blocks_sent")
                .add(report.disk_iterations.iter().map(|i| i.units_sent).sum());
            m.counter("sim.mem.pages_sent")
                .add(report.mem_iterations.iter().map(|i| i.units_sent).sum());
            m.counter("sim.postcopy.pushed").add(report.postcopy.pushed);
            m.counter("sim.postcopy.pulled").add(report.postcopy.pulled);
            m.counter("sim.postcopy.dropped")
                .add(report.postcopy.dropped);
            m.gauge("sim.freeze.remaining_at_resume")
                .set(report.postcopy.remaining_at_resume);
            m.gauge("sim.bytes_total").set(report.ledger.total());
            m.counter("wire.bytes_raw").add(report.wire.bytes_raw);
            m.counter("wire.bytes_sent").add(report.wire.bytes_sent);
            m.counter("wire.blocks_deduped")
                .add(report.wire.blocks_deduped);
            m.counter("wire.blocks_compressed")
                .add(report.wire.blocks_compressed);
            for (i, &blocks) in report.stream_blocks.iter().enumerate() {
                m.counter(&format!("sim.stream.{i}.blocks_sent"))
                    .add(blocks);
            }
            if report.multisource.plans > 0 {
                m.counter("blockstore.plans").add(report.multisource.plans);
                m.counter("blockstore.planned_source")
                    .add(report.multisource.planned_source);
                m.counter("blockstore.planned_peer")
                    .add(report.multisource.planned_peer);
                for p in &report.multisource.peer_bytes {
                    m.counter(&format!("blockstore.peer.{}.blocks", p.host))
                        .add(p.blocks);
                    m.counter(&format!("blockstore.peer.{}.bytes", p.host))
                        .add(p.bytes);
                }
            }
        }

        TpmOutcome {
            report,
            src_disk: self.src_disk,
            dst_disk: self.dst_disk,
            dst_mem: self.dst_mem,
            im_tracker,
            workload: self.workload,
            rng: self.rng,
            probe: self.probe,
            end_time: self.now,
            kind: self.kind,
        }
    }
}

/// Run a primary TPM migration under `cfg` with the given workload.
pub fn run_tpm(cfg: MigrationConfig, kind: WorkloadKind) -> TpmOutcome {
    TpmEngine::new(cfg, kind).run()
}

/// Run a primary TPM migration with a telemetry recorder attached: every
/// phase transition, pre-copy iteration, and post-copy block event is
/// journaled in virtual time.
pub fn run_tpm_traced(
    cfg: MigrationConfig,
    kind: WorkloadKind,
    recorder: Arc<Recorder>,
) -> TpmOutcome {
    let mut engine = TpmEngine::new(cfg, kind);
    engine.set_recorder(recorder);
    engine.run()
}

/// Let the guest run on the destination for `duration` after a migration,
/// with the IM tracker recording every write — the maintenance window /
/// telecommute workday between the primary migration and the migration
/// back.
pub fn dwell(outcome: &mut TpmOutcome, cfg: &MigrationConfig, duration: SimDuration) {
    let mut now = outcome.end_time;
    let end = now + duration;
    while now < end {
        let dt = cfg.step.min(end.since(now));
        let share = outcome.workload.disk_demand().min(cfg.disk_capacity);
        let ops = outcome.workload.ops_for(dt, share, &mut outcome.rng);
        for op in ops {
            if let OpKind::Write { block } = op.kind {
                outcome.dst_disk.write(block as usize);
                outcome.im_tracker.set(block as usize);
            }
        }
        outcome
            .probe
            .record(now + dt, outcome.workload.client_throughput(share));
        now += dt;
    }
    outcome.end_time = end;
}

/// Migrate back to the original source using Incremental Migration: the
/// first pre-copy iteration transfers only the blocks dirtied since the
/// primary migration (§V).
pub fn run_im(cfg: MigrationConfig, prev: TpmOutcome) -> TpmOutcome {
    cfg.validate();
    assert_eq!(
        prev.dst_disk.num_blocks(),
        cfg.disk_blocks,
        "IM must use the same disk geometry as the primary migration"
    );
    let mut engine = TpmEngine::new(cfg.clone(), prev.kind);
    // Migrating back: the old destination is the new source; the retired
    // original source still holds its stale image.
    engine.src_disk = prev.dst_disk;
    engine.dst_disk = prev.src_disk;
    engine.src_mem = prev.dst_mem;
    engine.dst_mem = GuestMemory::new(4096, cfg.mem_pages);
    engine.workload = prev.workload;
    engine.rng = prev.rng;
    engine.probe = prev.probe;
    engine.now = prev.end_time;
    engine.kind = prev.kind;
    engine.scheme = "im";
    // "We check if the bitmap exists before the first iteration. If it
    // does, only the blocks marked dirty in the block-bitmap need to be
    // migrated."
    let mut im_tracker = prev.im_tracker;
    engine.initial_to_send = Some(im_tracker.drain());
    engine.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MigrationConfig {
        MigrationConfig::small()
    }

    #[test]
    fn idle_guest_migrates_consistently() {
        let out = run_tpm(small_cfg(), WorkloadKind::Idle);
        let r = &out.report;
        assert!(r.consistent, "migration must be consistent");
        // Idle guest: one disk iteration, nothing dirty, nothing pushed.
        assert_eq!(r.disk_iterations.len(), 1);
        assert_eq!(r.disk_iterations[0].units_sent, 65_536);
        assert_eq!(r.postcopy.remaining_at_resume, 0);
        assert_eq!(r.residual_blocks, 0);
        // All blocks crossed exactly once (plus headers).
        let disk_bytes = r.ledger.get(simnet::proto::Category::DiskPrecopy);
        assert!(disk_bytes >= 65_536 * 4096);
        assert!(disk_bytes < 65_536 * 4096 * 102 / 100);
    }

    #[test]
    fn downtime_is_milliseconds_not_seconds() {
        let out = run_tpm(small_cfg(), WorkloadKind::Idle);
        assert!(
            out.report.downtime_ms < 1_000.0,
            "downtime {} ms",
            out.report.downtime_ms
        );
        assert!(out.report.downtime_ms > 1.0);
    }

    #[test]
    fn web_guest_converges_and_stays_consistent() {
        let mut cfg = small_cfg();
        cfg.disk_blocks = 2 * 1024 * 1024; // 8 GiB: room for the regions
        let out = run_tpm(cfg, WorkloadKind::Web);
        let r = &out.report;
        assert!(r.consistent);
        assert!(r.disk_iterations.len() >= 2, "writes must force iterations");
        // Iterations shrink geometrically.
        let first = r.disk_iterations[0].units_sent;
        let second = r.disk_iterations[1].units_sent;
        assert!(second < first / 10, "second iteration {second} vs {first}");
        assert!(r.downtime_ms < 500.0);
    }

    #[test]
    fn im_moves_far_less_data_than_tpm() {
        let mut cfg = small_cfg();
        cfg.disk_blocks = 2 * 1024 * 1024;
        let mut out = run_tpm(cfg.clone(), WorkloadKind::Web);
        let tpm_mb = out.report.migrated_mb();
        let tpm_time = out.report.total_time_secs;
        dwell(&mut out, &cfg, SimDuration::from_secs(30));
        let back = run_im(cfg, out);
        assert!(back.report.consistent, "IM must be consistent");
        assert_eq!(back.report.scheme, "im");
        let im_mb = back.report.migrated_mb();
        assert!(
            im_mb * 20.0 < tpm_mb,
            "IM moved {im_mb} MB vs TPM {tpm_mb} MB"
        );
        assert!(back.report.total_time_secs * 5.0 < tpm_time);
    }

    #[test]
    fn rate_limit_stretches_migration() {
        let cfg = small_cfg();
        let limited = MigrationConfig {
            rate_limit: Some(10.0 * 1024.0 * 1024.0),
            ..cfg.clone()
        };
        let fast = run_tpm(cfg, WorkloadKind::Idle);
        let slow = run_tpm(limited, WorkloadKind::Idle);
        assert!(
            slow.report.total_time_secs > fast.report.total_time_secs * 2.0,
            "limited {} vs unlimited {}",
            slow.report.total_time_secs,
            fast.report.total_time_secs
        );
    }

    #[test]
    fn layered_bitmap_produces_identical_migration() {
        let cfg_flat = small_cfg();
        let cfg_layered = MigrationConfig {
            bitmap: crate::BitmapKind::Layered,
            ..small_cfg()
        };
        let a = run_tpm(cfg_flat, WorkloadKind::Web);
        let b = run_tpm(cfg_layered, WorkloadKind::Web);
        assert_eq!(a.report.ledger, b.report.ledger);
        assert_eq!(
            a.report.total_time_secs.to_bits(),
            b.report.total_time_secs.to_bits()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_tpm(small_cfg(), WorkloadKind::Web);
        let b = run_tpm(small_cfg(), WorkloadKind::Web);
        assert_eq!(a.report.ledger, b.report.ledger);
        assert_eq!(
            a.report.downtime_ms.to_bits(),
            b.report.downtime_ms.to_bits()
        );
        let c = run_tpm(
            MigrationConfig {
                seed: 999,
                ..small_cfg()
            },
            WorkloadKind::Web,
        );
        assert_ne!(a.report.ledger, c.report.ledger);
    }

    #[test]
    fn dedup_is_a_noop_when_nothing_matches() {
        // A fresh TPM ships into a blank destination: no block can be
        // referenced, so a dedup-on run must be bit-identical in ledger
        // and clock to a dedup-off run — the feature-off parity claim.
        let on = run_tpm(small_cfg(), WorkloadKind::Idle);
        let off = run_tpm(
            MigrationConfig {
                dedup: false,
                compress: false,
                ..small_cfg()
            },
            WorkloadKind::Idle,
        );
        assert_eq!(on.report.wire.blocks_deduped, 0);
        assert_eq!(on.report.ledger, off.report.ledger);
        assert_eq!(
            on.report.total_time_secs.to_bits(),
            off.report.total_time_secs.to_bits()
        );
        assert_eq!(
            on.report.downtime_ms.to_bits(),
            off.report.downtime_ms.to_bits()
        );
        // Wire accounting still reflects the modeled compression of the
        // full payloads; off means off.
        assert_eq!(off.report.wire.bytes_sent, off.report.wire.bytes_raw);
        assert!(on.report.wire.bytes_sent < on.report.wire.bytes_raw);
    }

    #[test]
    fn four_streams_match_single_stream_exactly() {
        let one = run_tpm(small_cfg(), WorkloadKind::Web);
        let four = run_tpm(
            MigrationConfig {
                streams: 4,
                ..small_cfg()
            },
            WorkloadKind::Web,
        );
        assert!(four.report.consistent);
        // Same bytes in every category, same downtime, same total time —
        // bit for bit, not approximately.
        assert_eq!(one.report.ledger, four.report.ledger);
        assert_eq!(
            one.report.downtime_ms.to_bits(),
            four.report.downtime_ms.to_bits()
        );
        assert_eq!(
            one.report.total_time_secs.to_bits(),
            four.report.total_time_secs.to_bits()
        );
        // Same final image on the destination.
        assert!(one.dst_disk.content_equals(&four.dst_disk));
        // The streams genuinely shared the work: every stream carried
        // blocks, and together they carried exactly the pre-copy total.
        assert_eq!(four.report.stream_blocks.len(), 4);
        assert!(four.report.stream_blocks.iter().all(|&b| b > 0));
        let per_stream: u64 = four.report.stream_blocks.iter().sum();
        let sent: u64 = four
            .report
            .disk_iterations
            .iter()
            .map(|i| i.units_sent)
            .sum();
        assert_eq!(per_stream, sent);
    }

    #[test]
    fn warmup_extends_timeline_without_migrating() {
        let mut engine = TpmEngine::new(small_cfg(), WorkloadKind::Web);
        engine.warmup(SimDuration::from_secs(10));
        assert_eq!(engine.now(), SimTime::from_nanos(10_000_000_000));
        let out = engine.run();
        assert!(out.report.consistent);
        // Timeline includes the warmup samples.
        assert!(out.report.timeline.first().expect("samples").t_secs <= 1.0);
    }
}
