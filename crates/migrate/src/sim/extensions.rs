//! §VII future-work extensions, implemented.
//!
//! The paper's conclusion sketches three improvements; this module builds
//! all of them on top of the TPM engine:
//!
//! * **Guest-assisted sparse migration** — "If the Guest OS … can take
//!   part in and tell the migration process which part is not used, the
//!   amount of migrated data can be reduced further."
//!   ([`TpmEngine::set_free_blocks`], exercised by
//!   [`run_sparse_migration`]).
//! * **Template-based migration** — "Another approach is to track all the
//!   writes since the Guest OS installation… Only these dirty blocks need
//!   to be transferred to a VM using the same OS image."
//!   ([`run_template_migration`]).
//! * **Multi-site version maintenance** — "The future work will focus on
//!   local disk storage version maintenance to facilitate IM to decrease
//!   the total migration time of a VM migrated among any recently used
//!   physical machines." ([`MultiSiteVm`]).

use block_bitmap::{DirtyMap, FlatBitmap};
use des::{SimDuration, SimRng};
use vdisk::{MetaDisk, ReplicaTable};
use workloads::{OpKind, WorkloadKind};

use crate::sim::engine::{TpmEngine, TpmOutcome};
use crate::MigrationConfig;

/// Run a primary migration where the guest has declared `free` blocks
/// unused: the first pass skips them entirely.
pub fn run_sparse_migration(
    cfg: MigrationConfig,
    kind: WorkloadKind,
    free: FlatBitmap,
) -> TpmOutcome {
    let mut engine = TpmEngine::new(cfg, kind);
    engine.set_free_blocks(free);
    engine.run()
}

/// Run a template-based migration: the destination already holds the
/// guest's installation image, and `dirty_since_install` marks every
/// block written since the OS was installed (tracked by a block-bitmap
/// left running from installation time, per §VII). Only those blocks —
/// not the whole disk — cross in the first pass.
pub fn run_template_migration(
    cfg: MigrationConfig,
    kind: WorkloadKind,
    dirty_since_install: FlatBitmap,
) -> TpmOutcome {
    assert_eq!(
        dirty_since_install.len(),
        cfg.disk_blocks,
        "install bitmap must cover the whole disk"
    );
    let mut engine = TpmEngine::new(cfg, kind);
    // Share the installation image: the destination's copy matches the
    // source everywhere the guest has not written since install…
    engine.dst_disk = engine.src_disk.clone();
    // …and the source has since diverged on exactly the tracked blocks.
    for b in dirty_since_install.iter_set() {
        engine.src_disk.write(b);
    }
    engine.initial_to_send = Some(dirty_since_install);
    engine.scheme = "template";
    engine.run()
}

/// Run a template-clone migration: the destination holds a byte-identical
/// clone of the source's installed image (a template instance), the
/// source has since diverged on exactly the `diverged` blocks — but,
/// unlike [`run_template_migration`], *no* installation-time bitmap
/// survives, so the first pass must walk the whole disk. The
/// content-addressed data plane (`cfg.dedup`) discovers the still-shared
/// blocks on its own and ships them as 16-byte references instead of
/// full payloads; with dedup off the whole image crosses, which makes
/// this the paper-scale benchmark scenario for bytes-on-wire reduction.
pub fn run_template_clone_tpm(
    cfg: MigrationConfig,
    kind: WorkloadKind,
    diverged: FlatBitmap,
) -> TpmOutcome {
    assert_eq!(
        diverged.len(),
        cfg.disk_blocks,
        "divergence bitmap must cover the whole disk"
    );
    let mut engine = TpmEngine::new(cfg, kind);
    // The destination is a clone of the installed image…
    engine.dst_disk = engine.src_disk.clone();
    // …and the source has since diverged on exactly these blocks.
    for b in diverged.iter_set() {
        engine.src_disk.write(b);
    }
    engine.scheme = "template-clone";
    engine.run()
}

/// [`run_template_clone_tpm`] with a telemetry recorder attached, so the
/// dedup benchmark scenario can prove same-seed journal determinism.
pub fn run_template_clone_tpm_traced(
    cfg: MigrationConfig,
    kind: WorkloadKind,
    diverged: FlatBitmap,
    recorder: std::sync::Arc<telemetry::Recorder>,
) -> TpmOutcome {
    assert_eq!(
        diverged.len(),
        cfg.disk_blocks,
        "divergence bitmap must cover the whole disk"
    );
    let mut engine = TpmEngine::new(cfg, kind);
    engine.dst_disk = engine.src_disk.clone();
    for b in diverged.iter_set() {
        engine.src_disk.write(b);
    }
    engine.scheme = "template-clone";
    engine.set_recorder(recorder);
    engine.run()
}

/// Run a template-clone *boot storm* migration with multi-source
/// fetching (E14): the destination is blank, the source holds the
/// golden image plus its private divergence, and `num_peers` other
/// hosts each hold an unmodified clone of the golden image (the fleet
/// that booted from the same template). The fetch planner routes every
/// still-golden block to a peer — only the diverged blocks stream from
/// the source — so the source's NIC carries roughly the divergence
/// fraction of the image instead of all of it.
pub fn run_template_clone_fanin(
    cfg: MigrationConfig,
    kind: WorkloadKind,
    diverged: FlatBitmap,
    num_peers: usize,
) -> TpmOutcome {
    run_template_clone_fanin_traced(cfg, kind, diverged, num_peers, telemetry::Recorder::off())
}

/// [`run_template_clone_fanin`] with a telemetry recorder attached, so
/// the multi-source scenario can prove same-seed journal determinism.
pub fn run_template_clone_fanin_traced(
    cfg: MigrationConfig,
    kind: WorkloadKind,
    diverged: FlatBitmap,
    num_peers: usize,
    recorder: std::sync::Arc<telemetry::Recorder>,
) -> TpmOutcome {
    assert_eq!(
        diverged.len(),
        cfg.disk_blocks,
        "divergence bitmap must cover the whole disk"
    );
    assert!(num_peers >= 1, "fan-in needs at least one peer holder");
    let mut engine = TpmEngine::new(cfg, kind);
    // The fleet's golden image: what every peer still holds verbatim…
    let golden = engine.src_disk.clone();
    // …while the source has since diverged on exactly these blocks.
    for b in diverged.iter_set() {
        engine.src_disk.write(b);
    }
    let peers = (1..=num_peers as u64)
        .map(|h| (h, golden.clone()))
        .collect();
    engine.set_peers(peers);
    engine.scheme = "template-fanin";
    engine.set_recorder(recorder);
    engine.run()
}

/// A VM that hops among several physical machines, with per-site storage
/// version maintenance so every hop is incremental (§VII future work).
///
/// Each site keeps the disk image from the VM's last departure, stored in
/// a [`ReplicaTable`] (the same structure the cluster orchestrator
/// schedules against). Migrating to a site transfers exactly the blocks
/// that changed since — computed by diffing generation vectors, the
/// version-maintenance mechanism the paper leaves for future work. A
/// never-visited site receives a full copy (the all-set bitmap of §V).
pub struct MultiSiteVm {
    cfg: MigrationConfig,
    kind: WorkloadKind,
    /// State carried between hops (live disk, workload, rng, probe…).
    outcome: Option<TpmOutcome>,
    names: Vec<String>,
    /// Per-site departure images, keyed by (vm=0, site index).
    replicas: ReplicaTable,
    current: usize,
}

/// The single VM's id inside its private [`ReplicaTable`].
const MULTISITE_VM: u64 = 0;

impl MultiSiteVm {
    /// Create the VM, initially running at `sites[0]`.
    ///
    /// # Panics
    /// Panics with fewer than two sites.
    pub fn new(cfg: MigrationConfig, kind: WorkloadKind, sites: &[&str]) -> Self {
        assert!(sites.len() >= 2, "multi-site migration needs >= 2 sites");
        cfg.validate();
        Self {
            cfg,
            kind,
            outcome: None,
            names: sites.iter().map(|s| s.to_string()).collect(),
            replicas: ReplicaTable::new(),
            current: 0,
        }
    }

    /// Name of the site currently hosting the VM.
    pub fn current_site(&self) -> &str {
        &self.names[self.current]
    }

    /// Let the guest run at the current site for `duration`.
    pub fn run_for(&mut self, duration: SimDuration) {
        if let Some(outcome) = &mut self.outcome {
            crate::sim::engine::dwell(outcome, &self.cfg, duration);
        } else {
            // Before the first migration the engine does not exist yet;
            // model the pre-history by aging a fresh engine on site 0.
            // (The first migrate_to() constructs it.)
        }
    }

    /// Migrate the VM to `site`. Returns the migration report.
    ///
    /// # Panics
    /// Panics for an unknown site or a migration to the current site.
    pub fn migrate_to(&mut self, site: &str) -> crate::MigrationReport {
        let target = self
            .names
            .iter()
            .position(|s| s == site)
            .unwrap_or_else(|| panic!("unknown site '{site}'"));
        assert_ne!(target, self.current, "VM is already at {site}");

        let outcome = match self.outcome.take() {
            None => {
                // First hop ever: full TPM from the origin site.
                let engine = TpmEngine::new(self.cfg.clone(), self.kind);
                let out = engine.run();
                self.replicas
                    .record(MULTISITE_VM, self.current as u64, out.src_disk.clone());
                out
            }
            Some(prev) => {
                // Version maintenance: diff the live image against the
                // target site's remembered copy; a never-visited site gets
                // the all-set bitmap of §V.
                let to_send =
                    self.replicas
                        .first_pass_bitmap(MULTISITE_VM, target as u64, &prev.dst_disk);
                let mut engine = TpmEngine::new(self.cfg.clone(), self.kind);
                engine.src_disk = prev.dst_disk;
                engine.dst_disk = self
                    .replicas
                    .take(MULTISITE_VM, target as u64)
                    .map(|r| r.disk)
                    .unwrap_or_else(|| MetaDisk::new(self.cfg.disk_blocks));
                engine.src_mem = prev.dst_mem;
                engine.workload = prev.workload;
                engine.rng = prev.rng;
                engine.probe = prev.probe;
                engine.now = prev.end_time;
                engine.initial_to_send = Some(to_send);
                engine.scheme = "multisite-im";
                let out = engine.run();
                // The departed site keeps the image as of this departure.
                self.replicas
                    .record(MULTISITE_VM, self.current as u64, out.src_disk.clone());
                out
            }
        };
        let report = outcome.report.clone();
        assert!(report.consistent, "multi-site hop must stay consistent");
        self.outcome = Some(outcome);
        self.current = target;
        report
    }
}

/// Build a plausible guest-declared free-block map: everything outside
/// the workload's active regions plus a filesystem-metadata reserve. Used
/// by the sparse-migration experiment and tests.
pub fn synthetic_free_map(cfg: &MigrationConfig, used_fraction: f64, seed: u64) -> FlatBitmap {
    assert!((0.0..=1.0).contains(&used_fraction), "fraction in [0,1]");
    let mut free = FlatBitmap::all_set(cfg.disk_blocks);
    let mut rng = SimRng::new(seed);
    let used = (cfg.disk_blocks as f64 * used_fraction) as usize;
    // The used set: a few large extents (files) plus scattered metadata.
    let mut marked = 0usize;
    while marked < used {
        let extent = (rng.below(4096) + 64) as usize;
        let extent = extent.min(used - marked);
        let start = rng.below((cfg.disk_blocks - extent) as u64) as usize;
        for b in start..start + extent {
            if free.clear(b) {
                marked += 1;
            }
        }
    }
    free
}

/// Convenience: mark the blocks a workload will touch as used so sparse
/// migration cannot skip them. Runs the generator briefly and clears its
/// blocks from `free`.
pub fn reserve_workload_blocks(
    free: &mut FlatBitmap,
    kind: WorkloadKind,
    cfg: &MigrationConfig,
    probe_secs: u64,
) {
    let mut w = kind.build(cfg.disk_blocks as u64);
    let mut rng = SimRng::new(cfg.seed ^ 0xF0F0);
    for _ in 0..probe_secs * 2 {
        let demand = w.disk_demand();
        for op in w.ops_for(SimDuration::from_millis(500), demand, &mut rng) {
            let (OpKind::Write { block } | OpKind::Read { block }) = op.kind;
            free.clear(block as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::proto::Category;

    fn cfg() -> MigrationConfig {
        MigrationConfig::small()
    }

    #[test]
    fn sparse_migration_skips_free_blocks() {
        let c = cfg();
        // Guest uses 30% of the disk; idle workload so the free map stays
        // authoritative.
        let free = synthetic_free_map(&c, 0.3, 9);
        let free_count = free.count_ones();
        let full = crate::sim::run_tpm(c.clone(), WorkloadKind::Idle).report;
        let sparse = run_sparse_migration(c.clone(), WorkloadKind::Idle, free).report;
        assert!(sparse.consistent);
        assert_eq!(
            sparse.disk_iterations[0].units_sent as usize,
            c.disk_blocks - free_count
        );
        assert!(
            sparse.ledger.disk_total() < full.ledger.disk_total() * 75 / 100,
            "sparse {} vs full {}",
            sparse.ledger.disk_total(),
            full.ledger.disk_total()
        );
        assert!(sparse.total_time_secs < full.total_time_secs * 0.75);
    }

    #[test]
    fn sparse_migration_with_live_writes_stays_consistent() {
        let c = cfg();
        let mut free = synthetic_free_map(&c, 0.2, 11);
        // The web workload writes into its own regions; they must be
        // reserved (a real guest would never declare live file blocks
        // free).
        reserve_workload_blocks(&mut free, WorkloadKind::Web, &c, 600);
        let out = run_sparse_migration(c, WorkloadKind::Web, free);
        assert!(out.report.consistent);
    }

    #[test]
    fn template_migration_moves_only_divergence() {
        let c = cfg();
        let mut since_install = FlatBitmap::new(c.disk_blocks);
        for b in (0..c.disk_blocks).step_by(37) {
            since_install.set(b);
        }
        let divergent = since_install.count_ones();
        let out = run_template_migration(c.clone(), WorkloadKind::Idle, since_install);
        assert!(out.report.consistent);
        assert_eq!(out.report.scheme, "template");
        assert_eq!(out.report.disk_iterations[0].units_sent as usize, divergent);
        // Far less than the whole disk crossed.
        assert!(out.report.ledger.get(Category::DiskPrecopy) < c.disk_bytes() / 10);
    }

    #[test]
    fn template_clone_dedup_slashes_bytes_on_wire() {
        let c = cfg();
        // ~8% divergence, the ISSUE's paper-scale scenario in miniature.
        let mut diverged = FlatBitmap::new(c.disk_blocks);
        for b in (0..c.disk_blocks).step_by(12) {
            diverged.set(b);
        }
        let on = run_template_clone_tpm(c.clone(), WorkloadKind::Idle, diverged.clone());
        let off = run_template_clone_tpm(
            MigrationConfig {
                dedup: false,
                ..c.clone()
            },
            WorkloadKind::Idle,
            diverged,
        );
        assert!(on.report.consistent && off.report.consistent);
        assert_eq!(on.report.scheme, "template-clone");
        // Same final image either way — dedup is a transport optimization,
        // never a content change.
        assert!(on.dst_disk.content_equals(&off.dst_disk));
        // Every block still "crossed" (as a payload or a reference)…
        assert_eq!(
            on.report.disk_iterations[0].units_sent,
            off.report.disk_iterations[0].units_sent
        );
        // …but the identical ~92% went as 16-byte references: at least a
        // 60% bytes-on-wire cut (the acceptance threshold; the model
        // predicts ~90%).
        assert!(on.report.wire.blocks_deduped > 0);
        assert!(
            on.report.wire.bytes_sent * 5 <= off.report.wire.bytes_sent * 2,
            "dedup-on sent {} vs dedup-off {}",
            on.report.wire.bytes_sent,
            off.report.wire.bytes_sent
        );
        // The ledger (real framing bytes) shrinks too, and the migration
        // finishes sooner.
        assert!(on.report.ledger.total() < off.report.ledger.total() / 2);
        assert!(on.report.total_time_secs < off.report.total_time_secs);
    }

    #[test]
    fn template_fanin_serves_most_blocks_from_peers() {
        let c = cfg();
        // E14: 8% divergence since the template boot, four fleet peers
        // still holding the golden image.
        let mut diverged = FlatBitmap::new(c.disk_blocks);
        for b in (0..c.disk_blocks).step_by(12) {
            diverged.set(b);
        }
        let out = run_template_clone_fanin(c.clone(), WorkloadKind::Idle, diverged, 4);
        let ms = &out.report.multisource;
        assert!(out.report.consistent);
        assert_eq!(out.report.scheme, "template-fanin");
        assert!(ms.plans > 0);
        assert_eq!(ms.failovers, 0);
        // The acceptance bar: at least 70% of owed full blocks arrive
        // from non-source peers (the model predicts ~92% — everything
        // still golden).
        assert!(
            ms.peer_fraction() >= 0.70,
            "peer fraction {:.3} (source {} / peer {})",
            ms.peer_fraction(),
            ms.planned_source,
            ms.planned_peer
        );
        // Every peer byte is attributed to a named host, and the totals
        // reconcile with the plan.
        assert_eq!(ms.peer_blocks(), ms.planned_peer);
        assert_eq!(ms.peer_bytes.len(), 4);
        for p in &ms.peer_bytes {
            assert!(p.blocks > 0, "peer {} idle despite equal budgets", p.host);
            assert_eq!(p.bytes, p.blocks * c.block_size as u64);
        }
    }

    #[test]
    fn template_fanin_off_reproduces_classic_image() {
        let c = cfg();
        let mut diverged = FlatBitmap::new(c.disk_blocks);
        for b in (0..c.disk_blocks).step_by(12) {
            diverged.set(b);
        }
        // Idle guest: with no concurrent writes the two runs must install
        // the exact same image (a live workload would diverge the virtual
        // clocks, hence the write history — each run is still internally
        // consistent, checked below).
        let on = run_template_clone_fanin(c.clone(), WorkloadKind::Idle, diverged.clone(), 3);
        let off = run_template_clone_fanin(
            MigrationConfig {
                multisource: false,
                ..c.clone()
            },
            WorkloadKind::Idle,
            diverged.clone(),
            3,
        );
        assert!(on.report.consistent && off.report.consistent);
        let live = run_template_clone_fanin(c, WorkloadKind::Web, diverged, 3);
        assert!(live.report.consistent);
        // Multi-source is a transport optimization, never a content
        // change: both runs install the same final image.
        assert!(on.dst_disk.content_equals(&off.dst_disk));
        // With the knob off the planner never runs and the report says so.
        assert_eq!(off.report.multisource.plans, 0);
        assert_eq!(off.report.multisource.peer_blocks(), 0);
        assert!(on.report.multisource.planned_peer > 0);
    }

    #[test]
    fn multisite_hops_are_incremental_after_first_visit() {
        let c = cfg();
        let mut vm = MultiSiteVm::new(c.clone(), WorkloadKind::Web, &["alpha", "beta", "gamma"]);
        assert_eq!(vm.current_site(), "alpha");

        // First hop: full copy.
        let r1 = vm.migrate_to("beta");
        assert_eq!(vm.current_site(), "beta");
        let full_blocks = r1.disk_iterations[0].units_sent;
        assert_eq!(full_blocks as usize, c.disk_blocks);

        // gamma never visited: full copy again.
        vm.run_for(SimDuration::from_secs(10));
        let r2 = vm.migrate_to("gamma");
        assert_eq!(r2.disk_iterations[0].units_sent as usize, c.disk_blocks);

        // Back to alpha (visited at departure time): incremental.
        vm.run_for(SimDuration::from_secs(10));
        let r3 = vm.migrate_to("alpha");
        assert!(
            r3.disk_iterations[0].units_sent * 10 < full_blocks,
            "hop to a visited site must be incremental ({} blocks)",
            r3.disk_iterations[0].units_sent
        );

        // And back to beta: also incremental.
        vm.run_for(SimDuration::from_secs(10));
        let r4 = vm.migrate_to("beta");
        assert!(r4.disk_iterations[0].units_sent * 10 < full_blocks);
        assert_eq!(r4.scheme, "multisite-im");
    }

    #[test]
    #[should_panic(expected = "already at")]
    fn migrating_to_current_site_rejected() {
        let mut vm = MultiSiteVm::new(cfg(), WorkloadKind::Idle, &["a", "b"]);
        vm.migrate_to("b");
        vm.migrate_to("b");
    }

    #[test]
    fn synthetic_free_map_hits_requested_fraction() {
        let c = cfg();
        let free = synthetic_free_map(&c, 0.4, 3);
        let used = c.disk_blocks - free.count_ones();
        let frac = used as f64 / c.disk_blocks as f64;
        assert!((0.38..0.42).contains(&frac), "used fraction {frac}");
    }
}
