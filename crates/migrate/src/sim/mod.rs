//! Deterministic virtual-time migration engines at full paper scale.
//!
//! The simulated engine reproduces the paper's testbed: a 40 GB VBD and a
//! 512 MB guest migrating over a Gigabit LAN while one of the §VI-B
//! workloads runs. Disk and memory contents are modelled as per-unit
//! generation counters ([`vdisk::MetaDisk`], [`vmstate::GuestMemory`]) —
//! every consistency property is still checked exactly, but 40 GB of
//! payload bytes never materialize.
//!
//! Phase structure follows §IV (see the crate docs). Pre-copy phases are
//! time-stepped (disk/NIC bandwidth shares change continuously as the
//! workload and the migration stream contend); the post-copy phase is
//! event-driven on the [`des::Simulator`] (pushes, pulls and guest I/O
//! interleave at millisecond scale).

pub(crate) mod engine;
mod extensions;
mod postcopy;
mod tracker;

pub use engine::{dwell, run_im, run_tpm, run_tpm_traced, TpmEngine, TpmOutcome};
pub use extensions::{
    reserve_workload_blocks, run_sparse_migration, run_template_clone_fanin,
    run_template_clone_fanin_traced, run_template_clone_tpm, run_template_clone_tpm_traced,
    run_template_migration, synthetic_free_map, MultiSiteVm,
};
pub use postcopy::{run_postcopy, PostCopyConfig, PostCopyOutcome};
pub use tracker::DirtyTracker;
