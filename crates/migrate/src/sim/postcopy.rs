//! Event-driven post-copy synchronization (§IV-A-3).
//!
//! At resume time, source and destination hold identical copies of the
//! block-bitmap marking every unsynchronized block. The source pushes the
//! marked blocks continuously; the destination intercepts guest I/O:
//!
//! * a **read** to a dirty block queues in the pending list and sends a
//!   pull request — the source answers it preferentially;
//! * a **write** to a dirty block clears the bit outright (the whole block
//!   is overwritten locally, so the stale copy is never needed) and sets
//!   the bit in the *new* bitmap that a later Incremental Migration uses;
//! * a pushed block arriving after a local write finds its bit cleared
//!   and is dropped.
//!
//! Push guarantees the phase ends in finite time; disabling it (the
//! on-demand-fetching baseline of §II-B) leaves a residual dependency on
//! the source that this module measures.

use std::sync::Arc;

use block_bitmap::{DirtyMap, FlatBitmap};
use des::{SimDuration, SimRng, SimTime, Simulator};
use simnet::proto::{Category, MigMessage, TransferLedger};
use telemetry::Recorder;
use vdisk::{DomainId, IoRequest, MetaDisk, PendingQueue};
use workloads::probe::ThroughputProbe;
use workloads::{OpKind, Workload};

use crate::report::PostCopyStats;
use crate::sim::tracker::DirtyTracker;

/// Parameters of the post-copy phase.
#[derive(Debug, Clone)]
pub struct PostCopyConfig {
    /// Block size in bytes.
    pub block_size: u64,
    /// Throughput of the source push stream, bytes/second.
    pub push_rate: f64,
    /// Disk share the guest workload achieves on the destination.
    pub workload_share: f64,
    /// One-way network latency.
    pub latency: SimDuration,
    /// Blocks batched per push message.
    pub push_batch: usize,
    /// Workload slicing interval.
    pub slice: SimDuration,
    /// Abandon the phase at this horizon (only reached when push is
    /// disabled).
    pub horizon: SimDuration,
    /// `false` reproduces the pure on-demand-fetching baseline.
    pub push_enabled: bool,
}

/// Result of the post-copy phase.
#[derive(Debug)]
pub struct PostCopyOutcome {
    /// Phase statistics for the report.
    pub stats: PostCopyStats,
    /// Blocks never synchronized when the horizon fired (0 with push).
    pub residual_blocks: u64,
    /// Virtual time at which the phase completed.
    pub finished_at: SimTime,
}

struct PcState<'a> {
    cfg: PostCopyConfig,
    start: SimTime,
    src_disk: &'a MetaDisk,
    dst_disk: &'a mut MetaDisk,
    /// Blocks the source still intends to push.
    src_bm: FlatBitmap,
    /// The destination's transferred_block_bitmap.
    dst_bm: FlatBitmap,
    new_bm: &'a mut DirtyTracker,
    workload: &'a mut dyn Workload,
    rng: &'a mut SimRng,
    ledger: &'a mut TransferLedger,
    probe: &'a mut ThroughputProbe,
    pending: PendingQueue,
    push_cursor: usize,
    in_flight: u64,
    pulls_outstanding: u64,
    stats: PostCopyStats,
    done: bool,
    finished_at: SimTime,
    rec: Arc<Recorder>,
}

impl PcState<'_> {
    fn apply_arrival(&mut self, now: SimTime, block: usize, pulled: bool) {
        if self.dst_bm.get(block) {
            self.dst_disk.copy_block_from(self.src_disk, block);
            self.dst_bm.clear(block);
            if pulled {
                self.stats.pulled += 1;
                self.rec
                    .record_at_nanos(now.as_nanos(), || telemetry::Event::BlockPulled {
                        block: block as u64,
                    });
            } else {
                self.stats.pushed += 1;
                self.rec
                    .record_at_nanos(now.as_nanos(), || telemetry::Event::BlockPushed {
                        block: block as u64,
                    });
            }
        } else {
            // Superseded by a destination write (or a racing pull/push
            // pair): drop, per the paper's receive algorithm.
            self.stats.dropped += 1;
            self.rec
                .record_at_nanos(now.as_nanos(), || telemetry::Event::BlockDropped {
                    block: block as u64,
                });
        }
        // Release any reads parked on this block: its data is now local
        // either way.
        for req in self.pending.take_for_block(block) {
            debug_assert!(!req.is_write());
        }
    }

    fn check_done(&mut self, now: SimTime) {
        if self.done {
            return;
        }
        let src_drained = self.src_bm.none_set() || !self.cfg.push_enabled;
        if self.cfg.push_enabled
            && src_drained
            && self.in_flight == 0
            && self.pulls_outstanding == 0
        {
            debug_assert!(
                self.dst_bm.none_set(),
                "push completed but destination bitmap not empty"
            );
            debug_assert!(self.pending.is_empty());
            self.done = true;
            self.finished_at = now;
        }
    }
}

fn schedule_push(sim: &mut Simulator<PcState<'_>>, st: &mut PcState<'_>) {
    if !st.cfg.push_enabled || st.done {
        return;
    }
    // Gather the next batch of blocks still marked at the source.
    let mut batch = Vec::with_capacity(st.cfg.push_batch);
    let mut cursor = st.push_cursor;
    while batch.len() < st.cfg.push_batch {
        match st.src_bm.next_set_from(cursor) {
            Some(b) => {
                batch.push(b);
                st.src_bm.clear(b);
                cursor = b + 1;
            }
            None => {
                if cursor == 0 {
                    break; // bitmap fully drained
                }
                cursor = 0; // wrap once to catch earlier blocks
            }
        }
    }
    st.push_cursor = cursor;
    if batch.is_empty() {
        // Everything handed to the wire; completion happens at the last
        // arrival (PushComplete itself is control traffic).
        let msg = MigMessage::PushComplete;
        st.ledger.record(&msg);
        return;
    }
    let bytes: u64 = batch.len() as u64 * st.cfg.block_size;
    let msg = MigMessage::DiskBlocks {
        blocks: batch.iter().map(|&b| b as u64).collect(),
        payload_len: bytes,
        payload: None,
    };
    // Account pushes under their own category, not pre-copy.
    st.ledger.add(Category::DiskPush, msg.wire_size());
    st.in_flight += batch.len() as u64;
    let serialize = SimDuration::from_secs_f64(bytes as f64 / st.cfg.push_rate);
    let arrive_in = serialize + st.cfg.latency;
    sim.schedule_in(arrive_in, move |sim2, st2: &mut PcState<'_>| {
        for b in batch {
            st2.apply_arrival(sim2.now(), b, false);
            st2.in_flight -= 1;
        }
        st2.check_done(sim2.now());
    });
    // Pipeline: next batch leaves as soon as this one has serialized.
    sim.schedule_in(serialize, schedule_push);
}

fn workload_slice(sim: &mut Simulator<PcState<'_>>, st: &mut PcState<'_>) {
    if st.done {
        return;
    }
    let slice = st.cfg.slice;
    let share = st.cfg.workload_share;
    let ops = st.workload.ops_for(slice, share, st.rng);
    for op in ops {
        match op.kind {
            OpKind::Write { block } => {
                let block = block as usize;
                st.dst_disk.write(block);
                st.new_bm.set(block);
                if st.dst_bm.get(block) {
                    // Whole-block overwrite: no pull needed, cancel sync.
                    st.dst_bm.clear(block);
                    st.rec.record_at_nanos(sim.now().as_nanos(), || {
                        telemetry::Event::SyncCancelled {
                            block: block as u64,
                        }
                    });
                    for req in st.pending.take_for_block(block) {
                        debug_assert!(!req.is_write());
                    }
                }
            }
            OpKind::Read { block } => {
                let block = block as usize;
                if st.dst_bm.get(block) {
                    let already_waiting = st.pending.waiting_on(block);
                    st.pending.push(IoRequest::read(block, DomainId(1)));
                    st.stats.pending_high_water = st
                        .stats
                        .pending_high_water
                        .max(st.pending.high_water() as u64);
                    if !already_waiting {
                        // Issue a pull. The source answers preferentially
                        // and removes the block from its push plan.
                        let req = MigMessage::PullRequest {
                            block: block as u64,
                        };
                        st.ledger.record(&req);
                        st.rec.record_at_nanos(sim.now().as_nanos(), || {
                            telemetry::Event::PullRequested {
                                block: block as u64,
                            }
                        });
                        st.src_bm.clear(block);
                        st.pulls_outstanding += 1;
                        let resp_bytes = st.cfg.block_size;
                        let rtt = st.cfg.latency * 2u64
                            + SimDuration::from_secs_f64(resp_bytes as f64 / st.cfg.push_rate);
                        let resp = MigMessage::PostCopyBlock {
                            block: block as u64,
                            pulled: true,
                            payload_len: resp_bytes,
                            payload: None,
                        };
                        st.ledger.record(&resp);
                        sim.schedule_in(op.offset() + rtt, move |sim2, st2: &mut PcState<'_>| {
                            st2.apply_arrival(sim2.now(), block, true);
                            st2.pulls_outstanding -= 1;
                            st2.check_done(sim2.now());
                        });
                    }
                }
            }
        }
    }
    st.probe
        .record(sim.now() + slice, st.workload.client_throughput(share));
    st.check_done(sim.now());
    if !st.done {
        sim.schedule_in(slice, workload_slice);
    }
}

/// Run the post-copy phase.
///
/// `src_bm` and `dst_bm` are the two copies of the freeze-phase bitmap;
/// `new_bm` is the destination-side tracker feeding a later IM. The source
/// disk is immutable during the phase (the guest now runs on the
/// destination); destination writes land in `dst_disk`. Per-block push /
/// pull / drop / cancel events are journaled into `recorder` in virtual
/// time (pass `Recorder::off()` for no tracing).
#[allow(clippy::too_many_arguments)]
pub fn run_postcopy(
    cfg: PostCopyConfig,
    start: SimTime,
    src_disk: &MetaDisk,
    dst_disk: &mut MetaDisk,
    src_bm: FlatBitmap,
    dst_bm: FlatBitmap,
    new_bm: &mut DirtyTracker,
    workload: &mut dyn Workload,
    rng: &mut SimRng,
    ledger: &mut TransferLedger,
    probe: &mut ThroughputProbe,
    recorder: &Arc<Recorder>,
) -> PostCopyOutcome {
    assert!(cfg.push_rate > 0.0, "push rate must be positive");
    assert_eq!(src_bm.len(), dst_bm.len(), "bitmap sizes must match");
    let remaining = dst_bm.count_ones() as u64;

    // The simulator starts at t=0; the first events are scheduled at
    // `start`, which aligns its clock with the engine's.
    let mut sim: Simulator<PcState<'_>> = Simulator::new();

    let mut st = PcState {
        cfg: cfg.clone(),
        start,
        src_disk,
        dst_disk,
        src_bm,
        dst_bm,
        new_bm,
        workload,
        rng,
        ledger,
        probe,
        pending: PendingQueue::new(),
        push_cursor: 0,
        in_flight: 0,
        pulls_outstanding: 0,
        stats: PostCopyStats {
            remaining_at_resume: remaining,
            ..PostCopyStats::default()
        },
        done: false,
        finished_at: start,
        rec: Arc::clone(recorder),
    };

    // Degenerate case: nothing to synchronize.
    if remaining == 0 && cfg.push_enabled {
        st.stats.duration_secs = 0.0;
        return PostCopyOutcome {
            stats: st.stats,
            residual_blocks: 0,
            finished_at: start,
        };
    }

    sim.schedule_at(start, schedule_push);
    sim.schedule_at(start, workload_slice);
    let horizon = start + cfg.horizon;
    sim.schedule_at(horizon, |sim2, st2: &mut PcState<'_>| {
        if !st2.done {
            st2.done = true;
            st2.finished_at = sim2.now();
        }
    });

    sim.run_while(&mut st, |s| s.done);

    let residual = st.dst_bm.count_ones() as u64;
    st.stats.duration_secs = st.finished_at.since(st.start).as_secs_f64();
    PostCopyOutcome {
        stats: st.stats,
        residual_blocks: residual,
        finished_at: st.finished_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::SimRng;
    use workloads::WorkloadKind;

    fn cfg(push: bool) -> PostCopyConfig {
        PostCopyConfig {
            block_size: 4096,
            push_rate: 50.0 * 1024.0 * 1024.0,
            workload_share: 2.0 * 1024.0 * 1024.0,
            latency: SimDuration::from_micros(100),
            push_batch: 32,
            slice: SimDuration::from_millis(20),
            horizon: SimDuration::from_secs(60),
            push_enabled: push,
        }
    }

    fn run(push: bool, dirty: &[usize]) -> (PostCopyOutcome, MetaDisk, MetaDisk) {
        let blocks = 65_536;
        let mut src = MetaDisk::new(blocks);
        let mut dst = MetaDisk::new(blocks);
        // Source holds newer data for the dirty blocks.
        let mut bm = FlatBitmap::new(blocks);
        for &b in dirty {
            src.write(b);
            bm.set(b);
        }
        let mut new_bm = DirtyTracker::new(crate::BitmapKind::Flat, blocks);
        let mut workload = WorkloadKind::Idle.build(blocks as u64);
        let mut rng = SimRng::new(7);
        let mut ledger = TransferLedger::new();
        let mut probe = ThroughputProbe::new();
        let out = run_postcopy(
            cfg(push),
            SimTime::from_nanos(1_000_000_000),
            &src,
            &mut dst,
            bm.clone(),
            bm,
            &mut new_bm,
            workload.as_mut(),
            &mut rng,
            &mut ledger,
            &mut probe,
            &Recorder::off(),
        );
        (out, src, dst)
    }

    #[test]
    fn push_synchronizes_everything() {
        let dirty: Vec<usize> = (0..500).map(|i| i * 100).collect();
        let (out, src, dst) = run(true, &dirty);
        assert_eq!(out.residual_blocks, 0);
        assert_eq!(out.stats.pushed, 500);
        assert_eq!(out.stats.pulled, 0);
        assert!(src.content_equals(&dst));
        // 500 blocks at 50 MB/s is ~40 ms plus latency.
        assert!(out.stats.duration_secs < 1.0);
    }

    #[test]
    fn empty_bitmap_finishes_instantly() {
        let (out, src, dst) = run(true, &[]);
        assert_eq!(out.stats.duration_secs, 0.0);
        assert_eq!(out.stats.remaining_at_resume, 0);
        assert!(src.content_equals(&dst));
    }

    fn run_with_workload(kind: WorkloadKind, push_rate: f64, dirty: &[usize]) -> PostCopyOutcome {
        let blocks = 65_536;
        let mut src = MetaDisk::new(blocks);
        let mut dst = MetaDisk::new(blocks);
        let mut bm = FlatBitmap::new(blocks);
        for &b in dirty {
            src.write(b);
            bm.set(b);
        }
        let mut new_bm = DirtyTracker::new(crate::BitmapKind::Flat, blocks);
        let mut workload = kind.build(blocks as u64);
        let mut rng = SimRng::new(7);
        let mut ledger = TransferLedger::new();
        let mut probe = ThroughputProbe::new();
        run_postcopy(
            PostCopyConfig {
                push_rate,
                ..cfg(true)
            },
            SimTime::from_nanos(1_000_000_000),
            &src,
            &mut dst,
            bm.clone(),
            bm,
            &mut new_bm,
            workload.as_mut(),
            &mut rng,
            &mut ledger,
            &mut probe,
            &Recorder::off(),
        )
    }

    #[test]
    fn reading_guest_forces_pulls() {
        // A live web guest reads its data region (blocks 16384..49152 on
        // this disk) at ~500 blocks/s while a 2 MiB/s push needs ~16 s to
        // drain 8192 dirty blocks sitting in that region: reads MUST land
        // on still-dirty blocks before the push reaches them, firing the
        // on-demand pull path.
        let dirty: Vec<usize> = (16_384..24_576).collect();
        let out = run_with_workload(WorkloadKind::Web, 2.0 * 1024.0 * 1024.0, &dirty);
        assert!(
            out.stats.pulled > 0,
            "a reading guest over a slow push must pull (stats: {:?})",
            out.stats
        );
        assert_eq!(out.residual_blocks, 0, "push still finishes the phase");
    }

    #[test]
    fn local_writes_drop_superseded_pushes() {
        // Bonnie++'s putc phase rewrites its file extent (blocks
        // 26214..34406 here) sequentially at the same ~512 blocks/s the
        // push stream achieves, so the write cursor chases the push cursor
        // through the dirty set and keeps overwriting blocks whose pushed
        // copy is still in flight. Those arrivals MUST be dropped (the
        // paper's receive algorithm), never applied over newer local data.
        let a_start = 65_536 * 2 / 5;
        let dirty: Vec<usize> = (a_start..a_start + 8_192).collect();
        let out = run_with_workload(WorkloadKind::Diabolical, 2.0 * 1024.0 * 1024.0, &dirty);
        assert!(
            out.stats.dropped > 0,
            "in-flight pushes superseded by local writes must be dropped (stats: {:?})",
            out.stats
        );
        assert_eq!(out.residual_blocks, 0);
        assert!(
            out.stats.pushed + out.stats.pulled < dirty.len() as u64,
            "superseded blocks must not also count as synchronized arrivals"
        );
    }

    #[test]
    fn on_demand_without_push_leaves_residual() {
        // Idle workload issues no reads: with push disabled nothing ever
        // synchronizes — the residual-dependency problem of §II-B.
        let dirty: Vec<usize> = (0..100).collect();
        let (out, _, _) = run(false, &dirty);
        assert_eq!(out.residual_blocks, 100);
        assert_eq!(out.stats.pushed, 0);
        // The phase only ended because the horizon fired.
        assert!((out.stats.duration_secs - 60.0).abs() < 1.0);
    }
}
