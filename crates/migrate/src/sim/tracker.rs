//! Bitmap-kind dispatch for the write tracker.

use block_bitmap::{DirtyMap, FlatBitmap, LayeredBitmap};

use crate::BitmapKind;

/// The engine-side dirty tracker, dispatching between the flat and
/// layered bitmap implementations (the §IV-A-2 design alternatives —
/// E10 benchmarks their scan/memory trade-off).
#[derive(Debug, Clone)]
pub enum DirtyTracker {
    /// Dense bitmap.
    Flat(FlatBitmap),
    /// Two-layer lazily allocated bitmap.
    Layered(LayeredBitmap),
}

impl DirtyTracker {
    /// Create an all-clean tracker of the requested kind.
    pub fn new(kind: BitmapKind, nbits: usize) -> Self {
        match kind {
            BitmapKind::Flat => Self::Flat(FlatBitmap::new(nbits)),
            BitmapKind::Layered => Self::Layered(LayeredBitmap::new(nbits)),
        }
    }

    /// Number of tracked blocks.
    pub fn len(&self) -> usize {
        match self {
            Self::Flat(b) => b.len(),
            Self::Layered(b) => b.len(),
        }
    }

    /// `true` when the tracker covers zero blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mark a block dirty.
    pub fn set(&mut self, idx: usize) {
        match self {
            Self::Flat(b) => {
                b.set(idx);
            }
            Self::Layered(b) => {
                b.set(idx);
            }
        }
    }

    /// Current dirty count.
    pub fn count(&self) -> usize {
        match self {
            Self::Flat(b) => b.count_ones(),
            Self::Layered(b) => b.count_ones(),
        }
    }

    /// Drain into a dense snapshot, resetting the tracker — the pre-copy
    /// iteration boundary.
    pub fn drain(&mut self) -> FlatBitmap {
        match self {
            Self::Flat(b) => std::mem::replace(b, FlatBitmap::new(b.len())),
            Self::Layered(b) => {
                let snap = b.to_flat();
                b.clear_all();
                snap
            }
        }
    }

    /// Merge a dense bitmap back into the tracker (used when a drained
    /// set must keep accumulating, e.g. across the memory pre-copy).
    pub fn merge(&mut self, other: &FlatBitmap) {
        match self {
            Self::Flat(b) => b.union_with(other),
            Self::Layered(b) => {
                for idx in other.iter_set() {
                    b.set(idx);
                }
            }
        }
    }

    /// Resident memory (the E10 metric).
    pub fn memory_bytes(&self) -> usize {
        match self {
            Self::Flat(b) => b.memory_bytes(),
            Self::Layered(b) => b.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_kinds_agree() {
        for kind in [BitmapKind::Flat, BitmapKind::Layered] {
            let mut t = DirtyTracker::new(kind, 1000);
            assert_eq!(t.len(), 1000);
            t.set(1);
            t.set(999);
            t.set(1);
            assert_eq!(t.count(), 2);
            let snap = t.drain();
            assert_eq!(snap.to_indices(), vec![1, 999]);
            assert_eq!(t.count(), 0);
            t.merge(&snap);
            assert_eq!(t.count(), 2);
        }
    }

    #[test]
    fn layered_uses_less_memory_when_sparse() {
        let mut flat = DirtyTracker::new(BitmapKind::Flat, 10 * 1024 * 1024);
        let mut layered = DirtyTracker::new(BitmapKind::Layered, 10 * 1024 * 1024);
        for i in 0..100 {
            flat.set(i);
            layered.set(i);
        }
        assert!(layered.memory_bytes() * 10 < flat.memory_bytes());
    }
}
