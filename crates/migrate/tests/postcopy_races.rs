//! Scripted post-copy races (§IV-A-3): hand-written guest traces pin
//! reads and writes to exact virtual times so every branch of the paper's
//! destination algorithm is exercised deterministically — pull on read,
//! cancel on write, drop superseded pushes, queue-once per block.

use block_bitmap::{DirtyMap, FlatBitmap};
use des::{SimDuration, SimRng, SimTime};
use migrate::sim::{run_postcopy, DirtyTracker, PostCopyConfig};
use migrate::BitmapKind;
use simnet::proto::{Category, TransferLedger};
use vdisk::MetaDisk;
use workloads::probe::ThroughputProbe;
use workloads::{OpKind, OpTrace, TimedOp, TraceWorkload, Workload};

const BLOCKS: usize = 4096;

/// Very slow push (1 block/s) so scripted guest ops land long before the
/// pushes reach their blocks.
fn slow_cfg() -> PostCopyConfig {
    PostCopyConfig {
        block_size: 4096,
        push_rate: 4096.0, // one block per second
        workload_share: 1e6,
        latency: SimDuration::from_millis(1),
        push_batch: 1,
        slice: SimDuration::from_millis(10),
        horizon: SimDuration::from_secs(3600),
        push_enabled: true,
    }
}

struct Setup {
    src: MetaDisk,
    dst: MetaDisk,
    bm: FlatBitmap,
}

/// Source holds newer data for `dirty`; both sides agree on the bitmap.
fn setup(dirty: &[usize]) -> Setup {
    let mut src = MetaDisk::new(BLOCKS);
    let dst = MetaDisk::new(BLOCKS);
    let mut bm = FlatBitmap::new(BLOCKS);
    for &b in dirty {
        src.write(b);
        bm.set(b);
    }
    Setup { src, dst, bm }
}

fn run(
    setup: &mut Setup,
    trace: OpTrace,
    cfg: PostCopyConfig,
) -> (migrate::PostCopyStats, DirtyTracker, TransferLedger) {
    let mut workload: Box<dyn Workload> = Box::new(TraceWorkload::new(trace, 1e6));
    let mut new_bm = DirtyTracker::new(BitmapKind::Flat, BLOCKS);
    let mut rng = SimRng::new(1);
    let mut ledger = TransferLedger::new();
    let mut probe = ThroughputProbe::new();
    let out = run_postcopy(
        cfg,
        SimTime::ZERO,
        &setup.src,
        &mut setup.dst,
        setup.bm.clone(),
        setup.bm.clone(),
        &mut new_bm,
        workload.as_mut(),
        &mut rng,
        &mut ledger,
        &mut probe,
        &telemetry::Recorder::off(),
    );
    assert_eq!(out.residual_blocks, 0, "push must always converge");
    (out.stats, new_bm, ledger)
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

#[test]
fn read_to_dirty_block_pulls_it() {
    // Blocks 100 and 200 dirty; the guest reads 200 at t=5ms, long before
    // the 1-block/s push would reach it.
    let mut s = setup(&[100, 200]);
    let mut trace = OpTrace::new();
    trace.push(TimedOp::new(ms(5), OpKind::Read { block: 200 }));
    let (stats, _, ledger) = run(&mut s, trace, slow_cfg());
    assert_eq!(stats.pulled, 1, "the read must trigger exactly one pull");
    assert_eq!(stats.pushed, 1, "the other block is pushed");
    assert_eq!(stats.dropped, 0);
    assert!(ledger.get(Category::DiskPull) > 0);
    assert!(s.src.content_equals(&s.dst));
}

#[test]
fn read_to_clean_block_never_pulls() {
    let mut s = setup(&[100]);
    let mut trace = OpTrace::new();
    trace.push(TimedOp::new(ms(5), OpKind::Read { block: 300 })); // clean
    let (stats, _, ledger) = run(&mut s, trace, slow_cfg());
    assert_eq!(stats.pulled, 0);
    assert_eq!(ledger.get(Category::DiskPull), 0);
    assert_eq!(stats.pushed, 1);
}

#[test]
fn write_to_dirty_block_cancels_sync_and_push_is_dropped() {
    // Block 100 dirty; guest overwrites it locally before the push lands.
    // Paper: "A write request in the destination to a dirty block will
    // overwrite the whole block and thus does not require pulling".
    let mut s = setup(&[50, 100]);
    let mut trace = OpTrace::new();
    trace.push(TimedOp::new(ms(5), OpKind::Write { block: 100 }));
    let (stats, new_bm, _) = run(&mut s, trace, slow_cfg());
    // Both source-marked blocks leave the wire; the one superseded by the
    // local write is dropped on arrival.
    assert_eq!(stats.pushed + stats.dropped, 2);
    assert_eq!(stats.dropped, 1, "the superseded push must be dropped");
    assert_eq!(stats.pulled, 0);
    // The write is in the IM bitmap…
    let im = match new_bm {
        DirtyTracker::Flat(b) => b,
        DirtyTracker::Layered(b) => b.to_flat(),
    };
    assert!(im.get(100));
    // …and the destination keeps the *local* data: src and dst disagree
    // exactly on the written block.
    assert_eq!(s.src.diff_blocks(&s.dst), vec![100]);
}

#[test]
fn repeated_reads_issue_one_pull() {
    // Three reads of the same dirty block while the first pull is in
    // flight: the pending queue parks them; only one pull crosses. The
    // read targets a block deep in the bitmap so the 1-block/s push
    // cannot beat the pull to it.
    let dirty: Vec<usize> = (0..50).chain([3000]).collect();
    let mut s = setup(&dirty);
    let mut cfg = slow_cfg();
    cfg.latency = SimDuration::from_millis(200); // keep the pull in flight
    let mut trace = OpTrace::new();
    for t in [5u64, 6, 7] {
        trace.push(TimedOp::new(ms(t), OpKind::Read { block: 3000 }));
    }
    let (stats, _, ledger) = run(&mut s, trace, cfg);
    assert_eq!(stats.pulled, 1);
    let pull_req_bytes = simnet::proto::MigMessage::PullRequest { block: 0 }.wire_size();
    let pull_block_bytes = simnet::proto::MigMessage::PostCopyBlock {
        block: 0,
        pulled: true,
        payload_len: 4096,
        payload: None,
    }
    .wire_size();
    assert_eq!(
        ledger.get(Category::DiskPull),
        pull_req_bytes + pull_block_bytes,
        "exactly one pull request and one pulled block on the wire"
    );
    assert!(stats.pending_high_water >= 2, "later reads must queue");
}

#[test]
fn write_then_read_needs_no_pull() {
    // Overwrite a dirty block, then read it: the read sees local data,
    // no pull.
    let mut s = setup(&[42]);
    let mut trace = OpTrace::new();
    trace.push(TimedOp::new(ms(5), OpKind::Write { block: 42 }));
    trace.push(TimedOp::new(ms(6), OpKind::Read { block: 42 }));
    let (stats, _, ledger) = run(&mut s, trace, slow_cfg());
    assert_eq!(stats.pulled, 0);
    assert_eq!(ledger.get(Category::DiskPull), 0);
    assert_eq!(stats.dropped, 1);
}

#[test]
fn pull_and_push_race_never_double_applies() {
    // Many dirty blocks with a fast push racing scripted reads across the
    // whole set: every block is applied exactly once (pushed, pulled, or
    // dropped after a local write) and the disks converge.
    let dirty: Vec<usize> = (0..512).map(|i| i * 8).collect();
    let mut s = setup(&dirty);
    let mut cfg = slow_cfg();
    cfg.push_rate = 2.0e6; // ~500 blocks/s: real racing
    let mut trace = OpTrace::new();
    for (i, &b) in dirty.iter().enumerate() {
        let kind = if i % 3 == 0 {
            OpKind::Write { block: b as u64 }
        } else {
            OpKind::Read { block: b as u64 }
        };
        trace.push(TimedOp::new(ms(1 + (i as u64 % 700)), kind));
    }
    let (stats, new_bm, _) = run(&mut s, trace, cfg);
    // Applied syncs never exceed the dirty set; arrivals can exceed it
    // because a pull may race a push already in flight for the same
    // block — the duplicate is dropped by the bitmap check (the paper's
    // receive algorithm, lines 2-3).
    assert!(stats.pushed + stats.pulled <= 512);
    assert!(
        stats.pushed + stats.pulled + stats.dropped >= 512,
        "every dirty block must produce at least one arrival or local write"
    );
    assert!(stats.dropped > 0, "the race must actually occur");
    let im = match new_bm {
        DirtyTracker::Flat(b) => b,
        DirtyTracker::Layered(b) => b.to_flat(),
    };
    // Disks agree except on destination-written blocks.
    for b in s.src.diff_blocks(&s.dst) {
        assert!(im.get(b), "block {b} diverged without a local write");
    }
}
