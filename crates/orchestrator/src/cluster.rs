//! The fleet model: hosts, VM handles, and the shared replica table.

use std::collections::BTreeSet;

use des::SimRng;
use vdisk::{MetaDisk, ReplicaTable};
use workloads::{Workload, WorkloadKind};

use crate::config::{ClusterConfig, ConfigError};

/// A physical machine, by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub usize);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A virtual machine, by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub usize);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// One physical machine: its NIC and disk capacities live in
/// [`ClusterConfig`] (a homogeneous fleet); the host tracks which VMs
/// currently run on it.
#[derive(Debug, Clone)]
pub struct Host {
    /// This host's id.
    pub id: HostId,
    /// VMs currently running here, ascending.
    pub resident: BTreeSet<VmId>,
}

/// One VM: its live disk image, its workload generator, and its private
/// RNG stream (forked from the master seed, so per-VM behaviour is
/// independent of scheduling order).
pub struct VmHandle {
    /// This VM's id.
    pub id: VmId,
    /// Host the VM currently runs on.
    pub host: HostId,
    /// Which workload the VM runs.
    pub kind: WorkloadKind,
    /// The live disk image (generation counters per block).
    pub disk: MetaDisk,
    /// The workload generator.
    pub workload: Box<dyn Workload>,
    /// Private RNG stream.
    pub rng: SimRng,
}

impl std::fmt::Debug for VmHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VmHandle")
            .field("id", &self.id)
            .field("host", &self.host)
            .field("kind", &self.kind)
            .finish()
    }
}

/// The whole fleet: hosts, VMs, and the shared stale-replica table.
#[derive(Debug)]
pub struct Cluster {
    /// Physical machines, by index.
    pub hosts: Vec<Host>,
    /// Virtual machines, by index.
    pub vms: Vec<VmHandle>,
    /// §VII version maintenance, fleet-wide: the stale image each host
    /// kept when a VM departed (or a failed stream's partial copy).
    pub replicas: ReplicaTable,
}

impl Cluster {
    /// Build the fleet: VM `i` starts on host `i % hosts`, runs
    /// `workload_cycle[i % len]`, and owns a fully-written disk image
    /// (every block at a real generation, so a primary migration must
    /// move the whole disk, as in §V).
    pub fn new(cfg: &ClusterConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let hosts: Vec<Host> = (0..cfg.hosts)
            .map(|h| Host {
                id: HostId(h),
                resident: BTreeSet::new(),
            })
            .collect();
        let mut cluster = Self {
            hosts,
            vms: Vec::with_capacity(cfg.vms),
            replicas: ReplicaTable::new(),
        };
        let mut master = SimRng::new(cfg.seed);
        for i in 0..cfg.vms {
            let host = HostId(i % cfg.hosts);
            let kind = cfg.workload_cycle[i % cfg.workload_cycle.len()];
            let mut disk = MetaDisk::new(cfg.disk_blocks);
            for b in 0..cfg.disk_blocks {
                disk.write(b);
            }
            cluster.vms.push(VmHandle {
                id: VmId(i),
                host,
                kind,
                disk,
                workload: kind.build(cfg.disk_blocks as u64),
                rng: master.fork(i as u64),
            });
            cluster.hosts[host.0].resident.insert(VmId(i));
        }
        Ok(cluster)
    }

    /// Move a VM between hosts' resident sets and update its handle.
    pub(crate) fn relocate(&mut self, vm: VmId, to: HostId) {
        let from = self.vms[vm.0].host;
        self.hosts[from.0].resident.remove(&vm);
        self.hosts[to.0].resident.insert(vm);
        self.vms[vm.0].host = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_round_robins_vms_and_workloads() {
        let cfg = ClusterConfig::new(3, 7);
        let c = Cluster::new(&cfg).expect("valid config");
        assert_eq!(c.hosts.len(), 3);
        assert_eq!(c.vms.len(), 7);
        assert_eq!(c.vms[4].host, HostId(1));
        assert_eq!(c.hosts[0].resident.len(), 3);
        assert_eq!(c.hosts[1].resident.len(), 2);
        // Every block starts at a real generation.
        assert!((0..cfg.disk_blocks).all(|b| c.vms[0].disk.generation(b) > 0));
        assert!(c.replicas.is_empty());
    }

    #[test]
    fn relocate_moves_residency() {
        let cfg = ClusterConfig::new(2, 2);
        let mut c = Cluster::new(&cfg).expect("valid config");
        c.relocate(VmId(0), HostId(1));
        assert_eq!(c.vms[0].host, HostId(1));
        assert!(!c.hosts[0].resident.contains(&VmId(0)));
        assert!(c.hosts[1].resident.contains(&VmId(0)));
    }

    #[test]
    fn invalid_config_is_rejected() {
        assert!(Cluster::new(&ClusterConfig::new(1, 4)).is_err());
    }
}
