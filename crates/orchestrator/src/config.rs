//! Fleet configuration and migration request scenarios.

use des::{SimDuration, SimTime};
use migrate::BitmapKind;
use workloads::WorkloadKind;

use crate::cluster::{HostId, VmId};
use crate::scheduler::MigrationRequest;

/// A configuration error, reported instead of panicking: the orchestrator
/// lives in lintkit's no-panic zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Fleet geometry, per-host capacities, phase-model knobs, and the fault
/// schedule for one orchestrated run.
///
/// The per-migration stream model mirrors `migrate`'s simulated TPM
/// engine — same phase structure, stop conditions and freeze-and-copy
/// downtime formula — but coarsens the memory model (one pre-copy pass
/// plus a fixed frozen working set) because a fleet run simulates dozens
/// of migrations, not one. DESIGN.md §13 records the mapping.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of physical hosts (≥ 2).
    pub hosts: usize,
    /// Number of VMs.
    pub vms: usize,
    /// Per-VM disk capacity in blocks.
    pub disk_blocks: usize,
    /// Block size in bytes.
    pub block_size: u64,
    /// Guest memory pages (4 KiB each) shipped in the single memory
    /// pre-copy pass.
    pub mem_pages: usize,
    /// Pages still dirty at suspend, shipped inside the freeze window.
    pub frozen_mem_pages: usize,
    /// CPU context size in bytes, shipped inside the freeze window.
    pub cpu_state_bytes: u64,
    /// Per-host NIC capacity, bytes/second (each host has one NIC shared
    /// by every migration stream entering or leaving it).
    pub nic_capacity: f64,
    /// Per-host disk capacity, bytes/second (shared by resident guest
    /// workloads and the migration streams reading/writing images).
    pub disk_capacity: f64,
    /// Per-stream pipeline ceiling, bytes/second — the demand one
    /// migration stream places on each pool it touches.
    pub stream_demand: f64,
    /// One-way link latency added to every freeze window.
    pub latency: SimDuration,
    /// Maximum disk pre-copy passes before forcing freeze-and-copy.
    pub max_disk_passes: u32,
    /// Stop disk pre-copy when a pass ends with at most this many dirty
    /// blocks.
    pub dirty_threshold: usize,
    /// Admission control: maximum migration streams touching one host
    /// (as source or destination) at once.
    pub max_streams_per_host: usize,
    /// Simulation time slice.
    pub step: SimDuration,
    /// Fixed hypervisor suspend overhead (freeze window).
    pub suspend_overhead: SimDuration,
    /// Fixed hypervisor resume overhead (freeze window).
    pub resume_overhead: SimDuration,
    /// Which bitmap structure tracks dirty blocks.
    pub bitmap: BitmapKind,
    /// Content-addressed transfer: a block the destination replica
    /// already holds at the identical generation crosses as a 16-byte
    /// reference instead of a full payload (wire accounting only — the
    /// stream's pacing is unchanged, a deliberately conservative model).
    /// Off reproduces the classic byte math exactly.
    pub dedup: bool,
    /// Multi-source accounting: a full block some *other* host also
    /// holds at the live generation is counted as served by that peer
    /// (the block-directory fan-in the two-host engine performs for
    /// real). Wire bytes and pacing are unchanged — the payload crosses
    /// either way — so runs are byte- and clock-identical with this off;
    /// only the per-migration peer-served counter moves.
    pub multisource: bool,
    /// Master seed: forks every per-VM workload stream and the fault
    /// schedule deterministically.
    pub seed: u64,
    /// Per-migration count of seeded connection resets injected during
    /// pre-copy (0 = fault-free run).
    pub fault_resets: u32,
    /// Retries a stream survives before its migration is abandoned.
    pub max_retries: u32,
    /// Virtual-time backoff before a cut stream reconnects.
    pub retry_backoff: SimDuration,
    /// Safety horizon: the run aborts (remaining migrations marked
    /// failed) if virtual time passes this bound.
    pub horizon: SimDuration,
    /// Starvation bound for cycle-aware scheduling: how long a request
    /// may be deferred waiting for its VM's low-activity workload phase
    /// before it is admitted regardless.
    pub cycle_patience: SimDuration,
    /// Workload assignment: VM `i` runs `workload_cycle[i % len]`.
    pub workload_cycle: Vec<WorkloadKind>,
}

impl ClusterConfig {
    /// A fleet of `hosts` hosts and `vms` VMs with paper-calibrated
    /// per-host capacities (Gigabit NIC, SATA-class disk, ~50 MB/s
    /// migration pipeline) and CI-sized images.
    pub fn new(hosts: usize, vms: usize) -> Self {
        Self {
            hosts,
            vms,
            disk_blocks: 65_536,
            block_size: 4096,
            mem_pages: 8_192,
            frozen_mem_pages: 256,
            cpu_state_bytes: 8_192,
            nic_capacity: 119.0 * 1024.0 * 1024.0,
            disk_capacity: 137.7 * 1024.0 * 1024.0,
            stream_demand: 50.0 * 1024.0 * 1024.0,
            latency: SimDuration::from_micros(200),
            max_disk_passes: 8,
            dirty_threshold: 256,
            max_streams_per_host: 2,
            step: SimDuration::from_millis(250),
            suspend_overhead: SimDuration::from_millis(15),
            resume_overhead: SimDuration::from_millis(25),
            bitmap: BitmapKind::Flat,
            dedup: true,
            multisource: true,
            seed: 2008,
            fault_resets: 0,
            max_retries: 3,
            retry_backoff: SimDuration::from_secs(2),
            horizon: SimDuration::from_secs(4 * 3600),
            cycle_patience: SimDuration::from_secs(600),
            workload_cycle: vec![
                WorkloadKind::Web,
                WorkloadKind::Video,
                WorkloadKind::Idle,
                WorkloadKind::KernelBuild,
            ],
        }
    }

    /// Check the configuration, returning a typed error instead of
    /// panicking.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |m: &str| Err(ConfigError(m.to_string()));
        if self.hosts < 2 {
            return err("need at least 2 hosts");
        }
        if self.vms == 0 {
            return err("need at least 1 VM");
        }
        if self.disk_blocks == 0 || self.block_size == 0 {
            return err("disk geometry must be non-empty");
        }
        let needs_large_disk = self
            .workload_cycle
            .iter()
            .any(|k| !matches!(k, WorkloadKind::Idle));
        if needs_large_disk && self.disk_blocks < 8_192 {
            return err("paper workloads need at least 8192 blocks (~32 MiB) of disk");
        }
        for (name, v) in [
            ("nic_capacity", self.nic_capacity),
            ("disk_capacity", self.disk_capacity),
            ("stream_demand", self.stream_demand),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(ConfigError(format!("{name} must be finite and positive")));
            }
        }
        if self.max_streams_per_host == 0 {
            return err("max_streams_per_host must be at least 1");
        }
        if self.step == SimDuration::ZERO {
            return err("step must be positive");
        }
        if self.workload_cycle.is_empty() {
            return err("workload_cycle must be non-empty");
        }
        Ok(())
    }
}

/// A timed stream of migration requests — the orchestrator's input.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// Requests, in submission order.
    pub requests: Vec<MigrationRequest>,
}

impl Scenario {
    /// The evacuation/return scenario behind the bench experiment and the
    /// acceptance test: every VM is evacuated at `t = 0` (wave 1, full
    /// copies that seed the replica table), dwells for `gap`, then must
    /// move again (wave 2, destination left to the scheduler). Wave 2 is
    /// where IM-aware placement pays: a policy that sends each VM back to
    /// a host holding its stale replica ships only the bitmap diff.
    pub fn two_wave(cfg: &ClusterConfig, gap: SimDuration) -> Self {
        let mut requests = Vec::new();
        for wave in 0..2u64 {
            let at = SimTime::ZERO + SimDuration::from_nanos(wave * gap.as_nanos());
            for vm in 0..cfg.vms {
                requests.push(MigrationRequest {
                    vm: VmId(vm),
                    dest: None,
                    at,
                });
            }
        }
        Self { requests }
    }

    /// A single wave of requests at `t = 0`, optionally pinned to a
    /// destination host.
    pub fn single_wave(cfg: &ClusterConfig, dest: Option<HostId>) -> Self {
        Self {
            requests: (0..cfg.vms)
                .map(|vm| MigrationRequest {
                    vm: VmId(vm),
                    dest,
                    at: SimTime::ZERO,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(ClusterConfig::new(4, 8).validate().is_ok());
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        assert!(ClusterConfig::new(1, 8).validate().is_err());
        assert!(ClusterConfig::new(4, 0).validate().is_err());
        let mut c = ClusterConfig::new(4, 8);
        c.nic_capacity = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::new(4, 8);
        c.workload_cycle.clear();
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::new(4, 8);
        c.disk_blocks = 2048;
        assert!(c.validate().is_err(), "paper workloads need a bigger disk");
        c.workload_cycle = vec![WorkloadKind::Idle];
        assert!(c.validate().is_ok(), "idle fleets may use tiny disks");
    }

    #[test]
    fn two_wave_orders_requests_by_time() {
        let cfg = ClusterConfig::new(3, 5);
        let s = Scenario::two_wave(&cfg, SimDuration::from_secs(30));
        assert_eq!(s.requests.len(), 10);
        assert_eq!(s.requests[0].at, SimTime::ZERO);
        assert_eq!(s.requests[9].at, SimTime::ZERO + SimDuration::from_secs(30));
        assert!(s.requests.iter().all(|r| r.dest.is_none()));
    }
}
