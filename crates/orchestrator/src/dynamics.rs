//! Fleet dynamics: the executor's per-tick view of topology and time.
//!
//! The PR-9 executor assumed a flat, always-on fleet: every host up,
//! every pair connected, one NIC/disk capacity for everyone, workloads
//! running flat-out forever. [`FleetDynamics`] abstracts exactly that
//! assumption set behind a trait the executor consults every tick, so a
//! scenario engine (the `scenario` crate) can drive partitions, WAN
//! links, host maintenance, heterogeneous capacities and workload
//! activity cycles through one interface — while [`StaticDynamics`]
//! reproduces the flat fleet *exactly*: every default answer is the
//! mathematical identity of the corresponding executor computation
//! (`min(x, ∞) = x`, `x · 1.0 = x`, `d + 0 = d`), so a run through
//! `StaticDynamics` is byte- and clock-identical to the PR-9 engine.

use des::{SimDuration, SimTime};
use telemetry::Recorder;

use crate::cluster::Cluster;
use crate::config::ClusterConfig;
use crate::scheduler::MigrationRequest;

/// The executor's oracle for everything that can change under its feet:
/// connectivity, host lifecycle, per-host and per-link capacity, and
/// workload activity phases.
///
/// Called in a fixed order every tick — [`FleetDynamics::advance`]
/// first (the only `&mut` call, where a timeline interprets its due
/// events and journals them), then the read-only queries — so one seed
/// still fixes every answer and the run stays a pure function of its
/// configuration.
pub trait FleetDynamics {
    /// Advance the dynamics to `now`: interpret timeline events due at
    /// or before this instant, journal every topology change as a typed
    /// telemetry event, and return migration requests to inject into
    /// the arrival queue (maintenance evacuations). `streams` lists the
    /// `(src, dst)` endpoints of every live migration, so a maintenance
    /// wave can hold a host up until the streams touching it drain.
    fn advance(
        &mut self,
        now: SimTime,
        cluster: &Cluster,
        streams: &[(usize, usize)],
        recorder: &Recorder,
    ) -> Vec<MigrationRequest> {
        let _ = (now, cluster, streams, recorder);
        Vec::new()
    }

    /// Is the host powered and in service? A down host's pools vanish,
    /// its resident VMs neither read nor write, and no stream may start
    /// or continue through it.
    fn host_up(&self, host: usize) -> bool {
        let _ = host;
        true
    }

    /// Is the host refusing *new* inbound migrations? A cordoned host
    /// (maintenance about to start) keeps its existing streams and may
    /// still act as a source — it is evacuating, after all.
    fn cordoned(&self, host: usize) -> bool {
        let _ = host;
        false
    }

    /// Can hosts `a` and `b` exchange migration traffic right now?
    /// Symmetric by convention; a partition answers `false` across
    /// island boundaries.
    fn connected(&self, a: usize, b: usize) -> bool {
        let _ = (a, b);
        true
    }

    /// Host `host`'s NIC capacity in bytes/second.
    fn nic_capacity(&self, host: usize) -> f64;

    /// Host `host`'s disk capacity in bytes/second.
    fn disk_capacity(&self, host: usize) -> f64;

    /// Per-stream bandwidth ceiling on the `a -> b` path (a WAN link's
    /// bottleneck), or `f64::INFINITY` for an uncapped LAN link. The
    /// executor applies it with `min`, so infinity is exact identity.
    fn link_bandwidth(&self, a: usize, b: usize) -> f64 {
        let _ = (a, b);
        f64::INFINITY
    }

    /// Goodput factor of the `a -> b` path in `(0, 1]` — a lossy link's
    /// retransmissions eat this fraction of the allocated rate. The
    /// executor multiplies by it, so `1.0` is exact identity.
    fn link_quality(&self, a: usize, b: usize) -> f64 {
        let _ = (a, b);
        1.0
    }

    /// Extra one-way latency on the `a -> b` path, added to the freeze
    /// window's handshake term. `ZERO` is exact identity.
    fn link_latency(&self, a: usize, b: usize) -> SimDuration {
        let _ = (a, b);
        SimDuration::ZERO
    }

    /// Workload-cycle demand multiplier for `vm` at `now` (`1.0` = the
    /// flat demand the workload generator reports).
    fn workload_scale(&self, vm: usize, now: SimTime) -> f64 {
        let _ = (vm, now);
        1.0
    }

    /// Deterministic op thinning for `vm` at `now`: keep a guest op
    /// whose per-VM sequence number `s` satisfies `s % den < num`.
    /// `(1, 1)` keeps every op (exact identity); `(1, 4)` models a
    /// low-activity phase issuing a quarter of its ops.
    fn op_keep(&self, vm: usize, now: SimTime) -> (u64, u64) {
        let _ = (vm, now);
        (1, 1)
    }

    /// Is `vm` in a high-activity workload phase at `now`? Cycle-aware
    /// scheduling defers such requests (bounded by the starvation
    /// patience) until the phase passes.
    fn high_activity(&self, vm: usize, now: SimTime) -> bool {
        let _ = (vm, now);
        false
    }

    /// `true` once no future timeline event could change topology or
    /// inject a request — the run loop may terminate when its own
    /// queues drain. A static fleet is always exhausted.
    fn exhausted(&self, now: SimTime) -> bool {
        let _ = now;
        true
    }
}

/// The flat fleet: homogeneous capacities from [`ClusterConfig`], every
/// host up, every link perfect, no timeline. Running through this is
/// byte- and clock-identical to the pre-dynamics executor — each
/// default answer is the identity element of the operation the executor
/// applies it with.
#[derive(Debug, Clone, Copy)]
pub struct StaticDynamics {
    /// Per-host NIC capacity, bytes/second.
    pub nic: f64,
    /// Per-host disk capacity, bytes/second.
    pub disk: f64,
}

impl StaticDynamics {
    /// The homogeneous fleet a [`ClusterConfig`] describes.
    pub fn from_config(cfg: &ClusterConfig) -> Self {
        Self {
            nic: cfg.nic_capacity,
            disk: cfg.disk_capacity,
        }
    }
}

impl FleetDynamics for StaticDynamics {
    fn nic_capacity(&self, _host: usize) -> f64 {
        self.nic
    }

    fn disk_capacity(&self, _host: usize) -> f64 {
        self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_defaults_are_identity_answers() {
        let cfg = ClusterConfig::new(3, 3);
        let mut d = StaticDynamics::from_config(&cfg);
        assert_eq!(d.nic_capacity(0), cfg.nic_capacity);
        assert_eq!(d.disk_capacity(2), cfg.disk_capacity);
        assert!(d.host_up(0) && !d.cordoned(1) && d.connected(0, 2));
        assert_eq!(d.link_bandwidth(0, 1), f64::INFINITY);
        assert_eq!(d.link_quality(0, 1), 1.0);
        assert_eq!(d.link_latency(0, 1), SimDuration::ZERO);
        assert_eq!(d.workload_scale(0, SimTime::ZERO), 1.0);
        assert_eq!(d.op_keep(0, SimTime::ZERO), (1, 1));
        assert!(!d.high_activity(0, SimTime::ZERO));
        assert!(d.exhausted(SimTime::ZERO));
        let cluster = Cluster::new(&cfg).expect("valid config");
        let rec = Recorder::off();
        assert!(d.advance(SimTime::ZERO, &cluster, &[], &rec).is_empty());
    }
}
