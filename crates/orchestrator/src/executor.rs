//! The fleet executor: a time-sliced engine running many concurrent
//! migrations under shared per-host capacity.
//!
//! Each admitted migration is a [`Task`] walking the paper's §IV phase
//! structure — iterative disk pre-copy under a block-bitmap, one memory
//! pre-copy pass, freeze-and-copy, then push post-copy with §III-A write
//! cancellation. The per-stream numerics (block-carry accumulator, wire
//! framing, the freeze-window downtime formula) mirror `migrate`'s
//! simulated TPM engine; the memory model is coarsened to a single
//! pre-copy pass plus a fixed frozen working set, because a fleet run
//! simulates dozens of migrations at once (DESIGN.md §13 records the
//! mapping).
//!
//! Every tick the executor: admits pending requests through the
//! scheduling policy, pools stream and guest-workload demands on each
//! host's NIC and disk and splits them with
//! [`simnet::capacity::max_min_share`], advances every stream at its
//! bottleneck rate, then advances every guest workload at its achieved
//! disk rate. Iteration is index-ordered everywhere and the only clock
//! is virtual time, so a run is a pure function of its configuration:
//! same seed, same journal, byte for byte.

use std::collections::BTreeSet;
use std::sync::Arc;

use block_bitmap::{ser, DirtyMap, FlatBitmap};
use blockstore::BlockDirectory;
use des::{SimDuration, SimTime};
use migrate::sim::DirtyTracker;
use simnet::capacity::max_min_share;
use simnet::fault::{Fault, FaultKind, FaultPlan, FaultTrigger};
use simnet::proto::{BLOCK_REF_WIRE, FRAME_OVERHEAD};
use telemetry::{Event, FaultLabel, Phase, Recorder};
use vdisk::MetaDisk;

use crate::cluster::{Cluster, HostId, VmId};
use crate::config::{ClusterConfig, ConfigError, Scenario};
use crate::dynamics::{FleetDynamics, StaticDynamics};
use crate::report::{ClusterReport, MigrationRecord};
use crate::scheduler::{directory_of, ClusterView, MigrationRequest, Policy};

/// Message-count window for seeded per-migration fault schedules: a
/// reset armed by `fault_resets` fires after between `FAULT_LO` and
/// `FAULT_HI` pre-copy batches on its connection attempt.
const FAULT_LO: u64 = 2;
/// Upper bound (exclusive) of the seeded fault window.
const FAULT_HI: u64 = 16;

/// Per-page wire cost: 4 KiB payload plus the 8-byte index header, the
/// same framing the TPM engine charges per block.
const PAGE_WIRE: u64 = 4096 + 8;

/// One in-flight migration stream.
struct Task {
    id: u64,
    request: usize,
    vm: VmId,
    src: HostId,
    dst: HostId,
    phase: Phase,
    pass: u32,
    /// Blocks still to ship this pass (bits clear as blocks go out, so a
    /// reconnect resumes exactly where the cut stream stopped, and a
    /// destination write can cancel a pending post-copy push).
    to_send: FlatBitmap,
    cursor: usize,
    carry: f64,
    dst_disk: MetaDisk,
    /// Source-side writes since the current pass's bitmap was snapshot.
    tracker: DirtyTracker,
    /// Destination-side guest writes after resume (consistency witness).
    post_writes: FlatBitmap,
    mem_remaining: f64,
    resume_at: SimTime,
    stall_until: SimTime,
    plan: FaultPlan,
    armed: Vec<Fault>,
    attempt: u32,
    msgs: u64,
    attempt_bytes: u64,
    incremental: bool,
    first_pass_blocks: u64,
    blocks_sent: u64,
    blocks_cancelled: u64,
    /// Blocks that crossed as 16-byte content references because the
    /// destination replica already held the identical generation.
    blocks_deduped: u64,
    /// Full blocks some other host also held at the live generation —
    /// the multi-source fan-in share (accounting only).
    blocks_peer: u64,
    bytes: u64,
    retries: u32,
    failed: bool,
    start: SimTime,
    freeze_at: SimTime,
    downtime: SimDuration,
    workload_name: &'static str,
    /// The stream's endpoints cannot currently talk (partition or down
    /// host): it stalls in place, bitmap holding position.
    stranded: bool,
    /// While stranded, the replica holder currently serving owed blocks
    /// to the destination (the PR-9 directory fan-in used as failover).
    peer_source: Option<usize>,
}

impl Task {
    fn done(&self) -> bool {
        self.failed || (self.phase == Phase::PostCopy && self.to_send.none_set())
    }
}

/// Which pool participant an allocation belongs to.
#[derive(Clone, Copy)]
enum Part {
    Vm(usize),
    Task(usize),
}

/// How a stream's bytes flow this tick, as decided by the fleet
/// dynamics: straight from the source, fed by a reachable replica
/// holder while the source is stranded, or not at all.
enum Route {
    /// Source and destination can talk: the normal path.
    Direct,
    /// The source is unreachable but `peer` holds fresh copies of the
    /// blocks in `mask`: the destination pulls those from the peer.
    PeerFed { peer: usize, mask: FlatBitmap },
    /// Nobody can serve: the stream stalls in place, no retry burn.
    Severed,
}

/// Per-tick connectivity snapshot, computed once from the dynamics and
/// shared by admission and guest advancement.
struct TickNet {
    host_up: Vec<bool>,
    cordoned: Vec<bool>,
    link_ok: Vec<bool>,
    high_activity: Vec<bool>,
}

impl TickNet {
    fn snapshot(dynamics: &dyn FleetDynamics, hosts: usize, vms: usize, now: SimTime) -> Self {
        let mut link_ok = vec![true; hosts * hosts];
        for a in 0..hosts {
            for b in 0..hosts {
                link_ok[a * hosts + b] = dynamics.connected(a, b);
            }
        }
        Self {
            host_up: (0..hosts).map(|h| dynamics.host_up(h)).collect(),
            cordoned: (0..hosts).map(|h| dynamics.cordoned(h)).collect(),
            link_ok,
            high_activity: (0..vms).map(|v| dynamics.high_activity(v, now)).collect(),
        }
    }
}

/// The cluster executor: owns the fleet, runs scenarios.
pub struct Orchestrator {
    cfg: ClusterConfig,
    cluster: Cluster,
    policy: Policy,
    recorder: Arc<Recorder>,
    next_id: u64,
    /// Per-VM guest-op sequence numbers, the basis for deterministic op
    /// thinning in low-activity workload phases.
    op_seq: Vec<u64>,
}

impl Orchestrator {
    /// Build an orchestrator over a fresh fleet.
    pub fn new(
        cfg: ClusterConfig,
        policy: Policy,
        recorder: Arc<Recorder>,
    ) -> Result<Self, ConfigError> {
        let cluster = Cluster::new(&cfg)?;
        let op_seq = vec![0u64; cluster.vms.len()];
        Ok(Self {
            cfg,
            cluster,
            policy,
            recorder,
            next_id: 0,
            op_seq,
        })
    }

    /// The fleet state (replica table, VM placement) as it stands now —
    /// inspect after [`Orchestrator::run`] to see where VMs landed.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Run a scenario to completion (or to the configured horizon) and
    /// return the fleet report. The replica table persists across calls,
    /// so a second scenario on the same orchestrator sees the stale
    /// images the first one left behind.
    ///
    /// Runs over [`StaticDynamics`] — the flat, always-on fleet — and is
    /// byte-identical to the pre-dynamics executor.
    pub fn run(&mut self, scenario: &Scenario) -> ClusterReport {
        let mut dynamics = StaticDynamics::from_config(&self.cfg);
        self.run_with_dynamics(scenario, &mut dynamics)
    }

    /// Run a scenario under explicit fleet dynamics: partitions, host
    /// lifecycle, WAN links, heterogeneous capacities and workload
    /// cycles all flow through the [`FleetDynamics`] oracle, which is
    /// advanced once at the top of every tick and may inject new
    /// migration requests (maintenance evacuations) into the arrival
    /// stream.
    pub fn run_with_dynamics(
        &mut self,
        scenario: &Scenario,
        dynamics: &mut dyn FleetDynamics,
    ) -> ClusterReport {
        let step = self.cfg.step;
        let mut now = SimTime::ZERO;
        let mut future: Vec<(usize, MigrationRequest)> =
            scenario.requests.iter().copied().enumerate().collect();
        let mut next_request = scenario.requests.len();
        let mut pending: Vec<(usize, MigrationRequest)> = Vec::new();
        let mut tasks: Vec<Task> = Vec::new();
        let mut records: Vec<MigrationRecord> = Vec::new();
        let mut max_concurrent = 0usize;
        let mut makespan = SimTime::ZERO;

        loop {
            // 0. Dynamics: interpret timeline events due now (journaling
            // each topology change) and inject evacuation requests.
            let endpoints: Vec<(usize, usize)> = tasks
                .iter()
                .filter(|t| !t.failed)
                .map(|t| (t.src.0, t.dst.0))
                .collect();
            for req in dynamics.advance(now, &self.cluster, &endpoints, &self.recorder) {
                future.push((next_request, req));
                next_request += 1;
            }
            let net = TickNet::snapshot(dynamics, self.cfg.hosts, self.cluster.vms.len(), now);

            // 1. Arrivals: requests whose time has come join the queue.
            let mut still_future = Vec::with_capacity(future.len());
            for (idx, req) in future.drain(..) {
                if req.at <= now {
                    pending.push((idx, req));
                } else {
                    still_future.push((idx, req));
                }
            }
            future = still_future;

            // 2. Scheduling: admit until the policy (or admission
            // control) says stop.
            self.admit(&mut pending, &mut tasks, now, &net);
            max_concurrent = max_concurrent.max(tasks.len());

            if future.is_empty()
                && pending.is_empty()
                && tasks.is_empty()
                && dynamics.exhausted(now)
            {
                break;
            }
            if now.as_nanos() > self.cfg.horizon.as_nanos() {
                // Safety valve: abandon whatever is still running.
                for t in &mut tasks {
                    t.failed = true;
                }
                for t in tasks.drain(..) {
                    records.push(self.finalize(t, now));
                }
                break;
            }

            let tick_end = now + step;

            // 3. Routing: per-stream path for this tick — direct,
            // peer-fed across a partition, or severed (stalled).
            let routes = self.route_streams(&mut tasks, dynamics, now);

            // 4. Capacity: pool demands per host, max-min share them,
            // then cap each stream by its path's WAN link.
            let (task_rates, vm_rates) = self.compute_rates(&tasks, &routes, now, dynamics);

            // 5. Streams advance at their bottleneck rates.
            for (ti, t) in tasks.iter_mut().enumerate() {
                self.advance_stream(
                    t,
                    task_rates[ti],
                    &routes[ti],
                    now,
                    tick_end,
                    step,
                    dynamics,
                );
            }

            // 6. Guests advance at their achieved disk rates.
            self.advance_vms(&mut tasks, &vm_rates, step, now, &net, dynamics);

            // 7. Reap finished streams.
            let mut live = Vec::with_capacity(tasks.len());
            for t in tasks.drain(..) {
                if t.done() {
                    makespan = makespan.max(tick_end);
                    records.push(self.finalize(t, tick_end));
                } else {
                    live.push(t);
                }
            }
            tasks = live;

            now = tick_end;
        }

        let unserved = pending.len() + future.len();
        self.publish_metrics(&records, max_concurrent, unserved);
        ClusterReport {
            policy: self.policy.name().to_string(),
            hosts: self.cfg.hosts,
            vms: self.cfg.vms,
            seed: self.cfg.seed,
            records,
            unserved,
            max_concurrent,
            makespan_nanos: makespan.as_nanos(),
        }
    }

    /// Run the scheduling policy until it stops producing admissible
    /// decisions, turning each one into a live [`Task`].
    fn admit(
        &mut self,
        pending: &mut Vec<(usize, MigrationRequest)>,
        tasks: &mut Vec<Task>,
        now: SimTime,
        net: &TickNet,
    ) {
        let mut scheduler = self.policy.build();
        loop {
            if pending.is_empty() {
                return;
            }
            let streams = self.streams_per_host(tasks);
            let busy: BTreeSet<usize> = tasks.iter().map(|t| t.vm.0).collect();
            let reqs: Vec<MigrationRequest> = pending.iter().map(|(_, r)| *r).collect();
            // Rebuilt per decision: `open_task` consumes the admitted
            // destination's replica, which must not be offered again.
            let directory = directory_of(&self.cluster.replicas, self.cluster.vms.len());
            let view = ClusterView {
                hosts: self.cfg.hosts,
                vms: &self.cluster.vms,
                directory: &directory,
                streams: &streams,
                max_streams_per_host: self.cfg.max_streams_per_host,
                disk_blocks: self.cfg.disk_blocks,
                busy: &busy,
                host_up: &net.host_up,
                cordoned: &net.cordoned,
                link_ok: &net.link_ok,
                high_activity: &net.high_activity,
                now,
                cycle_patience: self.cfg.cycle_patience,
            };
            let Some(d) = scheduler.next(&reqs, &view) else {
                return;
            };
            if d.index >= pending.len() || d.dest.0 >= self.cfg.hosts {
                return;
            }
            let vm = reqs[d.index].vm;
            let src = self.cluster.vms[vm.0].host;
            if view.vm_busy(vm) || !view.admissible(src, d.dest) {
                // A misbehaving policy stalls the round instead of
                // oversubscribing a host.
                return;
            }
            let (request, _) = pending.remove(d.index);
            let task = self.open_task(request, vm, src, d.dest, now);
            tasks.push(task);
        }
    }

    /// Create the stream for an admitted migration: consume the
    /// destination's stale replica if it holds a usable one (§V — the
    /// first pass ships only the bitmap diff), otherwise start from an
    /// empty image and an all-set bitmap.
    fn open_task(
        &mut self,
        request: usize,
        vm: VmId,
        src: HostId,
        dst: HostId,
        now: SimTime,
    ) -> Task {
        let id = self.next_id;
        self.next_id += 1;
        let nblocks = self.cfg.disk_blocks;
        let live_blocks = self.cluster.vms[vm.0].disk.num_blocks();
        let replica = self
            .cluster
            .replicas
            .take(vm.0 as u64, dst.0 as u64)
            .filter(|r| r.disk.num_blocks() == live_blocks);
        let (dst_disk, to_send, incremental) = match replica {
            Some(r) => {
                let mut bm = FlatBitmap::new(nblocks);
                for b in self.cluster.vms[vm.0].disk.diff_blocks(&r.disk) {
                    bm.set(b);
                }
                (r.disk, bm, true)
            }
            None => (MetaDisk::new(nblocks), FlatBitmap::all_set(nblocks), false),
        };
        let first_pass_blocks = to_send.count_ones() as u64;
        let plan = if self.cfg.fault_resets > 0 {
            FaultPlan::seeded_resets(
                self.cfg.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                self.cfg.fault_resets,
                FAULT_LO,
                FAULT_HI,
            )
        } else {
            FaultPlan::none()
        };
        let armed = plan.for_attempt(0);
        let t_nanos = now.as_nanos();
        self.recorder
            .record_at_nanos(t_nanos, || Event::MigrationAdmitted {
                migration: id,
                vm: vm.0 as u64,
                src: src.0 as u64,
                dst: dst.0 as u64,
                incremental,
                first_pass_blocks,
            });
        self.recorder
            .record_at_nanos(t_nanos, || Event::MigrationPhaseStart {
                migration: id,
                phase: Phase::DiskPrecopy,
            });
        Task {
            id,
            request,
            vm,
            src,
            dst,
            phase: Phase::DiskPrecopy,
            pass: 0,
            to_send,
            cursor: 0,
            carry: 0.0,
            dst_disk,
            tracker: DirtyTracker::new(self.cfg.bitmap, nblocks),
            post_writes: FlatBitmap::new(nblocks),
            mem_remaining: (self.cfg.mem_pages as u64 * PAGE_WIRE) as f64,
            resume_at: SimTime::ZERO,
            stall_until: SimTime::ZERO,
            plan,
            armed,
            attempt: 0,
            msgs: 0,
            attempt_bytes: 0,
            incremental,
            first_pass_blocks,
            blocks_sent: 0,
            blocks_cancelled: 0,
            blocks_deduped: 0,
            blocks_peer: 0,
            bytes: 0,
            retries: 0,
            failed: false,
            start: now,
            freeze_at: SimTime::ZERO,
            downtime: SimDuration::ZERO,
            workload_name: self.cluster.vms[vm.0].workload.name(),
            stranded: false,
            peer_source: None,
        }
    }

    /// Decide how each stream's bytes flow this tick. A stream whose
    /// endpoints can talk runs [`Route::Direct`]; one cut off by a
    /// partition or a down host strands in place — and, during disk
    /// pre-copy or post-copy with multi-source on, re-plans through the
    /// block directory to pull owed blocks from the freshest replica
    /// holder the destination can still reach ([`Route::PeerFed`]).
    /// Every strand, re-plan and reconnect is journaled; a reconnect
    /// charges the stream one encoded-bitmap re-send, the §IV resume
    /// handshake.
    fn route_streams(
        &self,
        tasks: &mut [Task],
        dynamics: &dyn FleetDynamics,
        now: SimTime,
    ) -> Vec<Route> {
        let t_nanos = now.as_nanos();
        let mut routes = Vec::with_capacity(tasks.len());
        for t in tasks.iter_mut() {
            if t.failed {
                routes.push(Route::Severed);
                continue;
            }
            let pair_ok = dynamics.host_up(t.src.0)
                && dynamics.host_up(t.dst.0)
                && dynamics.connected(t.src.0, t.dst.0);
            if pair_ok {
                if t.stranded {
                    // Reconnected: the source re-learns the worklist by
                    // re-shipping the current bitmap (bitmap resume,
                    // charged to the stream like any retry reconnect).
                    t.stranded = false;
                    t.peer_source = None;
                    let enc = ser::encoded_len(&t.to_send) as u64 + FRAME_OVERHEAD;
                    t.bytes += enc;
                    t.attempt_bytes += enc;
                    let id = t.id;
                    self.recorder
                        .record_at_nanos(t_nanos, || Event::MigrationReconnected {
                            migration: id,
                            bitmap_bytes: enc,
                        });
                }
                routes.push(Route::Direct);
                continue;
            }
            // Endpoints cannot talk. Freeze still completes on schedule:
            // its handshake was in flight when the cut landed (a
            // documented simplification — DESIGN.md §18).
            if t.phase == Phase::Freeze {
                routes.push(Route::Direct);
                continue;
            }
            if !t.stranded {
                t.stranded = true;
                let id = t.id;
                self.recorder
                    .record_at_nanos(t_nanos, || Event::MigrationStranded { migration: id });
            }
            // Failover re-plan: during the block-shipping phases another
            // replica holder reachable from the destination can serve
            // whatever owed blocks it holds at the live generation.
            let replannable = self.cfg.multisource
                && matches!(t.phase, Phase::DiskPrecopy | Phase::PostCopy)
                && dynamics.host_up(t.dst.0);
            let peer = if replannable {
                let mut dir = BlockDirectory::new();
                dir.merge_replicas(t.vm.0 as u64, &self.cluster.replicas);
                let allowed: Vec<u64> = (0..self.cfg.hosts)
                    .filter(|&h| {
                        h != t.src.0
                            && h != t.dst.0
                            && dynamics.host_up(h)
                            && dynamics.connected(h, t.dst.0)
                    })
                    .map(|h| h as u64)
                    .collect();
                dir.best_holder(
                    t.vm.0 as u64,
                    &self.cluster.vms[t.vm.0].disk,
                    &t.to_send,
                    &allowed,
                )
            } else {
                None
            };
            match peer {
                Some((site, mask)) => {
                    let site = site as usize;
                    if t.peer_source != Some(site) {
                        t.peer_source = Some(site);
                        let id = t.id;
                        let servable = mask.count_ones() as u64;
                        self.recorder
                            .record_at_nanos(t_nanos, || Event::MigrationPeerFed {
                                migration: id,
                                peer: site as u64,
                                servable,
                            });
                    }
                    routes.push(Route::PeerFed { peer: site, mask });
                }
                None => {
                    t.peer_source = None;
                    routes.push(Route::Severed);
                }
            }
        }
        routes
    }

    /// Streams touching each host (any phase — a frozen stream still
    /// occupies its admission slot).
    fn streams_per_host(&self, tasks: &[Task]) -> Vec<usize> {
        let mut streams = vec![0usize; self.cfg.hosts];
        for t in tasks {
            streams[t.src.0] += 1;
            streams[t.dst.0] += 1;
        }
        streams
    }

    /// Pool every demand on each host's disk and NIC, max-min share each
    /// pool, and fold allocations back: a stream's rate is the minimum
    /// over every pool it crosses (then capped by its path's WAN
    /// bandwidth and derated by its path's loss); a guest's achieved
    /// rate is its share of its host's disk.
    ///
    /// Pool membership by phase: disk pre-copy and post-copy streams
    /// read the serving side's disk, write the destination disk and
    /// cross both NICs; the memory pass crosses both NICs only; a frozen
    /// stream's bytes are inside its downtime formula, so it leaves the
    /// pools. A severed stream leaves every pool; a peer-fed stream's
    /// source-side pools are the *peer's*. A down host's pools vanish
    /// entirely.
    fn compute_rates(
        &self,
        tasks: &[Task],
        routes: &[Route],
        now: SimTime,
        dynamics: &dyn FleetDynamics,
    ) -> (Vec<f64>, Vec<f64>) {
        let mut task_rates = vec![0.0f64; tasks.len()];
        let mut task_seen = vec![false; tasks.len()];
        let mut vm_rates = vec![0.0f64; self.cluster.vms.len()];
        let suspended: BTreeSet<usize> = tasks
            .iter()
            .filter(|t| t.phase == Phase::Freeze)
            .map(|t| t.vm.0)
            .collect();
        // Serving endpoints per stream this tick: `None` drops the
        // stream out of every pool.
        let endpoints: Vec<Option<(usize, usize)>> = tasks
            .iter()
            .zip(routes)
            .map(|(t, r)| match r {
                Route::Direct => Some((t.src.0, t.dst.0)),
                Route::PeerFed { peer, .. } => Some((*peer, t.dst.0)),
                Route::Severed => None,
            })
            .collect();
        for h in 0..self.cfg.hosts {
            if !dynamics.host_up(h) {
                continue;
            }
            let mut parts: Vec<Part> = Vec::new();
            let mut demands: Vec<f64> = Vec::new();
            for vm in &self.cluster.hosts[h].resident {
                if suspended.contains(&vm.0) {
                    continue;
                }
                parts.push(Part::Vm(vm.0));
                demands.push(
                    self.cluster.vms[vm.0].workload.disk_demand()
                        * dynamics.workload_scale(vm.0, now),
                );
            }
            for (ti, t) in tasks.iter().enumerate() {
                let Some((from, to)) = endpoints[ti] else {
                    continue;
                };
                let active = !t.failed && now >= t.stall_until;
                let uses_disk = matches!(t.phase, Phase::DiskPrecopy | Phase::PostCopy);
                if active && uses_disk && (from == h || to == h) {
                    parts.push(Part::Task(ti));
                    demands.push(self.cfg.stream_demand);
                }
            }
            let alloc = max_min_share(dynamics.disk_capacity(h), &demands);
            for (part, a) in parts.iter().zip(alloc) {
                match *part {
                    Part::Vm(v) => vm_rates[v] = a,
                    Part::Task(ti) => {
                        task_rates[ti] = if task_seen[ti] {
                            task_rates[ti].min(a)
                        } else {
                            a
                        };
                        task_seen[ti] = true;
                    }
                }
            }
            let mut nic_parts: Vec<usize> = Vec::new();
            let mut nic_demands: Vec<f64> = Vec::new();
            for (ti, t) in tasks.iter().enumerate() {
                let Some((from, to)) = endpoints[ti] else {
                    continue;
                };
                let active = !t.failed && now >= t.stall_until;
                let uses_nic = matches!(
                    t.phase,
                    Phase::DiskPrecopy | Phase::MemPrecopy | Phase::PostCopy
                );
                if active && uses_nic && (from == h || to == h) {
                    nic_parts.push(ti);
                    nic_demands.push(self.cfg.stream_demand);
                }
            }
            let alloc = max_min_share(dynamics.nic_capacity(h), &nic_demands);
            for (ti, a) in nic_parts.iter().zip(alloc) {
                task_rates[*ti] = if task_seen[*ti] {
                    task_rates[*ti].min(a)
                } else {
                    a
                };
                task_seen[*ti] = true;
            }
        }
        // WAN link ceiling and loss derate on the serving path. Both are
        // exact identities on a LAN (`min(x, ∞) = x`, `x · 1.0 = x`).
        for (ti, ep) in endpoints.iter().enumerate() {
            if let Some((from, to)) = *ep {
                if task_seen[ti] {
                    task_rates[ti] = task_rates[ti].min(dynamics.link_bandwidth(from, to))
                        * dynamics.link_quality(from, to);
                }
            }
        }
        (task_rates, vm_rates)
    }

    /// Advance one stream by one tick at its bottleneck rate, along the
    /// route the dynamics allowed it this tick. A severed stream stalls
    /// in place — no progress, no retry burn, the bitmap holds position
    /// until the partition heals (freeze alone completes regardless, its
    /// handshake being already in flight).
    #[allow(clippy::too_many_arguments)]
    fn advance_stream(
        &mut self,
        t: &mut Task,
        rate: f64,
        route: &Route,
        now: SimTime,
        tick_end: SimTime,
        dt: SimDuration,
        dynamics: &dyn FleetDynamics,
    ) {
        if t.failed || now < t.stall_until {
            return;
        }
        if matches!(route, Route::Severed) && t.phase != Phase::Freeze {
            return;
        }
        let peer_mask = match route {
            Route::PeerFed { mask, .. } => Some(mask),
            _ => None,
        };
        match t.phase {
            Phase::DiskPrecopy => {
                let last = self.pump_blocks(t, rate, dt, peer_mask);
                if peer_mask.is_none() {
                    // The seeded fault plan models the source link;
                    // while peer-fed, that link is already cut.
                    self.check_faults(t, tick_end, last);
                }
                if t.failed || now < t.stall_until || t.phase != Phase::DiskPrecopy {
                    return;
                }
                if t.to_send.none_set() {
                    t.pass += 1;
                    let next = t.tracker.drain();
                    let dirty = next.count_ones();
                    if t.pass >= self.cfg.max_disk_passes || dirty <= self.cfg.dirty_threshold {
                        // Leftover dirt keeps accumulating into the
                        // freeze bitmap while memory pre-copies.
                        t.tracker.merge(&next);
                        self.switch_phase(t, Phase::MemPrecopy, tick_end);
                        t.carry = 0.0;
                    } else {
                        t.to_send = next;
                        t.cursor = 0;
                        t.carry = 0.0;
                    }
                }
            }
            Phase::MemPrecopy => {
                t.mem_remaining -= rate * dt.as_secs_f64();
                t.msgs += 1;
                t.attempt_bytes += (rate * dt.as_secs_f64()) as u64;
                self.check_faults(t, tick_end, None);
                if t.failed || now < t.stall_until {
                    return;
                }
                if t.mem_remaining <= 0.0 {
                    self.enter_freeze(t, rate, tick_end, dynamics);
                }
            }
            Phase::Freeze => {
                if tick_end >= t.resume_at {
                    let resume_nanos = t.resume_at.as_nanos();
                    self.recorder
                        .record_at_nanos(resume_nanos, || Event::MigrationPhaseEnd {
                            migration: t.id,
                            phase: Phase::Freeze,
                        });
                    self.recorder
                        .record_at_nanos(resume_nanos, || Event::MigrationPhaseStart {
                            migration: t.id,
                            phase: Phase::PostCopy,
                        });
                    t.phase = Phase::PostCopy;
                    t.cursor = 0;
                    t.carry = 0.0;
                    // The VM resumes on the destination: its workload
                    // demand moves to the destination's disk pool.
                    self.cluster.relocate(t.vm, t.dst);
                }
            }
            Phase::PostCopy => {
                self.pump_blocks(t, rate, dt, peer_mask);
            }
        }
    }

    /// Ship up to `rate * dt` worth of blocks off the worklist using the
    /// TPM engine's carry accumulator, charging per-block framing plus
    /// one frame overhead per batch. With `cfg.dedup`, a block whose
    /// generation already matches the destination replica (the same
    /// replica-table version maintenance that seeded the first-pass diff)
    /// is charged a 16-byte reference instead of a full payload; pacing
    /// is deliberately left uniform, so dedup-off runs are byte- and
    /// clock-identical to the classic math. With `cfg.multisource`, a
    /// full block some *other* host also holds at the live generation is
    /// additionally counted as peer-servable — the directory fan-in the
    /// two-host engine performs for real — without changing the byte or
    /// clock math at all.
    ///
    /// With `peer_mask` set the stream is peer-fed across a partition:
    /// only owed blocks inside the mask (the ones the serving replica
    /// holds at the live generation) are eligible, and every full block
    /// shipped counts as peer-served. Returns the last block shipped.
    fn pump_blocks(
        &self,
        t: &mut Task,
        rate: f64,
        dt: SimDuration,
        peer_mask: Option<&FlatBitmap>,
    ) -> Option<usize> {
        let bs = self.cfg.block_size as f64;
        // While peer-fed only the mask's intersection with the worklist
        // is shippable; the rest waits for the source link.
        let mut candidates = peer_mask.map(|m| {
            let mut c = t.to_send.clone();
            c.intersect_with(m);
            c
        });
        let raw = t.carry + rate * dt.as_secs_f64() / bs;
        let remaining = match &candidates {
            Some(c) => c.count_ones() as u64,
            None => t.to_send.count_ones() as u64,
        };
        let n = (raw.floor().max(0.0) as u64).min(remaining);
        t.carry = raw - n as f64;
        if n == 0 {
            return None;
        }
        let mut last = None;
        let mut refs = 0u64;
        let mut peer = 0u64;
        let src_disk = &self.cluster.vms[t.vm.0].disk;
        // Replica sites other than the endpoints: the holders a
        // multi-source fetch could draw a fresh block from. (While
        // peer-fed the server is known, so the scan is skipped.)
        let peer_sites: Vec<u64> = if self.cfg.multisource && peer_mask.is_none() {
            self.cluster
                .replicas
                .sites_with_replica(t.vm.0 as u64)
                .into_iter()
                .filter(|&s| s != t.src.0 as u64 && s != t.dst.0 as u64)
                .collect()
        } else {
            Vec::new()
        };
        for _ in 0..n {
            let worklist = candidates.as_ref().unwrap_or(&t.to_send);
            let b = match worklist.next_set_from(t.cursor) {
                Some(b) => b,
                None => match worklist.next_set_from(0) {
                    Some(b) => b,
                    None => break,
                },
            };
            if self.cfg.dedup && t.dst_disk.generation(b) == src_disk.generation(b) {
                // Destination already holds this exact content: nothing
                // to copy, only the reference crosses.
                refs += 1;
            } else {
                t.dst_disk.copy_block_from(src_disk, b);
                // A peer-fed block counts unconditionally (the server
                // IS a peer); otherwise count it when some bystander
                // replica also holds it at the live generation.
                if peer_mask.is_some()
                    || peer_sites.iter().any(|&s| {
                        self.cluster
                            .replicas
                            .get(t.vm.0 as u64, s)
                            .is_some_and(|r| {
                                r.disk.num_blocks() == src_disk.num_blocks()
                                    && r.disk.generation(b) == src_disk.generation(b)
                            })
                    })
                {
                    peer += 1;
                }
            }
            t.to_send.clear(b);
            if let Some(c) = candidates.as_mut() {
                c.clear(b);
            }
            t.cursor = b + 1;
            t.blocks_sent += 1;
            last = Some(b);
        }
        let wire = (n - refs) * (self.cfg.block_size + 8) + refs * BLOCK_REF_WIRE + FRAME_OVERHEAD;
        t.bytes += wire;
        t.attempt_bytes += wire;
        t.blocks_deduped += refs;
        t.blocks_peer += peer;
        t.msgs += 1;
        last
    }

    /// Fire the first armed fault whose trigger has been crossed.
    /// Faults only arm during pre-copy (disk and memory): that is where
    /// the bitmap-resume story lives; freeze and post-copy are protected
    /// by the same retry machinery in the two-host engine and would only
    /// duplicate it here.
    fn check_faults(&self, t: &mut Task, tick_end: SimTime, last: Option<usize>) {
        let hit = |f: &Fault| match f.trigger {
            FaultTrigger::Messages(n) => t.msgs >= n,
            FaultTrigger::Bytes(n) => t.attempt_bytes >= n,
            FaultTrigger::CategoryMessages(_, n) => t.msgs >= n,
        };
        let Some(pos) = t.armed.iter().position(hit) else {
            return;
        };
        let fault = t.armed.remove(pos);
        t.armed.retain(|f| !hit(f));
        let t_nanos = tick_end.as_nanos();
        match fault.kind {
            FaultKind::Stall(d) => {
                self.recorder
                    .record_at_nanos(t_nanos, || Event::FaultInjected {
                        fault: FaultLabel::Stall,
                        messages_before: t.msgs,
                    });
                t.stall_until = tick_end + SimDuration::from_nanos(d.as_nanos() as u64);
            }
            FaultKind::Truncate => {
                self.recorder
                    .record_at_nanos(t_nanos, || Event::FaultInjected {
                        fault: FaultLabel::Truncate,
                        messages_before: t.msgs,
                    });
                // The last frame was silently lost: its block rides the
                // next pass, and the connection is severed behind it.
                if let Some(b) = last {
                    t.to_send.set(b);
                }
                self.reset_stream(t, tick_end);
            }
            FaultKind::Reset => {
                self.recorder
                    .record_at_nanos(t_nanos, || Event::FaultInjected {
                        fault: FaultLabel::Reset,
                        messages_before: t.msgs,
                    });
                self.reset_stream(t, tick_end);
            }
            FaultKind::Drop => {
                self.recorder
                    .record_at_nanos(t_nanos, || Event::FaultInjected {
                        fault: FaultLabel::Drop,
                        messages_before: t.msgs,
                    });
                // The last frame vanished on a lossy link that stayed
                // up: its block rides the next pass, nothing resets.
                if let Some(b) = last {
                    t.to_send.set(b);
                }
            }
        }
    }

    /// The stream lost its connection: burn a retry, back off, and
    /// reconnect by re-shipping the current worklist bitmap — never the
    /// blocks already applied, which is the whole point of bitmap-based
    /// resume.
    fn reset_stream(&self, t: &mut Task, tick_end: SimTime) {
        t.retries += 1;
        if t.retries > self.cfg.max_retries {
            t.failed = true;
            return;
        }
        t.attempt += 1;
        let t_nanos = tick_end.as_nanos();
        self.recorder
            .record_at_nanos(t_nanos, || Event::MigrationRetry {
                migration: t.id,
                attempt: u64::from(t.attempt),
            });
        t.armed = t.plan.for_attempt(t.attempt);
        t.msgs = 0;
        t.attempt_bytes = 0;
        t.carry = 0.0;
        t.stall_until = tick_end + self.cfg.retry_backoff;
        let enc = ser::encoded_len(&t.to_send) as u64;
        t.bytes += enc + FRAME_OVERHEAD;
    }

    /// Suspend the guest: drain the dirty tracker into the final bitmap,
    /// price the freeze window with the engine's downtime formula
    /// (remaining state + encoded bitmap + handshake frames at the rate
    /// the stream held going in), and schedule the exact resume instant.
    fn enter_freeze(
        &mut self,
        t: &mut Task,
        rate: f64,
        tick_end: SimTime,
        dynamics: &dyn FleetDynamics,
    ) {
        t.bytes += self.cfg.mem_pages as u64 * PAGE_WIRE + FRAME_OVERHEAD;
        let final_bm = t.tracker.drain();
        let enc = ser::encoded_len(&final_bm) as u64;
        let down_bytes = self.cfg.frozen_mem_pages as u64 * PAGE_WIRE
            + self.cfg.cpu_state_bytes
            + enc
            + 3 * FRAME_OVERHEAD;
        let down_rate = rate.max(1.0);
        let downtime = self.cfg.suspend_overhead
            + SimDuration::from_secs_f64(down_bytes as f64 / down_rate)
            + self.cfg.latency
            + dynamics.link_latency(t.src.0, t.dst.0)
            + self.cfg.resume_overhead;
        t.bytes += down_bytes;
        t.downtime = downtime;
        t.freeze_at = tick_end;
        t.resume_at = tick_end + downtime;
        t.to_send = final_bm;
        t.cursor = 0;
        t.carry = 0.0;
        self.switch_phase(t, Phase::Freeze, tick_end);
    }

    /// Journal the end of the current phase and the start of the next,
    /// both at the same instant.
    fn switch_phase(&self, t: &mut Task, next: Phase, at: SimTime) {
        let t_nanos = at.as_nanos();
        let prev = t.phase;
        self.recorder
            .record_at_nanos(t_nanos, || Event::MigrationPhaseEnd {
                migration: t.id,
                phase: prev,
            });
        self.recorder
            .record_at_nanos(t_nanos, || Event::MigrationPhaseStart {
                migration: t.id,
                phase: next,
            });
        t.phase = next;
    }

    /// Advance every guest one tick at its achieved disk rate, routing
    /// writes by migration phase: pre-copy writes land on the source
    /// image and the dirty tracker; post-copy writes land on the
    /// destination image and cancel any pending push of the same block
    /// (§III-A); a frozen guest does nothing. A guest on a down host is
    /// powered off with it — no ops at all, which matters for open-loop
    /// workloads that would otherwise keep writing at rate zero. Ops are
    /// thinned by the dynamics' `op_keep` ratio in low-activity phases
    /// (the `(1, 1)` default keeps everything, exactly).
    fn advance_vms(
        &mut self,
        tasks: &mut [Task],
        vm_rates: &[f64],
        dt: SimDuration,
        now: SimTime,
        net: &TickNet,
        dynamics: &dyn FleetDynamics,
    ) {
        let nblocks = self.cfg.disk_blocks;
        for (vi, &rate) in vm_rates.iter().enumerate() {
            if !net.host_up[self.cluster.vms[vi].host.0] {
                continue;
            }
            let ti = tasks.iter().position(|t| t.vm.0 == vi && !t.failed);
            if let Some(ti) = ti {
                if tasks[ti].phase == Phase::Freeze {
                    continue;
                }
            }
            let ops = {
                let vm = &mut self.cluster.vms[vi];
                vm.workload.ops_for(dt, rate, &mut vm.rng)
            };
            let (keep, of) = dynamics.op_keep(vi, now);
            let of = of.max(1);
            for op in ops {
                let seq = self.op_seq[vi];
                self.op_seq[vi] = seq.wrapping_add(1);
                if seq % of >= keep {
                    continue;
                }
                if !op.kind.is_write() {
                    continue;
                }
                let b = op.kind.block() as usize;
                if b >= nblocks {
                    continue;
                }
                match ti {
                    Some(ti) if tasks[ti].phase == Phase::PostCopy => {
                        let t = &mut tasks[ti];
                        t.dst_disk.write(b);
                        t.post_writes.set(b);
                        if t.to_send.get(b) {
                            t.to_send.clear(b);
                            t.blocks_cancelled += 1;
                        }
                    }
                    Some(ti) => {
                        self.cluster.vms[vi].disk.write(b);
                        tasks[ti].tracker.set(b);
                    }
                    None => {
                        self.cluster.vms[vi].disk.write(b);
                    }
                }
            }
        }
    }

    /// Close out a finished stream: verify consistency, install the new
    /// image, retire the old one into the replica table (that is what a
    /// later IM-aware hop comes back for), and journal the outcome.
    fn finalize(&mut self, mut t: Task, at: SimTime) -> MigrationRecord {
        let t_nanos = at.as_nanos();
        let vm = t.vm.0;
        let consistent;
        if t.failed {
            // Close whatever phase was open so journal spans balance.
            let phase = t.phase;
            self.recorder
                .record_at_nanos(t_nanos, || Event::MigrationPhaseEnd {
                    migration: t.id,
                    phase,
                });
            if t.phase == Phase::PostCopy {
                // Aborted after resume (horizon): the VM falls back to
                // its source image.
                self.cluster.relocate(t.vm, t.src);
            }
            // The partial image is still a (stale) replica the next
            // attempt can diff against.
            self.cluster
                .replicas
                .record(vm as u64, t.dst.0 as u64, t.dst_disk.clone());
            consistent = false;
        } else {
            self.recorder
                .record_at_nanos(t_nanos, || Event::MigrationPhaseEnd {
                    migration: t.id,
                    phase: Phase::PostCopy,
                });
            // Every block that differs from the frozen source image must
            // be explained by a destination guest write.
            consistent = t
                .dst_disk
                .diff_blocks(&self.cluster.vms[vm].disk)
                .iter()
                .all(|&b| t.post_writes.get(b));
            let fresh = std::mem::replace(&mut t.dst_disk, MetaDisk::new(0));
            let old = std::mem::replace(&mut self.cluster.vms[vm].disk, fresh);
            self.cluster.replicas.record(vm as u64, t.src.0 as u64, old);
        }
        let completed = !t.failed;
        self.recorder
            .record_at_nanos(t_nanos, || Event::MigrationCompleted {
                migration: t.id,
                bytes: t.bytes,
                retries: u64::from(t.retries),
                completed,
            });
        MigrationRecord {
            migration: t.id,
            request: t.request,
            vm,
            src: t.src.0,
            dst: t.dst.0,
            workload: t.workload_name,
            incremental: t.incremental,
            first_pass_blocks: t.first_pass_blocks,
            passes: t.pass,
            blocks_sent: t.blocks_sent,
            blocks_cancelled: t.blocks_cancelled,
            blocks_deduped: t.blocks_deduped,
            blocks_peer: t.blocks_peer,
            bytes: t.bytes,
            retries: t.retries,
            completed,
            consistent,
            start_nanos: t.start.as_nanos(),
            freeze_nanos: t.freeze_at.as_nanos(),
            resume_nanos: t.resume_at.as_nanos(),
            finish_nanos: t_nanos,
            downtime_nanos: t.downtime.as_nanos(),
        }
    }

    /// Publish `cluster.*` metrics into the recorder's registry.
    fn publish_metrics(&self, records: &[MigrationRecord], max_concurrent: usize, unserved: usize) {
        let m = self.recorder.metrics();
        let completed = records.iter().filter(|r| r.completed).count() as u64;
        m.counter("cluster.migrations.admitted")
            .add(records.len() as u64);
        m.counter("cluster.migrations.completed").add(completed);
        m.counter("cluster.migrations.failed")
            .add(records.len() as u64 - completed);
        m.counter("cluster.migrations.incremental")
            .add(records.iter().filter(|r| r.incremental).count() as u64);
        m.counter("cluster.migrations.unserved")
            .add(unserved as u64);
        m.counter("cluster.retries")
            .add(records.iter().map(|r| u64::from(r.retries)).sum());
        m.counter("cluster.bytes.total")
            .add(records.iter().map(|r| r.bytes).sum());
        m.counter("cluster.blocks.sent")
            .add(records.iter().map(|r| r.blocks_sent).sum());
        m.counter("cluster.blocks.cancelled")
            .add(records.iter().map(|r| r.blocks_cancelled).sum());
        m.counter("cluster.blocks.deduped")
            .add(records.iter().map(|r| r.blocks_deduped).sum());
        m.counter("cluster.blocks.peer_served")
            .add(records.iter().map(|r| r.blocks_peer).sum());
        m.gauge("cluster.hosts").set(self.cfg.hosts as u64);
        m.gauge("cluster.vms").set(self.cfg.vms as u64);
        m.gauge("cluster.max_concurrent").set(max_concurrent as u64);
        let total_ms = m.histogram("cluster.migration.total_ms");
        let down_us = m.histogram("cluster.migration.downtime_us");
        for r in records.iter().filter(|r| r.completed) {
            total_ms.observe(r.finish_nanos.saturating_sub(r.start_nanos) / 1_000_000);
            down_us.observe(r.downtime_nanos / 1_000);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::WorkloadKind;

    fn small_cfg(hosts: usize, vms: usize) -> ClusterConfig {
        let mut cfg = ClusterConfig::new(hosts, vms);
        cfg.disk_blocks = 8_192;
        cfg.mem_pages = 256;
        cfg.frozen_mem_pages = 32;
        cfg.dirty_threshold = 64;
        cfg
    }

    #[test]
    fn single_wave_completes_consistently() {
        let cfg = small_cfg(3, 3);
        let scenario = Scenario::single_wave(&cfg, None);
        let rec = Recorder::enabled();
        let mut orch = Orchestrator::new(cfg, Policy::Fifo, rec.clone()).expect("valid config");
        let report = orch.run(&scenario);
        assert_eq!(report.completed(), 3);
        assert!(report.all_consistent());
        assert_eq!(report.unserved, 0);
        assert!(report.max_concurrent >= 1);
        // Each VM left a replica behind on its old host.
        assert_eq!(orch.cluster().replicas.len(), 3);
        // Each VM actually moved (ring placement).
        assert_eq!(orch.cluster().vms[0].host, HostId(1));
        // The journal balances starts and ends.
        let records = rec.records();
        let starts = records
            .iter()
            .filter(|r| matches!(r.event, Event::MigrationPhaseStart { .. }))
            .count();
        let ends = records
            .iter()
            .filter(|r| matches!(r.event, Event::MigrationPhaseEnd { .. }))
            .count();
        assert_eq!(starts, ends);
    }

    #[test]
    fn second_hop_back_is_incremental_and_cheaper() {
        let cfg = small_cfg(2, 1);
        let rec = Recorder::enabled();
        let mut orch = Orchestrator::new(cfg.clone(), Policy::ImAware, rec).expect("valid config");
        let scenario = Scenario::two_wave(&cfg, SimDuration::from_secs(5));
        let report = orch.run(&scenario);
        assert_eq!(report.completed(), 2);
        assert!(report.all_consistent());
        let first = &report.records[0];
        let second = &report.records[1];
        assert!(!first.incremental);
        assert!(second.incremental, "return hop must find the stale replica");
        assert!(
            second.bytes < first.bytes / 4,
            "incremental hop moved {} vs full {}",
            second.bytes,
            first.bytes
        );
        assert!(second.total_secs() < first.total_secs());
    }

    #[test]
    fn dedup_off_reproduces_classic_byte_math() {
        let cfg_on = small_cfg(2, 1);
        let mut cfg_off = small_cfg(2, 1);
        cfg_off.dedup = false;
        let scenario = Scenario::two_wave(&cfg_on, SimDuration::from_secs(5));
        let mut on =
            Orchestrator::new(cfg_on, Policy::ImAware, Recorder::off()).expect("valid config");
        let mut off =
            Orchestrator::new(cfg_off, Policy::ImAware, Recorder::off()).expect("valid config");
        let ra = on.run(&scenario);
        let rb = off.run(&scenario);
        // Dedup is wire accounting only: the clock and every decision are
        // unchanged…
        assert_eq!(ra.makespan_nanos, rb.makespan_nanos);
        assert_eq!(ra.completed(), rb.completed());
        assert!(ra.all_consistent() && rb.all_consistent());
        assert_eq!(rb.total_deduped(), 0);
        // …and every reference saved exactly (payload − reference) bytes.
        let bs = ClusterConfig::new(2, 1).block_size;
        assert_eq!(
            ra.total_bytes() + ra.total_deduped() * (bs + 8 - BLOCK_REF_WIRE),
            rb.total_bytes()
        );
    }

    #[test]
    fn multisource_off_is_byte_and_clock_identical() {
        // A pinned three-hop tour: h0 -> h1 leaves a replica on h0, then
        // h1 -> h2 runs with h0 as a bystander replica holder — the
        // fan-in case the peer-served counter must see.
        let scenario = Scenario {
            requests: vec![
                MigrationRequest {
                    vm: VmId(0),
                    dest: Some(HostId(1)),
                    at: SimTime::ZERO,
                },
                MigrationRequest {
                    vm: VmId(0),
                    dest: Some(HostId(2)),
                    at: SimTime::ZERO + SimDuration::from_secs(5),
                },
            ],
        };
        let cfg_on = small_cfg(3, 1);
        let mut cfg_off = small_cfg(3, 1);
        cfg_off.multisource = false;
        let mut on =
            Orchestrator::new(cfg_on, Policy::Fifo, Recorder::off()).expect("valid config");
        let mut off =
            Orchestrator::new(cfg_off, Policy::Fifo, Recorder::off()).expect("valid config");
        let ra = on.run(&scenario);
        let rb = off.run(&scenario);
        // Multisource is accounting only: bytes, clock and outcomes are
        // identical with it off — only the peer-served counter moves.
        assert_eq!(ra.makespan_nanos, rb.makespan_nanos);
        assert_eq!(ra.total_bytes(), rb.total_bytes());
        assert_eq!(ra.completed(), rb.completed());
        assert!(ra.all_consistent() && rb.all_consistent());
        assert_eq!(rb.total_peer_served(), 0);
        assert!(
            ra.total_peer_served() > 0,
            "the second hop must see h0's bystander replica as a peer holder"
        );
    }

    #[test]
    fn injected_resets_retry_and_still_complete() {
        let mut cfg = small_cfg(2, 1);
        cfg.fault_resets = 2;
        let rec = Recorder::enabled();
        let mut orch =
            Orchestrator::new(cfg.clone(), Policy::Fifo, rec.clone()).expect("valid config");
        let report = orch.run(&Scenario::single_wave(&cfg, None));
        assert_eq!(report.completed(), 1);
        assert!(report.all_consistent());
        assert!(report.records[0].retries >= 1, "the seeded reset must fire");
        assert!(rec
            .records()
            .iter()
            .any(|r| matches!(r.event, Event::MigrationRetry { .. })));
    }

    #[test]
    fn retry_budget_exhaustion_fails_the_migration_in_place() {
        let mut cfg = small_cfg(2, 1);
        cfg.fault_resets = 8;
        cfg.max_retries = 1;
        // Slow the stream so pre-copy always spans the whole seeded fault
        // window — every attempt is guaranteed to hit its reset.
        cfg.stream_demand = 5.0 * 1024.0 * 1024.0;
        let rec = Recorder::enabled();
        let mut orch = Orchestrator::new(cfg.clone(), Policy::Fifo, rec).expect("valid config");
        let report = orch.run(&Scenario::single_wave(&cfg, None));
        assert_eq!(report.completed(), 0);
        assert!(!report.records.is_empty());
        // The VM never moved.
        assert_eq!(orch.cluster().vms[0].host, HostId(0));
        // The partial copy was kept as a stale replica at the target.
        assert!(orch.cluster().replicas.has(0, 1));
    }

    /// Flat-capacity dynamics with one link severed during a window —
    /// the smallest chaos a partition can be.
    struct WindowPartition {
        nic: f64,
        disk: f64,
        a: usize,
        b: usize,
        from: SimTime,
        until: SimTime,
        now: SimTime,
        down_host: Option<usize>,
        quiesced_vm: Option<usize>,
    }

    impl WindowPartition {
        fn new(cfg: &ClusterConfig, a: usize, b: usize, from: SimTime, until: SimTime) -> Self {
            Self {
                nic: cfg.nic_capacity,
                disk: cfg.disk_capacity,
                a,
                b,
                from,
                until,
                now: SimTime::ZERO,
                down_host: None,
                quiesced_vm: None,
            }
        }
    }

    impl FleetDynamics for WindowPartition {
        fn advance(
            &mut self,
            now: SimTime,
            _cluster: &Cluster,
            _streams: &[(usize, usize)],
            _recorder: &Recorder,
        ) -> Vec<MigrationRequest> {
            self.now = now;
            Vec::new()
        }

        fn host_up(&self, host: usize) -> bool {
            self.down_host != Some(host)
        }

        fn connected(&self, a: usize, b: usize) -> bool {
            let cut = self.now >= self.from && self.now < self.until;
            !(cut && ((a == self.a && b == self.b) || (a == self.b && b == self.a)))
        }

        fn nic_capacity(&self, _host: usize) -> f64 {
            self.nic
        }

        fn disk_capacity(&self, _host: usize) -> f64 {
            self.disk
        }

        fn op_keep(&self, vm: usize, _now: SimTime) -> (u64, u64) {
            if self.quiesced_vm == Some(vm) {
                (0, 1)
            } else {
                (1, 1)
            }
        }
    }

    #[test]
    fn static_dynamics_matches_the_default_run_exactly() {
        let cfg = small_cfg(3, 3);
        let scenario = Scenario::two_wave(&cfg, SimDuration::from_secs(5));
        let mut a =
            Orchestrator::new(cfg.clone(), Policy::ImAware, Recorder::off()).expect("valid config");
        let mut b =
            Orchestrator::new(cfg.clone(), Policy::ImAware, Recorder::off()).expect("valid config");
        let ra = a.run(&scenario);
        let mut dynamics = StaticDynamics::from_config(&cfg);
        let rb = b.run_with_dynamics(&scenario, &mut dynamics);
        assert_eq!(ra.makespan_nanos, rb.makespan_nanos);
        assert_eq!(ra.total_bytes(), rb.total_bytes());
        assert_eq!(ra.completed(), rb.completed());
        assert_eq!(ra.records.len(), rb.records.len());
    }

    #[test]
    fn partition_strands_the_stream_and_heal_resumes_it() {
        let cfg = small_cfg(2, 1);
        // Cut the only link shortly after the stream starts; heal at 10 s.
        let mut dynamics = WindowPartition::new(
            &cfg,
            0,
            1,
            SimTime::ZERO + SimDuration::from_millis(250),
            SimTime::ZERO + SimDuration::from_secs(10),
        );
        let rec = Recorder::enabled();
        let mut orch =
            Orchestrator::new(cfg.clone(), Policy::Fifo, rec.clone()).expect("valid config");
        let report = orch.run_with_dynamics(&Scenario::single_wave(&cfg, None), &mut dynamics);
        assert_eq!(report.completed(), 1);
        assert!(report.all_consistent());
        assert_eq!(report.records[0].retries, 0, "a strand is not a retry");
        assert!(
            report.makespan_nanos >= SimDuration::from_secs(10).as_nanos(),
            "the stream waited out the partition"
        );
        let records = rec.records();
        assert!(records
            .iter()
            .any(|r| matches!(r.event, Event::MigrationStranded { .. })));
        assert!(records
            .iter()
            .any(|r| matches!(r.event, Event::MigrationReconnected { bitmap_bytes, .. } if bitmap_bytes > 0)));
    }

    #[test]
    fn stranded_stream_is_fed_by_a_reachable_replica_holder() {
        // Tour: h0 -> h1 leaves vm0's old image on h0; then h1 -> h2 is
        // cut off from its source mid-copy. h0 still reaches h2, so the
        // directory re-plan serves the owed blocks h0 holds fresh.
        let cfg = small_cfg(3, 1);
        let scenario = Scenario {
            requests: vec![
                MigrationRequest {
                    vm: VmId(0),
                    dest: Some(HostId(1)),
                    at: SimTime::ZERO,
                },
                MigrationRequest {
                    vm: VmId(0),
                    dest: Some(HostId(2)),
                    at: SimTime::ZERO + SimDuration::from_secs(20),
                },
            ],
        };
        let mut dynamics = WindowPartition::new(
            &cfg,
            1,
            2,
            SimTime::ZERO + SimDuration::from_millis(20_250),
            SimTime::ZERO + SimDuration::from_secs(60),
        );
        let rec = Recorder::enabled();
        let mut orch =
            Orchestrator::new(cfg.clone(), Policy::Fifo, rec.clone()).expect("valid config");
        let report = orch.run_with_dynamics(&scenario, &mut dynamics);
        assert_eq!(report.completed(), 2);
        assert!(report.all_consistent());
        let second = &report.records[1];
        assert!(
            second.blocks_peer > 0,
            "the stranded hop pulled {} peer blocks",
            second.blocks_peer
        );
        let records = rec.records();
        assert!(records
            .iter()
            .any(|r| matches!(r.event, Event::MigrationPeerFed { peer: 0, .. })));
        assert!(records
            .iter()
            .any(|r| matches!(r.event, Event::MigrationReconnected { .. })));
    }

    #[test]
    fn down_hosts_and_thinned_vms_stop_writing() {
        let mut cfg = small_cfg(3, 3);
        cfg.workload_cycle = vec![WorkloadKind::Web];
        let mut dynamics = WindowPartition::new(&cfg, 0, 1, SimTime::ZERO, SimTime::ZERO);
        dynamics.down_host = Some(2);
        dynamics.quiesced_vm = Some(1);
        // Five quiet seconds before the move give vm0 time to write.
        let scenario = Scenario {
            requests: vec![MigrationRequest {
                vm: VmId(0),
                dest: Some(HostId(1)),
                at: SimTime::ZERO + SimDuration::from_secs(5),
            }],
        };
        let mut orch =
            Orchestrator::new(cfg.clone(), Policy::Fifo, Recorder::off()).expect("valid config");
        let report = orch.run_with_dynamics(&scenario, &mut dynamics);
        assert_eq!(report.completed(), 1);
        // vm2 sits on the down host: powered off, no guest writes past
        // the initial image fill. vm1 is up but fully op-thinned: same.
        let initial = cfg.disk_blocks as u64;
        for vm in [1usize, 2] {
            let disk = &orch.cluster().vms[vm].disk;
            assert_eq!(disk.write_count(), initial, "vm{vm} must not have written");
        }
        // vm0 ran flat out: the source image it left behind in the
        // replica table shows guest writes beyond the initial fill.
        let retired = orch
            .cluster()
            .replicas
            .get(0, 0)
            .expect("vm0's old image was retired to h0");
        assert!(retired.disk.write_count() > initial);
    }

    #[test]
    fn admission_control_caps_concurrency() {
        let mut cfg = small_cfg(2, 6);
        cfg.max_streams_per_host = 1;
        cfg.workload_cycle = vec![WorkloadKind::Idle];
        let rec = Recorder::enabled();
        let mut orch = Orchestrator::new(cfg.clone(), Policy::Fifo, rec).expect("valid config");
        let report = orch.run(&Scenario::single_wave(&cfg, None));
        assert_eq!(report.completed(), 6);
        assert_eq!(report.max_concurrent, 1, "one stream per host pair");
    }
}
