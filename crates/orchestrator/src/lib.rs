//! Cluster orchestrator: concurrent, IM-aware migration scheduling
//! across many hosts.
//!
//! The paper migrates one VM between two machines; its Incremental
//! Migration result (§V: a ~800 s primary migration collapsing to
//! seconds on the return trip) only pays off when a *scheduler* can
//! choose to send a VM back to a machine that still holds a stale
//! replica. This crate is that layer: a deterministic, virtual-time
//! cluster model of N hosts and M VMs in which many migrations run
//! concurrently, contending for per-host NIC and disk capacity through
//! `simnet::capacity::max_min_share`, each tracked by its own
//! block-bitmap, admitted and placed by pluggable [`Scheduler`] policies.
//!
//! The pieces:
//!
//! * [`ClusterConfig`] / [`Scenario`] — fleet geometry, capacities,
//!   fault plan, and the timed migration request stream.
//! * [`Cluster`] / [`Host`] / [`VmHandle`] — the fleet model: per-VM
//!   [`vdisk::MetaDisk`] images plus a shared [`vdisk::ReplicaTable`] of
//!   stale departure images (§VII's version maintenance, fleet-wide).
//! * [`Scheduler`] — the policy trait, with [`Fifo`], [`Srdf`]
//!   (shortest-remaining-dirty-first) and [`ImAware`] (prefer a
//!   destination holding a stale replica) implementations, all under
//!   per-host admission control.
//! * [`Orchestrator`] — the executor: a time-sliced engine that runs
//!   each admitted migration through the §IV phase structure under
//!   shared capacity, retries on injected `simnet::fault` resets by
//!   resuming from the block-bitmap, and journals `cluster.*` metrics
//!   and per-migration phase spans through `telemetry` in virtual time.
//! * [`ClusterReport`] / [`MigrationRecord`] — the run's accounting,
//!   exact to the journal's nanosecond arithmetic.
//!
//! Everything is deterministic: one seed fixes the workload streams, the
//! fault schedule and every scheduling decision, so two runs with the
//! same configuration produce byte-identical JSONL journals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod config;
mod dynamics;
mod executor;
mod report;
mod scheduler;

pub use cluster::{Cluster, Host, HostId, VmHandle, VmId};
pub use config::{ClusterConfig, ConfigError, Scenario};
pub use dynamics::{FleetDynamics, StaticDynamics};
pub use executor::Orchestrator;
pub use report::{ClusterReport, MigrationRecord};
pub use scheduler::{
    directory_of, ClusterView, CycleAware, Decision, Fifo, ImAware, MigrationRequest, Policy,
    Scheduler, Srdf,
};
