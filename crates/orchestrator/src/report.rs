//! Run accounting: per-migration records and the fleet report.
//!
//! All derived figures are computed from the same nanosecond timestamps
//! the executor journals through `telemetry`, with the same arithmetic
//! (`nanos as f64 / 1e9`), so a test can reconstruct every span from the
//! JSONL journal and match the report exactly.

use serde::Serialize;

/// Everything the orchestrator learned about one admitted migration.
#[derive(Debug, Clone, Serialize)]
pub struct MigrationRecord {
    /// Orchestrator-wide migration id (admission order).
    pub migration: u64,
    /// Index of the request in the scenario's submission order.
    pub request: usize,
    /// The VM moved.
    pub vm: usize,
    /// Source host.
    pub src: usize,
    /// Destination host.
    pub dst: usize,
    /// Workload name the VM was running.
    pub workload: &'static str,
    /// `true` when the destination held a usable stale replica (§V
    /// incremental migration: the first pass shipped only the diff).
    pub incremental: bool,
    /// Blocks in the first pre-copy pass's worklist.
    pub first_pass_blocks: u64,
    /// Disk pre-copy passes run.
    pub passes: u32,
    /// Blocks shipped across all passes and post-copy.
    pub blocks_sent: u64,
    /// Post-copy synchronizations cancelled by destination writes (§III-A).
    pub blocks_cancelled: u64,
    /// Blocks that crossed as 16-byte content references instead of full
    /// payloads (the destination replica already held the identical
    /// generation; zero with dedup disabled).
    pub blocks_deduped: u64,
    /// Full blocks another host also held at the live generation — the
    /// fan-in a multi-source fetch would draw from peers instead of the
    /// source (zero with multisource disabled; byte accounting is
    /// unchanged either way).
    pub blocks_peer: u64,
    /// Total wire bytes the stream moved, all attempts included.
    pub bytes: u64,
    /// Fault-triggered retries the stream survived.
    pub retries: u32,
    /// `false` when the retry budget ran out (the VM stayed on `src`) or
    /// the run hit its horizon first.
    pub completed: bool,
    /// `true` when the destination image was verified block-consistent
    /// with the frozen source image modulo destination guest writes.
    pub consistent: bool,
    /// Virtual time the migration was admitted, nanoseconds.
    pub start_nanos: u64,
    /// Virtual time the guest was suspended (0 if never frozen).
    pub freeze_nanos: u64,
    /// Virtual time the guest resumed on the destination (0 if never).
    pub resume_nanos: u64,
    /// Virtual time the migration finished (success or failure).
    pub finish_nanos: u64,
    /// Freeze-and-copy downtime, nanoseconds (0 if never frozen).
    pub downtime_nanos: u64,
}

impl MigrationRecord {
    /// Total migration time in seconds — exactly
    /// `(finish_nanos - start_nanos) / 1e9`.
    pub fn total_secs(&self) -> f64 {
        self.finish_nanos.saturating_sub(self.start_nanos) as f64 / 1e9
    }

    /// Downtime in milliseconds — exactly `downtime_nanos / 1e6`.
    pub fn downtime_ms(&self) -> f64 {
        self.downtime_nanos as f64 / 1e6
    }
}

/// The whole run's accounting.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterReport {
    /// Scheduling policy that produced the run.
    pub policy: String,
    /// Hosts in the fleet.
    pub hosts: usize,
    /// VMs in the fleet.
    pub vms: usize,
    /// Master seed.
    pub seed: u64,
    /// Per-migration records, in admission order.
    pub records: Vec<MigrationRecord>,
    /// Requests never admitted (still queued when the run ended).
    pub unserved: usize,
    /// Peak number of concurrently active migration streams.
    pub max_concurrent: usize,
    /// Virtual time the last stream finished, nanoseconds.
    pub makespan_nanos: u64,
}

impl ClusterReport {
    /// Migrations that finished successfully.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.completed).count()
    }

    /// Migrations that started incrementally (destination held a replica).
    pub fn incremental(&self) -> usize {
        self.records.iter().filter(|r| r.incremental).count()
    }

    /// Total wire bytes across all migrations.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Blocks that crossed as content references across all migrations.
    pub fn total_deduped(&self) -> u64 {
        self.records.iter().map(|r| r.blocks_deduped).sum()
    }

    /// Full blocks a peer holder could have served across all migrations.
    pub fn total_peer_served(&self) -> u64 {
        self.records.iter().map(|r| r.blocks_peer).sum()
    }

    /// Wire bytes across migrations whose scenario request index is at
    /// least `from_request` — the bench uses this to isolate wave 2 of
    /// [`crate::Scenario::two_wave`].
    pub fn bytes_from_request(&self, from_request: usize) -> u64 {
        self.records
            .iter()
            .filter(|r| r.request >= from_request)
            .map(|r| r.bytes)
            .sum()
    }

    /// Sum of all downtimes, milliseconds.
    pub fn aggregate_downtime_ms(&self) -> f64 {
        self.records.iter().map(|r| r.downtime_ms()).sum()
    }

    /// `true` when every completed migration verified consistent.
    pub fn all_consistent(&self) -> bool {
        self.records
            .iter()
            .filter(|r| r.completed)
            .all(|r| r.consistent)
    }

    /// Makespan in seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.makespan_nanos as f64 / 1e9
    }

    /// Human-readable table, one row per migration.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "policy={} hosts={} vms={} seed={} completed={}/{} incremental={} \
             peak-concurrency={} makespan={:.1}s total={} MiB\n",
            self.policy,
            self.hosts,
            self.vms,
            self.seed,
            self.completed(),
            self.records.len(),
            self.incremental(),
            self.max_concurrent,
            self.makespan_secs(),
            self.total_bytes() / (1024 * 1024),
        ));
        out.push_str(
            "mig  vm   route    workload    mode  passes blocks  MiB     total(s)  down(ms)  ok\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "{:<4} {:<4} h{}->h{:<3} {:<11} {:<5} {:<6} {:<7} {:<7} {:<9.2} {:<9.3} {}\n",
                r.migration,
                r.vm,
                r.src,
                r.dst,
                r.workload,
                if r.incremental { "incr" } else { "full" },
                r.passes,
                r.blocks_sent,
                r.bytes / (1024 * 1024),
                r.total_secs(),
                r.downtime_ms(),
                match (r.completed, r.consistent) {
                    (true, true) => "yes",
                    (true, false) => "INCONSISTENT",
                    (false, _) => "FAILED",
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(migration: u64, request: usize, bytes: u64, completed: bool) -> MigrationRecord {
        MigrationRecord {
            migration,
            request,
            vm: 0,
            src: 0,
            dst: 1,
            workload: "web",
            incremental: request > 0,
            first_pass_blocks: 10,
            passes: 1,
            blocks_sent: 10,
            blocks_cancelled: 0,
            blocks_deduped: 0,
            blocks_peer: 0,
            bytes,
            retries: 0,
            completed,
            consistent: completed,
            start_nanos: 1_000_000_000,
            freeze_nanos: 2_000_000_000,
            resume_nanos: 2_100_000_000,
            finish_nanos: 3_000_000_000,
            downtime_nanos: 100_000_000,
        }
    }

    #[test]
    fn derived_figures_use_exact_nanos_arithmetic() {
        let r = rec(0, 0, 1024, true);
        assert_eq!(r.total_secs(), 2_000_000_000_f64 / 1e9);
        assert_eq!(r.downtime_ms(), 100_000_000_f64 / 1e6);
    }

    #[test]
    fn report_aggregates() {
        let report = ClusterReport {
            policy: "fifo".into(),
            hosts: 2,
            vms: 2,
            seed: 7,
            records: vec![rec(0, 0, 100, true), rec(1, 2, 40, false)],
            unserved: 1,
            max_concurrent: 2,
            makespan_nanos: 3_000_000_000,
        };
        assert_eq!(report.completed(), 1);
        assert_eq!(report.incremental(), 1);
        assert_eq!(report.total_bytes(), 140);
        assert_eq!(report.bytes_from_request(2), 40);
        assert!(report.all_consistent());
        let table = report.render();
        assert!(table.contains("policy=fifo"));
        assert!(table.contains("FAILED"));
        let json = serde_json::to_string(&report).expect("serializes");
        assert!(json.contains("\"policy\":\"fifo\""));
    }
}
