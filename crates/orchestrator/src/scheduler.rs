//! Pluggable migration scheduling policies under admission control.
//!
//! The scheduler sees the pending request queue and a read-only
//! [`ClusterView`] and picks the next migration to admit plus its
//! destination. Admission control is part of the view: a host can carry
//! at most `max_streams_per_host` concurrent streams (as source or
//! destination), the §VI-C observation that migration streams contend
//! for the same NIC and disk as the workloads, lifted to fleet scale.

use std::collections::BTreeSet;

use block_bitmap::DirtyMap;
use blockstore::BlockDirectory;
use des::{SimDuration, SimTime};
use vdisk::ReplicaTable;

use crate::cluster::{HostId, VmHandle, VmId};

/// Fold every VM's replicas into one cluster-wide [`BlockDirectory`].
///
/// The directory is the single holder map every replica-aware decision
/// reads — IM-aware placement here, fetch planning and source-death
/// failover in `blockstore` — so the scheduler ranks destinations by
/// exactly the per-block freshness a multi-source fetch would see.
pub fn directory_of(replicas: &ReplicaTable, vms: usize) -> BlockDirectory {
    let mut dir = BlockDirectory::new();
    for vm in 0..vms {
        dir.merge_replicas(vm as u64, replicas);
    }
    dir
}

/// One request: move `vm` (optionally to a pinned destination) at or
/// after virtual time `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRequest {
    /// The VM to move.
    pub vm: VmId,
    /// Pinned destination, or `None` to let the policy place it.
    pub dest: Option<HostId>,
    /// Earliest virtual time the migration may start.
    pub at: SimTime,
}

/// A scheduling decision: start `pending[index]`, placing the VM on
/// `dest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Index into the pending slice passed to [`Scheduler::next`].
    pub index: usize,
    /// Destination host.
    pub dest: HostId,
}

/// Read-only cluster state a policy decides against.
pub struct ClusterView<'a> {
    /// Number of hosts.
    pub hosts: usize,
    /// VM handles, by index.
    pub vms: &'a [VmHandle],
    /// The cluster block directory (replica generation vectors folded
    /// into a holder map; staleness ranked against live images).
    pub directory: &'a BlockDirectory,
    /// Active migration streams touching each host (source or dest).
    pub streams: &'a [usize],
    /// Admission cap per host.
    pub max_streams_per_host: usize,
    /// Per-VM disk capacity in blocks.
    pub disk_blocks: usize,
    /// VMs currently migrating (their requests must wait).
    pub busy: &'a BTreeSet<usize>,
    /// Per-host liveness (from the fleet dynamics): a down host can
    /// neither source nor receive a migration.
    pub host_up: &'a [bool],
    /// Per-host cordon flags: a cordoned host refuses *new* inbound
    /// streams (it is being evacuated) but may still act as a source.
    pub cordoned: &'a [bool],
    /// Row-major `hosts × hosts` connectivity matrix: `link_ok[a *
    /// hosts + b]` is `false` when a partition separates `a` from `b`.
    pub link_ok: &'a [bool],
    /// Per-VM workload-phase flags: `true` while the VM is in a
    /// high-activity phase cycle-aware policies should wait out.
    pub high_activity: &'a [bool],
    /// The scheduling instant (for deferral ages).
    pub now: SimTime,
    /// Starvation bound on cycle deferral: a request older than this
    /// runs even through a high-activity phase.
    pub cycle_patience: SimDuration,
}

impl ClusterView<'_> {
    /// `true` when the VM already has an active stream.
    pub fn vm_busy(&self, vm: VmId) -> bool {
        self.busy.contains(&vm.0)
    }

    /// Host currently running `vm`.
    pub fn vm_host(&self, vm: VmId) -> HostId {
        self.vms[vm.0].host
    }

    /// Admission control: can a stream from `src` to `dst` start now?
    /// Both endpoints must be up, reachable from each other, and under
    /// their stream caps; the destination must not be cordoned.
    pub fn admissible(&self, src: HostId, dst: HostId) -> bool {
        src != dst
            && self.host_up[src.0]
            && self.host_up[dst.0]
            && !self.cordoned[dst.0]
            && self.link_ok[src.0 * self.hosts + dst.0]
            && self.streams[src.0] < self.max_streams_per_host
            && self.streams[dst.0] < self.max_streams_per_host
    }

    /// Cycle deferral: should this request wait for its VM's workload
    /// phase to quiet down? Bounded by `cycle_patience` so a VM that
    /// never idles still migrates.
    pub fn defer_for_cycle(&self, req: &MigrationRequest) -> bool {
        self.high_activity[req.vm.0] && self.now.saturating_since(req.at) < self.cycle_patience
    }

    /// Replica-blind placement: the next *serviceable* host in the ring
    /// (down and cordoned hosts are stepped over). On a fully-up fleet
    /// this is exactly the paper's §V baseline — a destination chosen
    /// with no knowledge of stale replicas, so every hop is a full copy.
    pub fn naive_dest(&self, vm: VmId) -> HostId {
        let here = self.vm_host(vm).0;
        for k in 1..self.hosts {
            let h = (here + k) % self.hosts;
            if self.host_up[h] && !self.cordoned[h] {
                return HostId(h);
            }
        }
        HostId((here + 1) % self.hosts)
    }

    /// Hosts (other than the current one) holding a usable stale replica
    /// of `vm`, with their stale-block counts, ascending by host. A
    /// holder's staleness is the complement of its directory fresh
    /// bitmap; geometry-mismatched holders contribute nothing.
    pub fn replica_dests(&self, vm: VmId) -> Vec<(HostId, usize)> {
        let here = self.vm_host(vm);
        let live = &self.vms[vm.0].disk;
        self.directory
            .holders(vm.0 as u64)
            .into_iter()
            .filter_map(|site| {
                let host = HostId(site as usize);
                if host == here || host.0 >= self.hosts {
                    return None;
                }
                self.directory
                    .fresh_bitmap(vm.0 as u64, site, live)
                    .map(|fresh| (host, live.num_blocks() - fresh.count_ones()))
            })
            .collect()
    }

    /// The destination whose replica needs the fewest blocks refreshed —
    /// the IM-aware placement target. Ties break to the lower host id.
    pub fn best_replica_dest(&self, vm: VmId) -> Option<HostId> {
        self.replica_dests(vm)
            .into_iter()
            .min_by_key(|(host, stale)| (*stale, host.0))
            .map(|(host, _)| host)
    }

    /// Blocks the first pre-copy pass must ship for `vm -> dst`: the
    /// replica diff when `dst` holds one, else the whole disk (§V's
    /// all-set bitmap).
    pub fn first_pass_blocks(&self, vm: VmId, dst: HostId) -> usize {
        let live = &self.vms[vm.0].disk;
        self.directory
            .fresh_bitmap(vm.0 as u64, dst.0 as u64, live)
            .map(|fresh| live.num_blocks() - fresh.count_ones())
            .unwrap_or(self.disk_blocks)
    }
}

/// A migration scheduling policy.
///
/// [`Scheduler::next`] is called repeatedly each tick until it returns
/// `None`; every decision it returns is validated against admission
/// control by the executor, so a policy returning an inadmissible
/// decision stalls the scheduling round rather than oversubscribing a
/// host.
pub trait Scheduler {
    /// Identifier used in reports and the CLI.
    fn name(&self) -> &'static str;

    /// Pick the next request to admit, or `None` to wait.
    fn next(&mut self, pending: &[MigrationRequest], view: &ClusterView<'_>) -> Option<Decision>;
}

/// First-in-first-out with ring placement: requests start in arrival
/// order; an unpinned request goes to the next host in the ring,
/// replicas ignored. The fleet-scale analogue of always running a
/// primary (full-copy) migration.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn next(&mut self, pending: &[MigrationRequest], view: &ClusterView<'_>) -> Option<Decision> {
        for (index, req) in pending.iter().enumerate() {
            if view.vm_busy(req.vm) {
                continue;
            }
            let dest = req.dest.unwrap_or_else(|| view.naive_dest(req.vm));
            if view.admissible(view.vm_host(req.vm), dest) {
                return Some(Decision { index, dest });
            }
        }
        None
    }
}

/// Shortest-remaining-dirty-first: among startable requests, admit the
/// one whose first pass ships the fewest blocks (against its would-be
/// destination). Short incremental hops jump the queue, draining the
/// request backlog fastest; placement itself stays ring-naive.
#[derive(Debug, Default, Clone, Copy)]
pub struct Srdf;

impl Scheduler for Srdf {
    fn name(&self) -> &'static str {
        "srdf"
    }

    fn next(&mut self, pending: &[MigrationRequest], view: &ClusterView<'_>) -> Option<Decision> {
        let mut best: Option<(usize, usize, HostId)> = None;
        for (index, req) in pending.iter().enumerate() {
            if view.vm_busy(req.vm) {
                continue;
            }
            let dest = req.dest.unwrap_or_else(|| view.naive_dest(req.vm));
            if !view.admissible(view.vm_host(req.vm), dest) {
                continue;
            }
            let blocks = view.first_pass_blocks(req.vm, dest);
            let better = match &best {
                None => true,
                Some((b, _, _)) => blocks < *b,
            };
            if better {
                best = Some((blocks, index, dest));
            }
        }
        best.map(|(_, index, dest)| Decision { index, dest })
    }
}

/// IM-aware placement: an unpinned request goes to the admissible host
/// holding the *least-stale* replica of the VM, so the hop ships only
/// the bitmap diff (§V incremental migration, fleet-wide). A VM whose
/// only replica hosts are saturated waits for one to free up rather
/// than burn a full copy elsewhere; a VM with no replica anywhere falls
/// back to ring placement.
#[derive(Debug, Default, Clone, Copy)]
pub struct ImAware;

impl Scheduler for ImAware {
    fn name(&self) -> &'static str {
        "im-aware"
    }

    fn next(&mut self, pending: &[MigrationRequest], view: &ClusterView<'_>) -> Option<Decision> {
        for (index, req) in pending.iter().enumerate() {
            if view.vm_busy(req.vm) {
                continue;
            }
            let src = view.vm_host(req.vm);
            if let Some(dest) = req.dest {
                if view.admissible(src, dest) {
                    return Some(Decision { index, dest });
                }
                continue;
            }
            let mut replicas = view.replica_dests(req.vm);
            replicas.sort_by_key(|(host, stale)| (*stale, host.0));
            if let Some(&(dest, _)) = replicas.iter().find(|(d, _)| view.admissible(src, *d)) {
                return Some(Decision { index, dest });
            }
            if !replicas.is_empty() {
                // Replica hosts exist but are saturated: wait for one.
                continue;
            }
            let dest = view.naive_dest(req.vm);
            if view.admissible(src, dest) {
                return Some(Decision { index, dest });
            }
        }
        None
    }
}

/// Cycle-aware IM placement: exactly [`ImAware`]'s replica-first
/// placement, except a request whose VM is mid high-activity workload
/// phase is deferred — migrating a busy VM re-dirties blocks as fast as
/// they ship, so waiting for the quiet part of the cycle makes every
/// pass shorter. Deferral is bounded by the view's `cycle_patience`, so
/// a VM that never idles still migrates (no starvation).
#[derive(Debug, Default, Clone, Copy)]
pub struct CycleAware;

impl Scheduler for CycleAware {
    fn name(&self) -> &'static str {
        "cycle-aware"
    }

    fn next(&mut self, pending: &[MigrationRequest], view: &ClusterView<'_>) -> Option<Decision> {
        for (index, req) in pending.iter().enumerate() {
            if view.vm_busy(req.vm) {
                continue;
            }
            if view.defer_for_cycle(req) {
                continue;
            }
            let src = view.vm_host(req.vm);
            if let Some(dest) = req.dest {
                if view.admissible(src, dest) {
                    return Some(Decision { index, dest });
                }
                continue;
            }
            let mut replicas = view.replica_dests(req.vm);
            replicas.sort_by_key(|(host, stale)| (*stale, host.0));
            if let Some(&(dest, _)) = replicas.iter().find(|(d, _)| view.admissible(src, *d)) {
                return Some(Decision { index, dest });
            }
            if !replicas.is_empty() {
                continue;
            }
            let dest = view.naive_dest(req.vm);
            if view.admissible(src, dest) {
                return Some(Decision { index, dest });
            }
        }
        None
    }
}

/// The policy menu, as a factory enum (CLI/bench parse this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// [`Fifo`].
    Fifo,
    /// [`Srdf`].
    Srdf,
    /// [`ImAware`].
    ImAware,
    /// [`CycleAware`].
    CycleAware,
}

impl Policy {
    /// All policies, for sweeps.
    pub const ALL: [Policy; 4] = [
        Policy::Fifo,
        Policy::Srdf,
        Policy::ImAware,
        Policy::CycleAware,
    ];

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<Policy> {
        match s {
            "fifo" => Some(Policy::Fifo),
            "srdf" => Some(Policy::Srdf),
            "im-aware" | "im" => Some(Policy::ImAware),
            "cycle-aware" | "cycle" => Some(Policy::CycleAware),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::Srdf => "srdf",
            Policy::ImAware => "im-aware",
            Policy::CycleAware => "cycle-aware",
        }
    }

    /// Instantiate the scheduler.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            Policy::Fifo => Box::new(Fifo),
            Policy::Srdf => Box::new(Srdf),
            Policy::ImAware => Box::new(ImAware),
            Policy::CycleAware => Box::new(CycleAware),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::config::ClusterConfig;

    /// Owned connectivity state a test view borrows from: everything
    /// up, connected, and quiet unless the test says otherwise.
    struct Net {
        host_up: Vec<bool>,
        cordoned: Vec<bool>,
        link_ok: Vec<bool>,
        high_activity: Vec<bool>,
    }

    impl Net {
        fn all_up(hosts: usize, vms: usize) -> Self {
            Self {
                host_up: vec![true; hosts],
                cordoned: vec![false; hosts],
                link_ok: vec![true; hosts * hosts],
                high_activity: vec![false; vms],
            }
        }

        fn sever(&mut self, hosts: usize, a: usize, b: usize) {
            self.link_ok[a * hosts + b] = false;
            self.link_ok[b * hosts + a] = false;
        }
    }

    fn view<'a>(
        cluster: &'a Cluster,
        cfg: &ClusterConfig,
        directory: &'a BlockDirectory,
        streams: &'a [usize],
        busy: &'a BTreeSet<usize>,
        net: &'a Net,
    ) -> ClusterView<'a> {
        ClusterView {
            hosts: cfg.hosts,
            vms: &cluster.vms,
            directory,
            streams,
            max_streams_per_host: cfg.max_streams_per_host,
            disk_blocks: cfg.disk_blocks,
            busy,
            host_up: &net.host_up,
            cordoned: &net.cordoned,
            link_ok: &net.link_ok,
            high_activity: &net.high_activity,
            now: SimTime::ZERO,
            cycle_patience: SimDuration::from_secs(600),
        }
    }

    fn req(vm: usize) -> MigrationRequest {
        MigrationRequest {
            vm: VmId(vm),
            dest: None,
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn fifo_admits_in_arrival_order_with_ring_placement() {
        let cfg = ClusterConfig::new(3, 3);
        let cluster = Cluster::new(&cfg).expect("valid");
        let streams = vec![0usize; 3];
        let busy = BTreeSet::new();
        let dir = directory_of(&cluster.replicas, cluster.vms.len());
        let net = Net::all_up(cfg.hosts, cfg.vms);
        let v = view(&cluster, &cfg, &dir, &streams, &busy, &net);
        let d = Fifo.next(&[req(2), req(0)], &v).expect("admits");
        assert_eq!(d.index, 0);
        // vm2 lives on host 2; ring placement sends it to host 0.
        assert_eq!(d.dest, HostId(0));
    }

    #[test]
    fn busy_vms_and_saturated_hosts_are_skipped() {
        let cfg = ClusterConfig::new(3, 3);
        let cluster = Cluster::new(&cfg).expect("valid");
        let busy: BTreeSet<usize> = [0usize].into_iter().collect();
        // Host 1 (vm0's ring dest) saturated; vm1's dest host 2 is free.
        let streams = vec![0usize, cfg.max_streams_per_host, 0];
        let dir = directory_of(&cluster.replicas, cluster.vms.len());
        let net = Net::all_up(cfg.hosts, cfg.vms);
        let v = view(&cluster, &cfg, &dir, &streams, &busy, &net);
        // vm0 is busy; vm1 lives on host 1 (saturated as *source*?) — no:
        // source host 1 is saturated, so vm1 cannot start either.
        let d = Fifo.next(&[req(0), req(1), req(2)], &v);
        // vm2: host 2 -> host 0, both free.
        let d = d.expect("vm2 admissible");
        assert_eq!(d.index, 2);
        assert_eq!(d.dest, HostId(0));
    }

    #[test]
    fn srdf_prefers_the_smallest_first_pass() {
        let cfg = ClusterConfig::new(3, 3);
        let mut cluster = Cluster::new(&cfg).expect("valid");
        // Give vm1's ring destination (host 2) a nearly-fresh replica.
        let disk = cluster.vms[1].disk.clone();
        cluster.replicas.record(1, 2, disk);
        cluster.vms[1].disk.write(7);
        let streams = vec![0usize; 3];
        let busy = BTreeSet::new();
        let dir = directory_of(&cluster.replicas, cluster.vms.len());
        let net = Net::all_up(cfg.hosts, cfg.vms);
        let v = view(&cluster, &cfg, &dir, &streams, &busy, &net);
        let d = Srdf.next(&[req(0), req(1)], &v).expect("admits");
        assert_eq!(d.index, 1, "the 1-block incremental hop goes first");
        assert_eq!(d.dest, HostId(2));
    }

    #[test]
    fn im_aware_places_on_the_replica_host() {
        let cfg = ClusterConfig::new(4, 4);
        let mut cluster = Cluster::new(&cfg).expect("valid");
        // vm0 lives on host 0; host 2 holds a stale replica.
        let disk = cluster.vms[0].disk.clone();
        cluster.replicas.record(0, 2, disk);
        cluster.vms[0].disk.write(1);
        let streams = vec![0usize; 4];
        let busy = BTreeSet::new();
        let dir = directory_of(&cluster.replicas, cluster.vms.len());
        let net = Net::all_up(cfg.hosts, cfg.vms);
        let v = view(&cluster, &cfg, &dir, &streams, &busy, &net);
        let d = ImAware.next(&[req(0)], &v).expect("admits");
        assert_eq!(d.dest, HostId(2), "replica host beats ring placement");
        assert_eq!(v.first_pass_blocks(VmId(0), HostId(2)), 1);
        assert_eq!(v.first_pass_blocks(VmId(0), HostId(1)), cfg.disk_blocks);
    }

    #[test]
    fn im_aware_waits_for_a_saturated_replica_host() {
        let cfg = ClusterConfig::new(3, 3);
        let mut cluster = Cluster::new(&cfg).expect("valid");
        let disk = cluster.vms[0].disk.clone();
        cluster.replicas.record(0, 2, disk);
        let mut streams = vec![0usize; 3];
        streams[2] = cfg.max_streams_per_host;
        let busy = BTreeSet::new();
        let dir = directory_of(&cluster.replicas, cluster.vms.len());
        let net = Net::all_up(cfg.hosts, cfg.vms);
        let v = view(&cluster, &cfg, &dir, &streams, &busy, &net);
        assert!(
            ImAware.next(&[req(0)], &v).is_none(),
            "waits for the replica host instead of burning a full copy"
        );
        // Fifo would happily start the full copy to host 1.
        assert!(Fifo.next(&[req(0)], &v).is_some());
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in Policy::ALL {
            assert_eq!(Policy::parse(p.name()), Some(p));
            assert_eq!(p.build().name(), p.name());
        }
        assert_eq!(Policy::parse("im"), Some(Policy::ImAware));
        assert_eq!(Policy::parse("cycle"), Some(Policy::CycleAware));
        assert_eq!(Policy::parse("nope"), None);
    }

    #[test]
    fn partitions_down_hosts_and_cordons_gate_admission() {
        let cfg = ClusterConfig::new(3, 3);
        let cluster = Cluster::new(&cfg).expect("valid");
        let streams = vec![0usize; 3];
        let busy = BTreeSet::new();
        let dir = directory_of(&cluster.replicas, cluster.vms.len());

        // A severed link blocks exactly that pair.
        let mut net = Net::all_up(cfg.hosts, cfg.vms);
        net.sever(cfg.hosts, 0, 1);
        let v = view(&cluster, &cfg, &dir, &streams, &busy, &net);
        assert!(!v.admissible(HostId(0), HostId(1)));
        assert!(v.admissible(HostId(0), HostId(2)));

        // A down host can neither send nor receive, and ring placement
        // steps over it.
        let mut net = Net::all_up(cfg.hosts, cfg.vms);
        net.host_up[1] = false;
        let v = view(&cluster, &cfg, &dir, &streams, &busy, &net);
        assert!(!v.admissible(HostId(1), HostId(2)));
        assert!(!v.admissible(HostId(0), HostId(1)));
        assert_eq!(v.naive_dest(VmId(0)), HostId(2), "ring skips the down host");

        // A cordoned host refuses new inbound streams but still sources.
        let mut net = Net::all_up(cfg.hosts, cfg.vms);
        net.cordoned[1] = true;
        let v = view(&cluster, &cfg, &dir, &streams, &busy, &net);
        assert!(!v.admissible(HostId(0), HostId(1)));
        assert!(
            v.admissible(HostId(1), HostId(2)),
            "evacuation outbound is fine"
        );
        assert_eq!(v.naive_dest(VmId(0)), HostId(2), "ring skips the cordon");
    }

    #[test]
    fn cycle_aware_defers_busy_vms_until_patience_runs_out() {
        let cfg = ClusterConfig::new(3, 3);
        let cluster = Cluster::new(&cfg).expect("valid");
        let streams = vec![0usize; 3];
        let busy = BTreeSet::new();
        let dir = directory_of(&cluster.replicas, cluster.vms.len());
        let mut net = Net::all_up(cfg.hosts, cfg.vms);
        net.high_activity[0] = true;

        // Mid high-activity phase: vm0's request waits, vm1 goes first.
        let v = view(&cluster, &cfg, &dir, &streams, &busy, &net);
        let d = CycleAware.next(&[req(0), req(1)], &v).expect("admits");
        assert_eq!(d.index, 1, "the busy VM's request is deferred");
        // ImAware, cycle-blind, would have taken vm0 first.
        let d = ImAware.next(&[req(0), req(1)], &v).expect("admits");
        assert_eq!(d.index, 0);

        // Once the request has aged past the patience bound it runs even
        // through the busy phase — no starvation.
        let mut v = view(&cluster, &cfg, &dir, &streams, &busy, &net);
        v.now = SimTime::ZERO + SimDuration::from_secs(601);
        let d = CycleAware.next(&[req(0), req(1)], &v).expect("admits");
        assert_eq!(d.index, 0, "patience exhausted: the request runs anyway");
    }
}
