//! The scenario dynamics oracle: interprets the timeline in virtual
//! time and answers the executor's per-tick topology queries.
//!
//! [`ScenarioDynamics`] implements `orchestrator::FleetDynamics` over a
//! compiled [`Topology`] plus mutable chaos state (the active
//! partition, per-host lifecycle, link degrades, rolling maintenance
//! waves). Every state change is journaled through the recorder at its
//! virtual instant, so the chaos schedule is as visible in the JSONL
//! journal as the migrations it disrupts.
//!
//! Determinism: state lives in `Vec`s indexed by host/VM, events apply
//! in timeline order (stable on ties), and nothing reads a wall clock
//! or hashes — one seed plus one spec fixes the whole run, and an
//! empty spec leaves every query at its identity answer, reproducing
//! the flat-fleet run byte-for-byte.

use des::{SimDuration, SimTime};
use orchestrator::{Cluster, ClusterConfig, FleetDynamics, MigrationRequest};
use telemetry::{Event, Recorder};

use crate::timeline::{ChaosEvent, CycleSpec, ScenarioSpec, TimedEvent};
use crate::topology::{drop_quality, Topology};

/// Per-host lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum HostState {
    /// In service.
    Up,
    /// In service but refusing new inbound migrations (draining).
    Cordoned,
    /// Powered off by a `host-down` event (until `host-up`).
    Down,
    /// Powered off for a maintenance dwell, back up at `until`.
    Dwell { until: SimTime },
}

/// Where a maintenance wave's current host is in its drain.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WaveStage {
    /// Cordoned; waiting for residents and touching streams to clear.
    Draining,
    /// Powered off; rejoins at `until`.
    Dwelling { until: SimTime },
}

/// One rolling maintenance wave: hosts serviced strictly one at a time.
#[derive(Debug, Clone)]
struct Wave {
    hosts: Vec<usize>,
    next: usize,
    dwell: SimDuration,
    active: Option<(usize, WaveStage)>,
    /// VMs already issued an evacuation request for the active host —
    /// a VM that lands on a cordoned host mid-drain (admitted before
    /// the cordon) gets its own request exactly once.
    issued: Vec<usize>,
}

/// The chaos oracle. Build with [`ScenarioDynamics::new`], hand to
/// `Orchestrator::run_with_dynamics`.
#[derive(Debug, Clone)]
pub struct ScenarioDynamics {
    topo: Topology,
    events: Vec<TimedEvent>,
    next_event: usize,
    /// Partition island id per host; all equal when unpartitioned.
    group: Vec<usize>,
    state: Vec<HostState>,
    /// Active link-degrade overrides, per directed pair.
    deg_bandwidth: Vec<Option<f64>>,
    deg_quality: Vec<Option<f64>>,
    waves: Vec<Wave>,
    cycles: Vec<Option<CycleSpec>>,
    /// Last journaled phase per VM (None before the first advance), so
    /// `WorkloadPhase` fires exactly on transitions.
    prev_low: Vec<Option<bool>>,
}

impl ScenarioDynamics {
    /// Compile a spec against the fleet configuration it will run on.
    pub fn new(spec: &ScenarioSpec, cfg: &ClusterConfig) -> Self {
        let hosts = spec.hosts;
        let topo = Topology::compile(
            hosts,
            cfg.nic_capacity,
            cfg.disk_capacity,
            &spec.caps,
            &spec.links,
        );
        let mut events = spec.events.clone();
        // Stable: ties keep declaration order.
        events.sort_by_key(|e| e.at);
        let mut cycles = vec![None; spec.vms];
        for (vm, c) in &spec.cycles {
            if *vm < spec.vms {
                cycles[*vm] = Some(*c);
            }
        }
        Self {
            topo,
            events,
            next_event: 0,
            group: vec![0; hosts],
            state: vec![HostState::Up; hosts],
            deg_bandwidth: vec![None; hosts * hosts],
            deg_quality: vec![None; hosts * hosts],
            waves: Vec::new(),
            cycles,
            prev_low: vec![None; spec.vms],
        }
    }

    fn apply(
        &mut self,
        event: &ChaosEvent,
        now: SimTime,
        streams: &[(usize, usize)],
        recorder: &Recorder,
    ) {
        let t = now.as_nanos();
        match event {
            ChaosEvent::Partition { islands } => {
                // Listed islands get groups 0.., unlisted hosts share
                // one implicit remainder island.
                let remainder = islands.len();
                for g in self.group.iter_mut() {
                    *g = remainder;
                }
                for (g, island) in islands.iter().enumerate() {
                    for &h in island {
                        if h < self.group.len() {
                            self.group[h] = g;
                        }
                    }
                }
                let mut populated = vec![false; remainder + 1];
                for &g in &self.group {
                    populated[g] = true;
                }
                let count = populated.iter().filter(|&&p| p).count() as u64;
                recorder.record_at_nanos(t, || Event::PartitionStarted { islands: count });
            }
            ChaosEvent::Heal => {
                let stranded = streams
                    .iter()
                    .filter(|(s, d)| !self.connected(*s, *d))
                    .count() as u64;
                for g in self.group.iter_mut() {
                    *g = 0;
                }
                recorder.record_at_nanos(t, || Event::PartitionHealed { stranded });
            }
            ChaosEvent::HostDown { host } => {
                self.state[*host] = HostState::Down;
                recorder.record_at_nanos(t, || Event::HostDown { host: *host as u64 });
            }
            ChaosEvent::HostUp { host } => {
                self.state[*host] = HostState::Up;
                recorder.record_at_nanos(t, || Event::HostUp { host: *host as u64 });
            }
            ChaosEvent::LinkDegrade {
                a,
                b,
                bandwidth,
                drop_permille,
            } => {
                for (x, y) in [(*a, *b), (*b, *a)] {
                    let i = self.topo.at(x, y);
                    self.deg_bandwidth[i] = Some(*bandwidth);
                    self.deg_quality[i] = drop_permille.map(drop_quality);
                }
                recorder.record_at_nanos(t, || Event::LinkDegraded {
                    a: *a as u64,
                    b: *b as u64,
                    bandwidth: *bandwidth as u64,
                });
            }
            ChaosEvent::LinkRestore { a, b } => {
                for (x, y) in [(*a, *b), (*b, *a)] {
                    let i = self.topo.at(x, y);
                    self.deg_bandwidth[i] = None;
                    self.deg_quality[i] = None;
                }
                recorder.record_at_nanos(t, || Event::LinkRestored {
                    a: *a as u64,
                    b: *b as u64,
                });
            }
            ChaosEvent::Maintenance { hosts, dwell } => {
                self.waves.push(Wave {
                    hosts: hosts.clone(),
                    next: 0,
                    dwell: *dwell,
                    active: None,
                    issued: Vec::new(),
                });
            }
        }
    }

    /// Drive every maintenance wave one step: cordon → drain → dwell →
    /// rejoin, strictly one host per wave at a time.
    fn pump_waves(
        &mut self,
        now: SimTime,
        cluster: &Cluster,
        streams: &[(usize, usize)],
        recorder: &Recorder,
        out: &mut Vec<MigrationRequest>,
    ) {
        let t = now.as_nanos();
        for wi in 0..self.waves.len() {
            loop {
                match self.waves[wi].active {
                    None => {
                        let next = self.waves[wi].next;
                        if next >= self.waves[wi].hosts.len() {
                            break;
                        }
                        let h = self.waves[wi].hosts[next];
                        if self.state[h] != HostState::Up {
                            // A crashed or already-serviced host waits
                            // its turn until something brings it up.
                            break;
                        }
                        self.state[h] = HostState::Cordoned;
                        let residents: Vec<usize> =
                            cluster.hosts[h].resident.iter().map(|v| v.0).collect();
                        recorder.record_at_nanos(t, || Event::MaintenanceStarted {
                            host: h as u64,
                            evacuating: residents.len() as u64,
                        });
                        for &vm in &residents {
                            out.push(MigrationRequest {
                                vm: orchestrator::VmId(vm),
                                dest: None,
                                at: now,
                            });
                        }
                        self.waves[wi].issued = residents;
                        self.waves[wi].active = Some((h, WaveStage::Draining));
                        break;
                    }
                    Some((h, WaveStage::Draining)) => {
                        // Late arrivals (streams admitted before the
                        // cordon that landed here) get evacuated too.
                        let residents: Vec<usize> =
                            cluster.hosts[h].resident.iter().map(|v| v.0).collect();
                        for &vm in &residents {
                            if !self.waves[wi].issued.contains(&vm) {
                                out.push(MigrationRequest {
                                    vm: orchestrator::VmId(vm),
                                    dest: None,
                                    at: now,
                                });
                                self.waves[wi].issued.push(vm);
                            }
                        }
                        let busy = !residents.is_empty()
                            || streams.iter().any(|(s, d)| *s == h || *d == h);
                        if busy {
                            break;
                        }
                        let until = now + self.waves[wi].dwell;
                        self.state[h] = HostState::Dwell { until };
                        recorder.record_at_nanos(t, || Event::HostDown { host: h as u64 });
                        self.waves[wi].active = Some((h, WaveStage::Dwelling { until }));
                        break;
                    }
                    Some((h, WaveStage::Dwelling { until })) => {
                        if now < until {
                            break;
                        }
                        self.state[h] = HostState::Up;
                        recorder.record_at_nanos(t, || Event::HostUp { host: h as u64 });
                        recorder.record_at_nanos(t, || Event::MaintenanceEnded { host: h as u64 });
                        self.waves[wi].active = None;
                        self.waves[wi].next += 1;
                        self.waves[wi].issued.clear();
                        // Fall through: the next host may start this
                        // same tick.
                    }
                }
            }
        }
    }

    fn cycle_low(&self, vm: usize, now: SimTime) -> Option<bool> {
        self.cycles.get(vm).and_then(|c| *c).map(|c| c.low_at(now))
    }
}

impl FleetDynamics for ScenarioDynamics {
    fn advance(
        &mut self,
        now: SimTime,
        cluster: &Cluster,
        streams: &[(usize, usize)],
        recorder: &Recorder,
    ) -> Vec<MigrationRequest> {
        let mut out = Vec::new();
        while self.next_event < self.events.len() && self.events[self.next_event].at <= now {
            let ev = self.events[self.next_event].event.clone();
            self.next_event += 1;
            self.apply(&ev, now, streams, recorder);
        }
        self.pump_waves(now, cluster, streams, recorder, &mut out);
        for vm in 0..self.prev_low.len() {
            let Some(low) = self.cycle_low(vm, now) else {
                continue;
            };
            match self.prev_low[vm] {
                None => self.prev_low[vm] = Some(low),
                Some(prev) if prev != low => {
                    self.prev_low[vm] = Some(low);
                    recorder.record_at_nanos(now.as_nanos(), || Event::WorkloadPhase {
                        vm: vm as u64,
                        low,
                    });
                }
                Some(_) => {}
            }
        }
        out
    }

    fn host_up(&self, host: usize) -> bool {
        matches!(
            self.state.get(host),
            Some(HostState::Up) | Some(HostState::Cordoned)
        )
    }

    fn cordoned(&self, host: usize) -> bool {
        matches!(self.state.get(host), Some(HostState::Cordoned))
    }

    fn connected(&self, a: usize, b: usize) -> bool {
        match (self.group.get(a), self.group.get(b)) {
            (Some(ga), Some(gb)) => ga == gb,
            _ => false,
        }
    }

    fn nic_capacity(&self, host: usize) -> f64 {
        self.topo.nic.get(host).copied().unwrap_or(f64::INFINITY)
    }

    fn disk_capacity(&self, host: usize) -> f64 {
        self.topo.disk.get(host).copied().unwrap_or(f64::INFINITY)
    }

    fn link_bandwidth(&self, a: usize, b: usize) -> f64 {
        let i = self.topo.at(a, b);
        let base = self.topo.bandwidth.get(i).copied().unwrap_or(f64::INFINITY);
        match self.deg_bandwidth.get(i).copied().flatten() {
            Some(deg) => base.min(deg),
            None => base,
        }
    }

    fn link_quality(&self, a: usize, b: usize) -> f64 {
        let i = self.topo.at(a, b);
        let base = self.topo.quality.get(i).copied().unwrap_or(1.0);
        match self.deg_quality.get(i).copied().flatten() {
            Some(deg) => base * deg,
            None => base,
        }
    }

    fn link_latency(&self, a: usize, b: usize) -> SimDuration {
        self.topo
            .latency
            .get(self.topo.at(a, b))
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    fn workload_scale(&self, vm: usize, now: SimTime) -> f64 {
        match self.cycle_low(vm, now) {
            Some(true) => self.cycles[vm].map(|c| c.scale).unwrap_or(1.0),
            _ => 1.0,
        }
    }

    fn op_keep(&self, vm: usize, now: SimTime) -> (u64, u64) {
        match self.cycle_low(vm, now) {
            Some(true) => self.cycles[vm].map(|c| c.keep).unwrap_or((1, 1)),
            _ => (1, 1),
        }
    }

    fn high_activity(&self, vm: usize, now: SimTime) -> bool {
        matches!(self.cycle_low(vm, now), Some(false))
    }

    fn exhausted(&self, _now: SimTime) -> bool {
        self.next_event >= self.events.len()
            && self
                .waves
                .iter()
                .all(|w| w.active.is_none() && w.next >= w.hosts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::SimDuration;

    fn spec(hosts: usize, vms: usize) -> ScenarioSpec {
        ScenarioSpec::new(hosts, vms)
    }

    fn dynamics(s: &ScenarioSpec) -> ScenarioDynamics {
        let cfg = ClusterConfig::new(s.hosts, s.vms);
        ScenarioDynamics::new(s, &cfg)
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn empty_spec_answers_every_query_with_the_identity() {
        let s = spec(3, 3);
        let cfg = ClusterConfig::new(3, 3);
        let mut d = ScenarioDynamics::new(&s, &cfg);
        assert!(d.host_up(0) && !d.cordoned(1) && d.connected(0, 2));
        assert_eq!(d.nic_capacity(1), cfg.nic_capacity);
        assert_eq!(d.disk_capacity(2), cfg.disk_capacity);
        assert_eq!(d.link_bandwidth(0, 1), f64::INFINITY);
        assert_eq!(d.link_quality(0, 1), 1.0);
        assert_eq!(d.link_latency(0, 1), SimDuration::ZERO);
        assert_eq!(d.workload_scale(0, at(0)), 1.0);
        assert_eq!(d.op_keep(0, at(0)), (1, 1));
        assert!(!d.high_activity(0, at(0)));
        assert!(d.exhausted(at(0)));
        let cluster = Cluster::new(&cfg).expect("valid config");
        let rec = Recorder::off();
        assert!(d.advance(at(0), &cluster, &[], &rec).is_empty());
    }

    #[test]
    fn partition_splits_islands_heal_restores_and_counts_stranded() {
        let mut s = spec(4, 4);
        s.events.push(TimedEvent {
            at: at(10),
            event: ChaosEvent::Partition {
                islands: vec![vec![0, 1]],
            },
        });
        s.events.push(TimedEvent {
            at: at(20),
            event: ChaosEvent::Heal,
        });
        let cfg = ClusterConfig::new(4, 4);
        let cluster = Cluster::new(&cfg).expect("valid config");
        let mut d = dynamics(&s);
        let rec = Recorder::enabled();
        d.advance(at(10), &cluster, &[], &rec);
        assert!(d.connected(0, 1) && d.connected(2, 3));
        assert!(!d.connected(0, 2), "cross-island severed");
        assert!(!d.exhausted(at(10)));
        // One stream crosses the cut, one does not.
        d.advance(at(20), &cluster, &[(0, 2), (0, 1)], &rec);
        assert!(d.connected(0, 2));
        assert!(d.exhausted(at(20)));
        let events: Vec<Event> = rec.records().into_iter().map(|r| r.event).collect();
        assert!(events.contains(&Event::PartitionStarted { islands: 2 }));
        assert!(events.contains(&Event::PartitionHealed { stranded: 1 }));
    }

    #[test]
    fn maintenance_wave_cordons_drains_dwells_and_rejoins() {
        let mut s = spec(3, 3);
        s.events.push(TimedEvent {
            at: at(0),
            event: ChaosEvent::Maintenance {
                hosts: vec![0, 1],
                dwell: SimDuration::from_secs(5),
            },
        });
        let cfg = ClusterConfig::new(3, 3);
        let mut cluster = Cluster::new(&cfg).expect("valid config");
        let mut d = dynamics(&s);
        let rec = Recorder::enabled();

        // t=0: h0 cordons, its resident vm0 is evacuated.
        let reqs = d.advance(at(0), &cluster, &[], &rec);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].vm.0, 0);
        assert!(d.cordoned(0) && d.host_up(0), "draining host stays up");
        assert!(!d.exhausted(at(0)));

        // Still draining while a stream touches h0.
        d.advance(at(1), &cluster, &[(0, 1)], &rec);
        assert!(d.cordoned(0));

        // Drained: resident moved away, no streams → dwell (down).
        let vm0 = cluster.vms[0].id;
        let h1 = cluster.hosts[1].id;
        let from = cluster.vms[0].host;
        cluster.hosts[from.0].resident.remove(&vm0);
        cluster.hosts[h1.0].resident.insert(vm0);
        cluster.vms[0].host = h1;
        d.advance(at(2), &cluster, &[], &rec);
        assert!(!d.host_up(0), "dwelling host is down");

        // Dwell over at t=7: h0 rejoins, h1 starts its turn.
        let reqs = d.advance(at(7), &cluster, &[], &rec);
        assert!(d.host_up(0) && !d.cordoned(0));
        assert!(d.cordoned(1));
        // h1 hosts vm1 and (after our manual move) vm0.
        assert_eq!(reqs.len(), 2);
        let events: Vec<Event> = rec.records().into_iter().map(|r| r.event).collect();
        assert!(events.contains(&Event::MaintenanceStarted {
            host: 0,
            evacuating: 1
        }));
        assert!(events.contains(&Event::HostDown { host: 0 }));
        assert!(events.contains(&Event::HostUp { host: 0 }));
        assert!(events.contains(&Event::MaintenanceEnded { host: 0 }));
    }

    #[test]
    fn link_degrade_clamps_and_restore_lifts() {
        let mut s = spec(2, 2);
        s.events.push(TimedEvent {
            at: at(1),
            event: ChaosEvent::LinkDegrade {
                a: 0,
                b: 1,
                bandwidth: 1000.0,
                drop_permille: Some(100),
            },
        });
        s.events.push(TimedEvent {
            at: at(2),
            event: ChaosEvent::LinkRestore { a: 0, b: 1 },
        });
        let cfg = ClusterConfig::new(2, 2);
        let cluster = Cluster::new(&cfg).expect("valid config");
        let mut d = dynamics(&s);
        let rec = Recorder::enabled();
        d.advance(at(1), &cluster, &[], &rec);
        assert_eq!(d.link_bandwidth(0, 1), 1000.0);
        assert_eq!(d.link_bandwidth(1, 0), 1000.0, "degrade is symmetric");
        assert!((d.link_quality(0, 1) - 0.9).abs() < 1e-12);
        d.advance(at(2), &cluster, &[], &rec);
        assert_eq!(d.link_bandwidth(0, 1), f64::INFINITY);
        assert_eq!(d.link_quality(0, 1), 1.0);
    }

    #[test]
    fn workload_cycles_thin_ops_and_journal_transitions() {
        let mut s = spec(2, 2);
        s.cycles.push((
            1,
            CycleSpec {
                high: SimDuration::from_secs(10),
                low: SimDuration::from_secs(10),
                scale: 0.25,
                keep: (1, 4),
            },
        ));
        let cfg = ClusterConfig::new(2, 2);
        let cluster = Cluster::new(&cfg).expect("valid config");
        let mut d = dynamics(&s);
        let rec = Recorder::enabled();
        d.advance(at(0), &cluster, &[], &rec);
        assert!(d.high_activity(1, at(0)));
        assert!(!d.high_activity(0, at(0)), "no cycle, never high");
        assert_eq!(d.workload_scale(1, at(0)), 1.0);
        d.advance(at(12), &cluster, &[], &rec);
        assert!(!d.high_activity(1, at(12)));
        assert_eq!(d.workload_scale(1, at(12)), 0.25);
        assert_eq!(d.op_keep(1, at(12)), (1, 4));
        let events: Vec<Event> = rec.records().into_iter().map(|r| r.event).collect();
        assert_eq!(events, vec![Event::WorkloadPhase { vm: 1, low: true }]);
    }
}
