//! Scenario engine: deterministic cluster topology and chaos schedules
//! for the migration orchestrator.
//!
//! The paper evaluates block-bitmap migration on one clean LAN link;
//! the fleet the ROADMAP aims at lives on messier ground — racks
//! behind WAN uplinks, hosts cycling through maintenance, networks
//! that partition and heal, workloads with day/night activity cycles
//! (Baruchi et al., PAPERS.md). This crate models that ground as data:
//!
//! * [`topology`] — islands, heterogeneous per-host NIC/disk
//!   capacities, per-link bandwidth/latency/drop, compiled to dense
//!   matrices whose unset entries are exact identity elements.
//! * [`timeline`] — a declarative virtual-time schedule of chaos
//!   events (partition/heal, host down/up, link degrade/restore,
//!   rolling maintenance waves) plus workload cycles and migration
//!   directives, resolved into a [`ScenarioSpec`].
//! * [`parse`] — the `.scn` line language (`vmmigrate orchestrate
//!   --scenario cluster.scn`), with line-numbered typed errors.
//! * [`dynamics`] — [`ScenarioDynamics`], the `FleetDynamics` oracle
//!   the orchestrator's executor consults every tick; it interprets
//!   the timeline, drives maintenance drains, and journals every
//!   topology change as a typed telemetry event.
//! * [`runner`] — spec → config → orchestrated run.
//!
//! Everything is deterministic: one spec and one seed fix the run, and
//! an **empty** scenario reproduces the classic flat-fleet orchestrator
//! journal byte-for-byte (`tests/scenario_chaos.rs` pins both).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
pub mod parse;
pub mod runner;
pub mod timeline;
pub mod topology;

pub use dynamics::ScenarioDynamics;
pub use parse::parse;
pub use runner::{config_for, run, run_with_policy, ScenarioRun};
pub use timeline::{ChaosEvent, CycleSpec, ScenarioSpec, TimedEvent};
pub use topology::{drop_quality, HostCaps, Island, LinkSpec, Topology};

/// A scenario error: what went wrong and, for parse errors, the
/// 1-based line it came from (`0` = not tied to a line).
///
/// Typed, never panicking — this crate sits in lintkit's no-panic
/// zone, same as the transport and orchestrator it drives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based source line, or `0` when the error has no line.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl ScenarioError {
    /// An error not tied to a source line.
    pub fn spec(msg: impl Into<String>) -> Self {
        Self {
            line: 0,
            msg: msg.into(),
        }
    }

    /// A parse error at `line` (1-based).
    pub fn at(line: usize, msg: impl Into<String>) -> Self {
        Self {
            line,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "scenario: {}", self.msg)
        } else {
            write!(f, "scenario line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_with_and_without_lines() {
        assert_eq!(
            ScenarioError::spec("no fleet").to_string(),
            "scenario: no fleet"
        );
        assert_eq!(
            ScenarioError::at(3, "bad host").to_string(),
            "scenario line 3: bad host"
        );
    }
}
