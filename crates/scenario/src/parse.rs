//! The `.scn` scenario language: one directive per line, `#` comments.
//!
//! ```text
//! # fleet geometry first, then declarations in any order
//! fleet hosts=8 vms=32 blocks=16384 seed=7 policy=cycle-aware
//! island CORE h0 h1 h2 h3
//! island EDGE h4 h5 h6 h7
//! host h7 nic=50MiB disk=80MiB
//! link CORE EDGE bandwidth=20MiB latency=40ms drop=5
//! link h0->h4 bandwidth=5MiB            # directed (asymmetric uplink)
//! cycle vm5 high=60s low=120s scale=0.25 keep=1/4
//! at 30s partition CORE | EDGE
//! at 90s heal
//! at 10s host-down h2
//! at 50s host-up h2
//! at 20s link-degrade h0 h1 bandwidth=5MiB drop=100
//! at 40s link-restore h0 h1
//! at 60s maintenance CORE dwell=30s
//! migrate vm3 at=5s dest=h2
//! wave at=10s
//! ```
//!
//! Durations take `ns`/`us`/`ms`/`s`/`m`/`h` suffixes; sizes take
//! `B`/`KiB`/`MiB`/`GiB` (bare numbers are bytes); `drop` is per
//! mille. Link and maintenance endpoints may be hosts (`hN`) or island
//! names. Everything resolves at parse time into a [`ScenarioSpec`];
//! errors carry the 1-based line number.

use des::{SimDuration, SimTime};
use orchestrator::{HostId, MigrationRequest, Policy, VmId};

use crate::timeline::{ChaosEvent, CycleSpec, ScenarioSpec, TimedEvent};
use crate::topology::{HostCaps, Island, LinkSpec};
use crate::ScenarioError;

/// Parse a `.scn` scenario file.
pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioError> {
    let mut spec = ScenarioSpec::new(0, 0);
    let mut have_fleet = false;
    for (ln, raw) in text.lines().enumerate() {
        let n = ln + 1;
        let line = match raw.split('#').next() {
            Some(code) => code.trim(),
            None => "",
        };
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let Some((&head, rest)) = toks.split_first() else {
            continue;
        };
        let fail = |msg: String| Err(ScenarioError::at(n, msg));
        if head == "fleet" {
            if have_fleet {
                return fail("duplicate `fleet` directive".to_string());
            }
            match parse_fleet(rest) {
                Ok(s) => spec = s,
                Err(m) => return fail(m),
            }
            have_fleet = true;
            continue;
        }
        if !have_fleet {
            return fail(format!("`{head}` before `fleet` (fleet must come first)"));
        }
        let step = match head {
            "island" => parse_island(rest, &mut spec),
            "host" => parse_host_caps(rest, &mut spec),
            "link" => parse_link(rest, &mut spec),
            "cycle" => parse_cycle(rest, &mut spec),
            "at" => parse_at(rest, &mut spec),
            "migrate" => parse_migrate(rest, &mut spec),
            "wave" => parse_wave(rest, &mut spec),
            other => Err(format!("unknown directive `{other}`")),
        };
        if let Err(m) = step {
            return fail(m);
        }
    }
    if !have_fleet {
        return Err(ScenarioError::spec("empty scenario: no `fleet` directive"));
    }
    spec.validate()?;
    Ok(spec)
}

fn parse_fleet(rest: &[&str]) -> Result<ScenarioSpec, String> {
    let mut hosts = None;
    let mut vms = None;
    let mut spec = ScenarioSpec::new(0, 0);
    for tok in rest {
        let (k, v) = keyval(tok)?;
        match k {
            "hosts" => hosts = Some(parse_usize(v)?),
            "vms" => vms = Some(parse_usize(v)?),
            "blocks" => spec.disk_blocks = Some(parse_usize(v)?),
            "seed" => spec.seed = Some(parse_u64(v)?),
            "policy" => {
                spec.policy = Some(Policy::parse(v).ok_or_else(|| format!("unknown policy `{v}`"))?)
            }
            other => return Err(format!("fleet: unknown key `{other}`")),
        }
    }
    spec.hosts = hosts.ok_or("fleet: missing hosts=")?;
    spec.vms = vms.ok_or("fleet: missing vms=")?;
    Ok(spec)
}

fn parse_island(rest: &[&str], spec: &mut ScenarioSpec) -> Result<(), String> {
    let Some((&name, members)) = rest.split_first() else {
        return Err("island: missing name".to_string());
    };
    if parse_host(name).is_ok() {
        return Err(format!("island name `{name}` collides with a host name"));
    }
    if spec.island(name).is_some() {
        return Err(format!("duplicate island `{name}`"));
    }
    let mut hosts = Vec::new();
    for m in members {
        hosts.push(parse_host(m)?);
    }
    if hosts.is_empty() {
        return Err(format!("island `{name}`: no member hosts"));
    }
    spec.islands.push(Island {
        name: name.to_string(),
        hosts,
    });
    Ok(())
}

fn parse_host_caps(rest: &[&str], spec: &mut ScenarioSpec) -> Result<(), String> {
    let Some((&host, kvs)) = rest.split_first() else {
        return Err("host: missing host name".to_string());
    };
    let h = parse_host(host)?;
    let mut caps = HostCaps::default();
    for tok in kvs {
        let (k, v) = keyval(tok)?;
        match k {
            "nic" => caps.nic = Some(parse_size(v)?),
            "disk" => caps.disk = Some(parse_size(v)?),
            other => return Err(format!("host: unknown key `{other}`")),
        }
    }
    spec.caps.push((h, caps));
    Ok(())
}

fn parse_link(rest: &[&str], spec: &mut ScenarioSpec) -> Result<(), String> {
    let mut ends: Vec<(Vec<usize>, Vec<usize>, bool)> = Vec::new();
    let mut bandwidth = None;
    let mut latency = None;
    let mut drop = None;
    let mut positional: Vec<&str> = Vec::new();
    for tok in rest {
        if tok.contains('=') && !tok.contains("->") {
            let (k, v) = keyval(tok)?;
            match k {
                "bandwidth" => bandwidth = Some(parse_size(v)?),
                "latency" => latency = Some(parse_duration(v)?),
                "drop" => drop = Some(parse_permille(v)?),
                other => return Err(format!("link: unknown key `{other}`")),
            }
        } else {
            positional.push(tok);
        }
    }
    match positional.as_slice() {
        [directed] if directed.contains("->") => {
            let (a, b) = directed
                .split_once("->")
                .ok_or_else(|| format!("link: bad endpoint `{directed}`"))?;
            ends.push((endpoint(a, spec)?, endpoint(b, spec)?, false));
        }
        [a, b] => {
            ends.push((endpoint(a, spec)?, endpoint(b, spec)?, true));
        }
        _ => return Err("link: expected `A B` or `A->B` endpoints".to_string()),
    }
    for (from, to, symmetric) in ends {
        spec.links.push(LinkSpec {
            from,
            to,
            symmetric,
            bandwidth,
            latency,
            drop_permille: drop,
        });
    }
    Ok(())
}

fn parse_cycle(rest: &[&str], spec: &mut ScenarioSpec) -> Result<(), String> {
    let Some((&vm_tok, kvs)) = rest.split_first() else {
        return Err("cycle: missing vm".to_string());
    };
    let vm = parse_vm(vm_tok)?;
    let mut high = None;
    let mut low = None;
    let mut scale = 0.25;
    let mut keep = (1, 4);
    for tok in kvs {
        let (k, v) = keyval(tok)?;
        match k {
            "high" => high = Some(parse_duration(v)?),
            "low" => low = Some(parse_duration(v)?),
            "scale" => scale = parse_f64(v)?,
            "keep" => keep = parse_ratio(v)?,
            other => return Err(format!("cycle: unknown key `{other}`")),
        }
    }
    spec.cycles.push((
        vm,
        CycleSpec {
            high: high.ok_or("cycle: missing high=")?,
            low: low.ok_or("cycle: missing low=")?,
            scale,
            keep,
        },
    ));
    Ok(())
}

fn parse_at(rest: &[&str], spec: &mut ScenarioSpec) -> Result<(), String> {
    let Some((&when, rest)) = rest.split_first() else {
        return Err("at: missing time".to_string());
    };
    let at = SimTime::ZERO + parse_duration(when)?;
    let Some((&verb, args)) = rest.split_first() else {
        return Err("at: missing event".to_string());
    };
    let event = match verb {
        "partition" => {
            let joined = args.join(" ");
            let mut islands = Vec::new();
            for segment in joined.split('|') {
                let mut hosts = Vec::new();
                for name in segment.split_whitespace() {
                    hosts.extend(endpoint(name, spec)?);
                }
                if !hosts.is_empty() {
                    islands.push(hosts);
                }
            }
            if islands.is_empty() {
                return Err("partition: no islands listed".to_string());
            }
            ChaosEvent::Partition { islands }
        }
        "heal" => ChaosEvent::Heal,
        "host-down" => ChaosEvent::HostDown {
            host: one_host(args, "host-down")?,
        },
        "host-up" => ChaosEvent::HostUp {
            host: one_host(args, "host-up")?,
        },
        "link-degrade" => {
            let mut hosts = Vec::new();
            let mut bandwidth = None;
            let mut drop = None;
            for tok in args {
                if tok.contains('=') {
                    let (k, v) = keyval(tok)?;
                    match k {
                        "bandwidth" => bandwidth = Some(parse_size(v)?),
                        "drop" => drop = Some(parse_permille(v)?),
                        other => return Err(format!("link-degrade: unknown key `{other}`")),
                    }
                } else {
                    hosts.push(parse_host(tok)?);
                }
            }
            let [a, b] = hosts.as_slice() else {
                return Err("link-degrade: expected two hosts".to_string());
            };
            ChaosEvent::LinkDegrade {
                a: *a,
                b: *b,
                bandwidth: bandwidth.ok_or("link-degrade: missing bandwidth=")?,
                drop_permille: drop,
            }
        }
        "link-restore" => {
            let mut hosts = Vec::new();
            for tok in args {
                hosts.push(parse_host(tok)?);
            }
            let [a, b] = hosts.as_slice() else {
                return Err("link-restore: expected two hosts".to_string());
            };
            ChaosEvent::LinkRestore { a: *a, b: *b }
        }
        "maintenance" => {
            let mut hosts = Vec::new();
            let mut dwell = None;
            for tok in args {
                if tok.contains('=') {
                    let (k, v) = keyval(tok)?;
                    match k {
                        "dwell" => dwell = Some(parse_duration(v)?),
                        other => return Err(format!("maintenance: unknown key `{other}`")),
                    }
                } else {
                    hosts.extend(endpoint(tok, spec)?);
                }
            }
            if hosts.is_empty() {
                return Err("maintenance: no hosts listed".to_string());
            }
            ChaosEvent::Maintenance {
                hosts,
                dwell: dwell.ok_or("maintenance: missing dwell=")?,
            }
        }
        other => return Err(format!("at: unknown event `{other}`")),
    };
    spec.events.push(TimedEvent { at, event });
    Ok(())
}

fn parse_migrate(rest: &[&str], spec: &mut ScenarioSpec) -> Result<(), String> {
    let Some((&vm_tok, kvs)) = rest.split_first() else {
        return Err("migrate: missing vm".to_string());
    };
    let vm = parse_vm(vm_tok)?;
    let mut at = SimTime::ZERO;
    let mut dest = None;
    for tok in kvs {
        let (k, v) = keyval(tok)?;
        match k {
            "at" => at = SimTime::ZERO + parse_duration(v)?,
            "dest" => dest = Some(HostId(parse_host(v)?)),
            other => return Err(format!("migrate: unknown key `{other}`")),
        }
    }
    spec.requests.push(MigrationRequest {
        vm: VmId(vm),
        dest,
        at,
    });
    Ok(())
}

fn parse_wave(rest: &[&str], spec: &mut ScenarioSpec) -> Result<(), String> {
    let mut at = SimTime::ZERO;
    for tok in rest {
        let (k, v) = keyval(tok)?;
        match k {
            "at" => at = SimTime::ZERO + parse_duration(v)?,
            other => return Err(format!("wave: unknown key `{other}`")),
        }
    }
    for vm in 0..spec.vms {
        spec.requests.push(MigrationRequest {
            vm: VmId(vm),
            dest: None,
            at,
        });
    }
    Ok(())
}

fn keyval(tok: &str) -> Result<(&str, &str), String> {
    tok.split_once('=')
        .ok_or_else(|| format!("expected key=value, got `{tok}`"))
}

fn one_host(args: &[&str], what: &str) -> Result<usize, String> {
    match args {
        [h] => parse_host(h),
        _ => Err(format!("{what}: expected exactly one host")),
    }
}

/// Resolve an endpoint name: `hN` or a declared island.
fn endpoint(name: &str, spec: &ScenarioSpec) -> Result<Vec<usize>, String> {
    if let Ok(h) = parse_host(name) {
        return Ok(vec![h]);
    }
    match spec.island(name) {
        Some(island) => Ok(island.hosts.clone()),
        None => Err(format!("unknown endpoint `{name}` (not a host or island)")),
    }
}

fn parse_host(tok: &str) -> Result<usize, String> {
    match tok.strip_prefix('h') {
        Some(n) => n
            .parse::<usize>()
            .map_err(|_| format!("bad host `{tok}` (expected hN)")),
        None => Err(format!("bad host `{tok}` (expected hN)")),
    }
}

fn parse_vm(tok: &str) -> Result<usize, String> {
    match tok.strip_prefix("vm") {
        Some(n) => n
            .parse::<usize>()
            .map_err(|_| format!("bad vm `{tok}` (expected vmN)")),
        None => Err(format!("bad vm `{tok}` (expected vmN)")),
    }
}

fn parse_usize(v: &str) -> Result<usize, String> {
    v.parse::<usize>().map_err(|_| format!("bad integer `{v}`"))
}

fn parse_u64(v: &str) -> Result<u64, String> {
    v.parse::<u64>().map_err(|_| format!("bad integer `{v}`"))
}

fn parse_f64(v: &str) -> Result<f64, String> {
    match v.parse::<f64>() {
        Ok(x) if x.is_finite() && x >= 0.0 => Ok(x),
        _ => Err(format!("bad number `{v}`")),
    }
}

fn parse_permille(v: &str) -> Result<u32, String> {
    match v.parse::<u32>() {
        Ok(x) if x <= 999 => Ok(x),
        _ => Err(format!("bad drop rate `{v}` (per mille, 0..=999)")),
    }
}

fn parse_ratio(v: &str) -> Result<(u64, u64), String> {
    let Some((num, den)) = v.split_once('/') else {
        return Err(format!("bad ratio `{v}` (expected N/M)"));
    };
    let num = parse_u64(num)?;
    let den = parse_u64(den)?;
    if den == 0 || num > den {
        return Err(format!("bad ratio `{v}` (need N ≤ M, M > 0)"));
    }
    Ok((num, den))
}

/// Parse a duration with an `ns`/`us`/`ms`/`s`/`m`/`h` suffix.
fn parse_duration(v: &str) -> Result<SimDuration, String> {
    let err = || format!("bad duration `{v}` (expected e.g. 30s, 500ms, 2m, 1h)");
    let (digits, mult_nanos) = if let Some(d) = v.strip_suffix("ns") {
        (d, 1.0)
    } else if let Some(d) = v.strip_suffix("us") {
        (d, 1e3)
    } else if let Some(d) = v.strip_suffix("ms") {
        (d, 1e6)
    } else if let Some(d) = v.strip_suffix('s') {
        (d, 1e9)
    } else if let Some(d) = v.strip_suffix('m') {
        (d, 60.0 * 1e9)
    } else if let Some(d) = v.strip_suffix('h') {
        (d, 3600.0 * 1e9)
    } else {
        return Err(err());
    };
    match digits.parse::<f64>() {
        Ok(x) if x.is_finite() && x >= 0.0 => Ok(SimDuration::from_nanos((x * mult_nanos) as u64)),
        _ => Err(err()),
    }
}

/// Parse a size in bytes/second (or plain bytes): bare number, `B`,
/// `KiB`, `MiB`, `GiB`.
fn parse_size(v: &str) -> Result<f64, String> {
    let err = || format!("bad size `{v}` (expected e.g. 4096, 20MiB)");
    let (digits, mult) = if let Some(d) = v.strip_suffix("KiB") {
        (d, 1024.0)
    } else if let Some(d) = v.strip_suffix("MiB") {
        (d, 1024.0 * 1024.0)
    } else if let Some(d) = v.strip_suffix("GiB") {
        (d, 1024.0 * 1024.0 * 1024.0)
    } else if let Some(d) = v.strip_suffix('B') {
        (d, 1.0)
    } else {
        (v, 1.0)
    };
    match digits.parse::<f64>() {
        Ok(x) if x.is_finite() && x > 0.0 => Ok(x * mult),
        _ => Err(err()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = "\
# a kitchen-sink scenario
fleet hosts=8 vms=32 blocks=16384 seed=7 policy=cycle-aware
island CORE h0 h1 h2 h3
island EDGE h4 h5 h6 h7
host h7 nic=50MiB disk=80MiB
link CORE EDGE bandwidth=20MiB latency=40ms drop=5
link h0->h4 bandwidth=5MiB
cycle vm5 high=60s low=120s scale=0.25 keep=1/4
at 30s partition CORE | EDGE
at 90s heal
at 10s host-down h2
at 50s host-up h2
at 20s link-degrade h0 h1 bandwidth=5MiB drop=100
at 40s link-restore h0 h1
at 60s maintenance CORE dwell=30s
migrate vm3 at=5s dest=h2
wave at=10s
";

    #[test]
    fn kitchen_sink_parses_and_resolves() {
        let s = parse(FULL).expect("parses");
        assert_eq!((s.hosts, s.vms), (8, 32));
        assert_eq!(s.disk_blocks, Some(16384));
        assert_eq!(s.seed, Some(7));
        assert_eq!(s.policy, Some(Policy::CycleAware));
        assert_eq!(s.islands.len(), 2);
        assert_eq!(s.links.len(), 2);
        assert!(s.links[0].symmetric);
        assert!(!s.links[1].symmetric, "-> form is directed");
        assert_eq!(s.links[1].from, vec![0]);
        assert_eq!(s.links[1].to, vec![4]);
        assert_eq!(s.cycles.len(), 1);
        assert_eq!(s.events.len(), 7);
        assert_eq!(
            s.events[0].event,
            ChaosEvent::Partition {
                islands: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
            }
        );
        match &s.events[6].event {
            ChaosEvent::Maintenance { hosts, dwell } => {
                assert_eq!(hosts, &vec![0, 1, 2, 3]);
                assert_eq!(*dwell, SimDuration::from_secs(30));
            }
            other => panic!("expected maintenance, got {other:?}"),
        }
        // migrate + one request per VM from the wave.
        assert_eq!(s.requests.len(), 1 + 32);
        assert_eq!(s.requests[0].vm, VmId(3));
        assert_eq!(s.requests[0].dest, Some(HostId(2)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("fleet hosts=4 vms=4\nat 5s explode h0\n").expect_err("bad verb");
        assert_eq!(e.line, 2);
        let e = parse("island X h0\n").expect_err("fleet first");
        assert_eq!(e.line, 1);
        let e = parse("fleet hosts=4 vms=4\nlink CORE EDGE bandwidth=1MiB\n")
            .expect_err("unknown island");
        assert_eq!(e.line, 2);
        assert!(parse("").is_err(), "empty file");
    }

    #[test]
    fn durations_and_sizes_parse_exactly() {
        assert_eq!(parse_duration("30s"), Ok(SimDuration::from_secs(30)));
        assert_eq!(parse_duration("500ms"), Ok(SimDuration::from_millis(500)));
        assert_eq!(parse_duration("2m"), Ok(SimDuration::from_secs(120)));
        assert_eq!(parse_duration("1h"), Ok(SimDuration::from_secs(3600)));
        assert_eq!(parse_duration("250us"), Ok(SimDuration::from_micros(250)));
        assert!(parse_duration("30").is_err(), "suffix required");
        assert_eq!(parse_size("4096"), Ok(4096.0));
        assert_eq!(parse_size("20MiB"), Ok(20.0 * 1024.0 * 1024.0));
        assert_eq!(parse_size("1GiB"), Ok(1024.0 * 1024.0 * 1024.0));
        assert!(parse_size("fast").is_err());
        assert_eq!(parse_ratio("1/4"), Ok((1, 4)));
        assert!(parse_ratio("4/1").is_err());
        assert!(parse_ratio("1/0").is_err());
    }

    #[test]
    fn out_of_range_references_fail_validation() {
        assert!(parse("fleet hosts=2 vms=2\nmigrate vm9 at=0s\n").is_err());
        assert!(parse("fleet hosts=2 vms=2\nat 1s host-down h5\n").is_err());
    }
}
