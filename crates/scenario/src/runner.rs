//! Running a scenario: spec → fleet config → orchestrated chaos run.

use std::sync::Arc;

use orchestrator::{ClusterConfig, Orchestrator, Policy, Scenario};
use telemetry::Recorder;

use crate::dynamics::ScenarioDynamics;
use crate::timeline::ScenarioSpec;
use crate::ScenarioError;

/// A finished scenario run: the fleet report plus the orchestrator
/// (for end-state inspection — replica table, VM placement, disks).
pub struct ScenarioRun {
    /// The fleet report.
    pub report: orchestrator::ClusterReport,
    /// The orchestrator after the run.
    pub orchestrator: Orchestrator,
}

/// The fleet configuration a spec resolves to: paper-calibrated
/// defaults with the spec's geometry and overrides applied.
pub fn config_for(spec: &ScenarioSpec) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(spec.hosts, spec.vms);
    if let Some(blocks) = spec.disk_blocks {
        cfg.disk_blocks = blocks;
    }
    if let Some(seed) = spec.seed {
        cfg.seed = seed;
    }
    cfg
}

/// Run a scenario under its own policy (default IM-aware), journaling
/// through `recorder`.
pub fn run(spec: &ScenarioSpec, recorder: Arc<Recorder>) -> Result<ScenarioRun, ScenarioError> {
    run_with_policy(spec, spec.policy.unwrap_or(Policy::ImAware), recorder)
}

/// Run a scenario under an explicit policy override — how E15 compares
/// cycle-aware against cycle-blind scheduling on one spec.
pub fn run_with_policy(
    spec: &ScenarioSpec,
    policy: Policy,
    recorder: Arc<Recorder>,
) -> Result<ScenarioRun, ScenarioError> {
    spec.validate()?;
    let cfg = config_for(spec);
    let mut orchestrator = Orchestrator::new(cfg.clone(), policy, recorder)
        .map_err(|e| ScenarioError::spec(e.to_string()))?;
    let mut dynamics = ScenarioDynamics::new(spec, &cfg);
    let scenario = Scenario {
        requests: spec.requests.clone(),
    };
    let report = orchestrator.run_with_dynamics(&scenario, &mut dynamics);
    Ok(ScenarioRun {
        report,
        orchestrator,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn a_parsed_scenario_runs_to_completion() {
        let spec = parse(
            "fleet hosts=3 vms=3 blocks=8192 seed=11\n\
             migrate vm0 at=0s\n",
        )
        .expect("parses");
        let run = run(&spec, Recorder::off()).expect("runs");
        assert_eq!(run.report.records.len(), 1);
        assert!(run.report.records[0].completed);
        assert!(run.report.records[0].consistent);
    }

    #[test]
    fn spec_overrides_reach_the_config() {
        let spec = parse("fleet hosts=4 vms=8 blocks=16384 seed=42\n").expect("parses");
        let cfg = config_for(&spec);
        assert_eq!(cfg.hosts, 4);
        assert_eq!(cfg.vms, 8);
        assert_eq!(cfg.disk_blocks, 16384);
        assert_eq!(cfg.seed, 42);
    }
}
