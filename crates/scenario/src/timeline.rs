//! The scenario timeline: a declarative, virtual-time schedule of
//! chaos events, workload activity cycles, and migration directives.
//!
//! A [`ScenarioSpec`] is the fully-resolved form of a `.scn` file:
//! island names expanded to host lists, durations and sizes to
//! nanoseconds and bytes. The executor never sees it directly — the
//! dynamics oracle interprets [`TimedEvent`]s in virtual-time order
//! (stable by declaration order on ties) and journals each one as a
//! typed telemetry event, so a chaos run's journal is as replayable as
//! a clean one's.

use des::{SimDuration, SimTime};
use orchestrator::{MigrationRequest, Policy};

use crate::topology::{HostCaps, Island, LinkSpec};
use crate::ScenarioError;

/// One scheduled topology change.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosEvent {
    /// Split the fleet into disconnected islands. Each inner vec is one
    /// island; hosts in none of them form one implicit remainder
    /// island. Cross-island pairs cannot exchange migration traffic.
    Partition {
        /// Explicit island host lists.
        islands: Vec<Vec<usize>>,
    },
    /// Restore full connectivity.
    Heal,
    /// Power a host off (crash semantics: pools vanish, residents
    /// freeze) until a matching [`ChaosEvent::HostUp`].
    HostDown {
        /// Host index.
        host: usize,
    },
    /// Power a host back on.
    HostUp {
        /// Host index.
        host: usize,
    },
    /// Clamp a link's bandwidth (and optionally its goodput) until a
    /// [`ChaosEvent::LinkRestore`]. Applies in both directions.
    LinkDegrade {
        /// One endpoint.
        a: usize,
        /// Other endpoint.
        b: usize,
        /// New per-stream bandwidth ceiling, bytes/second.
        bandwidth: f64,
        /// Extra frame-drop rate, per mille.
        drop_permille: Option<u32>,
    },
    /// Lift a degrade, returning the link to its compiled topology.
    LinkRestore {
        /// One endpoint.
        a: usize,
        /// Other endpoint.
        b: usize,
    },
    /// A rolling maintenance wave: each listed host in turn is
    /// cordoned, its residents evacuated, then powered down for
    /// `dwell` of virtual time before rejoining — one host at a time,
    /// like a real fleet upgrade.
    Maintenance {
        /// Hosts to service, in order.
        hosts: Vec<usize>,
        /// Virtual downtime per host once drained.
        dwell: SimDuration,
    },
}

/// A [`ChaosEvent`] pinned to a virtual instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// When the event fires (events at the same instant apply in
    /// declaration order).
    pub at: SimTime,
    /// What happens.
    pub event: ChaosEvent,
}

/// A VM's workload activity cycle (Baruchi-style): `high` of full-rate
/// activity, then `low` of thinned activity, repeating from `t = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleSpec {
    /// High-activity phase length.
    pub high: SimDuration,
    /// Low-activity phase length.
    pub low: SimDuration,
    /// Disk-demand multiplier during the low phase.
    pub scale: f64,
    /// Guest-op thinning during the low phase: keep ops whose sequence
    /// number `s` satisfies `s % keep.1 < keep.0`.
    pub keep: (u64, u64),
}

impl CycleSpec {
    /// Is the cycle in its low-activity phase at `now`?
    pub fn low_at(&self, now: SimTime) -> bool {
        let period = self.high.as_nanos() + self.low.as_nanos();
        if period == 0 {
            return false;
        }
        now.as_nanos() % period >= self.high.as_nanos()
    }
}

/// A fully-resolved scenario: fleet geometry, topology declarations,
/// workload cycles, the chaos timeline, and the migration directives.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Number of hosts.
    pub hosts: usize,
    /// Number of VMs.
    pub vms: usize,
    /// Per-VM disk size override, blocks.
    pub disk_blocks: Option<usize>,
    /// Master seed override.
    pub seed: Option<u64>,
    /// Scheduling policy override.
    pub policy: Option<Policy>,
    /// Named host groups.
    pub islands: Vec<Island>,
    /// Per-host capacity overrides.
    pub caps: Vec<(usize, HostCaps)>,
    /// Static link declarations.
    pub links: Vec<LinkSpec>,
    /// Per-VM workload cycles.
    pub cycles: Vec<(usize, CycleSpec)>,
    /// The chaos timeline, in declaration order.
    pub events: Vec<TimedEvent>,
    /// Migration directives (`migrate` and `wave` lines).
    pub requests: Vec<MigrationRequest>,
}

impl ScenarioSpec {
    /// An empty scenario over a bare fleet — reproduces the classic
    /// orchestrator run byte-for-byte.
    pub fn new(hosts: usize, vms: usize) -> Self {
        Self {
            hosts,
            vms,
            disk_blocks: None,
            seed: None,
            policy: None,
            islands: Vec::new(),
            caps: Vec::new(),
            links: Vec::new(),
            cycles: Vec::new(),
            events: Vec::new(),
            requests: Vec::new(),
        }
    }

    /// Look up an island by name.
    pub fn island(&self, name: &str) -> Option<&Island> {
        self.islands.iter().find(|i| i.name == name)
    }

    /// Cross-check every host, VM and island reference against the
    /// fleet geometry.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let host_err = |h: usize| {
            ScenarioError::spec(format!("host h{h} out of range (fleet has {})", self.hosts))
        };
        if self.hosts < 2 {
            return Err(ScenarioError::spec("fleet needs at least 2 hosts"));
        }
        if self.vms == 0 {
            return Err(ScenarioError::spec("fleet needs at least 1 vm"));
        }
        for island in &self.islands {
            for &h in &island.hosts {
                if h >= self.hosts {
                    return Err(host_err(h));
                }
            }
        }
        for (h, _) in &self.caps {
            if *h >= self.hosts {
                return Err(host_err(*h));
            }
        }
        for link in &self.links {
            for &h in link.from.iter().chain(link.to.iter()) {
                if h >= self.hosts {
                    return Err(host_err(h));
                }
            }
        }
        for (vm, cycle) in &self.cycles {
            if *vm >= self.vms {
                return Err(ScenarioError::spec(format!(
                    "vm{vm} out of range (fleet has {})",
                    self.vms
                )));
            }
            if cycle.high + cycle.low == SimDuration::ZERO {
                return Err(ScenarioError::spec(format!("vm{vm}: empty cycle")));
            }
            if cycle.keep.1 == 0 {
                return Err(ScenarioError::spec(format!("vm{vm}: keep=N/0")));
            }
        }
        for ev in &self.events {
            match &ev.event {
                ChaosEvent::Partition { islands } => {
                    let mut seen = vec![false; self.hosts];
                    for &h in islands.iter().flatten() {
                        if h >= self.hosts {
                            return Err(host_err(h));
                        }
                        if seen[h] {
                            return Err(ScenarioError::spec(format!(
                                "partition lists h{h} in two islands"
                            )));
                        }
                        seen[h] = true;
                    }
                }
                ChaosEvent::HostDown { host } | ChaosEvent::HostUp { host } => {
                    if *host >= self.hosts {
                        return Err(host_err(*host));
                    }
                }
                ChaosEvent::LinkDegrade { a, b, .. } | ChaosEvent::LinkRestore { a, b } => {
                    if *a >= self.hosts || *b >= self.hosts {
                        return Err(host_err((*a).max(*b)));
                    }
                }
                ChaosEvent::Maintenance { hosts, .. } => {
                    for &h in hosts {
                        if h >= self.hosts {
                            return Err(host_err(h));
                        }
                    }
                }
                ChaosEvent::Heal => {}
            }
        }
        for req in &self.requests {
            if req.vm.0 >= self.vms {
                return Err(ScenarioError::spec(format!("vm{} out of range", req.vm.0)));
            }
            if let Some(d) = req.dest {
                if d.0 >= self.hosts {
                    return Err(host_err(d.0));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_phases_repeat_high_then_low() {
        let c = CycleSpec {
            high: SimDuration::from_secs(10),
            low: SimDuration::from_secs(20),
            scale: 0.25,
            keep: (1, 4),
        };
        let at = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);
        assert!(!c.low_at(at(0)));
        assert!(!c.low_at(at(9)));
        assert!(c.low_at(at(10)));
        assert!(c.low_at(at(29)));
        assert!(!c.low_at(at(30)), "period wraps back to high");
    }

    #[test]
    fn validate_rejects_out_of_range_references() {
        let mut s = ScenarioSpec::new(2, 2);
        assert!(s.validate().is_ok());
        s.events.push(TimedEvent {
            at: SimTime::ZERO,
            event: ChaosEvent::HostDown { host: 9 },
        });
        assert!(s.validate().is_err());
        s.events.clear();
        s.events.push(TimedEvent {
            at: SimTime::ZERO,
            event: ChaosEvent::Partition {
                islands: vec![vec![0], vec![0]],
            },
        });
        assert!(s.validate().is_err(), "host in two islands");
    }
}
