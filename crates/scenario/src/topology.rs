//! The static topology model: islands, heterogeneous host capacities,
//! and per-link WAN properties, compiled into dense per-pair matrices.
//!
//! A scenario names hosts (`h0`, `h1`, …), optionally groups them into
//! *islands* (named host sets — a rack, a site, a WAN region), and
//! attaches properties to hosts and links. [`Topology::compile`] turns
//! those sparse declarations into dense `hosts × hosts` matrices the
//! dynamics oracle answers from in O(1) per query, with every unset
//! entry holding the identity element of the executor operation it
//! feeds: `f64::INFINITY` for bandwidth (applied with `min`), `1.0`
//! for quality (applied with `×`), `SimDuration::ZERO` for latency
//! (applied with `+`). An empty topology therefore reproduces the flat
//! fleet byte-for-byte.

use des::SimDuration;

/// A named group of hosts — the partition and link-declaration unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Island {
    /// The island's name as written in the scenario file.
    pub name: String,
    /// Member hosts, ascending.
    pub hosts: Vec<usize>,
}

/// Per-host capacity overrides (unset fields keep the fleet default).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HostCaps {
    /// NIC capacity override, bytes/second.
    pub nic: Option<f64>,
    /// Disk capacity override, bytes/second.
    pub disk: Option<f64>,
}

/// One link declaration: properties on every `from × to` host pair.
///
/// `symmetric` links (the `link A B …` form) apply the properties in
/// both directions; directed links (`link A->B …`) apply them one way,
/// which is how a scenario models asymmetric WAN uplinks.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Source endpoint hosts (an island or a single host, expanded).
    pub from: Vec<usize>,
    /// Destination endpoint hosts.
    pub to: Vec<usize>,
    /// Apply in both directions?
    pub symmetric: bool,
    /// Per-stream bandwidth ceiling, bytes/second.
    pub bandwidth: Option<f64>,
    /// One-way latency added to freeze handshakes across this link.
    pub latency: Option<SimDuration>,
    /// Seeded probabilistic frame-drop rate, per mille. Goodput scales
    /// by `1 − drop/1000`.
    pub drop_permille: Option<u32>,
}

/// Goodput factor for a drop rate in per mille.
pub fn drop_quality(permille: u32) -> f64 {
    1.0 - f64::from(permille.min(999)) / 1000.0
}

/// The compiled topology: dense per-host and per-directed-pair
/// matrices, row-major (`a * hosts + b` is the `a → b` entry).
#[derive(Debug, Clone)]
pub struct Topology {
    /// Number of hosts.
    pub hosts: usize,
    /// Per-host NIC capacity, bytes/second.
    pub nic: Vec<f64>,
    /// Per-host disk capacity, bytes/second.
    pub disk: Vec<f64>,
    /// Per-pair stream bandwidth ceiling (`INFINITY` = uncapped LAN).
    pub bandwidth: Vec<f64>,
    /// Per-pair goodput factor in `(0, 1]`.
    pub quality: Vec<f64>,
    /// Per-pair extra one-way latency.
    pub latency: Vec<SimDuration>,
}

impl Topology {
    /// Compile sparse declarations into dense matrices. Later
    /// declarations win on overlap, so a scenario can state a broad
    /// island-to-island rule and then carve out one special pair.
    pub fn compile(
        hosts: usize,
        default_nic: f64,
        default_disk: f64,
        caps: &[(usize, HostCaps)],
        links: &[LinkSpec],
    ) -> Self {
        let mut topo = Self {
            hosts,
            nic: vec![default_nic; hosts],
            disk: vec![default_disk; hosts],
            bandwidth: vec![f64::INFINITY; hosts * hosts],
            quality: vec![1.0; hosts * hosts],
            latency: vec![SimDuration::ZERO; hosts * hosts],
        };
        for (h, c) in caps {
            if *h >= hosts {
                continue;
            }
            if let Some(nic) = c.nic {
                topo.nic[*h] = nic;
            }
            if let Some(disk) = c.disk {
                topo.disk[*h] = disk;
            }
        }
        for link in links {
            for &a in &link.from {
                for &b in &link.to {
                    if a == b || a >= hosts || b >= hosts {
                        continue;
                    }
                    topo.apply(a, b, link);
                    if link.symmetric {
                        topo.apply(b, a, link);
                    }
                }
            }
        }
        topo
    }

    fn apply(&mut self, a: usize, b: usize, link: &LinkSpec) {
        let i = self.at(a, b);
        if let Some(bw) = link.bandwidth {
            self.bandwidth[i] = bw;
        }
        if let Some(lat) = link.latency {
            self.latency[i] = lat;
        }
        if let Some(drop) = link.drop_permille {
            self.quality[i] = drop_quality(drop);
        }
    }

    /// Row-major index of the `a → b` entry.
    pub fn at(&self, a: usize, b: usize) -> usize {
        a * self.hosts + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_topology_is_all_identity_entries() {
        let t = Topology::compile(3, 100.0, 200.0, &[], &[]);
        assert!(t.nic.iter().all(|&n| n == 100.0));
        assert!(t.disk.iter().all(|&d| d == 200.0));
        assert!(t.bandwidth.iter().all(|&b| b == f64::INFINITY));
        assert!(t.quality.iter().all(|&q| q == 1.0));
        assert!(t.latency.iter().all(|&l| l == SimDuration::ZERO));
    }

    #[test]
    fn directed_links_stay_one_way_and_symmetric_links_mirror() {
        let wan = LinkSpec {
            from: vec![0],
            to: vec![1, 2],
            symmetric: false,
            bandwidth: Some(5.0),
            latency: Some(SimDuration::from_millis(40)),
            drop_permille: Some(50),
        };
        let lan = LinkSpec {
            from: vec![1],
            to: vec![2],
            symmetric: true,
            bandwidth: Some(80.0),
            latency: None,
            drop_permille: None,
        };
        let t = Topology::compile(3, 1.0, 1.0, &[], &[wan, lan]);
        assert_eq!(t.bandwidth[t.at(0, 1)], 5.0);
        assert_eq!(t.bandwidth[t.at(1, 0)], f64::INFINITY, "directed");
        assert_eq!(t.latency[t.at(0, 2)], SimDuration::from_millis(40));
        assert!((t.quality[t.at(0, 2)] - 0.95).abs() < 1e-12);
        assert_eq!(t.bandwidth[t.at(1, 2)], 80.0);
        assert_eq!(t.bandwidth[t.at(2, 1)], 80.0, "symmetric");
    }

    #[test]
    fn host_caps_override_defaults_per_host() {
        let caps = [(
            1,
            HostCaps {
                nic: Some(7.0),
                disk: None,
            },
        )];
        let t = Topology::compile(2, 1.0, 2.0, &caps, &[]);
        assert_eq!(t.nic, vec![1.0, 7.0]);
        assert_eq!(t.disk, vec![2.0, 2.0]);
    }
}
